"""Benchmark F5 — regenerate Figure 5 (misses/message vs arrival rate).

Runs a reduced-scale sweep (benchmark-timed), asserts the paper's
qualitative shape, and records the endpoint series in ``extra_info``.
Full-scale: ``ldlp-experiment figure5 --paper-scale``.
"""

from repro.experiments import figure5

RATES = (1000, 4000, 7000, 9500)


def run_sweep():
    return figure5.run(rates=RATES, seeds=(0, 1), duration=0.1)


def test_figure5_reproduction(benchmark):
    result = benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    assert result.shape_holds()
    benchmark.extra_info["rates"] = list(RATES)
    benchmark.extra_info["conv_total_misses"] = [
        round(r.misses.total) for r in result.conventional
    ]
    benchmark.extra_info["ldlp_instruction_misses"] = [
        round(r.misses.instruction) for r in result.ldlp
    ]
    benchmark.extra_info["ldlp_data_misses"] = [
        round(r.misses.data) for r in result.ldlp
    ]
    benchmark.extra_info["ldlp_batch"] = [
        round(r.mean_batch_size, 1) for r in result.ldlp
    ]
    benchmark.extra_info["paper_shape"] = (
        "conventional flat ~1000; LDLP I-misses fall >5x, flatten at the "
        "14-message batch cap; D-misses rise slightly"
    )
