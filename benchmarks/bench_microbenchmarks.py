"""Implementation microbenchmarks: how fast is the simulator itself?

These time the hot paths of the reproduction infrastructure (cache
probes, scheduler steps, stack traversal, signalling parse) — useful
for spotting performance regressions in the library, and explicitly
*not* reproduction metrics (the paper's numbers come from the simulated
cycle model, not Python wall-clock).
"""

import numpy as np

from repro.cache import DirectMappedCache
from repro.core import ConventionalScheduler, LDLPScheduler, MachineBinding, Message
from repro.machine import MemoryLayout
from repro.netbsd import ReceivePathModel
from repro.protocols import TcpSender, build_tcp_receive_stack
from repro.sim import build_paper_stack
from repro.signalling import SignallingMessage, setup


def test_cache_span_probe(benchmark):
    """Vectorized 6 KB code sweep against an 8 KB direct-mapped cache."""
    cache = DirectMappedCache(8192, 32)

    def sweep():
        return cache.access_span(0, 6144)

    benchmark(sweep)


def test_cache_scalar_probe(benchmark):
    """Scalar single-line probes (the exact path)."""
    cache = DirectMappedCache(8192, 32)
    lines = list(range(512))

    def probe_all():
        total = 0
        for line in lines:
            total += cache.access_line(line)
        return total

    benchmark(probe_all)


def test_ldlp_scheduler_throughput(benchmark):
    """Messages/second through the bound five-layer LDLP stack."""

    def run_batch():
        binding = MachineBinding(rng=1)
        scheduler = LDLPScheduler(build_paper_stack(), binding)
        scheduler.run_to_completion([Message(size=552) for _ in range(100)])
        return binding.cpu.cycles

    benchmark.pedantic(run_batch, rounds=5, iterations=1)


def test_conventional_scheduler_throughput(benchmark):
    def run_batch():
        binding = MachineBinding(rng=1)
        scheduler = ConventionalScheduler(build_paper_stack(), binding)
        scheduler.run_to_completion([Message(size=552) for _ in range(100)])
        return binding.cpu.cycles

    benchmark.pedantic(run_batch, rounds=5, iterations=1)


def test_byte_stack_frame_processing(benchmark):
    """Full byte-level receive path: parse + checksum + TCP + socket."""
    stack = build_tcp_receive_stack("10.0.0.1", 80)
    stack.socket.receive_buffer.hiwat = 1 << 24
    scheduler = ConventionalScheduler(stack.layers)
    sender = TcpSender(src="10.0.0.9", dst="10.0.0.1", src_port=7777, dst_port=80)
    scheduler.run_to_completion([Message(payload=sender.syn())])
    scheduler.run_to_completion(
        [Message(payload=sender.complete_handshake(stack.transmitted[-1]))]
    )
    payload = b"x" * 512

    def one_frame():
        scheduler.run_to_completion([Message(payload=sender.data(payload))])

    benchmark(one_frame)


def test_signalling_parse(benchmark):
    """Wire-format parse of a SETUP message."""
    wire = setup(12345, "host-77.example", calling_party="client-3").serialize()
    result = benchmark(SignallingMessage.parse, wire)
    assert result.call_ref == 12345


def test_receive_path_trace_generation(benchmark):
    """One full three-phase NetBSD trace (65k references)."""
    model = ReceivePathModel(seed=0)
    trace = benchmark.pedantic(model.build_trace, rounds=3, iterations=1)
    assert len(trace.refs) > 50_000


def test_random_placement(benchmark):
    """Placing the five-layer stack randomly (per-run setup cost)."""

    def place():
        layout = MemoryLayout(rng=np.random.default_rng(3))
        from repro.machine import Region

        for index in range(12):
            layout.place_random(Region(f"r{index}", 6144))

    benchmark(place)
