"""Benchmarks A1-A3 — the design-choice ablations behind the figures."""

from repro.experiments import ablations


def test_ablation_batch_cap(benchmark):
    """A1: why Figure 5 flattens — benefit saturates at the 14-message
    cap derived from the 8 KB data cache."""
    sweep = benchmark.pedantic(
        lambda: ablations.batch_cap_sweep(caps=(1, 4, 14, 32), duration=0.1),
        rounds=1,
        iterations=1,
    )
    misses = [round(r.misses.total) for r in sweep.ldlp]
    benchmark.extra_info["caps"] = [1, 4, 14, 32]
    benchmark.extra_info["ldlp_misses"] = misses
    # Monotone improvement that saturates: cap 14 ≈ cap 32.
    assert misses[0] > misses[1] > misses[2]
    assert misses[3] > misses[2] * 0.8


def test_ablation_miss_penalty(benchmark):
    """A2: LDLP's advantage scales with the memory/CPU speed gap."""
    sweep = benchmark.pedantic(
        lambda: ablations.miss_penalty_sweep(
            penalties=(0, 10, 20, 60), rate=5000, duration=0.1
        ),
        rounds=1,
        iterations=1,
    )
    advantages = [
        conv.cycles_per_message / ldlp.cycles_per_message
        for conv, ldlp in zip(sweep.conventional, sweep.ldlp)
    ]
    benchmark.extra_info["penalties"] = [0, 10, 20, 60]
    benchmark.extra_info["cycle_advantage"] = [round(a, 2) for a in advantages]
    assert advantages[0] < 1.05  # no memory gap, no benefit
    assert advantages[-1] > advantages[1]  # grows with the gap


def test_ablation_code_size(benchmark):
    """A3: the Figure-4 boundary — LDLP helps only when the stack
    exceeds the instruction cache."""
    sweep = benchmark.pedantic(
        lambda: ablations.code_size_sweep(
            code_sizes=(1024, 6144, 12288), rate=3500, duration=0.1
        ),
        rounds=1,
        iterations=1,
    )
    advantages = [
        conv.cycles_per_message / ldlp.cycles_per_message
        for conv, ldlp in zip(sweep.conventional, sweep.ldlp)
    ]
    benchmark.extra_info["code_sizes"] = [1024, 6144, 12288]
    benchmark.extra_info["cycle_advantage"] = [round(a, 2) for a in advantages]
    assert advantages[0] < 1.1  # cache-resident stack: no benefit
    assert advantages[-1] > 1.3
