"""Benchmark F8 — regenerate Figure 8 (checksum cache effects), plus
real-time throughput of the two actual checksum implementations."""

from repro.experiments import figure8
from repro.protocols import internet_checksum, internet_checksum_unrolled


def test_figure8_reproduction(benchmark):
    result = benchmark(figure8.run)
    assert result.shape_holds()
    benchmark.extra_info["cold_crossover_bytes"] = result.cold_crossover()
    benchmark.extra_info["paper_crossover_bytes"] = 900
    benchmark.extra_info["bsd_cold_intercept"] = result.bsd_cold[0]
    benchmark.extra_info["paper_bsd_cold_intercept"] = 426
    benchmark.extra_info["simple_cold_intercept"] = result.simple_cold[0]
    benchmark.extra_info["paper_simple_cold_intercept"] = 176


DATA = bytes(range(256)) * 4  # 1024 bytes


def test_simple_checksum_throughput(benchmark):
    """Wall-clock of the simple routine (implementation microbenchmark)."""
    result = benchmark(internet_checksum, DATA)
    assert result == internet_checksum_unrolled(DATA)


def test_unrolled_checksum_throughput(benchmark):
    """Wall-clock of the unrolled routine."""
    result = benchmark(internet_checksum_unrolled, DATA)
    assert result == internet_checksum(DATA)
