"""Benchmark T3 — regenerate Table 3 (line-size sensitivity)."""

from repro.experiments import table3
from repro.netbsd.layers import PAPER_TABLE3


def test_table3_reproduction(benchmark):
    result = benchmark(table3.run, seed=0)
    assert result.within_tolerance()
    for paper_row in PAPER_TABLE3:
        measured = result.measured_row(paper_row.line_size)
        key = f"line{paper_row.line_size}"
        if measured["code_bytes"] is not None:
            benchmark.extra_info[f"{key}_code_bytes_pct"] = round(
                measured["code_bytes"]
            )
            benchmark.extra_info[f"{key}_code_bytes_paper"] = (
                paper_row.code_bytes_pct
            )
        if measured["code_lines"] is not None:
            benchmark.extra_info[f"{key}_code_lines_pct"] = round(
                measured["code_lines"]
            )
            benchmark.extra_info[f"{key}_code_lines_paper"] = (
                paper_row.code_lines_pct
            )
