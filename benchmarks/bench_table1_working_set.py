"""Benchmark T1 — regenerate Table 1 (receive-path working sets).

Times one full build-trace + working-set analysis cycle and records the
measured per-category totals against the paper's in ``extra_info``.
"""

from repro.cache.workingset import Category
from repro.experiments import table1
from repro.netbsd.layers import PAPER_TABLE1_TOTAL, table1_row_sum


def test_table1_reproduction(benchmark):
    result = benchmark(table1.run, seed=0)
    assert result.matches_paper()
    rows = table1_row_sum()
    benchmark.extra_info["code_bytes"] = result.report.total(Category.CODE).bytes
    benchmark.extra_info["paper_code_row_sum"] = rows.code
    benchmark.extra_info["paper_code_printed_total"] = PAPER_TABLE1_TOTAL.code
    benchmark.extra_info["readonly_bytes"] = result.report.total(
        Category.READONLY
    ).bytes
    benchmark.extra_info["mutable_bytes"] = result.report.total(
        Category.MUTABLE
    ).bytes
    benchmark.extra_info["exact_per_layer_match"] = True
