"""Benchmark F7 — regenerate Figure 7 (latency vs CPU clock, Ethernet
trace substitute)."""

from repro.experiments import figure7

CLOCKS = (10, 20, 40, 80)


def run_sweep():
    return figure7.run(
        clocks_mhz=CLOCKS, duration=0.4, mean_rate=1000, seeds=(0,)
    )


def test_figure7_reproduction(benchmark):
    result = benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    assert result.shape_holds()
    benchmark.extra_info["clocks_mhz"] = list(CLOCKS)
    benchmark.extra_info["conv_mean_latency_us"] = [
        round(r.latency.mean * 1e6) for r in result.conventional
    ]
    benchmark.extra_info["ldlp_mean_latency_us"] = [
        round(r.latency.mean * 1e6) for r in result.ldlp
    ]
    benchmark.extra_info["ldlp_batch"] = [
        round(r.mean_batch_size, 1) for r in result.ldlp
    ]
    benchmark.extra_info["paper_shape"] = (
        "latency rises as the clock falls; below ~40 MHz LDLP batches to "
        "maintain throughput while conventional saturates"
    )
    benchmark.extra_info["substitution"] = (
        "Bellcore Oct-89 trace replaced by aggregated Pareto ON/OFF "
        "self-similar source with the 1989 LAN size mix (see DESIGN.md)"
    )
