"""Benchmark H — the experiment harness itself.

Measures the infrastructure the reproduction's perf trajectory rests
on: content-key hashing, cache lookup, and a real (short) sweep run
cold vs. warm.  A warm run should be dominated by JSON deserialization,
orders of magnitude under the cold compute.
"""

from repro.harness import ResultCache, content_key, run_experiment
from repro.harness.points import SweepPoint, SweepSpec, Tolerance


def _spec() -> SweepSpec:
    return SweepSpec(
        name="benchsweep",
        points=lambda scale: [
            SweepPoint(
                experiment="benchsweep",
                key=f"{scheduler}/rate={rate}",
                func="repro.sim.runner:poisson_point",
                params={
                    "scheduler": scheduler,
                    "rate": rate,
                    "seeds": [0],
                    "duration": 0.02,
                },
            )
            for scheduler in ("conventional", "ldlp")
            for rate in (3000, 9000)
        ],
        quantities=lambda points, results: {},
        sources=("repro.sim", "repro.core"),
        default_tolerance=Tolerance(rel=0.1),
    )


def test_content_key_throughput(benchmark):
    """Hashing one sweep point's identity (params + source digests)."""
    spec = _spec()
    point = spec.points_for("ci")[0]
    key = benchmark(content_key, point, spec.sources)
    assert len(key) == 64


def test_cold_sweep(benchmark, tmp_path):
    """Serial compute of a 4-point sweep with an empty cache."""
    spec = _spec()

    def run():
        cache = ResultCache(tmp_path / "cold")
        cache.clear("benchsweep")
        return run_experiment(spec, jobs=1, cache=cache)

    outcome = benchmark.pedantic(run, rounds=3, iterations=1)
    assert outcome.computed == 4
    benchmark.extra_info["serial_s"] = outcome.serial_s


def test_warm_sweep(benchmark, tmp_path):
    """The same sweep replayed entirely from the on-disk cache."""
    spec = _spec()
    cache = ResultCache(tmp_path / "warm")
    run_experiment(spec, jobs=1, cache=cache)

    outcome = benchmark(run_experiment, spec, jobs=1, cache=cache)
    assert outcome.cache_hits == 4 and outcome.computed == 0
    benchmark.extra_info["hit_rate"] = outcome.hit_rate
