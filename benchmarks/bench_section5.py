"""Benchmarks for the Section 5 studies: layout compaction (Cord,
§5.4) and CISC code density (§5.2)."""

from repro.experiments import ablations
from repro.netbsd import run_cord_experiment


def test_cord_compaction(benchmark):
    """§5.4: measure dilution and verify by compacting the real trace."""
    result = benchmark.pedantic(run_cord_experiment, rounds=1, iterations=1)
    benchmark.extra_info["dilution_pct"] = round(result.before.dilution * 100, 1)
    benchmark.extra_info["paper_dilution_pct"] = 25
    savings = 1 - result.lines_measured_after / result.before.lines_before
    benchmark.extra_info["line_savings_pct"] = round(savings * 100, 1)
    assert 0.18 < result.before.dilution < 0.35
    assert 0.18 < savings < 0.35


def test_cisc_density(benchmark):
    """§5.2: i386-density code shrinks the LDLP advantage."""
    sweep = benchmark.pedantic(
        lambda: ablations.cisc_density_sweep(
            densities=(1.0, 0.45), rate=5000, duration=0.1
        ),
        rounds=1,
        iterations=1,
    )
    advantages = [
        conv.cycles_per_message / ldlp.cycles_per_message
        for conv, ldlp in zip(sweep.conventional, sweep.ldlp)
    ]
    benchmark.extra_info["alpha_advantage"] = round(advantages[0], 2)
    benchmark.extra_info["i386_advantage"] = round(advantages[1], 2)
    assert advantages[0] > advantages[1]
