"""Benchmark F1 — regenerate Figure 1 (phase totals + active-code map)."""

from repro.experiments import figure1
from repro.netbsd.layers import PAPER_PHASES


def test_figure1_reproduction(benchmark):
    result = benchmark(figure1.run, seed=0)
    assert result.within_tolerance(rel=0.25)
    for paper in PAPER_PHASES:
        got = result.measured(paper.label)
        key = paper.label.replace(" ", "_")
        benchmark.extra_info[f"{key}_code_bytes"] = got.code.bytes
        benchmark.extra_info[f"{key}_code_bytes_paper"] = paper.code_bytes
        benchmark.extra_info[f"{key}_code_refs"] = got.code.refs
        benchmark.extra_info[f"{key}_code_refs_paper"] = paper.code_refs
        benchmark.extra_info[f"{key}_read_bytes"] = got.read.bytes
        benchmark.extra_info[f"{key}_read_bytes_paper"] = paper.read_bytes
    # The map must show the big players.
    code_map = result.code_map()
    assert "tcp_input" in code_map and "soreceive" in code_map
