"""Benchmarks for the extensions: grouped-LDLP scheduling and the
introduction's cross-network setup-time arithmetic."""

from repro.experiments import motivation
from repro.sim import SimulationConfig, run_simulation
from repro.traffic import PoissonSource


def test_grouped_scheduler_ranking(benchmark):
    """Grouped LDLP sits between conventional and per-layer LDLP when
    layers are small enough to share cache-sized groups."""

    def sweep():
        source = PoissonSource(6000, rng=6)
        arrivals = source.arrival_list(0.1)
        costs = {}
        for name in ("conventional", "grouped", "ldlp"):
            config = SimulationConfig(
                scheduler=name, duration=0.1, layer_code_bytes=2048
            )
            costs[name] = run_simulation(
                source, config, seed=6, arrivals=arrivals
            ).cycles_per_message
        return costs

    costs = benchmark.pedantic(sweep, rounds=1, iterations=1)
    benchmark.extra_info["cycles_per_message"] = {
        name: round(value) for name, value in costs.items()
    }
    assert costs["ldlp"] <= costs["grouped"] * 1.05
    assert costs["grouped"] < costs["conventional"]


def test_motivation_setup_chain(benchmark):
    """The intro's arithmetic: 20 switches at 10k pairs/s per switch."""
    result = benchmark.pedantic(
        lambda: motivation.run(duration=0.2), rounds=1, iterations=1
    )
    conv_20 = result.end_to_end(result.conventional_per_hop, 20)
    ldlp_20 = result.end_to_end(result.ldlp_per_hop, 20)
    benchmark.extra_info["conventional_20hop_ms"] = round(conv_20 * 1e3)
    benchmark.extra_info["ldlp_20hop_ms"] = round(ldlp_20 * 1e3)
    benchmark.extra_info["paper_quote"] = (
        "could add a large fraction of a second to the connection setup "
        "time across a large network"
    )
    assert conv_20 > 0.3
    assert ldlp_20 < 0.1
