"""Benchmark F6 — regenerate Figure 6 (latency vs arrival rate)."""

from repro.experiments import figure6

RATES = (1000, 4000, 7000, 9000, 10000)


def run_sweep():
    return figure6.run(rates=RATES, seeds=(0, 1), duration=0.1)


def test_figure6_reproduction(benchmark):
    result = benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    assert result.shape_holds()
    benchmark.extra_info["rates"] = list(RATES)
    benchmark.extra_info["conv_mean_latency_us"] = [
        round(r.latency.mean * 1e6) for r in result.conventional
    ]
    benchmark.extra_info["ldlp_mean_latency_us"] = [
        round(r.latency.mean * 1e6) for r in result.ldlp
    ]
    benchmark.extra_info["conv_drops"] = [r.dropped for r in result.conventional]
    benchmark.extra_info["ldlp_drops"] = [r.dropped for r in result.ldlp]
    benchmark.extra_info["paper_shape"] = (
        "equal at low load; conventional saturates near the 500-packet "
        "bound (~100 ms, drops) by ~7k/s; LDLP sustains ~10k/s"
    )
