#!/usr/bin/env python3
"""LDLP for a small-transfer web server (the paper's closing remark).

"LDLP may improve performance for Internet WWW servers, where the data
transfer unit is 512 bytes or less in most circumstances."

This example runs the *byte-level* stack for real: many short TCP
connections each deliver a small HTTP-ish request to the server socket,
with the full path — Ethernet framing, IP header checksum, TCP
checksum + PCB state machine + ACK generation, socket-buffer append —
executing on every frame, while the machine binding charges cache costs
for the Table-1-derived layer footprints.  Conventional and LDLP
schedulers process identical frame sequences.

Run:  python examples/web_server.py
"""

import numpy as np

from repro.core import ConventionalScheduler, LDLPScheduler, MachineBinding, Message
from repro.protocols import TcpSender, build_tcp_receive_stack
from repro.sim import drive
from repro.units import format_duration

REQUEST = (
    b"GET /index.html HTTP/1.0\r\n"
    b"Host: www.example.com\r\n"
    b"User-Agent: repro/1.0\r\n\r\n"
)


def run(scheduler_cls, rate: float, duration: float = 0.25, seed: int = 3):
    stack = build_tcp_receive_stack("10.0.0.1", 80)
    # A real server drains its socket buffer; raise the high-water mark
    # so buffer flow control doesn't cap the measured run instead.
    stack.socket.receive_buffer.hiwat = 16 * 1024 * 1024
    binding = MachineBinding(rng=seed)
    scheduler = scheduler_cls(stack.layers, binding)
    rng = np.random.default_rng(seed)

    # Phase 1 (setup, not measured): establish N persistent connections.
    senders = []
    for index in range(32):
        sender = TcpSender(
            src=f"10.0.{index // 200}.{index % 200 + 2}",
            dst="10.0.0.1",
            src_port=20_000 + index,
            dst_port=80,
        )
        scheduler.run_to_completion([Message(payload=sender.syn())])
        synack = stack.transmitted[-1]
        scheduler.run_to_completion(
            [Message(payload=sender.complete_handshake(synack))]
        )
        senders.append(sender)
    binding.cpu.reset()

    # Phase 2 (measured): requests arrive Poisson across connections.
    arrivals = []
    time = 0.0
    while True:
        time += rng.exponential(1.0 / rate)
        if time >= duration:
            break
        sender = senders[int(rng.integers(0, len(senders)))]
        frame = sender.data(REQUEST)
        arrivals.append((time, Message(payload=frame)))
    outcome = drive(scheduler, arrivals)
    return stack, scheduler, outcome, len(arrivals)


def main() -> None:
    print(__doc__)
    header = (f"{'req/sec':>8} {'sched':>13} {'mean lat':>10} {'p99 lat':>10}"
              f" {'delivered':>10} {'acks':>6} {'miss/msg':>9}")
    print(header)
    print("-" * len(header))
    for rate in (2000, 6000, 10000):
        for cls in (ConventionalScheduler, LDLPScheduler):
            stack, scheduler, outcome, offered = run(cls, rate)
            summary = outcome.latency.summary()
            cpu = scheduler.binding.cpu
            misses = (cpu.icache_misses + cpu.dcache_misses) / max(
                outcome.completed, 1
            )
            name = "conventional" if cls is ConventionalScheduler else "ldlp"
            acks = len(stack.transmitted) - 64  # minus handshake traffic
            print(
                f"{rate:>8} {name:>13} {format_duration(summary.mean):>10} "
                f"{format_duration(summary.p99):>10} "
                f"{stack.stats.delivered:>10} {acks:>6} {misses:>9.0f}"
            )
    print(
        "\nEvery request was checksummed, demultiplexed through the PCB\n"
        "cache, appended to the server's socket buffer, and ACKed (every\n"
        "second segment per connection).  The delivered byte streams are\n"
        "identical under both schedulers; only the cache behaviour differs."
    )


if __name__ == "__main__":
    main()
