#!/usr/bin/env python3
"""Gossip swarm: sessions and collections as wire-level LDLP.

Simulates a Dispersy-style gossip community — thousands of peers with
Zipf-skewed popularity exchanging synchronize/acknowledgment control
traffic and batched data collections — through the paper's modeled
stack.  Two protocol knobs mirror the paper's batching argument at the
wire: *session framing* replaces the 22 bytes of version and community
identity in every header with a 4-byte session id, and
*dispersy-collection* packs many small messages into one datagram so
the per-datagram overhead is paid once per batch.

Run:  python examples/gossip_swarm.py
"""

from repro.flows import FlowCacheSpec
from repro.gossip import GossipFleetSource, GossipFleetSpec, run_gossip_simulation
from repro.sim import SimulationConfig


def run(
    framing: str,
    collection_size: int,
    scheduler: str = "ldlp",
    rate: float = 9000.0,
    duration: float = 0.05,
    num_peers: int = 5000,
    seed: int = 7,
):
    """Drive one fleet configuration and return its GossipRunResult."""
    spec = GossipFleetSpec(
        num_peers=num_peers,
        peer_skew=1.1,
        framing=framing,
        collection_size=collection_size,
        rate=rate,
        seed=seed,
    )
    config = SimulationConfig(scheduler=scheduler, duration=duration)
    return run_gossip_simulation(
        GossipFleetSource(spec), config, FlowCacheSpec(entries=16), seed=seed
    )


def describe(scheduler: str) -> None:
    """Print the framing x collection grid for one scheduler."""
    print(f"--- scheduler {scheduler} " + "-" * 40)
    print(
        f"{'framing':>12} {'k':>3} {'hdrB/msg':>9} {'wireB/msg':>10}"
        f" {'miss/msg':>9} {'untagged':>9} {'drops':>6}"
    )
    for framing in ("sessionless", "session"):
        for collection_size in (1, 4, 16):
            result = run(framing, collection_size, scheduler=scheduler)
            print(
                f"{framing:>12} {collection_size:>3}"
                f" {result.header_bytes_per_message:>9.1f}"
                f" {result.wire_bytes_per_message:>10.1f}"
                f" {result.lookup_misses_per_message:>9.3f}"
                f" {result.untagged:>9}"
                f" {result.run.dropped:>6}"
            )
    print()


def main() -> None:
    print(__doc__)
    describe("conventional")
    describe("ldlp")
    print(
        "Reading the grid: sessions cut header bytes per message at every\n"
        "collection size, and growing the collection amortizes the fixed\n"
        "28-byte datagram overhead across its members — the same curve\n"
        "shape as LDLP's instruction-miss amortization, applied to wire\n"
        "bytes.  The lookup misses come from the Zipf-skewed peer\n"
        "destinations hitting the 16-entry flow cache; untagged counts\n"
        "the walker control messages, which resolve no destination and\n"
        "pay a full table walk each."
    )


if __name__ == "__main__":
    main()
