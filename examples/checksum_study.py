#!/usr/bin/env python3
"""Checksum engineering for small messages (Section 5.1 / Figure 8).

Two parts:

1. *Correctness*: both checksum implementations (the simple loop and
   the 4.4BSD-style unrolled routine) compute the real RFC 1071
   checksum, including over fragmented mbuf chains with odd segment
   boundaries — shown by checksumming live TCP segments.
2. *Performance*: the Figure 8 experiment — with a cold instruction
   cache the small routine wins for messages up to ~900 bytes even
   though it does more work per byte.

Run:  python examples/checksum_study.py
"""

from repro.buffers import MbufChain
from repro.experiments import figure8
from repro.protocols import (
    checksum_chain,
    internet_checksum,
    internet_checksum_unrolled,
)


def correctness_demo() -> None:
    message = bytes(range(256)) * 3 + b"odd"
    flat_simple = internet_checksum(message)
    flat_unrolled = internet_checksum_unrolled(message)
    print(f"simple   checksum: {flat_simple:#06x}")
    print(f"unrolled checksum: {flat_unrolled:#06x}")
    assert flat_simple == flat_unrolled

    # The hard case that bloats real checksum code: an mbuf chain whose
    # segments end on odd byte boundaries.
    for segment_size in (3, 7, 16, 129):
        chain = MbufChain.from_bytes(message, segment_size=segment_size)
        chained = checksum_chain(chain, simple=False)
        assert chained == flat_simple, segment_size
        print(f"mbuf chain (segments of {segment_size:>3}): {chained:#06x}  OK")


def main() -> None:
    print(__doc__)
    correctness_demo()
    print()
    result = figure8.run()
    print(result.render())
    print()
    crossover = result.cold_crossover()
    print(
        f"With a cold cache the simple routine wins below {crossover:.0f}\n"
        f"bytes: its 288 bytes of code cost 9 cache-line fills versus 31\n"
        f"for the elaborate routine. 'Any checksum routine which touches\n"
        f"more than a few hundred bytes will be slow for small messages.'"
    )


if __name__ == "__main__":
    main()
