#!/usr/bin/env python3
"""A DNS server on the byte-level stack — the paper's first-named
small-message protocol.

Real RFC 1035 queries (with name compression in the responses) arrive as
Ethernet/IP/UDP frames, flow through the receive stack under either
scheduler, and are answered by a tiny authoritative zone.  DNS messages
are ~30-60 bytes against ~16 KB of stack + server code: the textbook
small-message regime of Figure 4.

Run:  python examples/dns_server.py
"""

import numpy as np

from repro.core import (
    ConventionalScheduler,
    Layer,
    LayerFootprint,
    LDLPScheduler,
    MachineBinding,
    Message,
)
from repro.core.batching import BatchPolicy
from repro.protocols import DnsMessage, DnsZone, udp_frame
from repro.protocols.stack import build_udp_receive_stack
from repro.sim import drive
from repro.units import format_duration

ZONE_NAMES = [f"host-{i}.campus.example" for i in range(64)]


class DnsServerLayer(Layer):
    """The application layer: parse the query, answer from the zone.

    Replaces the socket layer on top of the UDP stack, the way a
    kernel-resident name server would sit on ``udp_input``.
    """

    def __init__(self, zone: DnsZone) -> None:
        # named's hot path is several KB of parsing + lookup code.
        super().__init__(
            "dns-server",
            LayerFootprint(code_bytes=6656, data_bytes=2048,
                           base_cycles=600.0, per_byte_cycles=0.5),
        )
        self.zone = zone
        self.responses: list[bytes] = []
        self.bad_queries = 0

    def deliver(self, message: Message) -> list[Message]:
        try:
            query = DnsMessage.parse(bytes(message.payload))
        except Exception:
            self.bad_queries += 1
            return []
        self.responses.append(self.zone.answer(query).serialize())
        return []


def build_server():
    zone = DnsZone()
    for index, name in enumerate(ZONE_NAMES):
        zone.add_a(name, f"10.1.{index // 250}.{index % 250 + 1}")
    layers, _sockets, stats = build_udp_receive_stack("10.0.0.53", ports=(53,))
    server = DnsServerLayer(zone)
    layers[-1] = server  # replace the socket layer with the application
    return layers, server, stats


def build_queries(rate: float, duration: float, seed: int):
    rng = np.random.default_rng(seed)
    arrivals = []
    time = 0.0
    ident = 1
    while True:
        time += rng.exponential(1.0 / rate)
        if time >= duration:
            break
        name = ZONE_NAMES[int(rng.integers(0, len(ZONE_NAMES)))]
        if rng.random() < 0.1:
            name = "missing.campus.example"  # some NXDOMAIN traffic
        query = DnsMessage.query(ident & 0xFFFF, name).serialize()
        frame = udp_frame("10.0.9.9", "10.0.0.53", 30000 + ident % 1000, 53, query)
        arrivals.append((time, Message(payload=frame)))
        ident += 1
    return arrivals


def run(scheduler_cls, rate: float, duration: float = 0.25, seed: int = 21):
    layers, server, stats = build_server()
    binding = MachineBinding(rng=seed)
    kwargs = {}
    if scheduler_cls is LDLPScheduler:
        kwargs["batch_policy"] = BatchPolicy.from_cache(
            binding.spec.dcache.size, typical_message_bytes=128,
            layer_data_reserve=2048,
        )
    scheduler = scheduler_cls(layers, binding, **kwargs)
    outcome = drive(scheduler, build_queries(rate, duration, seed))
    return server, scheduler, outcome


def main() -> None:
    print(__doc__)
    header = (f"{'queries/s':>10} {'sched':>13} {'mean lat':>10} {'p99 lat':>10}"
              f" {'answered':>9} {'nxdomain':>9} {'miss/q':>7}")
    print(header)
    print("-" * len(header))
    for rate in (2000, 6000, 10000, 14000):
        for cls in (ConventionalScheduler, LDLPScheduler):
            server, scheduler, outcome = run(cls, rate)
            summary = outcome.latency.summary()
            cpu = scheduler.binding.cpu
            misses = (cpu.icache_misses + cpu.dcache_misses) / max(
                len(server.responses), 1
            )
            name = "conventional" if cls is ConventionalScheduler else "ldlp"
            print(
                f"{rate:>10} {name:>13} {format_duration(summary.mean):>10} "
                f"{format_duration(summary.p99):>10} "
                f"{len(server.responses):>9} {server.zone.nxdomains:>9} "
                f"{misses:>7.0f}"
            )
    print(
        "\nEvery answered query was a real wire-format DNS message: parsed\n"
        "with compression-aware name decoding, matched against the zone\n"
        "(CNAME chase, NXDOMAIN), and serialized with compression.  LDLP\n"
        "keeps the parse/lookup/respond code cache-resident across bursts."
    )


if __name__ == "__main__":
    main()
