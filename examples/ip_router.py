#!/usr/bin/env python3
"""An IP router's forwarding path under load.

The paper's opening motivation: "If ATM switches are deployed like IP
routers, then a cross-country connection might pass through 10 to 20
switches" — per-hop, per-message processing time is the bottleneck.
This example runs the forwarding fast path (validate → longest-prefix
match → TTL decrement with RFC 1624 incremental checksum → link
rewrite) on small packets, under both schedulers, and prints a decoded
sample of what leaves the router.

Run:  python examples/ip_router.py
"""

import numpy as np

from repro.core import ConventionalScheduler, LDLPScheduler, MachineBinding, Message
from repro.core.batching import BatchPolicy
from repro.protocols import build_forwarding_path, decode_frames
from repro.protocols.craft import ip_frame
from repro.protocols.ip import PROTO_UDP
from repro.protocols.udp import build_datagram as build_udp_datagram
from repro.sim import drive
from repro.units import format_duration

ROUTES = [
    ("10.1.0.0/16", "02:00:00:00:01:01"),
    ("10.2.0.0/16", "02:00:00:00:02:01"),
    ("192.168.0.0/16", "02:00:00:00:03:01"),
    ("0.0.0.0/0", "02:00:00:00:ff:01"),
]

DESTINATIONS = ["10.1.4.4", "10.2.9.9", "192.168.77.1", "172.16.0.5"]


def build_traffic(rate: float, duration: float, seed: int):
    rng = np.random.default_rng(seed)
    arrivals = []
    time = 0.0
    while True:
        time += rng.exponential(1.0 / rate)
        if time >= duration:
            break
        dst = DESTINATIONS[int(rng.integers(0, len(DESTINATIONS)))]
        size = int(rng.choice([32, 64, 128, 256, 552]))
        datagram = build_udp_datagram(5000, 5001, b"\x00" * size)
        frame = ip_frame(
            "10.9.0.9", dst, PROTO_UDP, datagram,
            ttl=int(rng.integers(4, 64)),
        )
        arrivals.append((time, Message(payload=frame)))
    return arrivals


def run(scheduler_cls, rate: float, duration: float = 0.25, seed: int = 31):
    path = build_forwarding_path(routes=ROUTES)
    binding = MachineBinding(rng=seed)
    kwargs = {}
    if scheduler_cls is LDLPScheduler:
        kwargs["batch_policy"] = BatchPolicy.from_cache(
            binding.spec.dcache.size, typical_message_bytes=256,
            layer_data_reserve=1280,
        )
    scheduler = scheduler_cls(path.layers, binding, **kwargs)
    outcome = drive(scheduler, build_traffic(rate, duration, seed))
    return path, scheduler, outcome


def main() -> None:
    print(__doc__)
    header = (f"{'pkts/sec':>9} {'sched':>13} {'mean lat':>10} {'p99 lat':>10}"
              f" {'forwarded':>10} {'drops':>6} {'miss/pkt':>9}")
    print(header)
    print("-" * len(header))
    for rate in (4000, 10000, 16000):
        for cls in (ConventionalScheduler, LDLPScheduler):
            path, scheduler, outcome = run(cls, rate)
            summary = outcome.latency.summary()
            cpu = scheduler.binding.cpu
            misses = (cpu.icache_misses + cpu.dcache_misses) / max(
                path.stats.forwarded, 1
            )
            name = "conventional" if cls is ConventionalScheduler else "ldlp"
            print(
                f"{rate:>9} {name:>13} {format_duration(summary.mean):>10} "
                f"{format_duration(summary.p99):>10} "
                f"{path.stats.forwarded:>10} {scheduler.drops:>6} "
                f"{misses:>9.0f}"
            )
    path, _scheduler, _outcome = run(LDLPScheduler, 2000, duration=0.01)
    print("\nSample of forwarded frames (note decremented TTLs and the")
    print("per-route next-hop MACs; every header re-verifies end-to-end):\n")
    print(decode_frames([frame for frame, _ in path.transmitted[:6]]))
    print(
        "\nThe forwarding path's ~11 KB of code across three layers is\n"
        "another small-message protocol: LDLP batches bursts and keeps\n"
        "the longest-prefix-match and rewrite code cache-resident."
    )


if __name__ == "__main__":
    main()
