#!/usr/bin/env python3
"""The paper's motivating workload: an ATM-style signalling switch.

"Our performance goal is to support 10000 pairs of setup/teardown
requests per second with processing latency of 100 microseconds for
setup requests, using just a commodity workstation processor."

This example builds the mini-Q.93B switch (SAAL framing -> message
parsing -> call control), binds it to the simulated machine, and offers
setup/teardown pairs at increasing rates under both schedulers.  Every
message is a real wire-format signalling message that is CRC-checked,
parsed, and run through the call state machine.

Run:  python examples/signalling_switch.py
"""

import numpy as np

from repro.core import ConventionalScheduler, LDLPScheduler, MachineBinding, Message
from repro.core.batching import BatchPolicy
from repro.sim import drive
from repro.signalling import build_switch, release, saal_frame, setup
from repro.units import format_duration


def build_workload(pair_rate: float, duration: float, seed: int):
    """Poisson-arriving setup/teardown pairs as framed wire messages."""
    rng = np.random.default_rng(seed)
    events = []
    time = 0.0
    call_ref = 1
    while True:
        time += rng.exponential(1.0 / pair_rate)
        if time >= duration:
            break
        events.append((time, setup(call_ref, f"host-{call_ref % 97}")))
        # Teardown follows ~200us later (a short signalling transaction).
        events.append((time + 200e-6, release(call_ref)))
        call_ref += 1
    events.sort(key=lambda pair: pair[0])
    return [
        (time, Message(payload=saal_frame(message.serialize(), seq)))
        for seq, (time, message) in enumerate(events)
    ]


def run(scheduler_cls, pair_rate: float, duration: float = 0.3, seed: int = 11):
    switch = build_switch()
    binding = MachineBinding(rng=seed, buffer_size=512)
    kwargs = {}
    if scheduler_cls is LDLPScheduler:
        # Signalling messages are ~50 bytes; many fit the data cache.
        kwargs["batch_policy"] = BatchPolicy.from_cache(
            binding.spec.dcache.size, typical_message_bytes=128,
            layer_data_reserve=1024,
        )
    scheduler = scheduler_cls(switch.layers, binding, **kwargs)
    outcome = drive(scheduler, build_workload(pair_rate, duration, seed))
    return switch, scheduler, outcome


def main() -> None:
    print(__doc__)
    header = (f"{'pairs/sec':>10} {'sched':>13} {'mean lat':>10} {'p99 lat':>10}"
              f" {'drops':>6} {'setups':>7} {'cache miss/msg':>15}")
    print(header)
    print("-" * len(header))
    for pair_rate in (1000, 4000, 8000, 10000, 12000):
        for cls in (ConventionalScheduler, LDLPScheduler):
            switch, scheduler, outcome = run(cls, pair_rate)
            summary = outcome.latency.summary()
            binding = scheduler.binding
            misses = (
                binding.cpu.icache_misses + binding.cpu.dcache_misses
            ) / max(outcome.completed, 1)
            name = "conventional" if cls is ConventionalScheduler else "ldlp"
            print(
                f"{pair_rate:>10} {name:>13} "
                f"{format_duration(summary.mean):>10} "
                f"{format_duration(summary.p99):>10} "
                f"{scheduler.drops:>6} {switch.stats.setups:>7} "
                f"{misses:>15.0f}"
            )
    print(
        "\nThe switch's three layers total ~21 KB of code -- a textbook\n"
        "small-message protocol (Figure 4).  LDLP reaches the paper's\n"
        "10000 pairs/sec goal on the simulated 100 MHz machine; the\n"
        "conventional schedule saturates much earlier."
    )


if __name__ == "__main__":
    main()
