#!/usr/bin/env python3
"""Working-set study of the TCP receive & acknowledge path (Section 2).

Rebuilds the paper's measurement half: generate the three-phase memory
trace of the modelled NetBSD receive path, then run the full analysis
pipeline — per-layer working sets (Table 1), line-size sensitivity
(Table 3), per-phase totals and the active-code map (Figure 1), and the
procedure call graph the tracing apparatus produced.

Run:  python examples/tcp_receive_path.py
"""

from repro.cache.workingset import Category
from repro.experiments import figure1, table1, table3
from repro.netbsd import ReceivePathModel
from repro.trace.callgraph import build_call_graph


def main() -> None:
    print(__doc__)

    print(table1.run(seed=0).render())
    print()
    print(table3.run(seed=0).render())
    print()

    result = figure1.run(seed=0)
    print(result.phase_table())
    print()
    print(result.code_map())
    print()

    # The call graph of the device-interrupt phase, as the paper's
    # tracing tools could print it.
    model = ReceivePathModel(seed=0)
    trace = model.build_trace()
    graph = build_call_graph(trace)
    print("Call tree (roots are trace entry points):")
    print(graph.format())
    print()

    # The paper's headline arithmetic: the working set vs the cache.
    report = model.analyze(trace).report(32)
    total = report.grand_total_bytes()
    code = report.total(Category.CODE).bytes
    print(
        f"Working set: {total} bytes total ({code} code) against an 8 KB\n"
        f"primary cache — {total / 8192:.1f}x the cache.  The 552-byte\n"
        f"message is fetched twice and stored twice (~2.2 KB of traffic)\n"
        f"while ~{(code + report.total(Category.READONLY).bytes) // 1024} KB "
        f"of code and read-only data stream through the CPU:\n"
        f"message contents are not the bottleneck for small messages."
    )


if __name__ == "__main__":
    main()
