#!/usr/bin/env python3
"""Quickstart: LDLP vs conventional layer scheduling in five minutes.

Builds the paper's synthetic five-layer protocol stack (6 KB of code and
256 bytes of data per layer) on the simulated 100 MHz machine with 8 KB
direct-mapped caches, drives it with 552-byte Poisson messages, and
compares the two scheduling disciplines at a low and a high arrival
rate.

Run:  python examples/quickstart.py
"""

from repro.sim import compare_schedulers
from repro.units import format_duration


def describe(rate: float) -> None:
    comparison = compare_schedulers(
        arrival_rate=rate, duration=0.25, seed=7,
        schedulers=("conventional", "ilp", "ldlp"),
    )
    print(f"--- arrival rate {rate:.0f} msgs/sec " + "-" * 30)
    for name in ("conventional", "ilp", "ldlp"):
        result = comparison[name]
        print(
            f"{name:>12}: latency {format_duration(result.latency.mean):>9}"
            f"  misses/msg {result.misses.total:7.0f}"
            f"  (I={result.misses.instruction:.0f} D={result.misses.data:.0f})"
            f"  cycles/msg {result.cycles_per_message:7.0f}"
            f"  drops {result.dropped}"
        )
    print(f"{'':>12}  LDLP speedup over conventional: "
          f"{comparison.speedup():.2f}x\n")


def main() -> None:
    print(__doc__)
    # Light load: every scheduler processes messages singly; LDLP's only
    # difference is the ~40-instruction queue hop per layer.
    describe(1500)
    # Heavy load: the conventional stack thrashes the instruction cache
    # on every message; LDLP batches and keeps each layer cache-resident
    # across the batch.
    describe(9000)
    print(
        "Under heavy load the conventional stack spends most of its time\n"
        "refetching layer code (~960 instruction misses x 20 cycles per\n"
        "message); LDLP amortizes those fetches over a batch that fits the\n"
        "data cache, which is the paper's core result (Figures 5 and 6)."
    )


if __name__ == "__main__":
    main()
