"""Tests for repro.buffers (mbuf chains and the pool)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.buffers import CLUSTER_SIZE, MLEN, Mbuf, MbufChain, MbufError, MbufPool


class TestMbuf:
    def test_empty_has_no_data(self):
        mbuf = Mbuf.empty()
        assert mbuf.length == 0
        assert bytes(mbuf.data()) == b""

    def test_from_bytes(self):
        mbuf = Mbuf.from_bytes(b"hello")
        assert bytes(mbuf.data()) == b"hello"

    def test_cluster_allocation_for_large_data(self):
        mbuf = Mbuf.from_bytes(b"x" * 1000)
        assert mbuf.cluster
        assert mbuf.capacity == CLUSTER_SIZE

    def test_small_data_uses_plain_mbuf(self):
        mbuf = Mbuf.from_bytes(b"x" * 50)
        assert not mbuf.cluster
        assert mbuf.capacity == MLEN

    def test_oversized_rejected(self):
        with pytest.raises(MbufError):
            Mbuf.from_bytes(b"x" * (CLUSTER_SIZE + 1))

    def test_prepend_uses_leading_space(self):
        mbuf = Mbuf.from_bytes(b"payload", leading_space=16)
        mbuf.prepend(b"HDR:")
        assert bytes(mbuf.data()) == b"HDR:payload"

    def test_prepend_without_space_fails(self):
        mbuf = Mbuf.from_bytes(b"payload", leading_space=0)
        with pytest.raises(MbufError):
            mbuf.prepend(b"HDR:")

    def test_strip(self):
        mbuf = Mbuf.from_bytes(b"headerdata")
        assert mbuf.strip(6) == b"header"
        assert bytes(mbuf.data()) == b"data"

    def test_strip_too_much_fails(self):
        mbuf = Mbuf.from_bytes(b"abc")
        with pytest.raises(MbufError):
            mbuf.strip(4)

    def test_append(self):
        mbuf = Mbuf.from_bytes(b"abc")
        mbuf.append(b"def")
        assert bytes(mbuf.data()) == b"abcdef"

    def test_trim_tail(self):
        mbuf = Mbuf.from_bytes(b"abcdef")
        mbuf.trim_tail(2)
        assert bytes(mbuf.data()) == b"abcd"

    def test_bad_leading_space(self):
        with pytest.raises(MbufError):
            Mbuf.empty(leading_space=MLEN + 1)


class TestMbufChain:
    def test_from_bytes_roundtrip(self):
        chain = MbufChain.from_bytes(b"hello world")
        assert bytes(chain) == b"hello world"
        assert len(chain) == 11

    def test_segmented_construction(self):
        chain = MbufChain.from_bytes(b"0123456789", segment_size=3)
        assert chain.segment_count == 4
        assert bytes(chain) == b"0123456789"

    def test_empty_chain(self):
        chain = MbufChain.from_bytes(b"")
        assert len(chain) == 0
        assert bytes(chain) == b""

    def test_bad_segment_size(self):
        with pytest.raises(MbufError):
            MbufChain.from_bytes(b"abc", segment_size=0)

    def test_peek_across_segments(self):
        chain = MbufChain.from_bytes(b"0123456789", segment_size=3)
        assert chain.peek(4, offset=2) == b"2345"

    def test_peek_beyond_end_fails(self):
        chain = MbufChain.from_bytes(b"abc")
        with pytest.raises(MbufError):
            chain.peek(4)

    def test_prepend_and_strip_header(self):
        chain = MbufChain.from_bytes(b"payload", leading_space=16)
        chain.prepend(b"HDR!")
        assert bytes(chain) == b"HDR!payload"
        assert chain.strip(4) == b"HDR!"
        assert bytes(chain) == b"payload"

    def test_prepend_without_space_adds_mbuf(self):
        chain = MbufChain.from_bytes(b"payload", leading_space=0)
        before = chain.segment_count
        chain.prepend(b"H" * 64)
        assert chain.segment_count == before + 1
        assert bytes(chain).startswith(b"H" * 64)

    def test_strip_across_segments(self):
        chain = MbufChain.from_bytes(b"0123456789", segment_size=3)
        assert chain.strip(5) == b"01234"
        assert bytes(chain) == b"56789"

    def test_pullup_noop_when_contiguous(self):
        chain = MbufChain.from_bytes(b"0123456789")
        chain.pullup(5)
        assert chain.segment_count == 1

    def test_pullup_gathers_segments(self):
        chain = MbufChain.from_bytes(b"0123456789", segment_size=2)
        chain.pullup(5)
        assert chain.mbufs[0].length >= 5
        assert bytes(chain) == b"0123456789"

    def test_append_chain_moves_ownership(self):
        a = MbufChain.from_bytes(b"abc")
        b = MbufChain.from_bytes(b"def")
        a.append_chain(b)
        assert bytes(a) == b"abcdef"
        assert b.segment_count == 0

    def test_adj_front(self):
        chain = MbufChain.from_bytes(b"0123456789")
        chain.adj(3)
        assert bytes(chain) == b"3456789"

    def test_adj_back(self):
        chain = MbufChain.from_bytes(b"0123456789", segment_size=4)
        chain.adj(-3)
        assert bytes(chain) == b"0123456"

    def test_adj_too_much_fails(self):
        chain = MbufChain.from_bytes(b"ab")
        with pytest.raises(MbufError):
            chain.adj(-5)

    def test_split(self):
        chain = MbufChain.from_bytes(b"0123456789", segment_size=4)
        tail = chain.split(6)
        assert bytes(chain) == b"012345"
        assert bytes(tail) == b"6789"

    def test_split_on_boundary(self):
        chain = MbufChain.from_bytes(b"01234567", segment_size=4)
        tail = chain.split(4)
        assert bytes(chain) == b"0123"
        assert bytes(tail) == b"4567"

    def test_compact(self):
        chain = MbufChain.from_bytes(b"0123456789", segment_size=1)
        chain.compact()
        assert chain.segment_count == 1
        assert bytes(chain) == b"0123456789"

    @given(
        data=st.binary(min_size=0, max_size=400),
        segment=st.integers(1, 64),
        cut=st.integers(0, 400),
    )
    @settings(max_examples=60, deadline=None)
    def test_split_concat_is_identity(self, data, segment, cut):
        """Property: split then append reconstructs the original bytes."""
        chain = MbufChain.from_bytes(data, segment_size=segment)
        cut = min(cut, len(data))
        tail = chain.split(cut)
        chain.append_chain(tail)
        assert bytes(chain) == data

    @given(
        data=st.binary(min_size=1, max_size=300),
        segment=st.integers(1, 48),
        front=st.integers(0, 100),
        back=st.integers(0, 100),
    )
    @settings(max_examples=60, deadline=None)
    def test_adj_matches_slicing(self, data, segment, front, back):
        """Property: m_adj from both ends equals python slicing."""
        if front + back > len(data):
            return
        chain = MbufChain.from_bytes(data, segment_size=segment)
        chain.adj(front)
        chain.adj(-back)
        expected = data[front : len(data) - back]
        assert bytes(chain) == expected


class TestMbufPool:
    def test_alloc_free_cycle(self):
        pool = MbufPool(limit=4)
        mbuf = pool.alloc()
        assert pool.in_use == 1
        pool.free(mbuf)
        assert pool.in_use == 0

    def test_recycling(self):
        pool = MbufPool(limit=4)
        first = pool.alloc()
        pool.free(first)
        second = pool.alloc()
        assert second is first
        assert pool.stats.recycled == 1

    def test_recycle_resets_window(self):
        pool = MbufPool()
        mbuf = pool.alloc()
        mbuf.append(b"junk")
        pool.free(mbuf)
        again = pool.alloc(leading_space=8)
        assert again.length == 0
        assert again.offset == 8

    def test_exhaustion(self):
        pool = MbufPool(limit=2)
        pool.alloc()
        pool.alloc()
        with pytest.raises(MbufError):
            pool.alloc()

    def test_double_free_detected(self):
        pool = MbufPool()
        mbuf = pool.alloc()
        pool.free(mbuf)
        with pytest.raises(MbufError):
            pool.free(mbuf)

    def test_cluster_and_plain_not_mixed(self):
        pool = MbufPool()
        plain = pool.alloc(cluster=False)
        pool.free(plain)
        cluster = pool.alloc(cluster=True)
        assert cluster is not plain
        assert cluster.capacity == CLUSTER_SIZE

    def test_free_chain(self):
        pool = MbufPool()
        chain = MbufChain([pool.alloc(), pool.alloc()])
        pool.free_chain(chain)
        assert pool.in_use == 0
        assert chain.segment_count == 0

    def test_peak_tracking(self):
        pool = MbufPool()
        mbufs = [pool.alloc() for _ in range(3)]
        for mbuf in mbufs:
            pool.free(mbuf)
        assert pool.stats.peak_in_use == 3
