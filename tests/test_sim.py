"""Tests for repro.sim: events, engine, queues, stats, runner."""

import pytest

from repro.errors import ConfigurationError, SimulationError
from repro.sim import (
    BoundedQueue,
    EventQueue,
    LatencyRecorder,
    SimulationConfig,
    Simulator,
    build_paper_stack,
    compare_schedulers,
    merge_results,
    run_simulation,
)
from repro.sim.stats import MissesPerMessage, RunResult
from repro.traffic import DeterministicSource, PoissonSource


class TestEventQueue:
    def test_time_ordering(self):
        queue = EventQueue()
        seen = []
        queue.push(2.0, seen.append, "b")
        queue.push(1.0, seen.append, "a")
        queue.push(3.0, seen.append, "c")
        while len(queue):
            event = queue.pop()
            event.handler(event.payload)
        assert seen == ["a", "b", "c"]

    def test_tie_break_by_schedule_order(self):
        queue = EventQueue()
        queue.push(1.0, lambda p: None, "first")
        queue.push(1.0, lambda p: None, "second")
        assert queue.pop().payload == "first"

    def test_cancel(self):
        queue = EventQueue()
        event = queue.push(1.0, lambda p: None)
        queue.push(2.0, lambda p: None, "keep")
        EventQueue.cancel(event)
        assert len(queue) == 1
        assert queue.pop().payload == "keep"

    def test_pop_empty_raises(self):
        with pytest.raises(SimulationError):
            EventQueue().pop()

    def test_negative_time_rejected(self):
        with pytest.raises(SimulationError):
            EventQueue().push(-1.0, lambda p: None)


class TestSimulator:
    def test_run_until(self):
        sim = Simulator()
        fired = []
        sim.schedule(1.0, fired.append, 1)
        sim.schedule(5.0, fired.append, 5)
        sim.run(until=2.0)
        assert fired == [1]
        assert sim.now == 2.0

    def test_handlers_can_schedule(self):
        sim = Simulator()
        fired = []

        def chain(n):
            fired.append(n)
            if n < 3:
                sim.schedule(1.0, chain, n + 1)

        sim.schedule(0.0, chain, 0)
        sim.run()
        assert fired == [0, 1, 2, 3]
        assert sim.now == 3.0

    def test_schedule_in_past_rejected(self):
        sim = Simulator()
        sim.schedule(1.0, lambda p: None)
        sim.run()
        with pytest.raises(SimulationError):
            sim.schedule_at(0.5, lambda p: None)

    def test_step(self):
        sim = Simulator()
        sim.schedule(1.0, lambda p: None)
        assert sim.step() is True
        assert sim.step() is False


class TestBoundedQueue:
    def test_offer_and_take(self):
        queue = BoundedQueue(capacity=2)
        assert queue.offer(1)
        assert queue.offer(2)
        assert not queue.offer(3)
        assert queue.drops == 1
        assert queue.take() == 1

    def test_drain(self):
        queue = BoundedQueue(capacity=10)
        for index in range(5):
            queue.offer(index)
        assert queue.drain(3) == [0, 1, 2]
        assert queue.drain() == [3, 4]

    def test_peak_depth(self):
        queue = BoundedQueue(capacity=10)
        for index in range(4):
            queue.offer(index)
        queue.take()
        assert queue.peak_depth == 4

    def test_invalid_capacity(self):
        with pytest.raises(ConfigurationError):
            BoundedQueue(capacity=0)


class TestLatencyRecorder:
    def test_summary(self):
        recorder = LatencyRecorder()
        for value in (1.0, 2.0, 3.0, 4.0):
            recorder.record(value)
        summary = recorder.summary()
        assert summary.count == 4
        assert summary.mean == pytest.approx(2.5)
        assert summary.median == pytest.approx(2.5)
        assert summary.maximum == 4.0

    def test_empty_summary(self):
        summary = LatencyRecorder().summary()
        assert summary.count == 0
        assert summary.format() == "no completed messages"

    def test_negative_rejected(self):
        with pytest.raises(SimulationError):
            LatencyRecorder().record(-1.0)


class TestRunner:
    def test_config_validation(self):
        with pytest.raises(ConfigurationError):
            SimulationConfig(scheduler="bogus")
        with pytest.raises(ConfigurationError):
            SimulationConfig(duration=0)

    def test_paper_stack_shape(self):
        layers = build_paper_stack()
        assert len(layers) == 5
        assert all(layer.footprint.code_bytes == 6144 for layer in layers)
        # 1652 cycles for the paper's 552-byte message.
        assert layers[0].footprint.base_cycles + 0.5 * 552 == pytest.approx(1652)

    def test_all_messages_accounted(self):
        config = SimulationConfig(scheduler="ldlp", duration=0.05)
        result = run_simulation(PoissonSource(2000, rng=1), config, seed=1)
        assert result.completed + result.dropped == result.offered
        assert result.offered > 0

    def test_deterministic_with_seed(self):
        config = SimulationConfig(scheduler="ldlp", duration=0.05)
        a = run_simulation(PoissonSource(3000, rng=7), config, seed=7)
        b = run_simulation(PoissonSource(3000, rng=7), config, seed=7)
        assert a.latency.mean == b.latency.mean
        assert a.misses == b.misses

    def test_low_load_no_batching(self):
        config = SimulationConfig(scheduler="ldlp", duration=0.05)
        result = run_simulation(DeterministicSource(100), config, seed=0)
        assert result.mean_batch_size == pytest.approx(1.0)

    def test_overload_drops(self):
        config = SimulationConfig(scheduler="conventional", duration=0.2)
        result = run_simulation(PoissonSource(9000, rng=2), config, seed=2)
        assert result.dropped > 0
        assert result.drop_fraction > 0

    def test_ldlp_beats_conventional_at_high_rate(self):
        comparison = compare_schedulers(
            arrival_rate=8000, duration=0.1, seed=3
        )
        assert comparison.speedup() > 1.5
        ldlp = comparison["ldlp"]
        conv = comparison["conventional"]
        assert ldlp.latency.mean < conv.latency.mean
        assert ldlp.misses.total < conv.misses.total

    def test_low_rate_latencies_comparable(self):
        comparison = compare_schedulers(arrival_rate=500, duration=0.1, seed=4)
        ratio = (
            comparison["ldlp"].latency.mean
            / comparison["conventional"].latency.mean
        )
        assert 0.5 < ratio < 2.0

    def test_summary_strings(self):
        comparison = compare_schedulers(arrival_rate=2000, duration=0.05, seed=5)
        text = comparison.summary()
        assert "ldlp" in text
        assert "speedup" in text


class TestMergeResults:
    def make(self, mean, count=10, completed=10):
        from repro.sim.stats import LatencySummary

        return RunResult(
            scheduler="ldlp",
            arrival_rate=1000,
            offered=completed,
            completed=completed,
            dropped=0,
            duration=1.0,
            latency=LatencySummary(count, mean, mean, mean, mean, mean),
            misses=MissesPerMessage(instruction=100, data=10),
            cycles_per_message=5000,
            mean_batch_size=2.0,
        )

    def test_weighted_average(self):
        merged = merge_results([self.make(1.0, count=10), self.make(3.0, count=30)])
        assert merged.latency.mean == pytest.approx(2.5)
        assert merged.completed == 20

    def test_empty_rejected(self):
        with pytest.raises(SimulationError):
            merge_results([])

    def test_single_identity(self):
        one = self.make(2.0)
        merged = merge_results([one])
        assert merged.latency.mean == pytest.approx(2.0)
        assert merged.misses.total == pytest.approx(110)
