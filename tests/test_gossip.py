"""Tests of the gossip workload: wire formats, fleet generation, the
flow-charged gossip runner, and the ``gossip`` experiment.

The acceptance pins live here: (1) the byte-accurate wire model —
``datagram_accounting`` arithmetic equals the length of the real
encoders for every framing mode, (2) fleet streams are pure functions
of the spec (re-materializing a source yields identical arrivals),
(3) mixed tagged/untagged gossip batches exercise the untagged-walk
accounting end to end, (4) session framing strictly beats sessionless
on header bytes per message at every collection size with exact
conservation, and (5) the HARN004 rule keeps every registered framing
mode exercised by the sweep.
"""

from __future__ import annotations

import json

import pytest

from repro.analysis.harnesscheck import check_framing_coverage
from repro.errors import ConfigurationError, WireError
from repro.experiments import gossip as experiment
from repro.flows import FlowCacheSpec
from repro.gossip import (
    CONTROL_KINDS,
    CONTROL_PAYLOAD_BYTES,
    DATAGRAM_OVERHEAD_BYTES,
    FRAMING_MODES,
    GossipArrival,
    GossipFleetSource,
    GossipFleetSpec,
    WireIdentity,
    community_identifier,
    datagram_accounting,
    decode_collection,
    decode_message,
    encode_collection,
    encode_message,
    framing,
    message_wire_bytes,
)
from repro.gossip.runner import gossip_point, run_gossip_simulation
from repro.sim import SimulationConfig


IDENTITY = WireIdentity(
    session_id=0xDEADBEEF, community_id=community_identifier(3)
)


# ----------------------------------------------------------------------
# Wire formats (repro.gossip.wire)


class TestWireFormats:
    def test_header_sizes_match_the_document(self):
        # session id (4) + message id (1) + global time (8)
        assert framing("session").header_bytes == 13
        # versions (2) + community id (20) + message id (1) + time (8)
        assert framing("sessionless").header_bytes == 31

    @pytest.mark.parametrize("mode", sorted(FRAMING_MODES))
    def test_message_round_trip(self, mode):
        payload = b"\x01" * 67
        wire = encode_message(mode, "data", IDENTITY, 12345, payload)
        assert len(wire) == message_wire_bytes(mode, len(payload))
        kind, identity, global_time, decoded = decode_message(mode, wire)
        assert kind == "data"
        assert global_time == 12345
        assert decoded == payload
        if mode == "session":
            assert identity.session_id == IDENTITY.session_id
        else:
            assert identity.community_id == IDENTITY.community_id
            assert identity.dispersy_version == IDENTITY.dispersy_version

    @pytest.mark.parametrize("mode", sorted(FRAMING_MODES))
    def test_collection_round_trip(self, mode):
        elements = [
            encode_message(mode, "data", IDENTITY, t, bytes([t]) * 30)
            for t in (1, 2, 3)
        ]
        wire = encode_collection(mode, IDENTITY, 99, elements)
        assert decode_collection(mode, wire) == elements

    def test_unknown_mode_and_kind_rejected(self):
        with pytest.raises(WireError):
            framing("telepathy")
        with pytest.raises(WireError):
            encode_message("session", "gossip-rumor", IDENTITY, 0, b"")

    def test_identity_validation(self):
        with pytest.raises(WireError):
            WireIdentity(session_id=-1)
        with pytest.raises(WireError):
            WireIdentity(session_id=1 << 32)
        with pytest.raises(WireError):
            WireIdentity(dispersy_version=256)
        with pytest.raises(WireError):
            WireIdentity(community_id=b"short")

    def test_header_decode_validation(self):
        with pytest.raises(WireError):
            decode_message("session", b"\x00" * 5)  # truncated header
        bogus = bytearray(
            encode_message("session", "data", IDENTITY, 0, b"")
        )
        bogus[4] = 0xFF  # unassigned message identifier
        with pytest.raises(WireError):
            decode_message("session", bytes(bogus))
        with pytest.raises(WireError):
            encode_message("session", "data", IDENTITY, 1 << 64, b"")

    def test_collection_validation(self):
        with pytest.raises(WireError):
            encode_collection("session", IDENTITY, 0, [])
        with pytest.raises(WireError):
            encode_collection("session", IDENTITY, 0, [b"\x00" * 70_000])
        inner = encode_message("session", "data", IDENTITY, 0, b"x" * 10)
        wire = encode_collection("session", IDENTITY, 0, [inner])
        with pytest.raises(WireError):
            decode_collection("session", wire[:-3])  # truncated element
        with pytest.raises(WireError):
            decode_collection("session", inner)  # not a collection

    def test_community_identifier_is_stable_sha1(self):
        assert len(community_identifier(0)) == 20
        assert community_identifier(5) == community_identifier(5)
        assert community_identifier(5) != community_identifier(6)

    @pytest.mark.parametrize("mode", sorted(FRAMING_MODES))
    @pytest.mark.parametrize("count", [1, 2, 8])
    def test_accounting_matches_real_encoders(self, mode, count):
        """The arithmetic the fleet generator uses must equal the byte
        length of actually encoding the datagram."""
        payloads = [b"\x07" * 67] * count
        wire_bytes, header_bytes, messages = datagram_accounting(
            mode, "data", [len(p) for p in payloads]
        )
        if count == 1:
            encoded = encode_message(mode, "data", IDENTITY, 1, payloads[0])
        else:
            elements = [
                encode_message(mode, "data", IDENTITY, 1, payload)
                for payload in payloads
            ]
            encoded = encode_collection(mode, IDENTITY, 1, elements)
        assert wire_bytes == DATAGRAM_OVERHEAD_BYTES + len(encoded)
        assert messages == count
        assert header_bytes == wire_bytes - sum(len(p) for p in payloads)

    def test_accounting_control_kinds_travel_alone(self):
        for kind in CONTROL_KINDS:
            payload = CONTROL_PAYLOAD_BYTES[kind]
            wire_bytes, header_bytes, messages = datagram_accounting(
                "session", kind, [payload]
            )
            assert messages == 1
            assert wire_bytes == header_bytes + payload
            with pytest.raises(WireError):
                datagram_accounting("session", kind, [payload, payload])

    def test_accounting_validation(self):
        with pytest.raises(WireError):
            datagram_accounting("session", "data", [])
        with pytest.raises(WireError):
            datagram_accounting("session", "data", [-1])
        with pytest.raises(WireError):
            message_wire_bytes("session", -1)

    def test_session_headers_smaller_at_every_size(self):
        for count in (1, 2, 8, 32):
            _, session_hdr, _ = datagram_accounting(
                "session", "data", [67] * count
            )
            _, sessionless_hdr, _ = datagram_accounting(
                "sessionless", "data", [67] * count
            )
            assert session_hdr < sessionless_hdr

    def test_packing_amortizes_header_bytes_per_message(self):
        per_message = []
        for count in (1, 2, 4, 8):
            _, header, messages = datagram_accounting(
                "session", "data", [67] * count
            )
            per_message.append(header / messages)
        assert per_message == sorted(per_message, reverse=True)
        assert per_message[0] > per_message[-1]


# ----------------------------------------------------------------------
# Fleet generation (repro.gossip.fleet)


class TestFleet:
    def spec(self, **overrides):
        defaults = dict(num_peers=500, rate=6000.0, seed=3)
        defaults.update(overrides)
        return GossipFleetSpec(**defaults)

    def test_spec_validation(self):
        with pytest.raises(ConfigurationError):
            self.spec(num_peers=0)
        with pytest.raises(ConfigurationError):
            self.spec(num_communities=0)
        with pytest.raises(ConfigurationError):
            self.spec(framing="telepathy")
        with pytest.raises(ConfigurationError):
            self.spec(collection_size=0)
        with pytest.raises(ConfigurationError):
            self.spec(data_fraction=1.5)
        with pytest.raises(ConfigurationError):
            self.spec(data_payload_bytes=0)
        with pytest.raises(ConfigurationError):
            self.spec(rate=0.0)
        with pytest.raises(ConfigurationError):
            self.spec(peer_skew=-1.0)

    def test_arrival_validation(self):
        with pytest.raises(ConfigurationError):
            GossipArrival(time=0.0, size=100, flow=0, community=-1)
        with pytest.raises(ConfigurationError):
            GossipArrival(time=0.0, size=100, flow=0, messages=0)
        with pytest.raises(ConfigurationError):
            GossipArrival(time=0.0, size=100, flow=0, header_bytes=101)
        # The FlowArrival checks still run despite slots=True.
        with pytest.raises(ConfigurationError):
            GossipArrival(time=0.0, size=100, flow=-1)

    def test_rematerialization_is_byte_identical(self):
        source = GossipFleetSource(self.spec())
        assert source.arrival_list(0.03) == source.arrival_list(0.03)

    def test_seeds_differ_and_specs_agree(self):
        first = GossipFleetSource(self.spec(seed=0)).arrival_list(0.03)
        second = GossipFleetSource(self.spec(seed=0)).arrival_list(0.03)
        other = GossipFleetSource(self.spec(seed=9)).arrival_list(0.03)
        assert first == second
        assert first != other

    def test_arrival_sizes_match_wire_accounting(self):
        spec = self.spec(collection_size=4)
        for arrival in GossipFleetSource(spec).arrival_list(0.02):
            if arrival.kind == "data":
                sizes = [spec.data_payload_bytes] * spec.collection_size
            else:
                sizes = [CONTROL_PAYLOAD_BYTES[arrival.kind]]
            wire, header, messages = datagram_accounting(
                spec.framing, arrival.kind, sizes
            )
            assert arrival.size == wire
            assert arrival.header_bytes == header
            assert arrival.messages == messages

    def test_communities_stable_and_in_range(self):
        spec = self.spec(num_communities=3)
        for arrival in GossipFleetSource(spec).arrival_list(0.02):
            assert 0 <= arrival.community < 3
            assert arrival.community == spec.community_of(arrival.flow)

    def test_data_fraction_extremes(self):
        all_data = GossipFleetSource(
            self.spec(data_fraction=1.0)
        ).arrival_list(0.02)
        assert all_data and all(a.kind == "data" for a in all_data)
        all_control = GossipFleetSource(
            self.spec(data_fraction=0.0)
        ).arrival_list(0.02)
        assert all_control
        assert all(a.kind in CONTROL_KINDS for a in all_control)

    def test_rate_property_and_describe(self):
        source = GossipFleetSource(self.spec(rate=7777.0))
        assert source.rate == 7777.0
        description = source.describe()
        assert description["source"] == "GossipFleetSource"
        assert description["rate"] == 7777.0


# ----------------------------------------------------------------------
# The gossip runner (repro.gossip.runner)


class TestGossipRuns:
    def run(self, scheduler="ldlp", **spec_overrides):
        defaults = dict(num_peers=500, rate=6000.0, seed=3)
        defaults.update(spec_overrides)
        return run_gossip_simulation(
            GossipFleetSource(GossipFleetSpec(**defaults)),
            SimulationConfig(scheduler=scheduler, duration=0.03),
            FlowCacheSpec(entries=16),
        )

    def test_conservation_and_lookup_accounting(self):
        result = self.run()
        run = result.run
        assert run.offered == run.completed + run.dropped
        assert run.offered == result.datagrams
        assert result.lookups <= result.demand
        assert result.hits + result.misses == result.lookups - result.untagged

    def test_control_traffic_walks_untagged(self):
        """Control datagrams carry no flow tag, so the run must report
        untagged walks — and an all-data fleet must report none."""
        mixed = self.run(data_fraction=0.5)
        assert mixed.untagged > 0
        pure = self.run(data_fraction=1.0)
        assert pure.untagged == 0

    def test_offered_totals_independent_of_scheduler(self):
        """Wire totals are over the offered stream, so both schedulers
        see identical bytes for the same spec."""
        a = self.run(scheduler="conventional")
        b = self.run(scheduler="ldlp")
        assert (a.messages, a.header_bytes, a.wire_bytes) == (
            b.messages,
            b.header_bytes,
            b.wire_bytes,
        )

    def test_result_dict_round_trip(self):
        result = self.run()
        from repro.gossip.runner import GossipRunResult

        restored = GossipRunResult.from_dict(
            json.loads(json.dumps(result.to_dict()))
        )
        assert restored == result

    def test_point_repeats_byte_identically(self):
        params = dict(
            framing="session",
            collection_size=4,
            scheduler="ldlp",
            policy="tail",
            rate=9000.0,
            seeds=[0, 1],
            duration=0.02,
            num_peers=500,
        )
        first = gossip_point(**params)
        second = gossip_point(**params)
        assert json.dumps(first, sort_keys=True) == json.dumps(
            second, sort_keys=True
        )
        assert first["conservation_violations"] == 0

    def test_point_identical_across_engines(self):
        params = dict(
            framing="sessionless",
            collection_size=4,
            scheduler="ldlp",
            policy="tail",
            rate=9000.0,
            seeds=[0],
            duration=0.02,
            num_peers=500,
        )
        vec = gossip_point(**params, engine="vec")
        scalar = gossip_point(**params, engine="scalar")
        assert json.dumps(vec, sort_keys=True) == json.dumps(
            scalar, sort_keys=True
        )

    def test_session_saves_header_bytes_end_to_end(self):
        session = self.run(framing="session")
        sessionless = self.run(framing="sessionless")
        assert (
            session.header_bytes_per_message
            < sessionless.header_bytes_per_message
        )
        assert session.wire_bytes_per_message < (
            sessionless.wire_bytes_per_message
        )


# ----------------------------------------------------------------------
# Experiment declaration and the HARN004 coverage rule


class TestExperimentSweep:
    def shrunk_results(self):
        points = experiment.sweep_points("ci")
        results = {
            point.key: gossip_point(
                **{
                    **point.params,
                    "seeds": [0],
                    "duration": 0.02,
                    "num_peers": 500,
                }
            )
            for point in points
        }
        return points, results

    def test_scales_cover_every_framing_mode(self):
        for scale in experiment.SWEEP_SCALES:
            exercised = {
                point.params["framing"]
                for point in experiment.sweep_points(scale)
            }
            assert exercised == set(FRAMING_MODES)

    def test_golden_quantities_pin_the_wire_story(self):
        points, results = self.shrunk_results()
        quantities = experiment.golden_quantities(points, results)
        assert quantities["conservation_violations"] == 0.0
        savings = [
            value
            for name, value in quantities.items()
            if name.startswith("session_savings_ok/")
        ]
        assert savings and all(value == 1.0 for value in savings)
        amortization = [
            value
            for name, value in quantities.items()
            if name.startswith("header_amortization_ok/")
        ]
        assert amortization and all(value == 1.0 for value in amortization)

    def test_exact_tolerances_cover_booleans(self):
        tolerances = experiment.SWEEP.tolerances
        assert "conservation_violations" in tolerances
        assert any(
            name.startswith("session_savings_ok/") for name in tolerances
        )
        assert any(
            name.startswith("header_amortization_ok/") for name in tolerances
        )

    def test_assemble_and_render(self):
        points, results = self.shrunk_results()
        table = experiment.assemble(points, results).render()
        assert "framing" in table and "hdrB/msg" in table

    def test_harn004_clean_on_shipped_registry(self):
        assert check_framing_coverage() == []

    def test_harn004_flags_unexercised_mode(self, monkeypatch):
        import repro.gossip.wire as wire_module

        monkeypatch.setitem(
            wire_module.FRAMING_MODES,
            "phantom",
            wire_module.FramingSpec("phantom", 9),
        )
        findings = check_framing_coverage()
        assert len(findings) == 1
        assert findings[0].rule_id == "HARN004"
        assert findings[0].details["framing"] == "phantom"
