"""Tests for repro.cache.cache and repro.cache.line."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cache import DirectMappedCache, SetAssociativeCache
from repro.cache.line import (
    check_power_of_two,
    line_base,
    line_count,
    line_of,
    lines_touched,
)
from repro.errors import ConfigurationError


class TestLineArithmetic:
    def test_line_of_boundaries(self):
        assert line_of(0, 32) == 0
        assert line_of(31, 32) == 0
        assert line_of(32, 32) == 1

    def test_line_base(self):
        assert line_base(33, 32) == 32

    def test_lines_touched_within_one_line(self):
        assert list(lines_touched(0, 32, 32)) == [0]

    def test_lines_touched_straddling(self):
        assert list(lines_touched(30, 4, 32)) == [0, 1]

    def test_lines_touched_zero_size(self):
        assert list(lines_touched(100, 0, 32)) == []

    def test_lines_touched_negative_size_rejected(self):
        with pytest.raises(ConfigurationError):
            lines_touched(0, -1, 32)

    def test_line_count_paper_message(self):
        # A 552-byte message occupies 18 32-byte lines.
        assert line_count(552, 32) == 18

    def test_line_count_exact_multiple(self):
        assert line_count(64, 32) == 2

    def test_check_power_of_two_rejects(self):
        with pytest.raises(ConfigurationError):
            check_power_of_two(48, "size")
        with pytest.raises(ConfigurationError):
            check_power_of_two(0, "size")


class TestDirectMappedCache:
    def test_geometry(self):
        cache = DirectMappedCache(8192, 32)
        assert cache.num_lines == 256

    def test_rejects_non_power_of_two(self):
        with pytest.raises(ConfigurationError):
            DirectMappedCache(8191, 32)

    def test_rejects_line_bigger_than_cache(self):
        with pytest.raises(ConfigurationError):
            DirectMappedCache(32, 64)

    def test_cold_miss_then_hit(self):
        cache = DirectMappedCache(8192, 32)
        assert cache.access_line(5) is True
        assert cache.access_line(5) is False
        assert cache.stats.misses == 1
        assert cache.stats.hits == 1

    def test_conflict_eviction(self):
        cache = DirectMappedCache(8192, 32)
        conflicting = 5 + cache.num_lines  # same set as line 5
        cache.access_line(5)
        cache.access_line(conflicting)
        assert cache.stats.evictions == 1
        assert cache.access_line(5) is True  # was evicted

    def test_flush_invalidates_but_keeps_stats(self):
        cache = DirectMappedCache(8192, 32)
        cache.access_line(1)
        cache.flush()
        assert cache.stats.misses == 1
        assert cache.access_line(1) is True

    def test_access_bytes(self):
        cache = DirectMappedCache(8192, 32)
        assert cache.access(0, 64) == 2  # two lines
        assert cache.access(0, 64) == 0

    def test_access_straddles_line(self):
        cache = DirectMappedCache(8192, 32)
        assert cache.access(30, 4) == 2

    def test_span_matches_scalar(self):
        a = DirectMappedCache(8192, 32)
        b = DirectMappedCache(8192, 32)
        for addr, size in [(0, 6144), (100, 552), (8000, 9000), (0, 6144)]:
            assert a.access_span(addr, size) == b.access(addr, size)
        assert a.stats.misses == b.stats.misses
        assert a.stats.hits == b.stats.hits
        assert a.stats.evictions == b.stats.evictions

    def test_span_larger_than_cache_self_evicts(self):
        cache = DirectMappedCache(8192, 32)
        # A 16 KB sweep cannot be cached; sweeping twice misses twice.
        assert cache.access_span(0, 16384) == 512
        assert cache.access_span(0, 16384) == 512

    def test_span_zero_size(self):
        cache = DirectMappedCache(8192, 32)
        assert cache.access_span(0, 0) == 0
        assert cache.stats.accesses == 0

    def test_negative_address_rejected(self):
        cache = DirectMappedCache(8192, 32)
        with pytest.raises(ConfigurationError):
            cache.access_span(-4, 8)
        with pytest.raises(ConfigurationError):
            cache.access_line(-1)

    def test_line_array_access(self):
        cache = DirectMappedCache(8192, 32)
        lines = np.arange(10, 20, dtype=np.int64)
        assert cache.access_line_array(lines) == 10
        assert cache.access_line_array(lines) == 0

    def test_line_array_empty(self):
        cache = DirectMappedCache(8192, 32)
        assert cache.access_line_array(np.empty(0, dtype=np.int64)) == 0

    def test_contains(self):
        cache = DirectMappedCache(8192, 32)
        cache.access(64, 4)
        assert cache.contains(64)
        assert cache.contains(95)
        assert not cache.contains(96)

    def test_resident_lines(self):
        cache = DirectMappedCache(1024, 32)
        cache.access_line(3)
        cache.access_line(7)
        assert cache.resident_lines() == {3, 7}

    @given(
        ops=st.lists(
            st.tuples(st.integers(0, 4096), st.integers(1, 200)),
            min_size=1,
            max_size=100,
        )
    )
    @settings(max_examples=50, deadline=None)
    def test_span_always_equals_scalar(self, ops):
        """Property: the vectorized span path is exactly the scalar path."""
        fast = DirectMappedCache(1024, 32)
        slow = DirectMappedCache(1024, 32)
        for addr, size in ops:
            fast_misses = fast.access_span(addr, size)
            slow_misses = slow.access(addr, size)
            assert fast_misses == slow_misses
        assert fast.resident_lines() == slow.resident_lines()
        assert fast.stats.evictions == slow.stats.evictions


class TestSetAssociativeCache:
    def test_one_way_matches_direct_mapped(self):
        direct = DirectMappedCache(1024, 32)
        assoc = SetAssociativeCache(1024, 32, ways=1)
        rng = np.random.default_rng(7)
        for line in rng.integers(0, 200, size=500):
            assert direct.access_line(int(line)) == assoc.access_line(int(line))

    def test_two_way_avoids_pingpong(self):
        # Two lines mapping to the same set ping-pong in a direct-mapped
        # cache but coexist in a 2-way cache.
        assoc = SetAssociativeCache(1024, 32, ways=2)
        a, b = 0, assoc.num_sets  # same set
        assoc.access_line(a)
        assoc.access_line(b)
        assert assoc.access_line(a) is False
        assert assoc.access_line(b) is False

    def test_lru_evicts_least_recent(self):
        assoc = SetAssociativeCache(1024, 32, ways=2)
        sets = assoc.num_sets
        a, b, c = 0, sets, 2 * sets  # all in set 0
        assoc.access_line(a)
        assoc.access_line(b)
        assoc.access_line(a)  # a is now most recent
        assoc.access_line(c)  # evicts b
        assert assoc.contains_line(a)
        assert not assoc.contains_line(b)
        assert assoc.contains_line(c)

    def test_fully_associative(self):
        assoc = SetAssociativeCache(1024, 32, ways=32)
        assert assoc.num_sets == 1
        for line in range(32):
            assoc.access_line(line)
        assert all(assoc.contains_line(line) for line in range(32))
        assoc.access_line(32)  # evicts line 0 (LRU)
        assert not assoc.contains_line(0)

    def test_rejects_excess_ways(self):
        with pytest.raises(ConfigurationError):
            SetAssociativeCache(1024, 32, ways=64)

    def test_rejects_unknown_policy(self):
        with pytest.raises(ConfigurationError):
            SetAssociativeCache(1024, 32, ways=2, policy="random")

    def test_fifo_hit_does_not_refresh(self):
        # The same trace as test_lru_evicts_least_recent: under FIFO the
        # hit on `a` does not refresh it, so `c` evicts `a` (the oldest
        # *insertion*), not `b`.
        assoc = SetAssociativeCache(1024, 32, ways=2, policy="fifo")
        sets = assoc.num_sets
        a, b, c = 0, sets, 2 * sets  # all in set 0
        assoc.access_line(a)
        assoc.access_line(b)
        assert assoc.access_line(a) is False  # hit; FIFO order unchanged
        assoc.access_line(c)  # evicts a, the least recently inserted
        assert not assoc.contains_line(a)
        assert assoc.contains_line(b)
        assert assoc.contains_line(c)

    def test_fifo_fully_associative_round_robin(self):
        # With one set, FIFO degenerates to round-robin over insertions.
        assoc = SetAssociativeCache(128, 32, ways=4, policy="fifo")
        for line in range(4):
            assoc.access_line(line)
        assoc.access_line(0)  # hit; does not move line 0 to the back
        assoc.access_line(4)  # evicts line 0 anyway
        assert not assoc.contains_line(0)
        assert all(assoc.contains_line(line) for line in (1, 2, 3, 4))

    def test_flush(self):
        assoc = SetAssociativeCache(1024, 32, ways=2)
        assoc.access_line(3)
        assoc.flush()
        assert not assoc.contains_line(3)

    def test_contains_line_rejects_negative(self):
        # Regression: a negative probe used to compare equal to the -1
        # invalid-slot sentinel in DirectMappedCache and report an empty
        # set as resident; both classes now reject it like access_line.
        direct = DirectMappedCache(1024, 32)
        assoc = SetAssociativeCache(1024, 32, ways=2)
        for cache in (direct, assoc):
            with pytest.raises(ConfigurationError):
                cache.contains_line(-1)
            with pytest.raises(ConfigurationError):
                cache.access_line(-1)

    def test_empty_slot_not_reported_resident(self):
        # The observable half of the sentinel bug: a cold cache holds
        # nothing, including at the set a negative line would alias.
        cache = DirectMappedCache(1024, 32)
        assert cache.resident_lines() == set()
        assert not cache.contains_line(0)
        assert not cache.contains_line(cache.num_lines - 1)

    @given(lines=st.lists(st.integers(0, 300), min_size=1, max_size=300))
    @settings(max_examples=30, deadline=None)
    def test_one_way_equals_direct_mapped_property(self, lines):
        """Property: 1-way set-associative is exactly direct-mapped."""
        direct = DirectMappedCache(1024, 32)
        assoc = SetAssociativeCache(1024, 32, ways=1)
        for line in lines:
            assert direct.access_line(line) == assoc.access_line(line)
        assert direct.resident_lines() == assoc.resident_lines()
        assert direct.stats.evictions == assoc.stats.evictions

    @given(lines=st.lists(st.integers(0, 300), min_size=1, max_size=300))
    @settings(max_examples=30, deadline=None)
    def test_misses_at_least_cold_misses(self, lines):
        """Property: any cache must miss at least once per distinct line."""
        for cache in (
            DirectMappedCache(1024, 32),
            SetAssociativeCache(1024, 32, ways=4),
        ):
            misses = sum(cache.access_line(line) for line in lines)
            assert misses >= len(set(lines))
            assert cache.stats.accesses == len(lines)
