"""Tests for repro.cache.workingset (Table 1 / Table 3 machinery)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cache import Category, WorkingSetAnalyzer
from repro.errors import ConfigurationError
from repro.trace import LayerClassifier, code_ref, read_ref, write_ref


def make_analyzer():
    classifier = LayerClassifier({"tcp_input": "TCP", "ipintr": "IP"})
    return WorkingSetAnalyzer(classifier)


class TestBasicAccounting:
    def test_single_code_ref_counts_one_line(self):
        ws = make_analyzer()
        ws.consume([code_ref(0, 4, "tcp_input")])
        report = ws.report(32)
        assert report.layer("TCP", Category.CODE).lines == 1
        assert report.layer("TCP", Category.CODE).bytes == 32

    def test_refs_in_same_line_count_once(self):
        ws = make_analyzer()
        ws.consume([code_ref(0, 4, "tcp_input"), code_ref(28, 4, "tcp_input")])
        assert ws.report(32).layer("TCP", Category.CODE).lines == 1

    def test_refs_straddling_lines(self):
        ws = make_analyzer()
        ws.consume([code_ref(30, 4, "tcp_input")])
        assert ws.report(32).layer("TCP", Category.CODE).lines == 2

    def test_read_only_vs_mutable(self):
        ws = make_analyzer()
        ws.consume([read_ref(1000, 4, "tcp_input"), write_ref(2000, 4, "tcp_input")])
        report = ws.report(32)
        assert report.layer("TCP", Category.READONLY).lines == 1
        assert report.layer("TCP", Category.MUTABLE).lines == 1

    def test_read_then_write_makes_mutable(self):
        # "Data is considered read-only if it was not modified during
        # the trace" — a read followed by a write is mutable.
        ws = make_analyzer()
        ws.consume([read_ref(1000, 4, "tcp_input")])
        ws.consume([write_ref(1000, 4, "ipintr")])
        report = ws.report(32)
        assert report.layer("TCP", Category.READONLY).lines == 0
        assert report.layer("TCP", Category.MUTABLE).lines == 1

    def test_first_touch_data_attribution(self):
        # Data touched first by TCP then by IP belongs to TCP.
        ws = make_analyzer()
        ws.consume([read_ref(512, 4, "tcp_input"), read_ref(516, 4, "ipintr")])
        report = ws.report(32)
        assert report.layer("TCP", Category.READONLY).lines == 1
        assert report.layer("IP", Category.READONLY).lines == 0

    def test_unknown_function_is_unclassified(self):
        ws = make_analyzer()
        ws.consume([code_ref(0, 4, "mystery_fn")])
        assert ws.report(32).layer("unclassified", Category.CODE).lines == 1

    def test_totals_sum_layers(self):
        ws = make_analyzer()
        ws.consume(
            [
                code_ref(0, 4, "tcp_input"),
                code_ref(4096, 4, "ipintr"),
                read_ref(8192, 4, "tcp_input"),
            ]
        )
        report = ws.report(32)
        assert report.total(Category.CODE).lines == 2
        assert report.total(Category.READONLY).lines == 1
        assert report.grand_total_bytes() == 3 * 32


class TestGranularity:
    def test_same_atoms_two_granularities(self):
        # Two code words 40 bytes apart: distinct 32-byte lines, one
        # 64-byte... actually 0 and 40 are line 0 and line 1 at 32B, but
        # both in line 0 at 64B.
        ws = make_analyzer()
        ws.consume([code_ref(0, 4, "tcp_input"), code_ref(40, 4, "tcp_input")])
        assert ws.report(32).total(Category.CODE).lines == 2
        assert ws.report(64).total(Category.CODE).lines == 1
        assert ws.report(8).total(Category.CODE).lines == 2

    def test_dense_region_bytes_shrink_with_smaller_lines(self):
        # A sparse touch pattern: every other 16-byte chunk.
        ws = make_analyzer()
        refs = [code_ref(base, 4, "tcp_input") for base in range(0, 256, 32)]
        ws.consume(refs)
        bytes_at_32 = ws.totals_at(32)[Category.CODE].bytes
        bytes_at_16 = ws.totals_at(16)[Category.CODE].bytes
        bytes_at_8 = ws.totals_at(8)[Category.CODE].bytes
        assert bytes_at_32 > bytes_at_16 > bytes_at_8

    def test_rejects_line_below_atom(self):
        ws = make_analyzer()
        with pytest.raises(ConfigurationError):
            ws.report(2)

    def test_rejects_non_power_of_two_line(self):
        ws = make_analyzer()
        with pytest.raises(ConfigurationError):
            ws.report(48)


class TestLineSizeTable:
    def test_baseline_row_is_zero(self):
        ws = make_analyzer()
        ws.consume([code_ref(i, 4, "tcp_input") for i in range(0, 1000, 8)])
        table = ws.line_size_table()
        row = table.row(32)
        delta = row.deltas[Category.CODE]
        assert delta.bytes_pct == 0.0
        assert delta.lines_pct == 0.0

    def test_data_below_8_is_na(self):
        ws = make_analyzer()
        ws.consume([read_ref(0, 4, "tcp_input")])
        table = ws.line_size_table()
        row = table.row(4)
        assert row.deltas[Category.READONLY] is None
        assert row.deltas[Category.MUTABLE] is None
        assert row.deltas[Category.CODE] is not None

    def test_dense_code_line_deltas(self):
        # Fully dense code: doubling the line size halves lines exactly
        # and leaves bytes unchanged.
        ws = make_analyzer()
        ws.consume([code_ref(i, 4, "tcp_input") for i in range(0, 1024, 4)])
        table = ws.line_size_table()
        row = table.row(64)
        delta = row.deltas[Category.CODE]
        assert delta.bytes_pct == pytest.approx(0.0)
        assert delta.lines_pct == pytest.approx(-50.0)

    def test_missing_row_raises(self):
        ws = make_analyzer()
        ws.consume([code_ref(0, 4, "tcp_input")])
        with pytest.raises(ConfigurationError):
            ws.line_size_table().row(128)


class TestProperties:
    @given(
        addrs=st.lists(st.integers(0, 4096), min_size=1, max_size=200),
    )
    @settings(max_examples=50, deadline=None)
    def test_lines_monotone_in_granularity(self, addrs):
        """Property: smaller lines never decrease the line count, larger
        lines never decrease the byte count (coverage monotonicity)."""
        ws = WorkingSetAnalyzer()
        ws.consume([code_ref(addr, 4) for addr in addrs])
        sizes = [4, 8, 16, 32, 64]
        lines = [ws.totals_at(s)[Category.CODE].lines for s in sizes]
        byte_counts = [ws.totals_at(s)[Category.CODE].bytes for s in sizes]
        assert lines == sorted(lines, reverse=True)
        assert byte_counts == sorted(byte_counts)

    @given(
        reads=st.lists(st.integers(0, 2048), max_size=50),
        writes=st.lists(st.integers(0, 2048), max_size=50),
    )
    @settings(max_examples=50, deadline=None)
    def test_categories_partition_data(self, reads, writes):
        """Property: every touched data line is exactly one of RO/mutable."""
        ws = WorkingSetAnalyzer()
        ws.consume([read_ref(addr, 4) for addr in reads])
        ws.consume([write_ref(addr, 4) for addr in writes])
        totals = ws.totals_at(32)
        touched_lines = {addr // 32 for addr in reads} | {
            (addr + 3) // 32 for addr in reads
        }
        touched_lines |= {addr // 32 for addr in writes} | {
            (addr + 3) // 32 for addr in writes
        }
        assert (
            totals[Category.READONLY].lines + totals[Category.MUTABLE].lines
            == len(touched_lines)
        )
