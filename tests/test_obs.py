"""Tests for repro.obs: no-op equivalence, schema, live Table 1, sinks."""

from __future__ import annotations

import json

import pytest

from repro.errors import ObsError
from repro.netbsd.layers import ALL_LAYERS, PAPER_TABLE1
from repro.obs import (
    ChromeTraceSink,
    MetricsSink,
    Recorder,
    TableSink,
    active_recorder,
    recording,
    replay_receive_path,
    trace_receive_path,
    trace_schedulers,
    validate_chrome_trace,
    validate_metrics,
)
from repro.obs.cli import main as obs_cli_main
from repro.sim.runner import SimulationConfig, run_simulation
from repro.traffic.poisson import PoissonSource


def _run_figure6_point(scheduler: str = "ldlp") -> dict:
    source = PoissonSource(9000.0, size=552, rng=0)
    config = SimulationConfig(scheduler=scheduler, duration=0.01)
    return run_simulation(source, config, seed=0).to_dict()


class TestRecorderCore:
    def test_disabled_by_default(self):
        assert active_recorder() is None

    def test_recording_installs_and_restores(self):
        recorder = Recorder()
        with recording(recorder):
            assert active_recorder() is recorder
        assert active_recorder() is None

    def test_recording_restores_on_exception(self):
        with pytest.raises(RuntimeError):
            with recording(Recorder()):
                raise RuntimeError("boom")
        assert active_recorder() is None

    def test_span_counters_and_track_totals(self):
        recorder = Recorder()
        probe_state = {"cycles": 0.0}
        handle = recorder.begin("t", "work", 10.0, lambda: dict(probe_state))
        probe_state["cycles"] = 42.0
        span = recorder.end(handle, 25.0)
        assert span is not None
        assert span.duration == 15.0
        assert span.counters["cycles"] == 42.0
        totals = recorder.track_totals["t"].as_dict()
        assert totals["spans"] == 1.0
        assert totals["clock_units"] == 15.0
        assert totals["cycles"] == 42.0

    def test_metrics_only_mode_discards_spans(self):
        recorder = Recorder(keep_spans=False)
        handle = recorder.begin("t", "work", 0.0)
        assert recorder.end(handle, 5.0) is None
        recorder.instant("t", "drop", 1.0)
        assert recorder.spans == []
        assert recorder.instants == []
        assert recorder.track_totals["t"].get("spans") == 1.0


class TestNoOpEquivalence:
    """Tracing must never change what the model computes."""

    @pytest.mark.parametrize("scheduler", ["conventional", "ldlp"])
    def test_simulation_results_identical_with_recorder(self, scheduler):
        plain = _run_figure6_point(scheduler)
        with recording(Recorder()):
            traced = _run_figure6_point(scheduler)
        with recording(Recorder(keep_spans=False)):
            metrics_only = _run_figure6_point(scheduler)
        assert json.dumps(plain, sort_keys=True) == json.dumps(
            traced, sort_keys=True
        )
        assert json.dumps(plain, sort_keys=True) == json.dumps(
            metrics_only, sort_keys=True
        )

    def test_receive_trace_identical_with_recorder(self):
        from repro.netbsd.receive_path import ReceivePathModel

        plain = ReceivePathModel(seed=0).build_trace()
        with recording(Recorder()):
            traced = ReceivePathModel(seed=0).build_trace()
        assert len(plain.refs) == len(traced.refs)
        assert all(
            a.addr == b.addr and a.kind == b.kind
            for a, b in zip(plain.refs, traced.refs)
        )


class TestChromeTraceSchema:
    @pytest.fixture(scope="class")
    def sim_payload(self):
        runs = trace_schedulers(
            schedulers=("conventional", "ldlp"), rate=9000.0, duration=0.005
        )
        sink = ChromeTraceSink(clock_unit="cycles")
        for run in runs:
            sink.add_recorder(run.recorder, run.name)
        return sink.to_payload()

    def test_sim_trace_validates(self, sim_payload):
        summary = validate_chrome_trace(sim_payload)
        assert summary["spans"] > 0
        assert summary["processes"] == 2  # conventional + ldlp

    def test_one_track_per_layer(self, sim_payload):
        names = {
            (event["pid"], event["args"]["name"])
            for event in sim_payload["traceEvents"]
            if event["ph"] == "M" and event["name"] == "thread_name"
        }
        for pid in (1, 2):
            tracks = {name for p, name in names if p == pid}
            assert {f"layer{i}" for i in range(5)} <= tracks
            assert "scheduler" in tracks

    def test_receive_trace_validates(self):
        from repro.obs import chrome_trace_for_receive

        sink, _ = chrome_trace_for_receive(seed=0)
        summary = validate_chrome_trace(sink.to_payload())
        assert summary["spans"] > 0

    def test_validator_rejects_malformed(self):
        with pytest.raises(ObsError):
            validate_chrome_trace({"traceEvents": []})
        with pytest.raises(ObsError):
            validate_chrome_trace(
                {
                    "traceEvents": [
                        {
                            "name": "x",
                            "cat": "t",
                            "ph": "X",
                            "ts": 0,
                            "dur": 1,
                            "pid": 1,
                            "tid": 1,
                            "args": {},
                        }
                    ]
                }
            )  # span on an unnamed track

    def test_chrome_sink_rejects_metrics_only_recorder(self):
        sink = ChromeTraceSink()
        with pytest.raises(ObsError):
            sink.add_recorder(Recorder(keep_spans=False), "nope")


class TestLiveMissAttribution:
    @pytest.fixture(scope="class")
    def attribution(self):
        return replay_receive_path(seed=0)

    def test_live_working_set_matches_table1(self, attribution):
        """Golden pin: first-touch attribution equals the static catalogue."""
        live = attribution.live_working_set(line_size=32)
        for layer in ALL_LAYERS:
            want = PAPER_TABLE1[layer]
            got = live[layer]
            assert got["code"] == want.code, layer
            assert got["readonly"] == want.readonly, layer
            assert got["mutable"] == want.mutable, layer

    def test_function_table_covers_trace(self, attribution):
        table = attribution.function_table()
        assert table, "no functions attributed"
        top = table[0]
        assert top.misses > 0
        assert top.stall_cycles == pytest.approx(top.misses * 20, rel=0.5)
        assert sum(fn.refs for fn in table) > 0

    def test_replay_emits_spans(self):
        recorder, attribution = trace_receive_path(seed=0)
        tracks = recorder.tracks()
        assert "phase" in tracks
        assert any(track != "phase" for track in tracks)
        assert attribution.cycles > 0


class TestMetricsAndTableSinks:
    def test_metrics_payload_validates(self):
        runs = trace_schedulers(schedulers=("ldlp",), rate=9000.0, duration=0.005)
        payload = MetricsSink(runs[0].recorder).to_payload()
        validate_metrics(payload)
        assert payload["counters"]["messages.arrivals"] > 0
        assert payload["counters"]["ldlp.batches"] > 0
        assert payload["counters"]["scheduler.service_steps"] > 0
        assert "scheduler" in payload["tracks"]

    def test_mbuf_pool_counters(self):
        from repro.buffers.pool import MbufPool

        recorder = Recorder(keep_spans=False)
        with recording(recorder):
            pool = MbufPool()
            first = pool.alloc()
            pool.free(first)
            pool.free(pool.alloc())  # recycles the freed mbuf
        counters = recorder.counters.as_dict()
        assert counters["mbuf.alloc"] == 2.0
        assert counters["mbuf.free"] == 2.0
        assert counters["mbuf.recycled"] == 1.0

    def test_validate_metrics_rejects_bad_shapes(self):
        with pytest.raises(ObsError):
            validate_metrics({"counters": {}})
        with pytest.raises(ObsError):
            validate_metrics({"counters": {"x": "y"}, "tracks": {}})

    def test_table_sink_renders(self):
        recorder = Recorder()
        handle = recorder.begin("layer0", "invoke", 0.0)
        recorder.end(handle, 100.0)
        text = TableSink(recorder).render()
        assert "layer0" in text
        assert "spans" in text


class TestCli:
    def test_trace_figure6_chrome(self, tmp_path):
        out = tmp_path / "fig6.json"
        code = obs_cli_main(
            ["figure6", "--sink", "chrome", "--out", str(out),
             "--duration", "0.004"]
        )
        assert code == 0
        payload = json.loads(out.read_text())
        summary = validate_chrome_trace(payload)
        assert summary["processes"] == 2

    def test_trace_receive_table(self, capsys):
        assert obs_cli_main(["receive", "--sink", "table"]) == 0
        captured = capsys.readouterr().out
        assert "Ethernet" in captured
        assert "4480" in captured  # Table 1's Ethernet code bytes

    def test_trace_sim_metrics(self, capsys):
        assert obs_cli_main(
            ["figure5", "--sink", "metrics", "--duration", "0.004"]
        ) == 0
        payload = json.loads(capsys.readouterr().out)
        assert set(payload) == {"conventional", "ldlp"}
        for per_scheduler in payload.values():
            validate_metrics(per_scheduler)

    def test_experiments_cli_dispatches_trace(self, tmp_path, capsys):
        from repro.experiments.cli import main as experiments_main

        out = tmp_path / "via_dispatch.json"
        code = experiments_main(
            ["trace", "figure6", "--sink", "chrome", "--out", str(out),
             "--duration", "0.004"]
        )
        assert code == 0
        validate_chrome_trace(json.loads(out.read_text()))


class TestHarnessCounters:
    def test_execute_point_returns_counters(self):
        from repro.harness.registry import get_spec
        from repro.harness.runner import _execute_point

        spec = get_spec("figure8")
        point = spec.points_for("ci")[0]
        key, result, seconds, counters = _execute_point(point)
        assert key == point.key
        assert isinstance(counters, dict)

    def test_run_experiment_aggregates_and_caches_counters(self, tmp_path):
        from repro.harness.cache import ResultCache
        from repro.harness.registry import get_spec
        from repro.harness.runner import run_experiment

        cache = ResultCache(root=tmp_path)
        spec = get_spec("table1")
        cold = run_experiment(spec, scale="ci", jobs=1, cache=cache)
        assert cold.counters.get("trace.refs", 0) > 0
        warm = run_experiment(spec, scale="ci", jobs=1, cache=cache)
        assert warm.cache_hits == len(warm.points)
        assert warm.counters == cold.counters

    def test_bench_record_includes_counters(self, tmp_path):
        from repro.harness.bench import bench_record
        from repro.harness.cache import ResultCache
        from repro.harness.registry import get_spec
        from repro.harness.runner import run_experiment

        run = run_experiment(
            get_spec("table1"), scale="ci", jobs=1,
            cache=ResultCache(root=tmp_path),
        )
        record = bench_record(run)
        assert record["counters"]["trace.refs"] > 0

    def test_old_cache_entries_tolerated(self, tmp_path):
        from repro.harness.cache import ResultCache

        cache = ResultCache(root=tmp_path)
        path = cache._path("exp", "a" * 64)
        path.parent.mkdir(parents=True)
        path.write_text(
            json.dumps(
                {"key": "a" * 64, "point_key": "p", "func": "f",
                 "params": {}, "result": 1, "elapsed_s": 0.5}
            )
        )  # pre-obs format: no "counters"
        entry = cache.lookup("exp", "a" * 64)
        assert entry is not None
        assert entry.counters == {}
