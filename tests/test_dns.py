"""Tests for the DNS wire format and the tiny authoritative zone."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ProtocolError
from repro.protocols.dns import (
    FLAG_AA,
    FLAG_QR,
    DnsMessage,
    DnsZone,
    NameEncoder,
    Question,
    Rcode,
    RecordType,
    ResourceRecord,
    decode_name,
)

label = st.text(
    alphabet=st.sampled_from("abcdefghijklmnopqrstuvwxyz0123456789-"),
    min_size=1,
    max_size=20,
).filter(lambda s: not s.startswith("-") and not s.endswith("-"))
hostname = st.lists(label, min_size=1, max_size=4).map(".".join)


class TestNames:
    def test_encode_decode_simple(self):
        encoder = NameEncoder()
        wire = encoder.encode("www.example.com", 0)
        name, offset = decode_name(wire, 0)
        assert name == "www.example.com"
        assert offset == len(wire)

    def test_root_name(self):
        encoder = NameEncoder()
        wire = encoder.encode("", 0)
        assert wire == b"\x00"
        name, _ = decode_name(wire, 0)
        assert name == ""

    def test_compression_pointer_used(self):
        encoder = NameEncoder()
        first = encoder.encode("example.com", 0)
        second = encoder.encode("www.example.com", len(first))
        # second = label "www" + 2-byte pointer, much shorter than full.
        assert len(second) == 4 + 2
        combined = first + second
        name, _ = decode_name(combined, len(first))
        assert name == "www.example.com"

    def test_exact_repeat_is_pure_pointer(self):
        encoder = NameEncoder()
        first = encoder.encode("a.b.c", 0)
        second = encoder.encode("a.b.c", len(first))
        assert len(second) == 2

    def test_pointer_loop_rejected(self):
        # A pointer pointing at itself.
        wire = b"\xc0\x00"
        with pytest.raises(ProtocolError):
            decode_name(wire, 0)

    def test_forward_pointer_rejected(self):
        wire = b"\xc0\x05" + b"\x00" * 10
        with pytest.raises(ProtocolError):
            decode_name(wire, 0)

    def test_truncated_label_rejected(self):
        with pytest.raises(ProtocolError):
            decode_name(b"\x05ab", 0)

    def test_oversized_label_rejected(self):
        encoder = NameEncoder()
        with pytest.raises(ProtocolError):
            encoder.encode("a" * 64 + ".com", 0)

    def test_oversized_name_rejected(self):
        encoder = NameEncoder()
        with pytest.raises(ProtocolError):
            encoder.encode(".".join(["abcdefgh"] * 40), 0)

    @given(name=hostname)
    @settings(max_examples=80, deadline=None)
    def test_roundtrip_property(self, name):
        encoder = NameEncoder()
        wire = encoder.encode(name, 0)
        decoded, _ = decode_name(wire, 0)
        assert decoded == name.lower()


class TestMessage:
    def test_query_roundtrip(self):
        query = DnsMessage.query(0x1234, "host.example.com")
        parsed = DnsMessage.parse(query.serialize())
        assert parsed.ident == 0x1234
        assert not parsed.is_response
        assert parsed.questions == (Question("host.example.com"),)

    def test_response_roundtrip_with_compression(self):
        response = DnsMessage(
            ident=7,
            flags=FLAG_QR | FLAG_AA,
            questions=(Question("www.example.com"),),
            answers=(
                ResourceRecord.a("www.example.com", "10.1.2.3", ttl=60),
                ResourceRecord.a("www.example.com", "10.1.2.4", ttl=60),
            ),
        )
        wire = response.serialize()
        # Compression: the answer names are pointers, so the full name
        # appears only once in the wire image.
        assert wire.count(b"\x03www") == 1
        parsed = DnsMessage.parse(wire)
        assert parsed.is_response
        assert len(parsed.answers) == 2
        assert parsed.answers[0].address == "10.1.2.3"
        assert parsed.answers[1].address == "10.1.2.4"
        assert parsed.answers[0].name == "www.example.com"

    def test_truncated_header_rejected(self):
        with pytest.raises(ProtocolError):
            DnsMessage.parse(b"\x00" * 6)

    def test_truncated_question_rejected(self):
        wire = DnsMessage.query(1, "a.b").serialize()
        with pytest.raises(ProtocolError):
            DnsMessage.parse(wire[:-2])

    def test_truncated_rdata_rejected(self):
        response = DnsMessage(
            ident=1,
            flags=FLAG_QR,
            questions=(Question("a.b"),),
            answers=(ResourceRecord.a("a.b", "1.2.3.4"),),
        )
        with pytest.raises(ProtocolError):
            DnsMessage.parse(response.serialize()[:-2])

    def test_address_accessor_guards_type(self):
        record = ResourceRecord("x", RecordType.TXT, 60, b"hello")
        with pytest.raises(ProtocolError):
            record.address

    @given(ident=st.integers(0, 0xFFFF), name=hostname)
    @settings(max_examples=60, deadline=None)
    def test_query_roundtrip_property(self, ident, name):
        parsed = DnsMessage.parse(DnsMessage.query(ident, name).serialize())
        assert parsed.ident == ident
        assert parsed.questions[0].name == name.lower()


class TestZone:
    def make_zone(self):
        zone = DnsZone()
        zone.add_a("www.example.com", "10.0.0.80")
        zone.add_a("www.example.com", "10.0.0.81")
        zone.add_a("mail.example.com", "10.0.0.25")
        zone.add(
            ResourceRecord(
                "web.example.com", RecordType.CNAME, 300, b"www.example.com"
            )
        )
        return zone

    def test_positive_answer(self):
        zone = self.make_zone()
        response = zone.answer(DnsMessage.query(5, "www.example.com"))
        assert response.rcode == Rcode.NOERROR
        assert {r.address for r in response.answers} == {"10.0.0.80", "10.0.0.81"}
        assert response.is_response
        assert response.flags & FLAG_AA

    def test_nxdomain(self):
        zone = self.make_zone()
        response = zone.answer(DnsMessage.query(6, "nope.example.com"))
        assert response.rcode == Rcode.NXDOMAIN
        assert response.answers == ()
        assert zone.nxdomains == 1

    def test_cname_chase(self):
        zone = self.make_zone()
        response = zone.answer(DnsMessage.query(7, "web.example.com"))
        types = [r.rtype for r in response.answers]
        assert RecordType.CNAME in types
        assert RecordType.A in types
        addresses = {
            r.address for r in response.answers if r.rtype == RecordType.A
        }
        assert addresses == {"10.0.0.80", "10.0.0.81"}

    def test_name_exists_wrong_type(self):
        zone = self.make_zone()
        response = zone.answer(
            DnsMessage.query(8, "www.example.com", RecordType.AAAA)
        )
        assert response.rcode == Rcode.NOERROR
        assert response.answers == ()

    def test_case_insensitive(self):
        zone = self.make_zone()
        response = zone.answer(DnsMessage.query(9, "WWW.Example.COM"))
        assert response.answers

    def test_response_to_response_is_formerr(self):
        zone = self.make_zone()
        bogus = DnsMessage(ident=1, flags=FLAG_QR, questions=(Question("x"),))
        assert zone.answer(bogus).rcode == Rcode.FORMERR

    def test_roundtrip_through_wire(self):
        """Full server path: wire query in, wire response out, parse."""
        zone = self.make_zone()
        query_wire = DnsMessage.query(0xBEEF, "mail.example.com").serialize()
        response_wire = zone.answer(DnsMessage.parse(query_wire)).serialize()
        parsed = DnsMessage.parse(response_wire)
        assert parsed.ident == 0xBEEF
        assert parsed.answers[0].address == "10.0.0.25"
