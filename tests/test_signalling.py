"""Tests for the mini-Q.93B signalling protocol and switch."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import ConventionalScheduler, LDLPScheduler, Message
from repro.errors import SignallingError
from repro.signalling import (
    CallState,
    InfoElementId,
    MessageType,
    SignallingMessage,
    build_switch,
    connect,
    release,
    saal_frame,
    saal_unframe,
    setup,
)


class TestWireFormat:
    def test_setup_roundtrip(self):
        message = setup(42, called_party="switch-9.example", calling_party="me")
        parsed = SignallingMessage.parse(message.serialize())
        assert parsed.msg_type is MessageType.SETUP
        assert parsed.call_ref == 42
        assert parsed.require(InfoElementId.CALLED_PARTY).value == b"switch-9.example"
        assert parsed.find(InfoElementId.CALLING_PARTY).value == b"me"

    def test_direction_flag(self):
        response = connect(7, vpi=1, vci=33)
        parsed = SignallingMessage.parse(response.serialize())
        assert not parsed.from_origin
        assert parsed.call_ref == 7

    def test_release_roundtrip(self):
        parsed = SignallingMessage.parse(release(9, cause=31).serialize())
        assert parsed.msg_type is MessageType.RELEASE
        assert parsed.require(InfoElementId.CAUSE).value == bytes([31])

    def test_missing_mandatory_ie(self):
        message = SignallingMessage(MessageType.SETUP, 1)
        with pytest.raises(SignallingError):
            message.require(InfoElementId.CALLED_PARTY)

    def test_bad_discriminator(self):
        raw = bytearray(setup(1, "x").serialize())
        raw[0] = 0x08
        with pytest.raises(SignallingError):
            SignallingMessage.parse(bytes(raw))

    def test_unknown_message_type(self):
        raw = bytearray(setup(1, "x").serialize())
        raw[5] = 0xEE
        with pytest.raises(SignallingError):
            SignallingMessage.parse(bytes(raw))

    def test_truncated_body(self):
        raw = setup(1, "abcdef").serialize()
        with pytest.raises(SignallingError):
            SignallingMessage.parse(raw[:-3])

    def test_truncated_ie(self):
        good = setup(1, "abc").serialize()
        # Shorten the body but fix the header length to lie.
        raw = bytearray(good)
        raw = raw[:-1]
        with pytest.raises(SignallingError):
            SignallingMessage.parse(bytes(raw))

    def test_call_ref_range(self):
        with pytest.raises(SignallingError):
            SignallingMessage(MessageType.SETUP, 1 << 23)

    @given(
        call_ref=st.integers(0, (1 << 23) - 1),
        party=st.text(
            alphabet=st.characters(min_codepoint=33, max_codepoint=126),
            min_size=1,
            max_size=40,
        ),
        pcr=st.integers(0, 2**32 - 1),
    )
    @settings(max_examples=60, deadline=None)
    def test_roundtrip_property(self, call_ref, party, pcr):
        message = setup(call_ref, party, peak_cell_rate=pcr)
        parsed = SignallingMessage.parse(message.serialize())
        assert parsed.call_ref == call_ref
        assert parsed.require(InfoElementId.CALLED_PARTY).value == party.encode()


class TestSaal:
    def test_roundtrip(self):
        payload = setup(1, "dest").serialize()
        frame = saal_frame(payload, sequence=5)
        unframed, sequence = saal_unframe(frame)
        assert unframed == payload
        assert sequence == 5

    def test_crc_detects_corruption(self):
        frame = bytearray(saal_frame(b"payload", 1))
        frame[2] ^= 0x01
        with pytest.raises(SignallingError):
            saal_unframe(bytes(frame))

    def test_short_frame(self):
        with pytest.raises(SignallingError):
            saal_unframe(b"abc")


def feed(switch, scheduler, messages, start_seq=0):
    frames = [
        Message(payload=saal_frame(m.serialize(), start_seq + i))
        for i, m in enumerate(messages)
    ]
    scheduler.run_to_completion(frames)


class TestSwitch:
    def test_setup_connect(self):
        switch = build_switch()
        scheduler = ConventionalScheduler(switch.layers)
        feed(switch, scheduler, [setup(1, "host-a")])
        assert switch.stats.setups == 1
        assert switch.active_calls == 1
        response = switch.transmitted[0]
        assert response.msg_type is MessageType.CONNECT
        assert response.call_ref == 1

    def test_vci_allocation_unique(self):
        switch = build_switch()
        scheduler = ConventionalScheduler(switch.layers)
        feed(switch, scheduler, [setup(i, f"host-{i}") for i in range(5)])
        vcis = {
            record.vci for record in switch.call_control.calls.values()
        }
        assert len(vcis) == 5

    def test_release_completes(self):
        switch = build_switch()
        scheduler = ConventionalScheduler(switch.layers)
        feed(switch, scheduler, [setup(1, "host-a"), release(1)], start_seq=0)
        assert switch.stats.releases == 1
        assert switch.active_calls == 0
        assert switch.transmitted[-1].msg_type is MessageType.RELEASE_COMPLETE

    def test_duplicate_setup_rejected(self):
        switch = build_switch()
        scheduler = ConventionalScheduler(switch.layers)
        feed(switch, scheduler, [setup(1, "a"), setup(1, "b")])
        assert switch.stats.setups == 1
        assert switch.stats.rejected == 1

    def test_release_unknown_call_rejected(self):
        switch = build_switch()
        scheduler = ConventionalScheduler(switch.layers)
        feed(switch, scheduler, [release(77)])
        assert switch.stats.rejected == 1
        assert switch.transmitted[0].msg_type is MessageType.RELEASE_COMPLETE

    def test_admission_limit(self):
        switch = build_switch(max_calls=2)
        scheduler = ConventionalScheduler(switch.layers)
        feed(switch, scheduler, [setup(i, "h") for i in range(4)])
        assert switch.stats.setups == 2
        assert switch.stats.rejected == 2

    def test_corrupt_frame_dropped(self):
        switch = build_switch()
        scheduler = ConventionalScheduler(switch.layers)
        frame = bytearray(saal_frame(setup(1, "x").serialize(), 0))
        frame[4] ^= 0xFF
        scheduler.run_to_completion([Message(payload=bytes(frame))])
        assert switch.stats.bad_frames == 1
        assert switch.stats.setups == 0

    def test_sequence_gap_counted(self):
        switch = build_switch()
        scheduler = ConventionalScheduler(switch.layers)
        feed(switch, scheduler, [setup(1, "a")], start_seq=0)
        feed(switch, scheduler, [setup(2, "b")], start_seq=5)  # gap
        assert switch.stats.out_of_sequence == 1
        assert switch.stats.setups == 2  # still processed

    def test_ldlp_equals_conventional(self):
        """The switch behaves identically under LDLP batching."""
        workload = []
        for i in range(40):
            workload.append(setup(i, f"host-{i % 7}"))
            if i % 2:
                workload.append(release(i))
        outcomes = []
        for cls in (ConventionalScheduler, LDLPScheduler):
            switch = build_switch()
            scheduler = cls(switch.layers)
            feed(switch, scheduler, workload)
            outcomes.append(
                (
                    switch.stats.setups,
                    switch.stats.releases,
                    switch.active_calls,
                    [(m.msg_type, m.call_ref) for m in switch.transmitted],
                )
            )
        assert outcomes[0] == outcomes[1]

    def test_call_record_fields(self):
        switch = build_switch()
        scheduler = ConventionalScheduler(switch.layers)
        feed(switch, scheduler, [setup(3, "far-end")])
        record = switch.call_control.calls[3]
        assert record.state is CallState.ACTIVE
        assert record.called_party == "far-end"
        assert record.vci >= 32
