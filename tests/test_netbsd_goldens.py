"""Golden pins of Table 1 — the NetBSD receive-path working sets.

The paper's Table 1 ("Breakdown of Working Set Sizes in NetBSD TCP
Receive & Acknowledge Path") is the anchor the whole receive-path model
is calibrated against.  These tests hard-code every published cell so
that neither the transcription in :mod:`repro.netbsd.layers` nor the
measured model in :mod:`repro.experiments.table1` can drift silently:
each group is pinned by name, so a failure names exactly the layer and
category that moved.
"""

from __future__ import annotations

import pytest

from repro.cache.workingset import Category
from repro.experiments import table1
from repro.netbsd.layers import (
    PAPER_TABLE1,
    PAPER_TABLE1_TOTAL,
    table1_row_sum,
)

#: Table 1 as printed in the paper: layer -> (code, read-only, mutable)
#: bytes at 32-byte cache lines.  Kept as an independent copy so a typo
#: in repro.netbsd.layers cannot self-certify.
EXPECTED_TABLE1 = {
    "Ethernet": (4480, 864, 672),
    "IP": (2784, 480, 128),
    "TCP": (3168, 448, 160),
    "Socket low": (5536, 544, 448),
    "Socket high": (608, 32, 160),
    "Kernel entry/exit": (1184, 256, 64),
    "Process control": (2208, 1280, 640),
    "Buffer mgmt": (5472, 544, 736),
    "Common": (1632, 192, 512),
    "Copy, checksum": (3232, 448, 128),
}

#: Sum of the published rows.  The paper's printed code total (30592)
#: exceeds this by 288 — a discrepancy in the source text itself; the
#: row sum is what the model reproduces.
EXPECTED_ROW_SUM = (30304, 5088, 3648)


@pytest.fixture(scope="module")
def measured():
    return table1.run(seed=0)


class TestPublishedConstants:
    def test_layer_set_matches(self):
        assert set(PAPER_TABLE1) == set(EXPECTED_TABLE1)

    @pytest.mark.parametrize("layer", sorted(EXPECTED_TABLE1))
    def test_published_row(self, layer):
        code, readonly, mutable = EXPECTED_TABLE1[layer]
        row = PAPER_TABLE1[layer]
        assert row.code == code
        assert row.readonly == readonly
        assert row.mutable == mutable
        assert row.total == code + readonly + mutable

    def test_row_sum(self):
        row_sum = table1_row_sum()
        assert (row_sum.code, row_sum.readonly, row_sum.mutable) == (
            EXPECTED_ROW_SUM
        )

    def test_printed_total_discrepancy_is_288_code_bytes(self):
        """The paper's own totals row: ro/mut columns sum exactly, the
        code column is 288 bytes over the row sum."""
        assert PAPER_TABLE1_TOTAL.code - table1_row_sum().code == 288
        assert PAPER_TABLE1_TOTAL.readonly == EXPECTED_ROW_SUM[1]
        assert PAPER_TABLE1_TOTAL.mutable == EXPECTED_ROW_SUM[2]


class TestMeasuredModel:
    @pytest.mark.parametrize("layer", sorted(EXPECTED_TABLE1))
    def test_measured_row(self, measured, layer):
        code, readonly, mutable = EXPECTED_TABLE1[layer]
        assert measured.measured(layer, Category.CODE) == code
        assert measured.measured(layer, Category.READONLY) == readonly
        assert measured.measured(layer, Category.MUTABLE) == mutable

    def test_measured_totals_equal_row_sum(self, measured):
        totals = tuple(
            measured.report.total(category).bytes for category in Category
        )
        assert totals == EXPECTED_ROW_SUM

    def test_matches_paper_flag(self, measured):
        assert measured.matches_paper()

    def test_placement_seed_does_not_change_sizes(self):
        """Working-set *sizes* are layout-independent: a different
        placement seed moves addresses, not byte counts."""
        other = table1.run(seed=7)
        for layer, (code, readonly, mutable) in EXPECTED_TABLE1.items():
            assert other.measured(layer, Category.CODE) == code
            assert other.measured(layer, Category.READONLY) == readonly
            assert other.measured(layer, Category.MUTABLE) == mutable


class TestSweepQuantities:
    def test_sweep_quantities_pin_every_cell(self):
        """The harness golden for table1 carries one named quantity per
        cell, matching this file's expectations."""
        points = table1.SWEEP.points_for("ci")
        results = {points[0].key: table1.compute_point(seed=0)}
        quantities = table1.SWEEP.quantities(points, results)
        for layer, (code, readonly, mutable) in EXPECTED_TABLE1.items():
            prefix = table1.slug(layer)
            assert quantities[f"{prefix}_code"] == code
            assert quantities[f"{prefix}_readonly"] == readonly
            assert quantities[f"{prefix}_mutable"] == mutable
        assert quantities["total_code"] == EXPECTED_ROW_SUM[0]
        assert quantities["total_readonly"] == EXPECTED_ROW_SUM[1]
        assert quantities["total_mutable"] == EXPECTED_ROW_SUM[2]
        assert quantities["matches_paper"] == 1.0
