"""Tests for repro.protocols.ethernet and repro.protocols.ip."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ChecksumError, ProtocolError
from repro.protocols import ethernet
from repro.protocols.ethernet import EthernetHeader, MacAddress
from repro.protocols.ip import (
    FLAG_DF,
    FLAG_MF,
    IPv4Address,
    IPv4Header,
    PROTO_TCP,
    build_datagram,
)


class TestMacAddress:
    def test_parse_and_str(self):
        mac = MacAddress.parse("02:00:00:aa:bb:cc")
        assert str(mac) == "02:00:00:aa:bb:cc"

    def test_wrong_length_rejected(self):
        with pytest.raises(ProtocolError):
            MacAddress(b"\x00" * 5)
        with pytest.raises(ProtocolError):
            MacAddress.parse("02:00:00")

    def test_bad_hex_rejected(self):
        with pytest.raises(ProtocolError):
            MacAddress.parse("zz:00:00:00:00:00")

    def test_broadcast_and_multicast(self):
        assert ethernet.BROADCAST.is_broadcast
        assert MacAddress.parse("01:00:5e:00:00:01").is_multicast
        assert not MacAddress.parse("02:00:00:00:00:01").is_broadcast


class TestEthernetHeader:
    def test_roundtrip(self):
        header = EthernetHeader(
            dst=MacAddress.parse("02:00:00:00:00:02"),
            src=MacAddress.parse("02:00:00:00:00:01"),
            ethertype=ethernet.ETHERTYPE_IP,
        )
        parsed = EthernetHeader.parse(header.serialize())
        assert parsed == header

    def test_short_frame_rejected(self):
        with pytest.raises(ProtocolError):
            EthernetHeader.parse(b"\x00" * 10)

    def test_8023_length_rejected(self):
        raw = b"\x00" * 12 + (100).to_bytes(2, "big")
        with pytest.raises(ProtocolError):
            EthernetHeader.parse(raw)

    def test_frame_pads_to_minimum(self):
        frame = ethernet.frame(
            ethernet.BROADCAST,
            MacAddress.parse("02:00:00:00:00:01"),
            ethernet.ETHERTYPE_IP,
            b"x",
        )
        assert len(frame) == ethernet.HEADER_LEN + ethernet.MIN_PAYLOAD

    def test_frame_rejects_jumbo(self):
        with pytest.raises(ProtocolError):
            ethernet.frame(
                ethernet.BROADCAST,
                MacAddress.parse("02:00:00:00:00:01"),
                ethernet.ETHERTYPE_IP,
                b"x" * 1501,
            )


class TestIPv4Address:
    def test_parse_and_str(self):
        assert str(IPv4Address.parse("10.1.2.3")) == "10.1.2.3"

    def test_bad_addresses(self):
        for text in ("10.1.2", "10.1.2.3.4", "10.1.2.777", "a.b.c.d"):
            with pytest.raises(ProtocolError):
                IPv4Address.parse(text)

    def test_special_addresses(self):
        assert IPv4Address.parse("255.255.255.255").is_broadcast
        assert IPv4Address.parse("224.0.0.1").is_multicast
        assert not IPv4Address.parse("10.0.0.1").is_multicast


def make_header(**overrides):
    fields = dict(
        src=IPv4Address.parse("10.0.0.2"),
        dst=IPv4Address.parse("10.0.0.1"),
        protocol=PROTO_TCP,
        total_length=40,
    )
    fields.update(overrides)
    return IPv4Header(**fields)


class TestIPv4Header:
    def test_roundtrip(self):
        header = make_header(identification=7, ttl=17)
        parsed = IPv4Header.parse(header.serialize())
        assert parsed.src == header.src
        assert parsed.dst == header.dst
        assert parsed.identification == 7
        assert parsed.ttl == 17

    def test_checksum_verified_on_parse(self):
        raw = bytearray(make_header().serialize())
        raw[8] ^= 0xFF  # corrupt the TTL
        with pytest.raises(ChecksumError):
            IPv4Header.parse(bytes(raw))
        # verify=False skips the check.
        IPv4Header.parse(bytes(raw), verify=False)

    def test_wrong_version_rejected(self):
        raw = bytearray(make_header().serialize())
        raw[0] = (6 << 4) | 5
        with pytest.raises(ProtocolError):
            IPv4Header.parse(bytes(raw), verify=False)

    def test_short_header_rejected(self):
        with pytest.raises(ProtocolError):
            IPv4Header.parse(b"\x45" + b"\x00" * 10)

    def test_bad_ihl_rejected(self):
        raw = bytearray(make_header().serialize())
        raw[0] = (4 << 4) | 4  # IHL 16 bytes < 20
        with pytest.raises(ProtocolError):
            IPv4Header.parse(bytes(raw), verify=False)

    def test_total_length_below_header_rejected(self):
        header = make_header(total_length=10)
        with pytest.raises(ProtocolError):
            IPv4Header.parse(header.serialize())

    def test_options_roundtrip(self):
        header = make_header(options=b"\x01\x01\x01\x00", total_length=44)
        parsed = IPv4Header.parse(header.serialize())
        assert parsed.options == b"\x01\x01\x01\x00"
        assert parsed.header_length == 24

    def test_unpadded_options_rejected(self):
        header = make_header(options=b"\x01\x01")
        with pytest.raises(ProtocolError):
            header.serialize()

    def test_fragment_flags(self):
        assert make_header(flags=FLAG_MF).is_fragment
        assert make_header(fragment_offset=64).is_fragment
        assert not make_header().is_fragment
        assert make_header(flags=FLAG_DF).dont_fragment

    def test_fragment_offset_units(self):
        header = make_header(fragment_offset=64)
        parsed = IPv4Header.parse(header.serialize())
        assert parsed.fragment_offset == 64

    def test_misaligned_fragment_offset_rejected(self):
        header = make_header(fragment_offset=3)
        with pytest.raises(ProtocolError):
            header.serialize()

    def test_build_datagram_fixes_length(self):
        datagram = build_datagram(make_header(total_length=0), b"x" * 30)
        parsed = IPv4Header.parse(datagram[:20])
        assert parsed.total_length == 50

    @given(
        ident=st.integers(0, 0xFFFF),
        ttl=st.integers(1, 255),
        proto=st.integers(0, 255),
        payload_len=st.integers(0, 200),
    )
    @settings(max_examples=60, deadline=None)
    def test_serialize_parse_property(self, ident, ttl, proto, payload_len):
        """Property: serialize→parse is the identity on header fields,
        and the serialized header always self-verifies."""
        header = make_header(
            identification=ident,
            ttl=ttl,
            protocol=proto,
            total_length=20 + payload_len,
        )
        parsed = IPv4Header.parse(header.serialize())
        assert parsed.identification == ident
        assert parsed.ttl == ttl
        assert parsed.protocol == proto
        assert parsed.total_length == 20 + payload_len
