"""Tests of the flow-lookup layer: Zipf flows, the lookup cache, and
the ``flows`` experiment.

The acceptance pins of the flow work live here: (1) flow draws are a
pure function of the seed (crc32 derivation — byte-identical at any
worker count and across repeat runs), (2) batching schedulers amortize
lookups — LDLP performs strictly fewer lookups than Conventional at
equal load and never more misses per message, (3) lookup charging
conserves messages exactly, (4) the vectorized engine declines
flow-charged bindings so both engine settings return identical bytes,
and (5) the HARN003 rule keeps every registered cache organization
exercised by the sweep.
"""

from __future__ import annotations

import json

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.harnesscheck import check_flow_org_coverage
from repro.cache.cache import DirectMappedCache
from repro.errors import ConfigurationError
from repro.experiments import flows as experiment
from repro.flows import (
    FLOW_CACHE_ORGS,
    FlowCacheSpec,
    FlowLookup,
    make_flow_cache,
)
from repro.flows.runner import flows_point, make_flow_base, run_flow_simulation
from repro.harness import ResultCache, run_experiment
from repro.sim.runner import SimulationConfig, build_scheduler
from repro.sim.vec import vec_supported
from repro.traffic.poisson import PoissonSource
from repro.traffic.zipf import (
    FlowArrival,
    ZipfFlowSource,
    flow_rng,
    zipf_flow_ids,
    zipf_weights,
)


def zipf_source(seed: int = 0, skew: float = 1.1, rate: float = 11000.0):
    return ZipfFlowSource(
        PoissonSource(rate, size=552, rng=seed),
        num_flows=64,
        skew=skew,
        seed=seed,
    )


# ----------------------------------------------------------------------
# Zipf flow structure (repro.traffic.zipf)


class TestZipfSource:
    def test_weights_normalized_and_ranked(self):
        weights = zipf_weights(64, 1.0)
        assert weights.shape == (64,)
        assert weights.sum() == pytest.approx(1.0)
        assert np.all(np.diff(weights) <= 0)  # rank 0 most popular

    def test_zero_skew_is_uniform(self):
        weights = zipf_weights(8, 0.0)
        assert np.allclose(weights, 1.0 / 8.0)

    def test_weights_validation(self):
        with pytest.raises(ConfigurationError):
            zipf_weights(0, 1.0)
        with pytest.raises(ConfigurationError):
            zipf_weights(8, -0.5)
        with pytest.raises(ConfigurationError):
            zipf_weights(8, float("inf"))
        with pytest.raises(ConfigurationError):
            zipf_weights(8, float("nan"))

    def test_source_validates_eagerly(self):
        with pytest.raises(ConfigurationError):
            ZipfFlowSource(PoissonSource(1000.0, rng=0), num_flows=0)
        with pytest.raises(ConfigurationError):
            ZipfFlowSource(PoissonSource(1000.0, rng=0), skew=-1.0)

    def test_flow_ids_validation(self):
        with pytest.raises(ConfigurationError):
            zipf_flow_ids(-1, 64, 1.0, 0)
        assert zipf_flow_ids(0, 64, 1.0, 0).shape == (0,)

    def test_flow_rng_uses_crc32_derivation(self):
        import zlib

        expected = np.random.default_rng(zlib.crc32(b"zipf:7"))
        assert flow_rng(7).integers(0, 1 << 30) == expected.integers(0, 1 << 30)

    def test_same_seed_same_stream(self):
        first = zipf_source(seed=3).arrival_list(0.05)
        second = zipf_source(seed=3).arrival_list(0.05)
        assert first == second

    def test_different_seeds_differ(self):
        first = zipf_source(seed=0).arrival_list(0.05)
        second = zipf_source(seed=5).arrival_list(0.05)
        assert [a.flow for a in first] != [a.flow for a in second]

    def test_flow_draws_leave_base_rng_untouched(self):
        """Re-flowing the same base stream at another skew must not
        shift the base source's arrivals."""
        plain = PoissonSource(11000.0, size=552, rng=9).arrival_list(0.05)
        flowed = zipf_source(seed=9, skew=1.5).arrival_list(0.05)
        assert [(a.time, a.size) for a in flowed] == [
            (a.time, a.size) for a in plain
        ]

    def test_top_flow_share_grows_with_skew(self):
        shares = []
        for skew in (0.0, 0.8, 1.6):
            ids = zipf_flow_ids(5000, 64, skew, seed=0)
            shares.append(float(np.mean(ids == 0)))
        assert shares[0] < shares[1] < shares[2]

    def test_flow_arrival_validation(self):
        with pytest.raises(ConfigurationError):
            FlowArrival(time=0.0, size=100, flow=-1)
        # The base Arrival checks still run despite slots=True.
        with pytest.raises(ConfigurationError):
            FlowArrival(time=-1.0, size=100, flow=0)
        with pytest.raises(ConfigurationError):
            FlowArrival(time=0.0, size=0, flow=0)

    def test_rate_passthrough(self):
        assert zipf_source(rate=12345.0).rate == 12345.0

    def test_num_flows_one_degenerates_to_single_flow(self):
        ids = zipf_flow_ids(500, 1, 1.3, seed=0)
        assert ids.shape == (500,)
        assert np.all(ids == 0)
        assert zipf_weights(1, 0.0) == pytest.approx([1.0])
        assert zipf_weights(1, 2.0) == pytest.approx([1.0])

    @given(
        num_flows=st.integers(2, 256),
        low=st.floats(0.0, 1.5, allow_nan=False),
        delta=st.floats(0.05, 1.5, allow_nan=False),
    )
    @settings(max_examples=60, deadline=None)
    def test_top_flow_weight_monotone_in_skew(self, num_flows, low, delta):
        """The most popular destination's share only grows with skew —
        the structural property behind the empirical share test above,
        checked on the exact weights for any population size (gossip
        peer populations included)."""
        assert (
            zipf_weights(num_flows, low + delta)[0]
            >= zipf_weights(num_flows, low)[0]
        )

    def test_gossip_peer_popularity_monotone_in_skew(self):
        """Same monotonicity through the gossip fleet's peer weighting."""
        from repro.gossip import GossipFleetSpec

        shares = [
            GossipFleetSpec(num_peers=1000, peer_skew=skew).peer_popularity()[0]
            for skew in (0.0, 0.7, 1.4)
        ]
        assert shares[0] < shares[1] < shares[2]


# ----------------------------------------------------------------------
# The stateful-base snapshot fix (regression guard)


class _CountingSource:
    """Wraps a source and counts how many times its stream is drawn."""

    def __init__(self, inner):
        self.inner = inner
        self.draws = 0

    @property
    def rate(self):
        return self.inner.rate

    def arrivals(self, duration):
        self.draws += 1
        yield from self.inner.arrivals(duration)

    def arrival_list(self, duration):
        return list(self.arrivals(duration))


class TestStatefulBaseSnapshot:
    def bursty_source(self, seed=4):
        from repro.traffic.onoff import ParetoOnOffSource

        return ParetoOnOffSource(
            num_sources=4, packet_rate_on=4000.0, size=552, rng=seed
        )

    def test_stateful_base_rematerializes_identically(self):
        """The bug: re-drawing a stateful base (Pareto ON/OFF keeps live
        RNG state) from the same ZipfFlowSource advanced the base RNG,
        so a second materialization silently produced a different
        stream.  The snapshot fix pins both draws byte-identical."""
        flowed = ZipfFlowSource(
            self.bursty_source(), num_flows=64, skew=1.1, seed=4
        )
        first = flowed.arrival_list(0.05)
        second = flowed.arrival_list(0.05)
        assert first == second

    def test_base_stream_drawn_once_per_duration(self):
        counting = _CountingSource(self.bursty_source())
        flowed = ZipfFlowSource(counting, num_flows=64, skew=1.1, seed=4)
        flowed.arrival_list(0.05)
        flowed.arrival_list(0.05)
        assert counting.draws == 1
        # A different duration is a different snapshot.
        flowed.arrival_list(0.02)
        assert counting.draws == 2

    def test_fresh_wrapper_matches_reused_wrapper(self):
        """Two fresh wrappers and one reused wrapper agree — the
        snapshot changes nothing for the first materialization."""
        fresh = ZipfFlowSource(
            self.bursty_source(), num_flows=64, skew=1.1, seed=4
        ).arrival_list(0.05)
        reused = ZipfFlowSource(
            self.bursty_source(), num_flows=64, skew=1.1, seed=4
        )
        reused.arrival_list(0.05)
        assert reused.arrival_list(0.05) == fresh


# ----------------------------------------------------------------------
# The lookup cache (repro.flows.lookup)


class _CycleCounter:
    def __init__(self):
        self.cycles = 0.0

    def execute(self, cycles):
        self.cycles += cycles


class _Binding:
    def __init__(self):
        self.cpu = _CycleCounter()


class TestFlowLookup:
    def test_every_registered_org_builds(self):
        for name in FLOW_CACHE_ORGS:
            cache = make_flow_cache(name, 16)
            assert cache.access_line(3) is True  # cold miss
            assert cache.access_line(3) is False  # now resident

    def test_unknown_org_rejected(self):
        with pytest.raises(ConfigurationError):
            make_flow_cache("phantom", 16)
        with pytest.raises(ConfigurationError):
            FlowCacheSpec(organization="phantom")

    def test_spec_validates_costs_and_entries(self):
        with pytest.raises(ConfigurationError):
            FlowCacheSpec(hit_cycles=-1.0)
        with pytest.raises(ConfigurationError):
            FlowCacheSpec(hit_cycles=10.0, miss_cycles=5.0)
        with pytest.raises(ConfigurationError):
            FlowCacheSpec(entries=12)  # not a power of two
        with pytest.raises(ConfigurationError):
            FlowCacheSpec(entries=2, organization="lru4")  # ways > lines

    def test_lookup_cost_model(self):
        lookup = FlowCacheSpec(entries=16).build()
        assert lookup.lookup(3) == 120.0  # cold miss: full table walk
        assert lookup.lookup(3) == 4.0  # cached destination

    def test_charge_batch_dedups_within_batch(self):
        lookup = FlowCacheSpec(entries=16).build()
        binding = _Binding()
        cycles = lookup.charge_batch(binding, [3, 3, 5, 3])
        assert lookup.demand == 4
        assert lookup.lookups == 2  # distinct flows 3 and 5
        assert lookup.stats.misses == 2
        assert cycles == 240.0
        assert binding.cpu.cycles == 240.0
        # The next batch re-resolves both flows, now cached.
        assert lookup.charge_batch(binding, [5, 3]) == 8.0
        assert lookup.stats.hits == 2

    def test_charge_batch_empty_is_free(self):
        lookup = FlowCacheSpec().build()
        binding = _Binding()
        assert lookup.charge_batch(binding, []) == 0.0
        assert binding.cpu.cycles == 0.0
        assert lookup.lookups == 0

    def test_fifo_org_differs_from_lru_on_hit_refresh(self):
        """The trace that separates the policies: a hit on the oldest
        entry saves it under LRU but not under FIFO."""
        trace = [0, 2, 0, 4, 0]  # 2-way, entries=4 -> 2 sets; all even
        costs = {}
        for org in ("lru2", "fifo2"):
            lookup = FlowCacheSpec(entries=4, organization=org).build()
            for flow in trace:
                lookup.lookup(flow)
            costs[org] = lookup.stats.misses
        assert costs["lru2"] == 3  # flow 0 survives: 0, 2, 4 cold-miss
        assert costs["fifo2"] == 4  # 4 evicts 0; the last 0 misses again

    def test_describe_round_trip(self):
        lookup = FlowCacheSpec(entries=8, organization="lru2").build()
        lookup.lookup(1)
        description = lookup.describe()
        assert description["entries"] == 8
        assert description["organization"] == "lru2"
        assert description["lookups"] == 1
        assert description["misses"] == 1
        assert description["untagged"] == 0

    def test_charge_batch_untagged_walks_without_touching_cache(self):
        """The fixed accounting bug: untagged messages (``None``) each
        pay a full table walk, never dedup, and never touch the cache."""
        lookup = FlowCacheSpec(entries=16).build()
        binding = _Binding()
        cycles = lookup.charge_batch(binding, [3, None, 3, None])
        assert lookup.demand == 4
        assert lookup.lookups == 3  # flow 3 once + two walks
        assert lookup.untagged == 2
        assert lookup.stats.misses == 1  # only flow 3 touched the cache
        assert lookup.stats.hits == 0
        assert cycles == 3 * 120.0

    def test_untagged_does_not_alias_flow_zero(self):
        """Before the fix, untagged messages were coerced to flow 0 —
        warming flow 0's cache slot and deduplicating against it.  Now
        a walk leaves flow 0 cold, and a genuine flow 0 in the same
        batch still performs its own lookup."""
        lookup = FlowCacheSpec(entries=16).build()
        binding = _Binding()
        lookup.charge_batch(binding, [None])
        assert lookup.stats.misses == 0  # cache untouched
        cycles = lookup.charge_batch(binding, [0, None])
        assert lookup.stats.misses == 1  # flow 0 still cold-misses
        assert cycles == 2 * 120.0
        assert lookup.untagged == 2

    def test_scheduler_hook_passes_untagged_as_none(self):
        """End-to-end through ``charge_flow_lookups``: a message with no
        FLOW_KEY meta reaches the cache as ``None``, not flow 0."""
        from repro.core.layer import Message
        from repro.core.scheduler import charge_flow_lookups

        scheduler = build_scheduler(SimulationConfig(scheduler="ldlp"), 0)
        lookup = FlowCacheSpec(entries=16).build()
        scheduler.binding.flow_lookup = lookup
        tagged = Message(size=100, arrival_time=0.0)
        tagged.meta["dispatch.flow"] = 0
        untagged = Message(size=100, arrival_time=0.0)
        charge_flow_lookups(scheduler, [tagged, untagged, untagged])
        assert lookup.demand == 3
        assert lookup.lookups == 3
        assert lookup.untagged == 2
        assert lookup.stats.misses == 1  # only the tagged flow


# ----------------------------------------------------------------------
# Flow-charged runs (repro.flows.runner)


class TestFlowRuns:
    def config(self, scheduler, engine="vec"):
        return SimulationConfig(
            scheduler=scheduler, duration=0.05, engine=engine
        )

    def test_vec_envelope_declines_flow_lookup(self):
        scheduler = build_scheduler(self.config("ldlp"), 0)
        assert vec_supported(scheduler)
        scheduler.binding.flow_lookup = FlowCacheSpec().build()
        assert not vec_supported(scheduler)

    def test_conservation_exact(self):
        result = run_flow_simulation(
            zipf_source(), self.config("ldlp"), FlowCacheSpec(entries=16)
        )
        run = result.run
        assert run.offered == run.completed + run.dropped
        assert result.lookups <= result.demand
        assert result.hits + result.misses == result.lookups

    def test_batching_amortizes_lookups(self):
        """LDLP resolves each destination once per batch, so it performs
        strictly fewer lookups than Conventional on the same offered
        load — and never more misses per completed message."""
        cache = FlowCacheSpec(entries=16)
        conventional = run_flow_simulation(
            zipf_source(), self.config("conventional"), cache
        )
        ldlp = run_flow_simulation(zipf_source(), self.config("ldlp"), cache)
        assert conventional.demand == conventional.lookups  # no batches
        assert ldlp.lookups < ldlp.demand  # batches dedup
        assert ldlp.lookup_misses_per_message <= (
            conventional.lookup_misses_per_message + 1e-9
        )

    def test_plain_arrivals_map_to_flow_zero(self):
        """A non-flow source is the one-destination degenerate case:
        a single cold miss, then every lookup hits."""
        result = run_flow_simulation(
            PoissonSource(11000.0, size=552, rng=0),
            self.config("conventional"),
        )
        assert result.misses == 1
        assert result.hits == result.lookups - 1

    def test_point_identical_across_engines(self):
        base = dict(
            scheduler="ldlp",
            organization="lru4",
            entries=16,
            skew=1.1,
            rate=11000.0,
            seeds=[0, 1],
            duration=0.02,
        )
        vec = flows_point(**base, engine="vec")
        scalar = flows_point(**base, engine="scalar")
        assert json.dumps(vec, sort_keys=True) == json.dumps(
            scalar, sort_keys=True
        )

    def test_point_repeats_byte_identically(self):
        first = flows_point(
            "grouped", "fifo4", 16, 1.1, 11000.0, [0, 1], 0.02
        )
        second = flows_point(
            "grouped", "fifo4", 16, 1.1, 11000.0, [0, 1], 0.02
        )
        assert json.dumps(first, sort_keys=True) == json.dumps(
            second, sort_keys=True
        )

    def test_point_different_seeds_differ(self):
        first = flows_point("ldlp", "direct", 16, 1.1, 11000.0, [0], 0.02)
        second = flows_point("ldlp", "direct", 16, 1.1, 11000.0, [5], 0.02)
        assert first["result"] != second["result"]

    def test_make_flow_base_builds_and_validates(self):
        assert make_flow_base("poisson", 9000.0, 552, 0).rate == 9000.0
        bursty = make_flow_base("bellcore", 9000.0, 552, 0)
        assert bursty.mean_rate == pytest.approx(9000.0)
        with pytest.raises(ConfigurationError):
            make_flow_base("fractal", 9000.0, 552, 0)

    def test_bellcore_point_repeats_byte_identically(self):
        """The sweep's bursty companion grid is deterministic — the
        direct consequence of the ZipfFlowSource snapshot fix."""
        params = ("ldlp", "lru4", 16, 1.1, 9000.0, [0, 1], 0.02)
        first = flows_point(*params, base="bellcore")
        second = flows_point(*params, base="bellcore")
        assert json.dumps(first, sort_keys=True) == json.dumps(
            second, sort_keys=True
        )
        assert first["conservation_violations"] == 0

    def test_bellcore_differs_from_poisson(self):
        params = ("ldlp", "direct", 16, 1.1, 9000.0, [0], 0.02)
        assert (
            flows_point(*params, base="bellcore")["result"]
            != flows_point(*params, base="poisson")["result"]
        )

    def test_hit_ratio_grows_with_cache_size(self):
        ratios = []
        for entries in (4, 16, 64):
            result = run_flow_simulation(
                zipf_source(),
                self.config("conventional"),
                FlowCacheSpec(entries=entries),
            )
            ratios.append(result.hit_ratio)
        assert ratios[0] < ratios[1] < ratios[2]


# ----------------------------------------------------------------------
# Byte-identity across harness worker counts (acceptance pin)


class TestSweepDeterminism:
    def tiny_spec(self):
        """The real flows sweep shrunk to stay fast under pytest."""
        from repro.harness.points import SweepPoint, SweepSpec

        def points(scale):
            del scale
            return [
                SweepPoint(
                    experiment="tinyflows",
                    key=f"{scheduler}/{organization}",
                    func="repro.flows.runner:flows_point",
                    params={
                        "scheduler": scheduler,
                        "organization": organization,
                        "entries": 16,
                        "skew": 1.1,
                        "rate": 11000.0,
                        "seeds": [0, 1],
                        "duration": 0.02,
                    },
                )
                for scheduler in ("conventional", "ldlp")
                for organization in ("direct", "fifo2")
            ]

        return SweepSpec(
            name="tinyflows",
            points=points,
            quantities=lambda points, results: {},
            sources=("repro.sim", "repro.core", "repro.flows"),
        )

    def test_identical_across_jobs(self, tmp_path):
        spec = self.tiny_spec()
        serial = run_experiment(spec, jobs=1, cache=ResultCache(tmp_path / "a"))
        parallel = run_experiment(
            spec, jobs=2, cache=ResultCache(tmp_path / "b")
        )
        assert serial.results_json() == parallel.results_json()


# ----------------------------------------------------------------------
# Experiment declaration and the HARN003 coverage rule


class TestExperimentSweep:
    def shrunk_results(self):
        points = experiment.sweep_points("ci")
        results = {
            point.key: flows_point(
                **{**point.params, "seeds": [0], "duration": 0.02}
            )
            for point in points
        }
        return points, results

    def test_scales_cover_every_organization(self):
        exercised = set()
        for scale in experiment.SWEEP_SCALES:
            for point in experiment.sweep_points(scale):
                exercised.add(point.params["organization"])
        assert exercised == set(FLOW_CACHE_ORGS)

    def test_ci_scale_includes_bellcore_grid(self):
        bases = {
            point.params.get("base", "poisson")
            for point in experiment.sweep_points("ci")
        }
        assert bases == {"poisson", "bellcore"}

    def test_golden_quantities_pin_the_jain_curves(self):
        points, results = self.shrunk_results()
        quantities = experiment.golden_quantities(points, results)
        assert quantities["conservation_violations"] == 0.0
        assert quantities["lookup_amortization_ok"] == 1.0
        assert quantities["lookup_reduction_ok"] == 1.0
        monotone = [
            value
            for name, value in quantities.items()
            if name.endswith("hit_ratio_monotonic")
        ]
        assert monotone and all(value == 1.0 for value in monotone)

    def test_exact_tolerances_cover_booleans(self):
        tolerances = experiment.SWEEP.tolerances
        assert "lookup_amortization_ok" in tolerances
        assert "lookup_reduction_ok" in tolerances
        assert "conservation_violations" in tolerances
        assert any(
            name.endswith("hit_ratio_monotonic") for name in tolerances
        )

    def test_assemble_and_render(self):
        points, results = self.shrunk_results()
        table = experiment.assemble(points, results).render()
        assert "scheduler" in table and "entries" in table

    def test_harn003_clean_on_shipped_registry(self):
        assert check_flow_org_coverage() == []

    def test_harn003_flags_unexercised_organization(self, monkeypatch):
        import repro.flows.lookup as lookup_module

        monkeypatch.setitem(
            lookup_module.FLOW_CACHE_ORGS,
            "phantom",
            lambda entries: DirectMappedCache(entries, line_size=1),
        )
        findings = check_flow_org_coverage()
        assert len(findings) == 1
        assert findings[0].rule_id == "HARN003"
        assert findings[0].details["organization"] == "phantom"
