"""Tests for the repro.trace package."""

import io

import pytest

from repro.errors import TraceError
from repro.trace import (
    LayerClassifier,
    MemRef,
    RefKind,
    TraceBuffer,
    build_call_graph,
    code_ref,
    dump_trace,
    parse_trace,
    phase_stats,
    read_ref,
    write_ref,
)


class TestMemRef:
    def test_constructors(self):
        assert code_ref(0).kind is RefKind.CODE
        assert read_ref(0).kind is RefKind.READ
        assert write_ref(0).kind is RefKind.WRITE

    def test_end(self):
        assert read_ref(100, 8).end == 108

    def test_rejects_negative_addr(self):
        with pytest.raises(TraceError):
            MemRef(RefKind.READ, -1, 4)

    def test_rejects_zero_size(self):
        with pytest.raises(TraceError):
            MemRef(RefKind.READ, 0, 0)

    def test_kind_from_letter(self):
        assert RefKind.from_letter("C") is RefKind.CODE
        with pytest.raises(TraceError):
            RefKind.from_letter("X")


class TestTraceBuffer:
    def test_append_attaches_current_fn(self):
        trace = TraceBuffer()
        trace.enter("tcp_input")
        trace.append(code_ref(0))
        assert trace.refs[0].fn == "tcp_input"

    def test_explicit_fn_preserved(self):
        trace = TraceBuffer()
        trace.enter("outer")
        trace.append(code_ref(0, fn="inner"))
        assert trace.refs[0].fn == "inner"

    def test_nested_calls(self):
        trace = TraceBuffer()
        trace.enter("a")
        trace.enter("b")
        trace.append(code_ref(0))
        trace.leave()
        trace.append(code_ref(4))
        assert [r.fn for r in trace.refs] == ["b", "a"]

    def test_leave_without_enter_raises(self):
        with pytest.raises(TraceError):
            TraceBuffer().leave()

    def test_phase_slices_cover_everything(self):
        trace = TraceBuffer()
        trace.append(code_ref(0))
        trace.mark_phase("intr")
        trace.append(code_ref(4))
        trace.append(code_ref(8))
        slices = trace.phase_slices()
        assert [(label, sl.start, sl.stop) for label, sl in slices] == [
            ("prelude", 0, 1),
            ("intr", 1, 3),
        ]

    def test_empty_phase_rejected(self):
        trace = TraceBuffer()
        trace.mark_phase("entry")
        with pytest.raises(TraceError):
            trace.mark_phase("exit")

    def test_refs_in_phase(self):
        trace = TraceBuffer()
        trace.mark_phase("entry")
        trace.append(code_ref(0))
        trace.mark_phase("exit")
        trace.append(code_ref(4))
        assert [r.addr for r in trace.refs_in_phase("exit")] == [4]
        with pytest.raises(TraceError):
            trace.refs_in_phase("missing")

    def test_no_phases_single_prelude(self):
        trace = TraceBuffer()
        trace.append(code_ref(0))
        assert trace.phase_slices() == [("prelude", slice(0, 1))]

    def test_empty_trace_no_slices(self):
        assert TraceBuffer().phase_slices() == []


class TestPhaseStats:
    def test_figure1_style_totals(self):
        trace = TraceBuffer()
        trace.mark_phase("intr")
        trace.enter("tcp_input")
        trace.append(code_ref(0, 4))
        trace.append(code_ref(4, 4))  # same line as previous
        trace.append(read_ref(1000, 8))
        trace.append(write_ref(2000, 8))
        stats = phase_stats(trace)
        assert len(stats) == 1
        phase = stats[0]
        assert phase.code.bytes == 32
        assert phase.code.refs == 2
        assert phase.read.bytes == 32
        assert phase.read.refs == 1
        assert phase.write.bytes == 32
        assert phase.write.refs == 1

    def test_format_matches_paper_layout(self):
        trace = TraceBuffer()
        trace.mark_phase("pkt intr")
        trace.append(code_ref(0))
        text = phase_stats(trace)[0].format()
        assert "pkt intr:" in text
        assert "Code: 32 bytes 1 refs" in text


class TestTraceIO:
    def build_trace(self):
        trace = TraceBuffer()
        trace.mark_phase("entry")
        trace.enter("syscall")
        trace.append(code_ref(0x1000, 4))
        trace.append(read_ref(0x2000, 8))
        trace.enter("soreceive")
        trace.append(write_ref(0x3000, 4))
        trace.leave()
        trace.leave()
        return trace

    def test_roundtrip(self):
        trace = self.build_trace()
        stream = io.StringIO()
        dump_trace(trace, stream)
        parsed = parse_trace(stream.getvalue().splitlines())
        assert parsed.refs == trace.refs
        assert parsed.phase_marks == trace.phase_marks
        assert parsed.call_events == trace.call_events

    def test_save_and_load_file(self, tmp_path):
        from repro.trace import load_trace, save_trace

        trace = self.build_trace()
        path = tmp_path / "trace.txt"
        save_trace(trace, path)
        assert load_trace(path).refs == trace.refs

    def test_comments_and_blanks_ignored(self):
        parsed = parse_trace(["; comment", "", "C 0x10 4 fn"])
        assert len(parsed.refs) == 1
        assert parsed.refs[0].fn == "fn"

    def test_malformed_line_raises(self):
        with pytest.raises(TraceError):
            parse_trace(["C 0x10"])

    def test_bad_kind_raises(self):
        with pytest.raises(TraceError):
            parse_trace(["Z 0x10 4"])

    def test_bad_number_raises(self):
        with pytest.raises(TraceError):
            parse_trace(["C zzz 4"])


class TestCallGraph:
    def test_basic_graph(self):
        trace = TraceBuffer()
        trace.enter("syscall")
        trace.enter("soreceive")
        trace.leave()
        trace.enter("soreceive")
        trace.leave()
        trace.enter("tsleep")
        trace.leave()
        trace.leave()
        graph = build_call_graph(trace)
        assert graph.roots == ["syscall"]
        assert graph.call_count("syscall", "soreceive") == 2
        assert graph.call_count("syscall", "tsleep") == 1
        assert graph.call_count("tsleep", "syscall") == 0

    def test_callees_sorted_by_count(self):
        trace = TraceBuffer()
        trace.enter("main")
        for _ in range(3):
            trace.enter("often")
            trace.leave()
        trace.enter("rare")
        trace.leave()
        trace.leave()
        graph = build_call_graph(trace)
        assert graph.callees("main") == ["often", "rare"]

    def test_transitive_callees(self):
        trace = TraceBuffer()
        trace.enter("a")
        trace.enter("b")
        trace.enter("c")
        trace.leave()
        trace.leave()
        trace.leave()
        graph = build_call_graph(trace)
        assert graph.transitive_callees("a") == {"b", "c"}
        assert graph.transitive_callees("missing") == set()

    def test_mismatched_return_raises(self):
        trace = TraceBuffer()
        trace.enter("a")
        # Corrupt the event stream directly.
        from repro.trace.buffer import CallEvent

        trace.call_events.append(CallEvent(0, "b", enter=False))
        with pytest.raises(TraceError):
            build_call_graph(trace)

    def test_format_tree(self):
        trace = TraceBuffer()
        trace.enter("a")
        trace.enter("b")
        trace.leave()
        trace.leave()
        graph = build_call_graph(trace)
        assert graph.format() == "a\n  b"


class TestLayerClassifier:
    def test_layers_in_order(self):
        classifier = LayerClassifier({"f1": "A", "f2": "B", "f3": "A"})
        assert classifier.layers() == ["A", "B"]

    def test_none_fn_unclassified(self):
        classifier = LayerClassifier({})
        assert classifier.layer_of_fn(None) == "unclassified"
