"""Tests for repro.analysis.reporters — text/JSON shapes and ordering."""

import json

import numpy as np

from repro.analysis import Finding
from repro.analysis.reporters import (
    finding_to_dict,
    order_findings,
    render_json,
    render_text,
)


def sample_findings():
    return [
        Finding("MBUF001", "freed twice", "examples/demo.py", line=12),
        Finding("LDLP002", "working set 68KB > 8KB", "stack:netbsd",
                details={"overflow_bytes": 61440}),
        Finding("DET003", "wall-clock read time.time", "src/repro/x.py",
                line=3, details={"clock": "time.time"}),
    ]


class TestOrderFindings:
    def test_sorted_by_target_line_rule(self):
        ordered = order_findings(sample_findings())
        assert [f.target for f in ordered] == [
            "examples/demo.py", "src/repro/x.py", "stack:netbsd"
        ]

    def test_total_order_is_input_order_independent(self):
        findings = sample_findings()
        forward = order_findings(findings)
        backward = order_findings(list(reversed(findings)))
        assert [f.location for f in forward] == [f.location for f in backward]

    def test_ties_broken_by_line_then_rule(self):
        findings = [
            Finding("MBUF002", "b", "f.py", line=5),
            Finding("MBUF001", "a", "f.py", line=5),
            Finding("MBUF001", "a", "f.py", line=2),
        ]
        ordered = order_findings(findings)
        assert [(f.line, f.rule_id) for f in ordered] == [
            (2, "MBUF001"), (5, "MBUF001"), (5, "MBUF002")
        ]

    def test_does_not_mutate_input(self):
        findings = sample_findings()
        snapshot = list(findings)
        order_findings(findings)
        assert findings == snapshot


class TestRenderText:
    def test_one_line_per_finding_plus_counts(self):
        text = render_text(order_findings(sample_findings()))
        lines = text.splitlines()
        assert lines[0].startswith("examples/demo.py:12: error MBUF001")
        assert "double-free" in lines[0]
        assert lines[-1] == "3 finding(s): 2 error(s), 1 warning(s), 0 info"

    def test_empty_report(self):
        assert render_text([]) == "no findings"

    def test_summaries_appended(self):
        text = render_text([], summaries={"determinism": {"det_findings": 0}})
        assert "[determinism]" in text.splitlines()[-1]


class TestRenderJson:
    def test_schema_shape(self):
        payload = json.loads(render_json(sample_findings()))
        assert payload["analyzer"] == "repro.analysis"
        assert payload["counts"] == {"error": 2, "warning": 1, "info": 0}
        assert len(payload["findings"]) == 3
        first = payload["findings"][0]
        assert set(first) == {
            "rule_id", "rule", "severity", "paper_section",
            "target", "line", "location", "message", "details",
        }

    def test_rule_metadata_inlined(self):
        entry = finding_to_dict(sample_findings()[1])
        assert entry["rule"] == "working-set-overflow"
        assert entry["severity"] == "warning"
        assert entry["paper_section"] == "Section 2, Table 1"
        assert entry["location"] == "stack:netbsd"
        assert entry["details"] == {"overflow_bytes": 61440}

    def test_numpy_details_coerced(self):
        finding = Finding(
            "LDLP001", "alias", "layout",
            details={"bytes": np.int64(4096)},
        )
        payload = json.loads(render_json([finding]))
        assert payload["findings"][0]["details"]["bytes"] == 4096

    def test_arbitrary_detail_coerced_to_str(self):
        # _json_default falls back through int/float/str; str() accepts
        # nearly anything, so odd leaves degrade to repr-ish text rather
        # than crashing the report.
        finding = Finding("LDLP001", "alias", "layout",
                          details={"bad": object()})
        payload = json.loads(render_json([finding]))
        assert payload["findings"][0]["details"]["bad"].startswith("<object")

    def test_summaries_key(self):
        payload = json.loads(
            render_json([], summaries={"determinism": {"det_findings": 0}})
        )
        assert payload["stacks"]["determinism"]["det_findings"] == 0
