"""Differential harness: the vec engine must equal the scalar engine.

The vectorized drive loop (:mod:`repro.sim.vec`) is only allowed to be
*fast*; it is never allowed to be *different*.  These tests enforce the
contract at three levels:

* **ExperimentRun level** — every declared experiment at CI scale,
  executed once per engine through the real harness (no cache), must
  produce byte-identical canonical-JSON results, identical obs
  counters, and an intact drop/completion conservation balance.
* **Property level** — hypothesis fans random ``SimulationConfig``
  combinations (scheduler × drop policy × fault plan × seed) through
  both engines and compares results and counters.
* **Degenerate-input level** — zero-length and length-1 arrival
  streams through every scheduler and drop policy (the PR 4
  ``len()``-truthiness bug class), plus the structured arrival table
  itself at those lengths.

Plus the engine-selection seams: config validation, the static
``vec_supported`` envelope, and the silent scalar fallbacks.
"""

from __future__ import annotations

from dataclasses import replace

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.binding import MachineBinding
from repro.core.layer import CountingLayer, LayerFootprint
from repro.core.overload import DROP_POLICIES
from repro.core.scheduler import ConventionalScheduler, LDLPScheduler
from repro.errors import ConfigurationError
from repro.faults.campaigns import campaign_plan
from repro.harness.cache import ResultCache, canonical_json
from repro.harness.points import point_accepts_engine, with_engine
from repro.harness.registry import EXPERIMENT_MODULES, get_spec
from repro.harness.runner import run_experiment
from repro.obs.runtime import Recorder, recording
from repro.sim.runner import (
    ENGINE_NAMES,
    SCHEDULER_NAMES,
    SimulationConfig,
    build_paper_stack,
    run_simulation,
)
from repro.sim.vec import ARRIVAL_DTYPE, arrival_table, try_drive_vec, vec_supported
from repro.traffic.base import Arrival
from repro.traffic.poisson import PoissonSource

POLICY_NAMES = tuple(sorted(DROP_POLICIES))


def _run_both_engines(config, arrivals, seed):
    """One config on both engines under a metrics recorder; returns
    {engine: (canonical result JSON, counters dict)}."""
    outcomes = {}
    for engine in ENGINE_NAMES:
        recorder = Recorder(keep_spans=False)
        with recording(recorder):
            result = run_simulation(
                PoissonSource(1000.0, rng=seed),
                replace(config, engine=engine),
                seed=seed,
                arrivals=arrivals,
            )
        outcomes[engine] = (
            canonical_json(result.to_dict()),
            recorder.counters.as_dict(),
        )
    return outcomes


# ----------------------------------------------------------------------
# ExperimentRun level: all declared experiments, both engines


@pytest.mark.parametrize("name", sorted(EXPERIMENT_MODULES))
def test_experiment_byte_identical_across_engines(name):
    """Stats, counters, and conservation balance at CI scale."""
    runs = {}
    for engine in ENGINE_NAMES:
        spec = with_engine(get_spec(name), engine)
        runs[engine] = run_experiment(
            spec, scale="ci", jobs=1, cache=ResultCache(enabled=False)
        )
    scalar, vec = runs["scalar"], runs["vec"]
    assert scalar.results_json() == vec.results_json()
    assert scalar.counters == vec.counters
    counters = vec.counters
    if counters.get("messages.arrivals"):
        # Every simulated drive loop runs until the queue drains, so
        # arrivals must be fully accounted as completions + drops.
        assert counters["messages.arrivals"] == (
            counters.get("messages.completions", 0.0)
            + counters.get("messages.drops", 0.0)
        )


def test_engine_tagging_only_touches_sim_points():
    """with_engine pins sim-backed points and leaves analytic ones."""
    faults = with_engine(get_spec("faults"), "scalar").points_for("ci")
    assert all(point.params["engine"] == "scalar" for point in faults)
    table1 = get_spec("table1")
    assert [
        point.params for point in with_engine(table1, "scalar").points_for("ci")
    ] == [point.params for point in table1.points_for("ci")]
    assert not any(
        point_accepts_engine(point) for point in table1.points_for("ci")
    )


# ----------------------------------------------------------------------
# Property level: random configs through both engines


@settings(max_examples=20, deadline=None)
@given(
    scheduler=st.sampled_from(SCHEDULER_NAMES),
    policy=st.sampled_from(POLICY_NAMES),
    seed=st.integers(0, 2**20),
    rate=st.sampled_from([2000.0, 9000.0, 15000.0]),
    input_limit=st.sampled_from([4, 32, 500]),
    faulted=st.booleans(),
)
def test_random_config_equivalence(
    scheduler, policy, seed, rate, input_limit, faulted
):
    """scheduler × drop policy × fault plan × seed, scalar ≡ vec."""
    duration = 0.015
    flush = None
    source = PoissonSource(rate, rng=seed)
    arrivals = source.arrival_list(duration)
    if faulted:
        # The standard campaign plan: loss, duplication, reordering and
        # jitter (out-of-order timestamps!) plus periodic cache flushes.
        plan = campaign_plan()
        arrivals = plan.apply(arrivals, seed)
        flush = plan.flush_period_cycles
    config = SimulationConfig(
        scheduler=scheduler,
        drop_policy=policy,
        duration=duration,
        input_limit=input_limit,
        flush_period_cycles=flush,
    )
    outcomes = _run_both_engines(config, arrivals, seed)
    assert outcomes["scalar"] == outcomes["vec"]


@settings(max_examples=10, deadline=None)
@given(
    scheduler=st.sampled_from(SCHEDULER_NAMES),
    batch_limit=st.sampled_from([1, 3, 14]),
    buffer_size=st.sampled_from([1024, 2048]),
    prefetch=st.sampled_from([0.0, 0.3, 0.5]),
    seed=st.integers(0, 2**10),
)
def test_machine_variation_equivalence(
    scheduler, batch_limit, buffer_size, prefetch, seed
):
    """Machine-shape knobs that stress the template compiler: batch
    caps, buffer geometry, and the iprefetch rounding path."""
    from repro.cache.hierarchy import MachineSpec

    config = SimulationConfig(
        scheduler=scheduler,
        duration=0.01,
        batch_limit=batch_limit,
        buffer_size=buffer_size,
        spec=MachineSpec(iprefetch_efficiency=prefetch),
    )
    arrivals = PoissonSource(9000.0, rng=seed).arrival_list(config.duration)
    outcomes = _run_both_engines(config, arrivals, seed)
    assert outcomes["scalar"] == outcomes["vec"]


# ----------------------------------------------------------------------
# Degenerate-input level: the PR 4 truthiness bug class


@pytest.mark.parametrize("scheduler", SCHEDULER_NAMES)
@pytest.mark.parametrize("policy", POLICY_NAMES)
def test_empty_and_singleton_streams(scheduler, policy):
    """Zero-length and length-1 arrival streams through every
    scheduler and drop policy, on both engines."""
    for arrivals in ([], [Arrival(time=0.001, size=552)]):
        config = SimulationConfig(
            scheduler=scheduler, drop_policy=policy, duration=0.01
        )
        outcomes = _run_both_engines(config, list(arrivals), seed=0)
        assert outcomes["scalar"] == outcomes["vec"]
        for engine in ENGINE_NAMES:
            result_json, counters = outcomes[engine]
            expected = float(len(arrivals))
            assert counters.get("messages.arrivals", 0.0) == expected
            assert counters.get("messages.completions", 0.0) == expected


def test_arrival_table_degenerate_lengths():
    """The columnar arrival table at lengths 0 and 1."""
    empty = arrival_table([], hz=100e6)
    assert empty.dtype == ARRIVAL_DTYPE
    assert empty.shape == (0,)
    from repro.core.layer import Message

    single = arrival_table([(0.25, Message(size=552))], hz=100e6)
    assert single.shape == (1,)
    assert single["cycle"][0] == 0.25 * 100e6
    assert single["size"][0] == 552


# ----------------------------------------------------------------------
# Engine-selection seams


def test_unknown_engine_rejected():
    with pytest.raises(ConfigurationError):
        SimulationConfig(engine="turbo")
    from repro.sim.runner import drive

    scheduler = ConventionalScheduler(build_paper_stack(), MachineBinding())
    with pytest.raises(ConfigurationError):
        drive(scheduler, [], engine="turbo")


def test_vec_supported_envelope():
    """The static envelope: paper stacks vectorize, stateful stacks,
    unbound schedulers and oversized code working sets do not."""
    assert vec_supported(
        LDLPScheduler(build_paper_stack(), MachineBinding())
    )
    assert not vec_supported(
        ConventionalScheduler(build_paper_stack())  # no binding
    )
    counting = [
        CountingLayer(f"count{i}", LayerFootprint()) for i in range(2)
    ]
    assert not vec_supported(
        ConventionalScheduler(counting, MachineBinding())
    )
    # 12 KB of layer code = 384 lines in a 256-set I-cache: the code
    # working set conflicts with itself, so the static template is
    # unsound and the engine must decline (ablations A3 hits this).
    big = build_paper_stack(code_bytes=12288)
    assert not vec_supported(ConventionalScheduler(big, MachineBinding()))


def test_unsupported_stack_falls_back_to_scalar():
    """engine='vec' on an ineligible stack silently runs scalar and
    produces the scalar result."""
    counting = [
        CountingLayer(f"count{i}", LayerFootprint()) for i in range(3)
    ]
    scheduler = ConventionalScheduler(counting, MachineBinding())
    assert try_drive_vec(scheduler, []) is None
    results = {}
    for engine in ENGINE_NAMES:
        config = SimulationConfig(
            scheduler="conventional",
            duration=0.01,
            layer_code_bytes=12288,
            engine=engine,
        )
        arrivals = PoissonSource(3000.0, rng=1).arrival_list(config.duration)
        result = run_simulation(
            PoissonSource(3000.0, rng=1), config, seed=1, arrivals=arrivals
        )
        results[engine] = canonical_json(result.to_dict())
    assert results["scalar"] == results["vec"]


def test_span_keeping_recorder_uses_scalar_path():
    """Full tracing needs per-layer invoke spans, which only the
    scalar path emits: under a keep_spans recorder the vec engine must
    stand aside, and the trace must contain layer tracks."""
    config = SimulationConfig(duration=0.005, engine="vec")
    arrivals = PoissonSource(5000.0, rng=0).arrival_list(config.duration)
    recorder = Recorder(keep_spans=True)
    with recording(recorder):
        run_simulation(PoissonSource(5000.0, rng=0), config, seed=0,
                       arrivals=arrivals)
    tracks = set(recorder.tracks())
    assert "layer0" in tracks
    assert any(span.name == "invoke" for span in recorder.spans)


def test_latency_sample_order_is_identical():
    """Not just summary statistics: the raw per-completion latency
    sample sequences match, which pins completion *order*."""
    from repro.sim.runner import _build_scheduler, drive
    from repro.core.layer import Message

    for scheduler_name in SCHEDULER_NAMES:
        config = SimulationConfig(scheduler=scheduler_name, duration=0.01)
        arrivals = PoissonSource(12000.0, rng=7).arrival_list(config.duration)
        samples = {}
        for engine in ENGINE_NAMES:
            scheduler = _build_scheduler(config, seed=7)
            timestamped = [
                (a.time, Message(size=a.size, arrival_time=a.time))
                for a in arrivals
            ]
            stats = drive(scheduler, timestamped, engine=engine)
            samples[engine] = list(stats.latency._samples)
        assert samples["scalar"] == samples["vec"], scheduler_name
