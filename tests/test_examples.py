"""Smoke tests: every example script runs (at reduced scale).

These import the example modules from ``examples/`` and exercise their
building blocks with short durations, so a broken example fails CI
without costing minutes.
"""

import importlib.util
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"


def load_example(name: str):
    spec = importlib.util.spec_from_file_location(
        f"example_{name}", EXAMPLES_DIR / f"{name}.py"
    )
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


ALL_EXAMPLES = [
    "quickstart",
    "signalling_switch",
    "tcp_receive_path",
    "checksum_study",
    "web_server",
    "dns_server",
    "ip_router",
    "gossip_swarm",
]


@pytest.mark.parametrize("name", ALL_EXAMPLES)
def test_example_imports_and_has_main(name):
    module = load_example(name)
    assert callable(module.main)
    assert module.__doc__


def test_quickstart_describe(capsys):
    module = load_example("quickstart")
    module.describe(2000)
    out = capsys.readouterr().out
    assert "ldlp" in out and "speedup" in out


def test_signalling_switch_run():
    module = load_example("signalling_switch")
    from repro.core import LDLPScheduler

    switch, scheduler, outcome = module.run(
        LDLPScheduler, pair_rate=2000, duration=0.05
    )
    assert switch.stats.setups > 0
    assert outcome.completed > 0
    assert scheduler.drops == 0


def test_web_server_run():
    module = load_example("web_server")
    from repro.core import LDLPScheduler

    stack, scheduler, outcome, offered = module.run(
        LDLPScheduler, rate=3000, duration=0.05
    )
    assert stack.stats.delivered == offered
    assert outcome.completed > 0


def test_dns_server_run():
    module = load_example("dns_server")
    from repro.core import ConventionalScheduler

    server, scheduler, outcome = module.run(
        ConventionalScheduler, rate=3000, duration=0.05
    )
    assert len(server.responses) > 0
    assert server.bad_queries == 0


def test_ip_router_run():
    module = load_example("ip_router")
    from repro.core import LDLPScheduler

    path, scheduler, outcome = module.run(LDLPScheduler, rate=4000,
                                          duration=0.05)
    assert path.stats.forwarded > 0
    assert path.stats.no_route == 0
    assert path.table.misses == 0


def test_gossip_swarm_run():
    module = load_example("gossip_swarm")

    session = module.run("session", 4, duration=0.02, num_peers=500)
    sessionless = module.run("sessionless", 4, duration=0.02, num_peers=500)
    assert session.run.offered == session.run.completed + session.run.dropped
    assert (
        session.header_bytes_per_message
        < sessionless.header_bytes_per_message
    )


def test_checksum_study_correctness(capsys):
    module = load_example("checksum_study")
    module.correctness_demo()
    out = capsys.readouterr().out
    assert "OK" in out


def test_tcp_receive_path_main(capsys):
    # This one is cheap enough to run end to end.
    module = load_example("tcp_receive_path")
    module.main()
    out = capsys.readouterr().out
    assert "Table 1" in out
    assert "Call tree" in out
