"""Tests for the NetBSD receive-path model (Section 2 reproduction)."""

import numpy as np
import pytest

from repro.cache.workingset import Category
from repro.errors import ConfigurationError
from repro.netbsd import (
    ALL_LAYERS,
    CATALOG,
    CODE_PLAN,
    PAPER_TABLE1,
    PHASES,
    ReceivePathModel,
    catalog_by_name,
    coverage_stats,
    fn_to_layer_map,
    functions_of_layer,
    layer_catalog_bytes,
    synthesize_code_touch_words,
    synthesize_data_touch_words,
    table1_row_sum,
)
from repro.trace.callgraph import build_call_graph
from repro.trace.io import dump_trace, parse_trace
from repro.trace.phases import phase_stats


class TestCatalog:
    def test_figure1_sizes_preserved(self):
        # Spot-check published sizes from Figure 1.
        by_name = catalog_by_name()
        assert by_name["tcp_input"].size == 11872
        assert by_name["in_cksum"].size == 1104
        assert by_name["soreceive"].size == 5536
        assert by_name["leintr"].size == 3264
        assert by_name["pal_swpipl"].size == 8

    def test_every_layer_has_functions(self):
        for layer in ALL_LAYERS:
            assert functions_of_layer(layer)

    def test_unknown_layer_rejected(self):
        with pytest.raises(ConfigurationError):
            functions_of_layer("nonsense")

    def test_catalog_capacity_covers_budgets(self):
        # Each layer's catalogued code must hold its Table-1 budget.
        for layer in ALL_LAYERS:
            assert layer_catalog_bytes(layer) >= PAPER_TABLE1[layer].code

    def test_fn_to_layer_total(self):
        mapping = fn_to_layer_map()
        assert len(mapping) == len(CATALOG)
        assert mapping["tcp_input"] == "TCP"

    def test_row_sum_vs_published_total(self):
        rows = table1_row_sum()
        assert rows.readonly == 5088
        assert rows.mutable == 3648
        assert rows.code == 30304  # published total is 30592; see docs


class TestTouchMaps:
    def test_code_budget_exact(self):
        rng = np.random.default_rng(0)
        words = synthesize_code_touch_words(6144, 100, rng)
        lines = {int(w) // 8 for w in words}
        assert len(lines) == 100

    def test_code_budget_zero(self):
        rng = np.random.default_rng(0)
        assert synthesize_code_touch_words(6144, 0, rng).size == 0

    def test_code_budget_overflow_rejected(self):
        rng = np.random.default_rng(0)
        with pytest.raises(ConfigurationError):
            synthesize_code_touch_words(320, 11, rng)

    def test_code_full_capacity(self):
        rng = np.random.default_rng(1)
        words = synthesize_code_touch_words(320, 10, rng)
        assert len({int(w) // 8 for w in words}) == 10

    def test_data_budget_exact(self):
        rng = np.random.default_rng(2)
        words = synthesize_data_touch_words(1024, 16, rng)
        assert len({int(w) // 8 for w in words}) == 16

    def test_code_density_near_paper(self):
        """Aggregate sub-line density lands near Table 3's 4-byte row
        (-25% bytes at word granularity)."""
        rng = np.random.default_rng(3)
        totals = {4: 0, 32: 0}
        for _ in range(30):
            words = synthesize_code_touch_words(6144, 120, rng)
            stats = coverage_stats(words)
            totals[4] += stats[4]
            totals[32] += stats[32]
        density = (totals[4] * 4) / (totals[32] * 32)
        assert 0.65 < density < 0.85

    def test_coverage_stats_empty(self):
        stats = coverage_stats(np.empty(0, dtype=np.int64))
        assert all(value == 0 for value in stats.values())


class TestPlanConsistency:
    def test_layer_budgets_match_table1(self):
        for layer in ALL_LAYERS:
            budget = sum(
                CODE_PLAN[spec.name].budget
                for spec in CATALOG
                if spec.layer == layer and spec.name in CODE_PLAN
            )
            assert budget * 32 == PAPER_TABLE1[layer].code, layer

    def test_every_planned_function_in_catalog(self):
        names = {spec.name for spec in CATALOG}
        assert set(CODE_PLAN) <= names

    def test_in_cksum_active_bytes(self):
        # Section 5.1: 992 of in_cksum's 1104 bytes are active.
        assert CODE_PLAN["in_cksum"].budget * 32 == 992


class TestReceivePathModel:
    @pytest.fixture(scope="class")
    def model(self):
        return ReceivePathModel(seed=0)

    @pytest.fixture(scope="class")
    def trace(self, model):
        return model.build_trace()

    def test_table1_exact(self, model, trace):
        report = model.analyze(trace).report(32)
        for layer in ALL_LAYERS:
            target = PAPER_TABLE1[layer]
            assert report.layer(layer, Category.CODE).bytes == target.code
            assert report.layer(layer, Category.READONLY).bytes == target.readonly
            assert report.layer(layer, Category.MUTABLE).bytes == target.mutable

    def test_table1_exact_other_seed(self):
        model = ReceivePathModel(seed=99)
        report = model.analyze().report(32)
        for layer in ALL_LAYERS:
            assert report.layer(layer, Category.CODE).bytes == PAPER_TABLE1[layer].code

    def test_three_phases(self, trace):
        labels = [label for label, _ in trace.phase_slices()]
        assert labels == list(PHASES)

    def test_phase_code_totals_close(self, trace):
        stats = {s.label: s for s in phase_stats(trace)}
        assert abs(stats["entry"].code.bytes - 3008) <= 0.1 * 3008
        assert abs(stats["pkt intr"].code.bytes - 13664) <= 0.1 * 13664
        assert abs(stats["exit"].code.bytes - 18240) <= 0.1 * 18240

    def test_interrupt_phase_is_ref_heavy(self, trace):
        stats = {s.label: s for s in phase_stats(trace)}
        # The checksum/copy loops make the interrupt column dominate refs.
        assert stats["pkt intr"].code.refs > 4 * stats["exit"].code.refs

    def test_call_graph_reflects_script(self, trace):
        graph = build_call_graph(trace)
        assert graph.call_count("soreceive", "sbwait") == 1
        assert graph.call_count("ipintr", "in_broadcast") == 1
        assert "tcp_output" in graph.transitive_callees("cpu_switch")

    def test_aux_refs_excluded_from_table1(self, model, trace):
        kept = model.table1_refs(trace)
        assert all(
            ref.is_code() or not model.is_aux_addr(ref.addr) for ref in kept
        )
        assert len(kept) < len(trace.refs)

    def test_trace_io_roundtrip(self, trace):
        import io

        stream = io.StringIO()
        dump_trace(trace, stream)
        parsed = parse_trace(stream.getvalue().splitlines())
        assert len(parsed.refs) == len(trace.refs)
        assert parsed.refs[:100] == trace.refs[:100]
        assert parsed.phase_marks == trace.phase_marks

    def test_working_set_dwarfs_cache(self, model, trace):
        """Section 2's headline: the working set is >4x an 8 KB cache."""
        report = model.analyze(trace).report(32)
        total = report.grand_total_bytes()
        assert total > 4 * 8192

    def test_message_bytes_are_minor(self, trace):
        """"Message contents are not the main consumer of precious
        memory bandwidth": message-buffer traffic is a small fraction
        of code traffic."""
        model = ReceivePathModel(seed=0)
        message_refs = sum(
            1
            for ref in trace.refs
            if not ref.is_code()
            and model.message_base <= ref.addr < model.message_base + 1024
        )
        code_refs = sum(1 for ref in trace.refs if ref.is_code())
        assert message_refs < 0.05 * code_refs
