"""Property tests of the simulation as a whole: conservation laws and
monotonicity that must hold for any configuration."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim import SimulationConfig, run_simulation
from repro.traffic import DeterministicSource, PoissonSource


class TestConservation:
    @given(
        rate=st.integers(500, 9000),
        scheduler=st.sampled_from(["conventional", "ilp", "ldlp", "grouped"]),
        seed=st.integers(0, 50),
    )
    @settings(max_examples=25, deadline=None)
    def test_messages_conserved(self, rate, scheduler, seed):
        """offered == completed + dropped, always."""
        config = SimulationConfig(scheduler=scheduler, duration=0.05)
        result = run_simulation(PoissonSource(rate, rng=seed), config, seed=seed)
        assert result.offered == result.completed + result.dropped
        assert result.latency.count == result.completed

    @given(seed=st.integers(0, 30))
    @settings(max_examples=15, deadline=None)
    def test_latency_at_least_service_time(self, seed):
        """No message completes faster than one cold pass through the
        stack could possibly run (compute cycles alone)."""
        config = SimulationConfig(scheduler="ldlp", duration=0.05)
        result = run_simulation(PoissonSource(1000, rng=seed), config, seed=seed)
        if result.completed == 0:
            return
        # 5 layers x 1652 compute cycles at 100 MHz = 82.6 us minimum.
        floor_seconds = 5 * 1652 / 100e6
        assert result.latency.median >= floor_seconds * 0.99

    def test_no_drops_below_capacity(self):
        config = SimulationConfig(scheduler="ldlp", duration=0.1)
        result = run_simulation(DeterministicSource(2000), config, seed=0)
        assert result.dropped == 0
        assert result.completed == result.offered


class TestMonotonicity:
    def test_latency_monotone_in_load_conventional(self):
        """Mean latency never decreases as offered load rises (same
        placement seed, conventional scheduling)."""
        means = []
        for rate in (1000, 3000, 5000, 8000):
            config = SimulationConfig(scheduler="conventional", duration=0.1)
            result = run_simulation(
                PoissonSource(rate, rng=3), config, seed=3
            )
            means.append(result.latency.mean)
        assert means == sorted(means)

    def test_misses_monotone_in_batch_cap(self):
        """LDLP misses/message never increase with a larger batch cap."""
        source = PoissonSource(9000, rng=4)
        arrivals = source.arrival_list(0.1)
        totals = []
        for cap in (1, 4, 16):
            config = SimulationConfig(
                scheduler="ldlp", duration=0.1, batch_limit=cap
            )
            result = run_simulation(source, config, seed=4, arrivals=arrivals)
            totals.append(result.misses.total)
        assert totals[0] > totals[1] > totals[2]

    def test_faster_clock_lowers_latency(self):
        from repro.cache.hierarchy import MachineSpec

        source = PoissonSource(3000, rng=5)
        arrivals = source.arrival_list(0.1)
        means = []
        for mhz_value in (50e6, 100e6, 200e6):
            config = SimulationConfig(
                scheduler="conventional",
                duration=0.1,
                spec=MachineSpec(clock_hz=mhz_value),
            )
            result = run_simulation(source, config, seed=5, arrivals=arrivals)
            means.append(result.latency.mean)
        assert means[0] > means[1] > means[2]


class TestSchedulerRanking:
    def test_grouped_between_conventional_and_ldlp_small_layers(self):
        """With cache-fitting groups the grouped schedule sits between
        conventional and per-layer LDLP in cycles per message."""
        source = PoissonSource(6000, rng=6)
        arrivals = source.arrival_list(0.1)
        costs = {}
        for name in ("conventional", "grouped", "ldlp"):
            config = SimulationConfig(
                scheduler=name, duration=0.1, layer_code_bytes=2048
            )
            costs[name] = run_simulation(
                source, config, seed=6, arrivals=arrivals
            ).cycles_per_message
        assert costs["ldlp"] <= costs["grouped"] * 1.05
        assert costs["grouped"] < costs["conventional"]

    def test_ilp_beats_conventional_slightly(self):
        """ILP saves data-loop work but not instruction locality."""
        source = PoissonSource(5000, rng=7)
        arrivals = source.arrival_list(0.1)
        results = {}
        for name in ("conventional", "ilp"):
            config = SimulationConfig(scheduler=name, duration=0.1)
            results[name] = run_simulation(source, config, seed=7,
                                           arrivals=arrivals)
        assert (
            results["ilp"].cycles_per_message
            <= results["conventional"].cycles_per_message
        )
        # But the instruction-miss story is unchanged (the paper's point
        # about ILP not fixing the outer loop).
        assert results["ilp"].misses.instruction == pytest.approx(
            results["conventional"].misses.instruction, rel=0.02
        )
