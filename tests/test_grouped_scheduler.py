"""Tests for GroupedLDLPScheduler (the paper's layer-grouping advice)."""

import pytest

from repro.core import (
    BatchPolicy,
    ConventionalScheduler,
    CountingLayer,
    GroupedLDLPScheduler,
    LDLPScheduler,
    LayerFootprint,
    MachineBinding,
    Message,
    PassthroughLayer,
)
from repro.errors import SchedulerError


def small_layers(n=5, code=2048):
    return [
        CountingLayer(f"L{i}", LayerFootprint(code_bytes=code)) for i in range(n)
    ]


class TestGrouping:
    def test_default_groups_from_icache(self):
        scheduler = GroupedLDLPScheduler(small_layers(), MachineBinding(rng=0))
        # 5 x 2 KB layers against an 8 KB I-cache: 4 + 1.
        assert scheduler.groups == [[0, 1, 2, 3], [4]]

    def test_explicit_groups(self):
        scheduler = GroupedLDLPScheduler(
            small_layers(), groups=[[0, 1], [2], [3, 4]]
        )
        assert scheduler.groups == [[0, 1], [2], [3, 4]]

    def test_invalid_groups_rejected(self):
        with pytest.raises(SchedulerError):
            GroupedLDLPScheduler(small_layers(), groups=[[0, 2], [1], [3, 4]])
        with pytest.raises(SchedulerError):
            GroupedLDLPScheduler(small_layers(), groups=[[0, 1], [2, 3]])
        with pytest.raises(SchedulerError):
            GroupedLDLPScheduler(small_layers(), groups=[[0], [0, 1, 2, 3, 4]])


class TestFunctional:
    def test_all_messages_visit_all_layers(self):
        layers = small_layers()
        scheduler = GroupedLDLPScheduler(layers, groups=[[0, 1], [2, 3], [4]])
        messages = [Message() for _ in range(9)]
        completions = scheduler.run_to_completion(messages)
        assert len(completions) == 9
        assert all(c.delivered for c in completions)
        expected = sorted(m.msg_id for m in messages)
        for layer in layers:
            assert sorted(layer.delivered) == expected

    def test_order_is_blocked_over_groups(self):
        layers = small_layers(4)
        scheduler = GroupedLDLPScheduler(
            layers,
            groups=[[0, 1], [2, 3]],
            batch_policy=BatchPolicy(max_batch=10),
        )
        a, b = Message(), Message()
        scheduler.run_to_completion([a, b])
        # Within group 0: message a through layers 0 and 1, then b —
        # conventional order inside the group...
        assert layers[0].delivered == [a.msg_id, b.msg_id]
        assert layers[1].delivered == [a.msg_id, b.msg_id]
        # ...and the whole batch finishes group 0 before group 1 starts.
        assert layers[2].delivered == [a.msg_id, b.msg_id]

    def test_singleton_groups_match_ldlp_order(self):
        grouped_layers = small_layers(3)
        ldlp_layers = small_layers(3)
        grouped = GroupedLDLPScheduler(
            grouped_layers,
            groups=[[0], [1], [2]],
            batch_policy=BatchPolicy(max_batch=10),
        )
        ldlp = LDLPScheduler(
            ldlp_layers, batch_policy=BatchPolicy(max_batch=10)
        )
        grouped_msgs = [Message() for _ in range(6)]
        ldlp_msgs = [Message() for _ in range(6)]
        grouped.run_to_completion(grouped_msgs)
        ldlp.run_to_completion(ldlp_msgs)
        grouped_index = {m.msg_id: i for i, m in enumerate(grouped_msgs)}
        ldlp_index = {m.msg_id: i for i, m in enumerate(ldlp_msgs)}
        for g_layer, l_layer in zip(grouped_layers, ldlp_layers):
            assert [grouped_index[m] for m in g_layer.delivered] == [
                ldlp_index[m] for m in l_layer.delivered
            ]

    def test_consuming_layer_mid_group(self):
        from repro.core import Layer

        class DropOdd(Layer):
            def __init__(self):
                super().__init__("drop-odd")
                self.count = 0

            def deliver(self, message):
                self.count += 1
                return [] if self.count % 2 else [message]

        top = CountingLayer("top")
        scheduler = GroupedLDLPScheduler(
            [PassthroughLayer("bottom"), DropOdd(), top],
            groups=[[0, 1], [2]],
        )
        completions = scheduler.run_to_completion([Message() for _ in range(6)])
        assert len(completions) == 6
        assert len(top.delivered) == 3

    def test_batch_cap_respected(self):
        scheduler = GroupedLDLPScheduler(
            small_layers(2),
            groups=[[0], [1]],
            batch_policy=BatchPolicy(max_batch=3),
            input_limit=100,
        )
        for _ in range(8):
            scheduler.enqueue_arrival(Message())
        scheduler.service_step()
        assert scheduler.batch_sizes == [3]
        assert scheduler.pending() == 5


class TestLocality:
    def test_grouping_beats_conventional_on_small_layers(self):
        """Five 2 KB layers: grouping into cache-sized units cuts misses
        versus conventional, though per-layer LDLP is still best."""

        def run(cls, **kwargs):
            binding = MachineBinding(rng=9)
            layers = [
                PassthroughLayer(f"L{i}", LayerFootprint(code_bytes=2048))
                for i in range(5)
            ]
            scheduler = cls(layers, binding, **kwargs)
            scheduler.run_to_completion([Message(size=552) for _ in range(60)])
            return binding.cpu.icache_misses

        conventional = run(ConventionalScheduler)
        grouped = run(GroupedLDLPScheduler, groups=[[0, 1, 2], [3, 4]])
        ldlp = run(LDLPScheduler)
        assert grouped < conventional
        assert ldlp < grouped

    def test_grouping_reduces_queue_hops(self):
        """Groups pay one queue hop per group, not per layer: with zero
        miss penalty the grouped schedule is strictly cheaper than
        per-layer LDLP."""
        from repro.cache.hierarchy import MachineSpec

        def run(cls, **kwargs):
            binding = MachineBinding(
                spec=MachineSpec(miss_penalty=0), rng=9
            )
            layers = [
                PassthroughLayer(f"L{i}", LayerFootprint(code_bytes=2048))
                for i in range(6)
            ]
            scheduler = cls(layers, binding, **kwargs)
            scheduler.run_to_completion([Message(size=552) for _ in range(40)])
            return binding.cpu.cycles

        ldlp = run(LDLPScheduler)
        grouped = run(GroupedLDLPScheduler, groups=[[0, 1, 2], [3, 4, 5]])
        assert grouped < ldlp
