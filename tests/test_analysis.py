"""Tests for repro.analysis: conflict maps, budgets, scheduler checks,
the mbuf lifecycle linter, the reporters, and the CLI."""

import json

import pytest

from repro.analysis import (
    RULES,
    Finding,
    Severity,
    analyze_conflicts,
    analyze_netbsd_stack,
    analyze_stack,
    analyze_synthetic_stack,
    build_conflict_map,
    check_batch_budget,
    check_group_budgets,
    check_group_partition,
    check_netbsd_group_budgets,
    check_scheduler_budgets,
    check_scheduler_config,
    check_scheduler_conflicts,
    count_by_severity,
    lint_source,
    render_json,
    render_text,
    worst_severity,
)
from repro.analysis.cli import main as analysis_main
from repro.buffers import MbufError, MbufPool
from repro.cache.hierarchy import CacheGeometry
from repro.core import (
    ConventionalScheduler,
    GroupedLDLPScheduler,
    LDLPScheduler,
    MachineBinding,
    PassthroughLayer,
)
from repro.core.layer import LayerFootprint
from repro.core.scheduler import diagnose_groups
from repro.errors import (
    ConfigurationError,
    GroupingError,
    LayoutError,
    SchedulerError,
    TraceError,
)
from repro.machine.layout import MemoryLayout
from repro.machine.program import Program, Region
from repro.netbsd.functions import CATALOG, catalog_program, layer_code_sizes
from repro.sim.runner import build_paper_stack

ICACHE = CacheGeometry(size=8192, line_size=32)  # 256 sets


def _region(name, size, base):
    region = Region(name, size)
    region.base = base
    return region


# ----------------------------------------------------------------------
# Rule registry and findings


class TestFindings:
    def test_registry_has_all_documented_rules(self):
        expected = {
            "LDLP001", "LDLP002", "LDLP003", "LDLP004",
            "SCHED001", "SCHED002", "SCHED003", "SCHED004",
            "MBUF001", "MBUF002", "MBUF003",
            "HARN001", "HARN002", "HARN003", "HARN004",
            "DET001", "DET002", "DET003", "DET004", "DET005",
        }
        assert expected == set(RULES)
        for rule in RULES.values():
            # Paper-derived rules cite a section; HARN001 guards the
            # reproduction harness itself rather than the paper.
            assert rule.paper_section.startswith(("Section", "Reproduction"))

    def test_unknown_rule_id_rejected(self):
        with pytest.raises(ConfigurationError):
            Finding("NOPE01", "msg", "target")

    def test_severity_helpers(self):
        findings = [
            Finding("LDLP002", "w", "t"),
            Finding("MBUF001", "e", "t"),
        ]
        assert count_by_severity(findings) == {"error": 1, "warning": 1, "info": 0}
        assert worst_severity(findings) is Severity.ERROR
        assert worst_severity([]) is None

    def test_location_with_and_without_line(self):
        assert Finding("MBUF001", "m", "f.py", line=7).location == "f.py:7"
        assert Finding("LDLP001", "m", "layout").location == "layout"


# ----------------------------------------------------------------------
# Conflict analysis (LDLP001 / LDLP002)


class TestConflictAnalysis:
    def test_known_bad_layout_fires_ldlp001(self):
        # Both regions land on sets 0..63: classic direct-mapped aliasing
        # even though 4 KB of hot code easily fits the 8 KB cache.
        regions = [
            _region("hot_a", 2048, 0),
            _region("hot_b", 2048, 8192),
        ]
        conflict_map, findings = analyze_conflicts(regions, ICACHE)
        assert [f.rule_id for f in findings] == ["LDLP001"]
        assert findings[0].severity is Severity.ERROR
        assert findings[0].details["regions"] == ["hot_a", "hot_b"]
        assert findings[0].details["conflicting_sets"] == 64
        assert conflict_map.max_occupancy == 2

    def test_clean_layout_is_clean(self):
        regions = [
            _region("hot_a", 2048, 0),
            _region("hot_b", 2048, 2048),
        ]
        conflict_map, findings = analyze_conflicts(regions, ICACHE)
        assert findings == []
        assert conflict_map.conflicting_sets == 0
        assert conflict_map.utilization() == pytest.approx(128 / 256)

    def test_oversized_hot_set_fires_ldlp002_not_ldlp001(self):
        # 3 x 6 KB cannot fit 8 KB: conflicts are structural, so the
        # analyzer must not blame the placement.
        regions = [
            _region("layer0", 6144, 0),
            _region("layer1", 6144, 6144),
            _region("layer2", 6144, 12288),
        ]
        _, findings = analyze_conflicts(regions, ICACHE)
        assert [f.rule_id for f in findings] == ["LDLP002"]
        assert findings[0].severity is Severity.WARNING
        assert findings[0].details["hot_bytes"] == 3 * 6144

    def test_hot_subset_selects_regions(self):
        regions = [
            _region("hot", 2048, 0),
            _region("cold", 2048, 8192),  # aliases hot, but is not hot
        ]
        _, findings = analyze_conflicts(regions, ICACHE, hot=["hot"])
        assert findings == []

    def test_unknown_hot_name_raises(self):
        with pytest.raises(LayoutError):
            analyze_conflicts([_region("a", 64, 0)], ICACHE, hot=["b"])

    def test_unplaced_region_raises(self):
        with pytest.raises(LayoutError):
            build_conflict_map([Region("unplaced", 64)], ICACHE)

    def test_aliased_pairs_counts_contested_sets(self):
        regions = [_region("a", 1024, 0), _region("b", 1024, 8192)]
        conflict_map = build_conflict_map(regions, ICACHE)
        assert conflict_map.aliased_pairs() == {("a", "b"): 32}


# ----------------------------------------------------------------------
# Budget checks (LDLP003 / LDLP004)


class TestBudgets:
    def test_oversized_group_warns(self):
        findings = check_group_budgets([6144, 6144], [[0, 1]], 8192)
        assert [f.rule_id for f in findings] == ["LDLP003"]
        assert findings[0].details["overflow_bytes"] == 2 * 6144 - 8192

    def test_fitting_groups_are_clean(self):
        assert check_group_budgets([6144, 6144], [[0], [1]], 8192) == []

    def test_batch_cap_overflow_warns_with_recommendation(self):
        findings = check_batch_budget(20, 8192)
        assert [f.rule_id for f in findings] == ["LDLP004"]
        assert findings[0].details["recommended_batch"] == 14

    def test_paper_batch_cap_fits(self):
        assert check_batch_budget(14, 8192) == []

    def test_scheduler_budgets_clean_for_paper_stack(self):
        scheduler = LDLPScheduler(build_paper_stack())
        assert check_scheduler_budgets(scheduler) == []

    def test_scheduler_budgets_flag_oversized_layer(self):
        layers = [
            PassthroughLayer("big", LayerFootprint(code_bytes=12288)),
        ]
        findings = check_scheduler_budgets(LDLPScheduler(layers))
        assert "LDLP003" in {f.rule_id for f in findings}

    def test_netbsd_per_layer_groups_flag_ethernet_and_tcp(self):
        findings = check_netbsd_group_budgets(
            [[name] for name in layer_code_sizes()], 8192
        )
        flagged = {f.details["members"][0] for f in findings}
        assert flagged == {"Ethernet", "TCP"}

    def test_layer_code_sizes_match_catalog(self):
        sizes = layer_code_sizes()
        assert sum(sizes.values()) == sum(spec.size for spec in CATALOG)


# ----------------------------------------------------------------------
# Scheduler-config checks (SCHED001-004)


class TestSchedulerChecks:
    def test_overlap_and_gap(self):
        findings = check_group_partition(5, [[0, 1], [1, 2], [4]])
        rules = {f.rule_id for f in findings}
        assert rules == {"SCHED001", "SCHED002"}
        by_rule = {f.rule_id: f for f in findings}
        assert by_rule["SCHED001"].details["overlapping"] == [1]
        assert by_rule["SCHED002"].details["missing"] == [3]

    def test_misordered_groups(self):
        findings = check_group_partition(3, [[2], [0, 1]])
        assert {f.rule_id for f in findings} == {"SCHED003"}

    def test_out_of_range_and_empty_group(self):
        findings = check_group_partition(2, [[0, 1, 5], []])
        by_rule = {f.rule_id: f for f in findings}
        assert by_rule["SCHED002"].details["out_of_range"] == [5]
        assert by_rule["SCHED002"].details["empty_groups"] == [1]

    def test_valid_partition_is_clean(self):
        assert check_group_partition(4, [[0, 1], [2], [3]]) == []

    def test_flush_ignored_under_queueless_scheduler(self):
        class Coalescer(PassthroughLayer):
            def flush(self):
                return []

        layers = [Coalescer("coalesce"), PassthroughLayer("top")]
        findings = check_scheduler_config(ConventionalScheduler(layers))
        assert [f.rule_id for f in findings] == ["SCHED004"]
        assert findings[0].details["layers"] == ["coalesce"]

    def test_flush_respected_under_ldlp(self):
        class Coalescer(PassthroughLayer):
            def flush(self):
                return []

        layers = [Coalescer("coalesce"), PassthroughLayer("top")]
        assert check_scheduler_config(LDLPScheduler(layers)) == []

    def test_grouped_scheduler_config_is_clean(self):
        scheduler = GroupedLDLPScheduler(build_paper_stack())
        assert check_scheduler_config(scheduler) == []


# ----------------------------------------------------------------------
# Typed runtime errors (the satellite fixes)


class TestTypedErrors:
    def test_grouping_error_carries_indices(self):
        layers = build_paper_stack()
        with pytest.raises(GroupingError) as excinfo:
            GroupedLDLPScheduler(layers, groups=[[0], [0, 1], [2, 3]])
        err = excinfo.value
        assert err.overlapping == (0,)
        assert err.missing == (4,)
        assert isinstance(err, SchedulerError)
        assert "0" in str(err)

    def test_diagnosis_matches_lint(self):
        groups = [[0], [0, 1], [2, 3]]
        diagnosis = diagnose_groups(5, groups)
        findings = check_group_partition(5, groups)
        assert list(diagnosis.overlapping) == [
            f for f in findings if f.rule_id == "SCHED001"
        ][0].details["overlapping"]

    def test_place_random_fails_fast_when_window_full(self):
        layout = MemoryLayout(line_size=32, span=1024)
        layout.place_random(Region("a", 1024))
        with pytest.raises(LayoutError, match="cannot fit"):
            layout.place_random(Region("b", 32))

    def test_place_random_rejects_region_larger_than_window(self):
        layout = MemoryLayout(line_size=32, span=1024)
        with pytest.raises(LayoutError, match="exceeds"):
            layout.place_random(Region("big", 2048))

    def test_pool_verify_balanced(self):
        pool = MbufPool()
        mbuf = pool.alloc()
        with pytest.raises(MbufError, match="leaked"):
            pool.verify_balanced()
        assert pool.outstanding == 1
        pool.free(mbuf)
        pool.verify_balanced()


# ----------------------------------------------------------------------
# Introspection hooks


class TestIntrospection:
    def test_cache_geometry_describe(self):
        assert ICACHE.describe() == {
            "size": 8192, "line_size": 32, "num_sets": 256,
        }

    def test_program_describe_footprint(self):
        program = Program()
        program.add_code("f", 100)
        program.add_data("d", 64)
        footprint = program.describe_footprint()
        assert footprint["regions"] == 2
        assert footprint["code_bytes"] == 100
        assert footprint["code_lines"] == 4
        assert footprint["data_lines"] == 2

    def test_layer_describe_footprint(self):
        layer = PassthroughLayer("l0")
        description = layer.describe_footprint()
        assert description["name"] == "l0"
        assert description["code_bytes"] == 6144
        assert description["holds_messages"] is False

    def test_scheduler_describe_config(self):
        scheduler = GroupedLDLPScheduler(build_paper_stack())
        config = scheduler.describe_config()
        assert config["scheduler"] == "GroupedLDLPScheduler"
        assert config["uses_queues"] is True
        assert config["groups"] == [[0], [1], [2], [3], [4]]
        assert config["batch_limit"] == 14
        assert len(config["layers"]) == 5

    def test_region_cache_set_indices(self):
        region = _region("r", 64, 8192)
        indices = region.cache_set_indices(32, 256)
        assert list(indices) == [0, 1]
        with pytest.raises(LayoutError):
            region.cache_set_indices(32, 0)


# ----------------------------------------------------------------------
# Whole-stack pipelines


class TestStackPipelines:
    def test_synthetic_stack_lints_clean(self):
        analysis = analyze_synthetic_stack(seed=0)
        assert analysis.findings == []
        assert analysis.summary["groups"] == [[0], [1], [2], [3], [4]]

    def test_synthetic_stack_clean_across_seeds(self):
        for seed in range(5):
            assert analyze_synthetic_stack(seed=seed).findings == []

    def test_netbsd_stack_reproduces_working_set_overflow(self):
        analysis = analyze_netbsd_stack(seed=0)
        rules = [f.rule_id for f in analysis.findings]
        assert rules.count("LDLP002") == 1
        assert rules.count("LDLP003") == 2  # Ethernet and TCP layers
        assert analysis.summary["functions"] == len(CATALOG)
        assert analysis.summary["cache_utilization"] == 1.0

    def test_netbsd_sequential_placement_also_overflows(self):
        # The overflow is capacity, not placement: sequential placement
        # must report the same structural warning.
        analysis = analyze_netbsd_stack(seed=0, placement="sequential")
        assert "LDLP002" in [f.rule_id for f in analysis.findings]

    def test_unknown_stack_name_raises(self):
        with pytest.raises(ConfigurationError):
            analyze_stack("nonesuch")

    def test_scheduler_conflicts_need_binding(self):
        scheduler = LDLPScheduler(build_paper_stack())
        with pytest.raises(ConfigurationError):
            check_scheduler_conflicts(scheduler)

    def test_bound_scheduler_groups_lint_clean(self):
        binding = MachineBinding(rng=1, random_placement=True)
        scheduler = GroupedLDLPScheduler(build_paper_stack(), binding)
        assert check_scheduler_conflicts(scheduler) == []

    def test_catalog_program_covers_catalog(self):
        program = catalog_program()
        assert len(program.code_regions()) == len(CATALOG)
        assert program.total_size() == sum(spec.size for spec in CATALOG)


# ----------------------------------------------------------------------
# mbuf lifecycle linter (MBUF001-003)

DOUBLE_FREE_SRC = """
def rx(pool):
    m = pool.alloc(64)
    pool.free(m)
    pool.free(m)
"""

USE_AFTER_FREE_SRC = """
def rx(pool):
    m = pool.alloc(64)
    pool.free_chain(m)
    return m.length
"""

LEAK_SRC = """
def rx(pool):
    m = pool.alloc(64)
    n = pool.alloc(32)
    pool.free(n)
"""

CLEAN_SRC = """
from repro.buffers import MbufPool

def rx(upper):
    pool = MbufPool()
    m = pool.alloc(64)
    m.append(b"payload")
    upper.deliver(m)       # ownership handed to the upper layer
    n = pool.alloc(16)
    return n               # ownership handed to the caller
"""


class TestMbufLint:
    def test_seeded_double_free(self):
        findings = lint_source(DOUBLE_FREE_SRC, "fixture.py")
        assert [f.rule_id for f in findings] == ["MBUF001"]
        assert findings[0].line == 5
        assert findings[0].details["first_free_line"] == 4

    def test_seeded_use_after_free(self):
        findings = lint_source(USE_AFTER_FREE_SRC, "fixture.py")
        assert [f.rule_id for f in findings] == ["MBUF002"]
        assert findings[0].details["freed_line"] == 4

    def test_seeded_leak(self):
        findings = lint_source(LEAK_SRC, "fixture.py")
        assert [f.rule_id for f in findings] == ["MBUF003"]
        assert findings[0].details["variable"] == "m"

    def test_clean_handoffs_stay_quiet(self):
        assert lint_source(CLEAN_SRC, "fixture.py") == []

    def test_discarded_alloc_is_a_leak(self):
        findings = lint_source("def rx(pool):\n    pool.alloc(64)\n")
        assert [f.rule_id for f in findings] == ["MBUF003"]

    def test_reassignment_of_live_mbuf_is_a_leak(self):
        src = "def rx(pool):\n    m = pool.alloc()\n    m = pool.alloc()\n    pool.free(m)\n"
        findings = lint_source(src)
        assert [f.rule_id for f in findings] == ["MBUF003"]
        assert findings[0].details["previous_alloc_line"] == 2

    def test_free_then_realloc_is_fine(self):
        src = (
            "def rx(pool):\n"
            "    m = pool.alloc()\n"
            "    pool.free(m)\n"
            "    m = pool.alloc()\n"
            "    pool.free(m)\n"
        )
        assert lint_source(src) == []

    def test_double_free_of_parameter(self):
        src = "def drop(pool, m):\n    pool.free(m)\n    pool.free(m)\n"
        assert [f.rule_id for f in lint_source(src)] == ["MBUF001"]

    def test_branches_are_walked(self):
        src = (
            "def rx(pool, fast):\n"
            "    m = pool.alloc()\n"
            "    if fast:\n"
            "        pool.free(m)\n"
            "        pool.free(m)\n"
        )
        assert "MBUF001" in {f.rule_id for f in lint_source(src)}

    def test_container_storage_counts_as_handoff(self):
        src = "def rx(pool, out):\n    m = pool.alloc()\n    out['m'] = m\n"
        assert lint_source(src) == []

    def test_syntax_error_raises_trace_error(self):
        with pytest.raises(TraceError):
            lint_source("def broken(:\n")

    def test_pool_constructor_names_pool(self):
        src = (
            "from repro.buffers import MbufPool\n"
            "allocator = MbufPool()\n"
            "m = allocator.alloc()\n"
        )
        assert [f.rule_id for f in lint_source(src)] == ["MBUF003"]


# ----------------------------------------------------------------------
# Reporters and CLI


class TestReportersAndCli:
    def test_render_json_schema(self):
        findings = [Finding("MBUF001", "msg", "f.py", line=3)]
        payload = json.loads(render_json(findings))
        assert payload["counts"]["error"] == 1
        entry = payload["findings"][0]
        assert entry["rule"] == "double-free"
        assert entry["severity"] == "error"
        assert entry["location"] == "f.py:3"
        assert entry["paper_section"] == "Section 3.2"

    def test_render_text_clean(self):
        assert "no findings" in render_text([])

    def test_render_text_lists_findings(self):
        text = render_text([Finding("LDLP002", "too big", "stack:netbsd")])
        assert "stack:netbsd: warning LDLP002 working-set-overflow" in text

    def test_cli_clean_example_json(self, capsys):
        status = analysis_main(
            ["examples/tcp_receive_path.py", "--format", "json"]
        )
        payload = json.loads(capsys.readouterr().out)
        assert status == 0
        assert payload["findings"] == []

    def test_cli_flags_seeded_defect(self, tmp_path, capsys):
        bad = tmp_path / "bad.py"
        bad.write_text(DOUBLE_FREE_SRC)
        status = analysis_main([str(bad)])
        out = capsys.readouterr().out
        assert status == 1
        assert "MBUF001" in out

    def test_cli_fail_on_never(self, tmp_path, capsys):
        bad = tmp_path / "bad.py"
        bad.write_text(DOUBLE_FREE_SRC)
        assert analysis_main([str(bad), "--fail-on", "never"]) == 0
        capsys.readouterr()

    def test_cli_stack_warnings_do_not_fail_error_gate(self, capsys):
        status = analysis_main(["--stack", "netbsd", "--format", "json"])
        payload = json.loads(capsys.readouterr().out)
        assert status == 0
        assert payload["counts"]["warning"] >= 1
        assert payload["counts"]["error"] == 0
        assert "stack:netbsd" in payload["stacks"]

    def test_cli_fail_on_warning_gates_netbsd(self, capsys):
        status = analysis_main(["--stack", "netbsd", "--fail-on", "warning"])
        capsys.readouterr()
        assert status == 1

    def test_cli_requires_some_target(self, capsys):
        with pytest.raises(SystemExit):
            analysis_main([])
        capsys.readouterr()

    def test_cli_unreadable_target(self, tmp_path, capsys):
        missing = tmp_path / "missing.py"
        assert analysis_main([str(missing)]) == 2
        capsys.readouterr()

    def test_experiment_cli_analyze_runs(self, capsys):
        from repro.experiments.cli import main as experiments_main

        assert experiments_main(["analyze"]) == 0
        out = capsys.readouterr().out
        assert "LDLP002" in out
