"""Tests for repro.analysis.detcheck — the DET determinism rules.

Mutation-style: each rule gets minimal synthetic offenders that must
fire and near-miss variants that must stay quiet, so a regression in
either direction (rule goes blind / rule goes noisy) fails here.
"""

import re
import textwrap
from pathlib import Path

import pytest

from repro.analysis import RULES, check_determinism, check_package, check_source
from repro.analysis.cli import main as analysis_main
from repro.analysis.detcheck import (
    apply_suppressions,
    check_parallel_purity,
    module_state_writes,
    parse_suppressions,
)
from repro.experiments.cli import main as experiments_main

REPO_ROOT = Path(__file__).resolve().parent.parent


def rules_of(source: str) -> list[str]:
    """Rule ids reported for a dedented source snippet."""
    return [f.rule_id for f in check_source(textwrap.dedent(source), "snippet.py")]


# ----------------------------------------------------------------------
# DET001 — unseeded / process-global RNG


class TestDET001:
    def test_unseeded_default_rng_fires(self):
        assert rules_of(
            """
            import numpy as np
            rng = np.random.default_rng()
            """
        ) == ["DET001"]

    def test_seeded_default_rng_clean(self):
        assert rules_of(
            """
            import numpy as np
            rng = np.random.default_rng(7)
            other = np.random.default_rng(seed=7)
            """
        ) == []

    def test_unseeded_random_class_fires(self):
        assert rules_of(
            """
            import random
            r = random.Random()
            """
        ) == ["DET001"]

    def test_seeded_random_class_clean(self):
        assert rules_of(
            """
            import random
            r = random.Random(3)
            """
        ) == []

    def test_global_random_function_fires(self):
        assert rules_of(
            """
            import random
            random.shuffle([1, 2, 3])
            """
        ) == ["DET001"]

    def test_from_import_alias_resolved(self):
        assert rules_of(
            """
            from random import randint as ri
            x = ri(0, 9)
            """
        ) == ["DET001"]

    def test_legacy_numpy_global_fires(self):
        assert rules_of(
            """
            import numpy as np
            np.random.seed(0)
            x = np.random.randint(10)
            """
        ) == ["DET001", "DET001"]

    def test_instance_generator_methods_clean(self):
        # Calls on an *instance* are fine — only the module-level
        # global-state APIs are flagged.
        assert rules_of(
            """
            import numpy as np
            rng = np.random.default_rng(1)
            x = rng.integers(10)
            y = rng.shuffle([1, 2])
            """
        ) == []


# ----------------------------------------------------------------------
# DET002 — builtin hash()/id()


class TestDET002:
    def test_hash_fires(self):
        assert rules_of("x = hash('key')\n") == ["DET002"]

    def test_id_fires(self):
        assert rules_of("x = id(object())\n") == ["DET002"]

    def test_shadowed_hash_clean(self):
        assert rules_of(
            """
            def digest(hash):
                return hash("key")
            """
        ) == []

    def test_object_dot_hash_clean(self):
        # Attribute access named hash is not the builtin.
        assert rules_of("y = obj.hash(3)\n") == []


# ----------------------------------------------------------------------
# DET003 — wall clocks


class TestDET003:
    def test_time_time_fires(self):
        assert rules_of(
            """
            import time
            t = time.time()
            """
        ) == ["DET003"]

    def test_from_import_perf_counter_fires(self):
        assert rules_of(
            """
            from time import perf_counter
            t = perf_counter()
            """
        ) == ["DET003"]

    def test_datetime_now_fires(self):
        assert rules_of(
            """
            import datetime
            now = datetime.datetime.now()
            """
        ) == ["DET003"]

    def test_untracked_time_function_clean(self):
        assert rules_of(
            """
            import time
            time.sleep(0.1)
            """
        ) == []

    def test_suppression_with_reason_silences(self):
        assert rules_of(
            """
            import time
            t = time.time()  # det: allow[DET003] metadata timestamp only
            """
        ) == []

    def test_reasonless_suppression_keeps_finding(self):
        findings = check_source(
            textwrap.dedent(
                """
                import time
                t = time.time()  # det: allow[DET003]
                """
            ),
            "snippet.py",
        )
        assert [f.rule_id for f in findings] == ["DET003"]
        assert findings[0].details["reasonless_suppression"] is True
        assert "no reason" in findings[0].message

    def test_suppression_for_other_rule_keeps_finding(self):
        findings = check_source(
            textwrap.dedent(
                """
                import time
                t = time.time()  # det: allow[DET001] wrong rule
                """
            ),
            "snippet.py",
        )
        assert [f.rule_id for f in findings] == ["DET003"]
        assert "reasonless_suppression" not in findings[0].details


# ----------------------------------------------------------------------
# DET004 — salted-set iteration order


class TestDET004:
    def test_for_loop_over_str_set_fires(self):
        assert rules_of(
            """
            names = {"tcp", "udp"}
            out = []
            for name in names:
                out.append(name)
            """
        ) == ["DET004"]

    def test_sorted_iteration_clean(self):
        assert rules_of(
            """
            names = {"tcp", "udp"}
            out = []
            for name in sorted(names):
                out.append(name)
            """
        ) == []

    def test_list_call_fires(self):
        assert rules_of(
            """
            names = {"tcp", "udp"}
            ordered = list(names)
            """
        ) == ["DET004"]

    def test_join_fires(self):
        assert rules_of(
            """
            names = {"tcp", "udp"}
            text = ",".join(names)
            """
        ) == ["DET004"]

    def test_membership_test_clean(self):
        assert rules_of(
            """
            names = {"tcp", "udp"}
            ok = "tcp" in names
            """
        ) == []

    def test_int_set_clean(self):
        # int hashes are not salted; iteration order is stable.
        assert rules_of(
            """
            nums = {3, 1, 2}
            ordered = list(nums)
            for n in nums:
                print(n)
            """
        ) == []

    def test_order_neutral_consumers_clean(self):
        assert rules_of(
            """
            names = {"tcp", "udp"}
            n = len(names)
            first = min(names)
            ok = all(name for name in names)
            """
        ) == []

    def test_annotation_marks_parameter_salted(self):
        assert rules_of(
            """
            def render(names: set[str]) -> list:
                return list(names)
            """
        ) == ["DET004"]

    def test_annotated_parameter_sorted_clean(self):
        assert rules_of(
            """
            def render(names: set[str]) -> list:
                return sorted(names)
            """
        ) == []

    def test_add_promotes_plain_set(self):
        assert rules_of(
            """
            seen = set()
            seen.add("alpha")
            for name in seen:
                print(name)
            """
        ) == ["DET004"]

    def test_comprehension_over_salted_set_fires(self):
        assert rules_of(
            """
            names = {"a", "b"}
            lengths = [len(n) for n in names]
            """
        ) == ["DET004"]

    def test_sorted_comprehension_clean(self):
        assert rules_of(
            """
            names = {"a", "b"}
            lengths = sorted(len(n) for n in names)
            """
        ) == []

    def test_set_union_propagates_salting(self):
        assert rules_of(
            """
            left = {"a"}
            right = {"b"}
            both = left | right
            ordered = list(both)
            """
        ) == ["DET004"]


# ----------------------------------------------------------------------
# Suppression parsing


class TestSuppressions:
    def test_parse_rules_and_reason(self):
        supp = parse_suppressions(
            "x = 1\ny = 2  # det: allow[DET001,DET003] both deliberate\n"
        )
        assert list(supp) == [2]
        assert supp[2].rules == {"DET001", "DET003"}
        assert supp[2].reason == "both deliberate"
        assert supp[2].covers("DET001") and supp[2].covers("DET003")
        assert not supp[2].covers("DET002")

    def test_reasonless_does_not_cover(self):
        supp = parse_suppressions("t = now()  # det: allow[DET003]\n")
        assert supp[1].reason == ""
        assert not supp[1].covers("DET003")

    def test_apply_drops_only_covered_lines(self):
        from repro.analysis import Finding

        findings = [
            Finding("DET003", "clock", "f.py", line=1),
            Finding("DET003", "clock", "f.py", line=2),
        ]
        supp = parse_suppressions("a  # det: allow[DET003] fine\nb\n")
        kept = apply_suppressions(findings, supp)
        assert [f.line for f in kept] == [2]


# ----------------------------------------------------------------------
# DET005 — module state writes + parallel purity


class TestModuleStateWrites:
    def _writes(self, source):
        import ast

        return module_state_writes(ast.parse(textwrap.dedent(source)))

    def test_global_rebinding_detected(self):
        writes = self._writes(
            """
            COUNT = 0

            def bump():
                global COUNT
                COUNT = COUNT + 1
            """
        )
        assert [(w.name, w.kind, w.function) for w in writes] == [
            ("COUNT", "global-write", "bump")
        ]

    def test_container_mutation_detected(self):
        writes = self._writes(
            """
            CACHE = {}

            def remember(key, value):
                CACHE[key] = value

            def forget(key):
                del CACHE[key]

            def note(value):
                CACHE.setdefault("notes", value)
            """
        )
        assert {(w.name, w.kind) for w in writes} == {
            ("CACHE", "container-mutation")
        }
        assert {w.function for w in writes} == {"remember", "forget", "note"}

    def test_local_shadow_not_flagged(self):
        assert self._writes(
            """
            CACHE = {}

            def pure(CACHE):
                CACHE["k"] = 1
                return CACHE

            def local():
                CACHE = {}
                CACHE.update(a=1)
                return CACHE
            """
        ) == []

    def test_reads_not_flagged(self):
        assert self._writes(
            """
            TABLE = {"a": 1}

            def lookup(key):
                return TABLE.get(key)
            """
        ) == []


class TestTreeIsClean:
    def test_package_scan_clean(self):
        assert check_package() == []

    def test_parallel_purity_clean(self):
        assert check_parallel_purity() == []

    def test_full_gate_clean(self):
        assert check_determinism() == []


# ----------------------------------------------------------------------
# CLI wiring


class TestCLI:
    def test_determinism_gate_exits_zero(self, capsys):
        assert analysis_main(["--determinism"]) == 0
        out = capsys.readouterr().out
        assert "determinism" in out

    def test_list_rules_prints_registry(self, capsys):
        assert analysis_main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule_id in RULES:
            assert rule_id in out

    def test_experiments_cli_determinism(self, capsys):
        assert experiments_main(["analyze", "--determinism"]) == 0
        capsys.readouterr()

    def test_experiments_cli_list_rules(self, capsys):
        assert experiments_main(["analyze", "--list-rules"]) == 0
        out = capsys.readouterr().out
        assert "DET005" in out and "impure-sweep-point" in out


# ----------------------------------------------------------------------
# Registry / documentation coherence


class TestRuleCatalog:
    def test_rule_ids_well_formed_and_unique(self):
        pattern = re.compile(r"^[A-Z]+\d{3}$")
        assert all(pattern.match(rule_id) for rule_id in RULES)
        names = [rule.name for rule in RULES.values()]
        assert len(names) == len(set(names))

    def test_every_shipped_rule_documented(self):
        design = (REPO_ROOT / "DESIGN.md").read_text(encoding="utf-8")
        missing = [rule_id for rule_id in RULES if rule_id not in design]
        assert not missing, f"rules missing from DESIGN.md table: {missing}"

    def test_det_rules_are_errors(self):
        for rule_id, rule in RULES.items():
            if rule_id.startswith("DET"):
                assert rule.severity.value == "error"
                assert rule.paper_section == "Reproduction methodology"


# ----------------------------------------------------------------------
# The canonical in-tree suppression examples stay in place


class TestCanonicalSuppressions:
    @pytest.mark.parametrize(
        "relpath, rule_id",
        [
            ("src/repro/harness/bench.py", "DET003"),
            ("src/repro/obs/runtime.py", "DET005"),
        ],
    )
    def test_suppression_present_with_reason(self, relpath, rule_id):
        source = (REPO_ROOT / relpath).read_text(encoding="utf-8")
        suppressions = parse_suppressions(source)
        covering = [s for s in suppressions.values() if s.covers(rule_id)]
        assert covering, f"no reasoned {rule_id} suppression in {relpath}"
