"""Tests for repro.units."""

import pytest

from repro.errors import ConfigurationError
from repro.units import (
    KB,
    Clock,
    format_bytes,
    format_duration,
    kb,
    mhz,
)


class TestSizes:
    def test_kb_constant(self):
        assert KB == 1024

    def test_kb_helper(self):
        assert kb(8) == 8192

    def test_kb_fractional(self):
        assert kb(0.5) == 512

    def test_mhz(self):
        assert mhz(100) == 100e6


class TestClock:
    def test_cycles_to_seconds(self):
        clock = Clock(100e6)
        assert clock.cycles_to_seconds(100e6) == pytest.approx(1.0)

    def test_seconds_to_cycles(self):
        clock = Clock(100e6)
        assert clock.seconds_to_cycles(0.5) == pytest.approx(50e6)

    def test_cycles_to_us(self):
        clock = Clock(100e6)
        assert clock.cycles_to_us(100) == pytest.approx(1.0)

    def test_roundtrip(self):
        clock = Clock(133e6)
        assert clock.seconds_to_cycles(clock.cycles_to_seconds(12345)) == pytest.approx(
            12345
        )

    def test_rejects_zero_frequency(self):
        with pytest.raises(ConfigurationError):
            Clock(0)

    def test_rejects_negative_frequency(self):
        with pytest.raises(ConfigurationError):
            Clock(-1)


class TestFormatting:
    def test_format_bytes_exact_kb(self):
        assert format_bytes(8192) == "8 KB"

    def test_format_bytes_small(self):
        assert format_bytes(552) == "552 B"

    def test_format_duration_us(self):
        assert format_duration(100e-6) == "100.0 us"

    def test_format_duration_ms(self):
        assert format_duration(0.01) == "10.0 ms"

    def test_format_duration_seconds(self):
        assert format_duration(1.5) == "1.500 s"

    def test_format_duration_rejects_negative(self):
        with pytest.raises(ConfigurationError):
            format_duration(-1.0)
