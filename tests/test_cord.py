"""Tests for Cord-style layout compaction and the CISC-density ablation
(paper Sections 5.2 and 5.4)."""

import pytest

from repro.cache.workingset import Category, WorkingSetAnalyzer
from repro.experiments import ablations
from repro.netbsd import (
    ReceivePathModel,
    compact_trace,
    measure_dilution,
    run_cord_experiment,
)
from repro.trace import LayerClassifier, code_ref


class TestMeasureDilution:
    def test_fully_dense_code_has_zero_dilution(self):
        ws = WorkingSetAnalyzer(LayerClassifier({"f": "L"}))
        ws.consume([code_ref(i, 4, "f") for i in range(0, 320, 4)])
        report = measure_dilution(ws)
        assert report.dilution == pytest.approx(0.0)
        assert report.lines_before == report.lines_after

    def test_half_dense_code(self):
        # Touch 4 of every 8 words: 50% dilution.
        ws = WorkingSetAnalyzer(LayerClassifier({"f": "L"}))
        refs = []
        for line in range(10):
            for word in range(4):
                refs.append(code_ref(line * 32 + word * 4, 4, "f"))
        ws.consume(refs)
        report = measure_dilution(ws)
        assert report.dilution == pytest.approx(0.5)
        assert report.lines_after == 5
        assert report.line_savings == pytest.approx(0.5)

    def test_empty_analyzer(self):
        report = measure_dilution(WorkingSetAnalyzer())
        assert report.dilution == 0.0
        assert report.line_savings == 0.0


class TestReceivePathDilution:
    @pytest.fixture(scope="class")
    def result(self):
        return run_cord_experiment(seed=0)

    def test_dilution_near_paper_quarter(self, result):
        # "about 25% of instructions fetched into the cache are not
        # executed" — we calibrate Table 3, and this falls out.
        assert 0.20 < result.before.dilution < 0.33

    def test_compaction_saves_near_quarter(self, result):
        savings = 1 - result.lines_measured_after / result.before.lines_before
        assert 0.18 < savings < 0.33

    def test_measured_close_to_ideal(self, result):
        # Per-function packing cannot beat the global ideal but should
        # come close (fragmentation only at function tails).
        assert result.lines_measured_after >= result.before.lines_after
        assert result.lines_measured_after <= 1.1 * result.before.lines_after

    def test_render(self, result):
        assert "dilution" in result.render()


class TestCompactTrace:
    def test_structure_preserved(self):
        model = ReceivePathModel(seed=0)
        trace = model.build_trace()
        compacted = compact_trace(model, trace)
        assert len(compacted.refs) == len(trace.refs)
        assert compacted.phase_marks == trace.phase_marks
        assert compacted.call_events == trace.call_events

    def test_data_refs_untouched(self):
        model = ReceivePathModel(seed=0)
        trace = model.build_trace()
        compacted = compact_trace(model, trace)
        for original, packed in zip(trace.refs, compacted.refs):
            if not original.is_code():
                assert original == packed

    def test_code_stays_within_function(self):
        model = ReceivePathModel(seed=0)
        trace = model.build_trace()
        compacted = compact_trace(model, trace)
        functions = model._functions
        for ref in compacted.refs[:5000]:
            if ref.is_code() and ref.fn in functions:
                placed = functions[ref.fn]
                assert placed.base <= ref.addr < placed.base + placed.spec.size

    def test_table1_totals_preserved_at_word_granularity(self):
        """Compaction moves code but never changes how much executes."""
        model = ReceivePathModel(seed=0)
        trace = model.build_trace()
        before = model.analyze(trace)
        after = WorkingSetAnalyzer(model.classifier())
        after.consume(model.table1_refs(compact_trace(model, trace)))
        assert (
            before.totals_at(4)[Category.CODE].bytes
            == after.totals_at(4)[Category.CODE].bytes
        )


class TestCiscDensity:
    def test_i386_shrinks_the_gap(self):
        sweep = ablations.cisc_density_sweep(
            densities=(1.0, 0.45), rate=5000, duration=0.08
        )
        alpha_adv = (
            sweep.conventional[0].cycles_per_message
            / sweep.ldlp[0].cycles_per_message
        )
        i386_adv = (
            sweep.conventional[1].cycles_per_message
            / sweep.ldlp[1].cycles_per_message
        )
        assert alpha_adv > i386_adv
        # i386: the 5-layer stack is ~13.8 KB, still above 8 KB, so some
        # advantage remains — but far less.
        assert i386_adv > 0.95

    def test_i386_conventional_misses_lower(self):
        sweep = ablations.cisc_density_sweep(
            densities=(1.0, 0.45), rate=3000, duration=0.08
        )
        assert (
            sweep.conventional[1].misses.total
            < 0.6 * sweep.conventional[0].misses.total
        )
