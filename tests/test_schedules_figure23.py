"""Tests for the Figure 2/3 schedule rendering — the implemented
schedulers must realize exactly the orders the paper draws."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    ConventionalScheduler,
    GroupedLDLPScheduler,
    ILPScheduler,
    LDLPScheduler,
)
from repro.core.blocking import blocked_schedule, conventional_schedule
from repro.experiments.schedules import (
    figure23_text,
    observed_order,
    render_order,
)


class TestObservedOrders:
    def test_conventional_matches_figure(self):
        # Figure 3 left column: each layer applied to P0, then P1.
        order = observed_order(ConventionalScheduler, 4, 2)
        assert order == conventional_schedule(4, 2)

    def test_ilp_outer_order_equals_conventional(self):
        # "ILP: ... Outer loop has poor locality" — same visit order.
        assert observed_order(ILPScheduler, 4, 2) == observed_order(
            ConventionalScheduler, 4, 2
        )

    def test_ldlp_matches_blocked_figure(self):
        # Figure 3 right column: each layer over the whole batch.
        order = observed_order(LDLPScheduler, 4, 2, batch=2)
        assert order == blocked_schedule(4, 2, block=2)

    def test_ldlp_partial_batches(self):
        order = observed_order(LDLPScheduler, 2, 5, batch=2)
        assert order == blocked_schedule(2, 5, block=2)

    @given(
        num_layers=st.integers(1, 5),
        num_messages=st.integers(1, 8),
        batch=st.integers(1, 8),
    )
    @settings(max_examples=40, deadline=None)
    def test_ldlp_always_equals_blocked_schedule(self, num_layers,
                                                 num_messages, batch):
        """Property: the on-line LDLP scheduler run offline produces
        exactly the off-line blocked schedule — Section 3.1's claim that
        LDLP is the on-line realization of blocking."""
        order = observed_order(LDLPScheduler, num_layers, num_messages, batch)
        assert order == blocked_schedule(num_layers, num_messages, batch)

    def test_grouped_blocks_within_groups(self):
        def grouped_factory(layers, **kwargs):
            return GroupedLDLPScheduler(layers, groups=[[0, 1], [2, 3]], **kwargs)

        order = observed_order(grouped_factory, 4, 2, batch=2)
        # Group {L0,L1} runs depth-first per message over the batch,
        # then group {L2,L3}.
        assert order == [
            (0, 0), (1, 0), (0, 1), (1, 1),
            (2, 0), (3, 0), (2, 1), (3, 1),
        ]


class TestRendering:
    def test_figure23_text_mentions_all(self):
        text = figure23_text()
        assert "Conventional" in text
        assert "Blocked / LDLP" in text
        assert "(L0,P0)" in text

    def test_render_order_shape(self):
        order = blocked_schedule(2, 2, 2)
        text = render_order(order, 2, 2)
        lines = text.splitlines()
        assert len(lines) == 1 + len(order)
        assert lines[1].endswith("P0")
