"""Tests for the repro.machine package."""

import numpy as np
import pytest

from repro.cache import MachineSpec
from repro.errors import ConfigurationError, LayoutError
from repro.machine import layout as layout_mod
from repro.machine import (
    CPU,
    BufferPool,
    ExecutionProfile,
    FootprintExecutor,
    MemoryLayout,
    PlacedLayer,
    Program,
    Region,
    RegionKind,
)


class TestRegion:
    def test_unplaced_raises(self):
        region = Region("f", 100)
        assert not region.placed
        with pytest.raises(LayoutError):
            region.require_base()

    def test_zero_size_rejected(self):
        with pytest.raises(LayoutError):
            Region("f", 0)

    def test_line_numbers(self):
        region = Region("f", 64, base=32)
        assert list(region.line_numbers(32)) == [1, 2]

    def test_line_numbers_unaligned_end(self):
        region = Region("f", 33, base=0)
        assert list(region.line_numbers(32)) == [0, 1]

    def test_contains(self):
        region = Region("f", 100, base=1000)
        assert region.contains(1000)
        assert region.contains(1099)
        assert not region.contains(1100)


class TestProgram:
    def test_duplicate_name_rejected(self):
        program = Program()
        program.add_code("f", 100)
        with pytest.raises(LayoutError):
            program.add_code("f", 200)

    def test_lookup(self):
        program = Program()
        program.add_code("f", 100)
        assert program.region("f").size == 100
        with pytest.raises(LayoutError):
            program.region("g")

    def test_kind_filters_and_totals(self):
        program = Program()
        program.add_code("f", 100)
        program.add_data("d", 50)
        assert program.total_size() == 150
        assert program.total_size(RegionKind.CODE) == 100
        assert [r.name for r in program.data_regions()] == ["d"]

    def test_function_of_addr(self):
        program = Program()
        region = program.add_code("f", 100)
        region.base = 1000
        assert program.function_of_addr(1050) == "f"
        assert program.function_of_addr(2000) is None


class TestMemoryLayout:
    def test_sequential_packs_aligned(self):
        layout = MemoryLayout(line_size=32)
        a = layout.place_sequential(Region("a", 100))
        b = layout.place_sequential(Region("b", 100))
        assert a.base == 0
        assert b.base == 128  # 100 rounded up to the next 32-byte line
        assert b.base % 32 == 0

    def test_random_no_overlap(self):
        layout = MemoryLayout(line_size=32, rng=np.random.default_rng(3), span=1 << 16)
        regions = [Region(f"r{i}", 1000) for i in range(20)]
        layout.place_all_random(regions)
        intervals = sorted((r.base, r.base + r.size) for r in regions)
        for (s1, e1), (s2, _e2) in zip(intervals, intervals[1:]):
            assert e1 <= s2

    def test_random_is_line_aligned(self):
        layout = MemoryLayout(line_size=32, rng=np.random.default_rng(4))
        region = layout.place_random(Region("r", 64))
        assert region.base % 32 == 0

    def test_random_reproducible_with_seed(self):
        bases = []
        for _ in range(2):
            layout = MemoryLayout(line_size=32, rng=np.random.default_rng(99))
            bases.append(layout.place_random(Region("r", 64)).base)
        assert bases[0] == bases[1]

    def test_int_seed_matches_generator_seed(self):
        """An int rng is coerced to a private default_rng(seed): the two
        spellings must place identically (workers pass plain ints)."""
        bases = []
        for rng in (99, np.random.default_rng(99)):
            layout = MemoryLayout(line_size=32, rng=rng)
            regions = [Region(f"r{i}", 200) for i in range(8)]
            layout.place_all_random(regions)
            bases.append([region.base for region in regions])
        assert bases[0] == bases[1]

    def test_seeded_layouts_share_no_rng_state(self):
        """Two same-seed layouts own independent generators: drawing
        from one must not advance the other (parallel-worker safety)."""
        first = MemoryLayout(line_size=32, rng=5)
        second = MemoryLayout(line_size=32, rng=5)
        # Advance only the first layout's stream.
        first.place_random(Region("extra", 64))
        first_next = first.place_random(Region("r", 64)).base
        second.place_random(Region("extra", 64))
        second_next = second.place_random(Region("r", 64)).base
        assert first_next == second_next

    def test_default_rng_is_fixed_seed(self):
        """``rng=None`` must mean DEFAULT_SEED, not OS entropy (DET001):
        every default-constructed layout places identically, and the
        placements are byte-pinned so a silent seed change fails here."""
        bases = [
            MemoryLayout(line_size=32).place_random(Region("r", 64)).base
            for _ in range(4)
        ]
        assert len(set(bases)) == 1
        seeded = MemoryLayout(line_size=32, rng=layout_mod.DEFAULT_SEED)
        assert seeded.place_random(Region("r", 64)).base == bases[0]
        pinned = MemoryLayout(line_size=32)
        placed = [
            pinned.place_random(Region(f"r{i}", 64)).base for i in range(4)
        ]
        assert placed == [57084384, 42745728, 34301760, 18105056]

    def test_double_placement_rejected(self):
        layout = MemoryLayout()
        region = layout.place_sequential(Region("a", 64))
        with pytest.raises(LayoutError):
            layout.place_sequential(region)

    def test_region_too_big_for_window(self):
        layout = MemoryLayout(span=1024)
        with pytest.raises(LayoutError):
            layout.place_random(Region("big", 4096))

    def test_full_window_raises(self):
        layout = MemoryLayout(line_size=32, span=128)
        layout.place_random(Region("a", 128))
        with pytest.raises(LayoutError):
            layout.place_random(Region("b", 32), max_attempts=10)


class TestCPU:
    def test_execute_accumulates(self):
        cpu = CPU()
        cpu.execute(100)
        assert cpu.cycles == 100
        assert cpu.stall_cycles == 0

    def test_miss_charges_penalty(self):
        cpu = CPU()
        cpu.fetch_code_span(0, 32)
        assert cpu.cycles == 20
        assert cpu.stall_cycles == 20
        cpu.fetch_code_span(0, 32)  # now warm
        assert cpu.cycles == 20

    def test_write_never_stalls(self):
        cpu = CPU()
        cpu.write_data_span(0, 4096)
        assert cpu.cycles == 0
        # But the written lines are now resident.
        assert cpu.read_data_span(0, 4096) == 0

    def test_time_seconds(self):
        cpu = CPU(MachineSpec(clock_hz=100e6))
        cpu.execute(100e6)
        assert cpu.time_seconds == pytest.approx(1.0)

    def test_advance_to_cycle(self):
        cpu = CPU()
        cpu.advance_to_cycle(500)
        assert cpu.cycles == 500
        cpu.advance_to_cycle(100)  # never goes backwards
        assert cpu.cycles == 500

    def test_cold_start_flushes(self):
        cpu = CPU()
        cpu.fetch_code_span(0, 32)
        cpu.cold_start()
        assert cpu.fetch_code_span(0, 32) == 1

    def test_reset(self):
        cpu = CPU()
        cpu.fetch_code_span(0, 32)
        cpu.reset()
        assert cpu.cycles == 0
        assert cpu.icache_misses == 0

    def test_custom_miss_penalty(self):
        spec = MachineSpec(miss_penalty=10)
        cpu = CPU(spec)
        cpu.read_data_span(0, 32)
        assert cpu.cycles == 10


class TestExecutionProfile:
    def test_paper_defaults(self):
        # "In total 1652 cycles of instruction processing are executed
        # for each layer" for a 552-byte message.
        profile = ExecutionProfile()
        assert profile.compute_cycles(552) == pytest.approx(1652.0)

    def test_rejects_bad_values(self):
        with pytest.raises(ConfigurationError):
            ExecutionProfile(code_bytes=0)
        with pytest.raises(ConfigurationError):
            ExecutionProfile(base_cycles=-1)


class TestFootprintExecutor:
    def make(self, seed=1):
        cpu = CPU()
        layout = MemoryLayout(rng=np.random.default_rng(seed))
        layer = PlacedLayer("L1", ExecutionProfile(), layout)
        pool = BufferPool(layout, 4, 1536)
        return cpu, layer, pool, FootprintExecutor(cpu)

    def test_cold_invocation_cost(self):
        cpu, layer, pool, executor = self.make()
        buffer = pool.acquire()
        cycles = executor.run_layer(layer, buffer, 552)
        # 192 code lines + 8 data lines + 18 message lines, all cold:
        # 218 misses x 20 + 1652 compute = 6012 cycles.
        assert cycles == pytest.approx(6012.0)
        assert cpu.icache_misses == 192
        assert cpu.dcache_misses == 26

    def test_warm_invocation_cost(self):
        _cpu, layer, pool, executor = self.make()
        buffer = pool.acquire()
        executor.run_layer(layer, buffer, 552)
        warm = executor.run_layer(layer, buffer, 552)
        assert warm == pytest.approx(1652.0)

    def test_queue_overhead(self):
        _cpu, layer, pool, executor = self.make()
        buffer = pool.acquire()
        executor.run_layer(layer, buffer, 552)
        with_queue = executor.run_layer(layer, buffer, 552, queue_overhead=True)
        assert with_queue == pytest.approx(1652.0 + 40)

    def test_zero_byte_message(self):
        _cpu, layer, pool, executor = self.make()
        buffer = pool.acquire()
        cycles = executor.run_layer(layer, buffer, 0)
        # 200 misses (code + layer data only) x 20 + 1376 base cycles.
        assert cycles == pytest.approx(200 * 20 + 1376.0)

    def test_message_exceeding_buffer_raises(self):
        _cpu, _layer, pool, executor = self.make()
        buffer = pool.acquire()
        with pytest.raises(LayoutError):
            buffer.lines_for(4096)

    def test_two_layers_thrash_8kb_icache(self):
        # Two 6 KB layers cannot both stay in an 8 KB cache: running
        # L1, L2, L1, L2 must evict and refetch (the paper's core claim
        # about the conventional schedule).
        cpu = CPU()
        layout = MemoryLayout(rng=np.random.default_rng(5))
        l1 = PlacedLayer("L1", ExecutionProfile(), layout)
        l2 = PlacedLayer("L2", ExecutionProfile(), layout)
        pool = BufferPool(layout, 4, 1536)
        executor = FootprintExecutor(cpu)
        buffer = pool.acquire()
        for layer in (l1, l2, l1, l2):
            executor.run_layer(layer, buffer, 552)
        # With random placement two 6 KB regions overlap substantially
        # in a 256-line cache; the second round must re-miss heavily.
        assert cpu.icache_misses > 2 * 192 + 100

    def test_batch_amortizes_code_misses(self):
        # Processing 10 messages at one layer costs far fewer I-misses
        # per message than alternating layers (the LDLP effect).
        cpu = CPU()
        layout = MemoryLayout(rng=np.random.default_rng(6))
        layer = PlacedLayer("L1", ExecutionProfile(), layout)
        pool = BufferPool(layout, 14, 1536)
        executor = FootprintExecutor(cpu)
        for _ in range(10):
            executor.run_layer(layer, pool.acquire(), 552)
        assert cpu.icache_misses == 192  # code fetched exactly once


class TestBufferPool:
    def test_round_robin(self):
        layout = MemoryLayout(rng=np.random.default_rng(2))
        pool = BufferPool(layout, 3, 1536)
        first = pool.acquire()
        pool.acquire()
        pool.acquire()
        assert pool.acquire() is first

    def test_rejects_empty_pool(self):
        layout = MemoryLayout()
        with pytest.raises(ConfigurationError):
            BufferPool(layout, 0, 1536)

    def test_lines_for_partial_message(self):
        layout = MemoryLayout(line_size=32, rng=np.random.default_rng(2))
        pool = BufferPool(layout, 1, 1536)
        buffer = pool.acquire()
        assert buffer.lines_for(552).size == 18
        assert buffer.lines_for(0).size == 0
        assert buffer.lines_for(1).size == 1
