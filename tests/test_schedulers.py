"""Tests for repro.core: schedulers, batching, blocking."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cache.hierarchy import MachineSpec
from repro.core import (
    BatchPolicy,
    ConventionalScheduler,
    CountingLayer,
    ILPScheduler,
    LDLPScheduler,
    Layer,
    MachineBinding,
    Message,
    PassthroughLayer,
    SinkLayer,
    blocked_schedule,
    conventional_schedule,
    estimate_block_cost,
    estimate_blocking_factor,
    group_layers_for_cache,
    process_blocked,
)
from repro.errors import ConfigurationError, SchedulerError
from repro.units import kb


def stack_of(n=3):
    return [CountingLayer(f"L{i}") for i in range(n)]


class TestMessage:
    def test_size_from_payload(self):
        assert Message(payload=b"12345").size == 5

    def test_explicit_size_wins(self):
        assert Message(payload=b"12345", size=99).size == 99

    def test_negative_size_rejected(self):
        with pytest.raises(SchedulerError):
            Message(size=-1)

    def test_unique_ids(self):
        assert Message().msg_id != Message().msg_id


class TestSchedulerBasics:
    def test_empty_stack_rejected(self):
        with pytest.raises(SchedulerError):
            ConventionalScheduler([])

    def test_duplicate_layer_names_rejected(self):
        with pytest.raises(SchedulerError):
            ConventionalScheduler([PassthroughLayer("a"), PassthroughLayer("a")])

    def test_input_limit_drops(self):
        scheduler = ConventionalScheduler(stack_of(1), input_limit=2)
        accepted = [scheduler.enqueue_arrival(Message()) for _ in range(4)]
        assert accepted == [True, True, False, False]
        assert scheduler.drops == 2
        assert scheduler.arrivals == 4

    def test_service_step_idle(self):
        scheduler = ConventionalScheduler(stack_of(1))
        assert scheduler.service_step() == []


class TestFunctionalEquivalence:
    def test_all_messages_visit_all_layers(self):
        for cls in (ConventionalScheduler, ILPScheduler, LDLPScheduler):
            layers = stack_of(3)
            scheduler = cls(layers)
            messages = [Message() for _ in range(7)]
            completions = scheduler.run_to_completion(messages)
            assert len(completions) == 7
            assert all(c.delivered for c in completions)
            for layer in layers:
                assert sorted(layer.delivered) == sorted(m.msg_id for m in messages)

    def test_conventional_is_depth_first(self):
        layers = stack_of(2)
        scheduler = ConventionalScheduler(layers)
        a, b = Message(), Message()
        scheduler.run_to_completion([a, b])
        # Message a goes through both layers before b starts.
        assert layers[0].delivered == [a.msg_id, b.msg_id]
        assert layers[1].delivered == [a.msg_id, b.msg_id]

    def test_ldlp_is_blocked_order(self):
        layers = stack_of(2)
        scheduler = LDLPScheduler(layers, batch_policy=BatchPolicy(max_batch=10))
        a, b = Message(), Message()
        scheduler.run_to_completion([a, b])
        # Layer 0 sees both messages before layer 1 sees either.
        assert layers[0].delivered == [a.msg_id, b.msg_id]
        assert layers[1].delivered == [a.msg_id, b.msg_id]

    def test_consuming_layer_completes_with_delivered_false(self):
        class DropLayer(Layer):
            def deliver(self, message):
                return []

        for cls in (ConventionalScheduler, LDLPScheduler):
            scheduler = cls([DropLayer("drop"), CountingLayer("top")])
            completions = scheduler.run_to_completion([Message()])
            assert len(completions) == 1
            assert not completions[0].delivered

    def test_multiplying_layer_fans_out(self):
        class SplitLayer(Layer):
            def deliver(self, message):
                return [Message(), Message()]

        for cls in (ConventionalScheduler, LDLPScheduler):
            top = CountingLayer("top")
            scheduler = cls([SplitLayer("split"), top])
            scheduler.run_to_completion([Message(), Message()])
            assert len(top.delivered) == 4

    def test_flush_emits_held_messages(self):
        class Coalescer(Layer):
            """Holds every message; emits one summary at flush."""

            def __init__(self):
                super().__init__("coalesce")
                self.held = 0

            def deliver(self, message):
                self.held += 1
                return []

            def flush(self):
                if not self.held:
                    return []
                count, self.held = self.held, 0
                return [Message(size=count)]

        top = CountingLayer("top")
        scheduler = LDLPScheduler(
            [Coalescer(), top], batch_policy=BatchPolicy(max_batch=100)
        )
        scheduler.run_to_completion([Message() for _ in range(5)])
        assert len(top.delivered) == 1  # one coalesced summary

    @given(
        num_messages=st.integers(0, 30),
        num_layers=st.integers(1, 5),
        batch=st.integers(1, 20),
    )
    @settings(max_examples=40, deadline=None)
    def test_scheduler_equivalence_property(self, num_messages, num_layers, batch):
        """Property: all three schedulers deliver the same message set
        in the same per-layer order."""
        results = []
        for cls, kwargs in (
            (ConventionalScheduler, {}),
            (ILPScheduler, {}),
            (LDLPScheduler, {"batch_policy": BatchPolicy(max_batch=batch)}),
        ):
            layers = stack_of(num_layers)
            scheduler = cls(layers, **kwargs)
            messages = [Message() for _ in range(num_messages)]
            index_of = {m.msg_id: i for i, m in enumerate(messages)}
            completions = scheduler.run_to_completion(messages)
            assert len(completions) == num_messages
            results.append(
                [tuple(index_of[mid] for mid in layer.delivered) for layer in layers]
            )
        # Same per-layer delivery order everywhere (FIFO preserved).
        assert results[0] == results[1] == results[2]


class TestLdlpBatching:
    def test_batch_cap_respected(self):
        scheduler = LDLPScheduler(
            stack_of(1), batch_policy=BatchPolicy(max_batch=4), input_limit=100
        )
        for _ in range(10):
            scheduler.enqueue_arrival(Message())
        scheduler.service_step()
        assert scheduler.batch_sizes == [4]
        assert scheduler.pending() == 6

    def test_light_load_processes_singly(self):
        scheduler = LDLPScheduler(stack_of(2))
        scheduler.enqueue_arrival(Message())
        scheduler.service_step()
        assert scheduler.batch_sizes == [1]

    def test_default_policy_from_machine(self):
        scheduler = LDLPScheduler(stack_of(1), MachineBinding(rng=0))
        assert scheduler.batch_limit == 14  # 8 KB dcache / 552 B


class TestBatchPolicy:
    def test_paper_value(self):
        assert BatchPolicy.from_cache(kb(8)).max_batch == 14

    def test_bigger_cache_bigger_batches(self):
        assert BatchPolicy.from_cache(kb(64)).max_batch > 100

    def test_minimum_one(self):
        assert BatchPolicy.from_cache(256, typical_message_bytes=1024).max_batch == 1

    def test_from_machine(self):
        assert BatchPolicy.from_machine(MachineSpec()).max_batch == 14

    def test_invalid(self):
        with pytest.raises(ConfigurationError):
            BatchPolicy(0)
        with pytest.raises(ConfigurationError):
            BatchPolicy.from_cache(kb(8), typical_message_bytes=0)


class TestBlocking:
    def test_blocked_schedule_order(self):
        order = blocked_schedule(2, 4, block=2)
        assert order == [
            (0, 0), (0, 1), (1, 0), (1, 1),
            (0, 2), (0, 3), (1, 2), (1, 3),
        ]

    def test_conventional_is_block_one(self):
        assert conventional_schedule(2, 2) == blocked_schedule(2, 2, 1)

    def test_bad_block_rejected(self):
        with pytest.raises(ConfigurationError):
            blocked_schedule(2, 2, 0)

    def test_process_blocked_equals_sequential(self):
        layers = stack_of(3)
        messages = [Message() for _ in range(5)]
        outputs = process_blocked(layers, messages, block=2)
        assert len(outputs) == 5
        for layer in layers:
            assert sorted(layer.delivered) == sorted(m.msg_id for m in messages)

    def test_estimate_prefers_large_fitting_block(self):
        estimate = estimate_blocking_factor(
            layer_code_bytes=[6144] * 5,
            message_bytes=552,
            dcache_bytes=kb(8),
        )
        # The paper's rule: as many messages as fit in the data cache.
        assert estimate.block == 14
        assert estimate.fits_data_cache

    def test_estimate_monotone_code_misses(self):
        small = estimate_block_cost(1, [6144] * 5, 552, kb(8))
        large = estimate_block_cost(14, [6144] * 5, 552, kb(8))
        assert large.instruction_misses_per_message < small.instruction_misses_per_message

    def test_overflow_block_penalized(self):
        fits = estimate_block_cost(14, [6144] * 5, 552, kb(8))
        overflow = estimate_block_cost(30, [6144] * 5, 552, kb(8))
        assert not overflow.fits_data_cache
        assert overflow.data_misses_per_message > fits.data_misses_per_message

    def test_estimate_requires_layers(self):
        with pytest.raises(ConfigurationError):
            estimate_blocking_factor([], 552, kb(8))

    def test_group_layers(self):
        groups = group_layers_for_cache([6144, 6144, 6144], kb(8))
        assert groups == [[0], [1], [2]]
        groups = group_layers_for_cache([2048, 2048, 2048, 6144], kb(8))
        assert groups == [[0, 1, 2], [3]]

    def test_group_oversized_layer_alone(self):
        groups = group_layers_for_cache([16384, 1024], kb(8))
        assert groups == [[0], [1]]

    def test_group_invalid_cache(self):
        with pytest.raises(ConfigurationError):
            group_layers_for_cache([1024], 0)


class TestIlpCostModel:
    def test_ilp_charges_message_once(self):
        """ILP reads message bytes once; conventional reads per layer."""
        def run(cls):
            binding = MachineBinding(rng=5)
            scheduler = cls(
                [PassthroughLayer(f"L{i}") for i in range(5)], binding
            )
            scheduler.run_to_completion([Message(size=552) for _ in range(20)])
            return binding.cpu.dcache_misses

        conventional = run(ConventionalScheduler)
        ilp = run(ILPScheduler)
        assert ilp < conventional

    def test_ilp_same_instruction_locality_as_conventional(self):
        """ILP does not fix the outer loop: I-miss counts match."""
        def run(cls):
            binding = MachineBinding(rng=6)
            scheduler = cls(
                [PassthroughLayer(f"L{i}") for i in range(5)], binding
            )
            scheduler.run_to_completion([Message(size=552) for _ in range(20)])
            return binding.cpu.icache_misses

        assert run(ConventionalScheduler) == run(ILPScheduler)


class TestSinkAndCounting:
    def test_sink_consumes(self):
        sink = SinkLayer()
        scheduler = ConventionalScheduler([PassthroughLayer("a"), sink])
        completions = scheduler.run_to_completion([Message()])
        assert len(sink.received) == 1
        assert completions[0].delivered  # consumed by the top layer
