"""Tests for the frame decoder and the trace-analysis CLI."""

import pytest

from repro.protocols import TcpSender, udp_frame
from repro.protocols.craft import ip_frame
from repro.protocols.decode import decode_frame, decode_frames, tcp_flags_text
from repro.protocols.icmp import IcmpMessage
from repro.protocols.ip import PROTO_ICMP
from repro.protocols.tcp import FLAG_ACK, FLAG_PSH, FLAG_SYN
from repro.trace.cli import analyze, main as trace_main
from repro.trace.io import save_trace


class TestFlagsText:
    def test_syn(self):
        assert tcp_flags_text(FLAG_SYN) == "S"

    def test_push_ack(self):
        assert tcp_flags_text(FLAG_PSH | FLAG_ACK) == "P."

    def test_none(self):
        assert tcp_flags_text(0) == "none"


class TestDecodeFrame:
    def test_tcp_syn(self):
        sender = TcpSender(src="10.0.0.9", dst="10.0.0.1", src_port=7777,
                           dst_port=80)
        text = decode_frame(sender.syn())
        assert "10.0.0.9.7777 > 10.0.0.1.80" in text
        assert "Flags [S]" in text

    def test_tcp_data_length(self):
        sender = TcpSender(src="10.0.0.9", dst="10.0.0.1", src_port=7777,
                           dst_port=80)
        sender.established = True
        text = decode_frame(sender.data(b"x" * 99))
        assert "length 99" in text

    def test_udp(self):
        frame = udp_frame("10.0.0.9", "10.0.0.1", 5353, 53, b"q" * 20)
        text = decode_frame(frame)
        assert "UDP, length 20" in text
        assert "10.0.0.9.5353 > 10.0.0.1.53" in text

    def test_icmp(self):
        ping = IcmpMessage.echo_request(5, 9, b"hi").serialize()
        frame = ip_frame("10.0.0.9", "10.0.0.1", PROTO_ICMP, ping)
        text = decode_frame(frame)
        assert "ICMP echo request" in text
        assert "id 5, seq 9" in text

    def test_fragment(self):
        from repro.protocols import fragment_datagram
        from repro.protocols.ip import IPv4Address, IPv4Header, PROTO_UDP
        from repro.protocols import ethernet
        from repro.protocols.ethernet import MacAddress

        header = IPv4Header(
            src=IPv4Address.parse("10.0.0.9"),
            dst=IPv4Address.parse("10.0.0.1"),
            protocol=PROTO_UDP,
            total_length=0,
            identification=42,
        )
        fragments = fragment_datagram(header, b"z" * 1200, mtu=576)
        frame = ethernet.frame(
            MacAddress.parse("02:00:00:00:00:02"),
            MacAddress.parse("02:00:00:00:00:01"),
            ethernet.ETHERTYPE_IP,
            fragments[1],
        )
        text = decode_frame(frame)
        assert "frag id 42" in text

    def test_non_ip(self):
        frame = b"\xff" * 12 + b"\x08\x06" + b"\x00" * 50
        assert "ethertype 0x0806" in decode_frame(frame)

    def test_garbage_never_raises(self):
        assert "undecodable" in decode_frame(b"\x01\x02\x03")
        assert "undecodable" in decode_frame(b"")

    def test_decode_frames_numbered(self):
        frame = udp_frame("10.0.0.9", "10.0.0.1", 1, 2, b"x")
        text = decode_frames([frame, frame])
        assert text.splitlines()[0].startswith("   0")
        assert len(text.splitlines()) == 2


class TestTraceCli:
    @pytest.fixture()
    def trace_file(self, tmp_path):
        from repro.trace import TraceBuffer, code_ref, read_ref, write_ref

        trace = TraceBuffer()
        trace.mark_phase("entry")
        trace.enter("fn_a")
        trace.append(code_ref(0, 4))
        trace.append(read_ref(1000, 8))
        trace.enter("fn_b")
        trace.append(write_ref(2000, 4))
        trace.leave()
        trace.leave()
        trace.mark_phase("exit")
        trace.enter("fn_c")
        trace.append(code_ref(64, 4))
        trace.leave()
        path = tmp_path / "small.trace"
        save_trace(trace, path)
        return str(path)

    def test_analyze_sections(self, trace_file):
        report = analyze(trace_file)
        assert "4 references" in report
        assert "working set" in report
        assert "entry:" in report
        assert "exit:" in report

    def test_analyze_callgraph(self, trace_file):
        report = analyze(trace_file, callgraph=True)
        assert "fn_a" in report
        assert "  fn_b" in report

    def test_analyze_line_sizes(self, trace_file):
        report = analyze(trace_file, line_sizes=True)
        assert "line-size sensitivity" in report
        assert " 64 B" in report

    def test_main(self, trace_file, capsys):
        assert trace_main([trace_file, "--callgraph", "--line-sizes"]) == 0
        out = capsys.readouterr().out
        assert "call graph" in out

    def test_real_receive_path_trace_roundtrip(self, tmp_path):
        """The CLI digests the full 65k-reference NetBSD trace."""
        from repro.netbsd import ReceivePathModel

        model = ReceivePathModel(seed=0)
        path = tmp_path / "receive.trace"
        save_trace(model.build_trace(), path)
        report = analyze(str(path))
        assert "pkt intr" in report
        assert "code" in report
