"""Tests for the wired-up byte-level stack (repro.protocols.stack).

The crucial invariant: every scheduler delivers byte-identical results —
LDLP is purely an ordering transformation (Section 3).
"""

import pytest

from repro.core import (
    ConventionalScheduler,
    ILPScheduler,
    LDLPScheduler,
    Message,
)
from repro.protocols import (
    FLAG_ACK,
    TcpSender,
    build_tcp_receive_stack,
    build_udp_receive_stack,
    udp_frame,
)
from repro.protocols.craft import ip_frame


def established_pair(scheduler_cls, port=4000):
    """A receive stack with a completed handshake; returns (stack,
    scheduler, sender)."""
    stack = build_tcp_receive_stack("10.0.0.1", port)
    scheduler = scheduler_cls(stack.layers)
    sender = TcpSender(src="10.0.0.9", dst="10.0.0.1", src_port=7777, dst_port=port)
    scheduler.run_to_completion([Message(payload=sender.syn())])
    synack = stack.transmitted[-1]
    scheduler.run_to_completion([Message(payload=sender.complete_handshake(synack))])
    return stack, scheduler, sender


class TestTcpReceivePath:
    @pytest.mark.parametrize(
        "scheduler_cls", [ConventionalScheduler, ILPScheduler, LDLPScheduler]
    )
    def test_bulk_receive_delivers_in_order(self, scheduler_cls):
        stack, scheduler, sender = established_pair(scheduler_cls)
        payloads = [bytes([i]) * 200 for i in range(8)]
        messages = [Message(payload=sender.data(p)) for p in payloads]
        scheduler.run_to_completion(messages)
        assert stack.socket.receive_buffer.read() == b"".join(payloads)
        assert stack.stats.delivered == 8

    def test_acks_every_second_segment(self):
        stack, scheduler, sender = established_pair(ConventionalScheduler)
        for index in range(6):
            scheduler.run_to_completion([Message(payload=sender.data(b"x" * 64))])
        acks = [h for h in stack.transmitted if h.flags == FLAG_ACK]
        # 1 handshake-free ACK stream: 3 data ACKs for 6 segments.
        assert len(acks) == 3

    def test_corrupted_frame_dropped(self):
        stack, scheduler, sender = established_pair(ConventionalScheduler)
        frame = bytearray(sender.data(b"hello"))
        frame[-3] ^= 0xFF  # corrupt TCP payload -> checksum fails
        scheduler.run_to_completion([Message(payload=bytes(frame))])
        assert stack.stats.bad_transport == 1
        assert stack.socket.receive_buffer.read() == b""

    def test_non_ip_ethertype_counted(self):
        stack, scheduler, _sender = established_pair(ConventionalScheduler)
        arp = b"\xff" * 12 + b"\x08\x06" + b"\x00" * 46
        scheduler.run_to_completion([Message(payload=arp)])
        assert stack.stats.non_ip == 1

    def test_runt_frame_counted(self):
        stack, scheduler, _sender = established_pair(ConventionalScheduler)
        scheduler.run_to_completion([Message(payload=b"\x00" * 6)])
        assert stack.stats.bad_frames == 1

    def test_wrong_destination_dropped(self):
        stack, scheduler, _sender = established_pair(ConventionalScheduler)
        stranger = TcpSender(
            src="10.0.0.9", dst="10.9.9.9", src_port=1, dst_port=4000
        )
        scheduler.run_to_completion([Message(payload=stranger.syn())])
        assert stack.stats.bad_ip == 1

    def test_fragment_counted_and_dropped(self):
        stack, scheduler, _sender = established_pair(ConventionalScheduler)
        from repro.protocols.ip import FLAG_MF, IPv4Address, IPv4Header

        header = IPv4Header(
            src=IPv4Address.parse("10.0.0.9"),
            dst=IPv4Address.parse("10.0.0.1"),
            protocol=6,
            total_length=28,
            flags=FLAG_MF,
        )
        frame = ip_frame("10.0.0.9", "10.0.0.1", 6, b"x" * 8)
        # Rebuild with the MF flag set.
        from repro.protocols import ethernet

        datagram = header.serialize() + b"x" * 8
        frame = ethernet.frame(
            ethernet.BROADCAST,
            ethernet.MacAddress.parse("02:00:00:00:00:01"),
            ethernet.ETHERTYPE_IP,
            datagram,
        )
        scheduler.run_to_completion([Message(payload=frame)])
        assert stack.stats.fragments == 1

    def test_schedulers_agree_bytewise(self):
        """The paper's correctness premise: scheduling is invisible."""
        outputs = {}
        transmits = {}
        for cls in (ConventionalScheduler, ILPScheduler, LDLPScheduler):
            stack, scheduler, sender = established_pair(cls)
            messages = [
                Message(payload=sender.data(bytes([i % 251]) * (50 + i)))
                for i in range(12)
            ]
            scheduler.run_to_completion(messages)
            outputs[cls.__name__] = stack.socket.receive_buffer.read()
            transmits[cls.__name__] = [
                (h.flags, h.ack) for h in stack.transmitted
            ]
        assert len(set(outputs.values())) == 1
        assert len({tuple(t) for t in transmits.values()}) == 1

    def test_teardown_through_stack(self):
        stack, scheduler, sender = established_pair(ConventionalScheduler)
        scheduler.run_to_completion([Message(payload=sender.data(b"bye"))])
        scheduler.run_to_completion([Message(payload=sender.fin())])
        from repro.protocols import FLAG_FIN

        fin_acks = [h for h in stack.transmitted if h.flags & FLAG_FIN]
        assert len(fin_acks) == 1
        scheduler.run_to_completion(
            [Message(payload=sender.ack_of(fin_acks[0]))]
        )
        assert stack.receiver.stats.segments_in >= 5


class TestUdpReceivePath:
    def test_delivery_to_port(self):
        layers, sockets, stats = build_udp_receive_stack("10.0.0.1", ports=(53, 123))
        scheduler = ConventionalScheduler(layers)
        frame = udp_frame("10.0.0.9", "10.0.0.1", 4444, 53, b"dns-query")
        scheduler.run_to_completion([Message(payload=frame)])
        assert sockets[53].receive_buffer.read() == b"dns-query"
        assert sockets[123].receive_buffer.read() == b""
        assert stats.delivered == 1

    def test_unknown_port_dropped(self):
        layers, _sockets, stats = build_udp_receive_stack("10.0.0.1", ports=(53,))
        scheduler = ConventionalScheduler(layers)
        frame = udp_frame("10.0.0.9", "10.0.0.1", 4444, 99, b"nope")
        scheduler.run_to_completion([Message(payload=frame)])
        assert stats.bad_transport == 1

    def test_batch_of_datagrams_ldlp(self):
        layers, sockets, stats = build_udp_receive_stack("10.0.0.1", ports=(53,))
        scheduler = LDLPScheduler(layers)
        frames = [
            Message(payload=udp_frame("10.0.0.9", "10.0.0.1", 4000 + i, 53,
                                      f"q{i}".encode()))
            for i in range(10)
        ]
        scheduler.run_to_completion(frames)
        data = sockets[53].receive_buffer.read()
        assert data == b"".join(f"q{i}".encode() for i in range(10))
        assert stats.delivered == 10
