"""Tests for ICMP and IPv4 fragmentation/reassembly."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import ConventionalScheduler, Message
from repro.errors import ChecksumError, ProtocolError
from repro.protocols import (
    IcmpMessage,
    IcmpType,
    Reassembler,
    fragment_datagram,
)
from repro.protocols.ip import FLAG_DF, IPv4Address, IPv4Header, PROTO_UDP


class TestIcmpWire:
    def test_echo_roundtrip(self):
        ping = IcmpMessage.echo_request(0x42, 7, b"abcdefgh")
        parsed = IcmpMessage.parse(ping.serialize())
        assert parsed.icmp_type == IcmpType.ECHO_REQUEST
        assert parsed.identifier == 0x42
        assert parsed.sequence == 7
        assert parsed.payload == b"abcdefgh"

    def test_checksum_detects_corruption(self):
        wire = bytearray(IcmpMessage.echo_request(1, 1, b"x").serialize())
        wire[-1] ^= 0xFF
        with pytest.raises(ChecksumError):
            IcmpMessage.parse(bytes(wire))

    def test_reply_mirrors_request(self):
        request = IcmpMessage.echo_request(9, 3, b"data")
        reply = IcmpMessage.echo_reply_to(request)
        assert reply.icmp_type == IcmpType.ECHO_REPLY
        assert reply.identifier == 9
        assert reply.sequence == 3
        assert reply.payload == b"data"

    def test_reply_to_non_request_rejected(self):
        reply = IcmpMessage(IcmpType.ECHO_REPLY, 0, 1, 1)
        with pytest.raises(ProtocolError):
            IcmpMessage.echo_reply_to(reply)

    def test_short_message_rejected(self):
        with pytest.raises(ProtocolError):
            IcmpMessage.parse(b"\x08\x00\x00")

    @given(ident=st.integers(0, 0xFFFF), seq=st.integers(0, 0xFFFF),
           payload=st.binary(max_size=100))
    @settings(max_examples=60, deadline=None)
    def test_roundtrip_property(self, ident, seq, payload):
        wire = IcmpMessage.echo_request(ident, seq, payload).serialize()
        parsed = IcmpMessage.parse(wire)
        assert (parsed.identifier, parsed.sequence, parsed.payload) == (
            ident, seq, payload,
        )


class TestIcmpLayer:
    def build(self):
        from repro.protocols.icmp import IcmpLayer
        from repro.protocols.stack import DeviceLayer, IpLayer, StackStats

        stats = StackStats()
        replies = []
        layers = [
            DeviceLayer(stats),
            IpLayer(stats, IPv4Address.parse("10.0.0.1")),
            IcmpLayer(stats, transmit=lambda m, peer: replies.append((m, peer))),
        ]
        return layers, replies, stats

    def ping_frame(self, payload=b"ping!"):
        from repro.protocols.craft import ip_frame
        from repro.protocols.ip import PROTO_ICMP

        icmp = IcmpMessage.echo_request(7, 1, payload).serialize()
        return ip_frame("10.0.0.9", "10.0.0.1", PROTO_ICMP, icmp)

    def test_echo_request_answered(self):
        layers, replies, _stats = self.build()
        scheduler = ConventionalScheduler(layers)
        scheduler.run_to_completion([Message(payload=self.ping_frame())])
        assert len(replies) == 1
        reply, peer = replies[0]
        assert reply.icmp_type == IcmpType.ECHO_REPLY
        assert reply.payload == b"ping!"
        assert str(peer) == "10.0.0.9"

    def test_corrupt_icmp_counted(self):
        from repro.protocols.craft import ip_frame
        from repro.protocols.ip import PROTO_ICMP

        layers, replies, stats = self.build()
        icmp = bytearray(IcmpMessage.echo_request(7, 1, b"x").serialize())
        icmp[-1] ^= 0x01
        frame = ip_frame("10.0.0.9", "10.0.0.1", PROTO_ICMP, bytes(icmp))
        ConventionalScheduler(layers).run_to_completion([Message(payload=frame)])
        assert replies == []
        assert stats.bad_transport == 1


def make_header(payload_len, ident=5, flags=0):
    return IPv4Header(
        src=IPv4Address.parse("10.0.0.9"),
        dst=IPv4Address.parse("10.0.0.1"),
        protocol=PROTO_UDP,
        total_length=20 + payload_len,
        identification=ident,
        flags=flags,
    )


class TestFragmentation:
    def test_small_datagram_unfragmented(self):
        frames = fragment_datagram(make_header(100), b"x" * 100, mtu=1500)
        assert len(frames) == 1
        parsed = IPv4Header.parse(frames[0][:20])
        assert not parsed.is_fragment

    def test_split_into_mtu_chunks(self):
        payload = bytes(range(256)) * 8  # 2048 bytes
        frames = fragment_datagram(make_header(len(payload)), payload, mtu=576)
        assert len(frames) == 4
        offsets = []
        for frame in frames:
            header = IPv4Header.parse(frame[:20])
            offsets.append(header.fragment_offset)
            assert len(frame) <= 576
        assert offsets[0] == 0
        assert offsets == sorted(offsets)
        # All but the last have MF set.
        headers = [IPv4Header.parse(f[:20]) for f in frames]
        assert all(h.is_fragment for h in headers)
        assert not headers[-1].flags & 0x2000 or headers[-1].fragment_offset > 0

    def test_df_refuses_fragmentation(self):
        with pytest.raises(ProtocolError):
            fragment_datagram(
                make_header(2000, flags=FLAG_DF), b"x" * 2000, mtu=576
            )

    def test_tiny_mtu_rejected(self):
        with pytest.raises(ProtocolError):
            fragment_datagram(make_header(100), b"x" * 100, mtu=24)


class TestReassembly:
    def roundtrip(self, payload, mtu=576, shuffle=None):
        frames = fragment_datagram(make_header(len(payload)), payload, mtu=mtu)
        pieces = []
        for frame in frames:
            header = IPv4Header.parse(frame[:20])
            pieces.append((header, frame[20:]))
        if shuffle:
            pieces = [pieces[i] for i in shuffle]
        reassembler = Reassembler()
        results = [reassembler.accept(h, p) for h, p in pieces]
        return results, reassembler

    def test_in_order_reassembly(self):
        payload = bytes(range(256)) * 6
        results, reassembler = self.roundtrip(payload)
        assert all(r is None for r in results[:-1])
        header, assembled = results[-1]
        assert assembled == payload
        assert header.total_length == 20 + len(payload)
        assert not header.is_fragment
        assert reassembler.completed == 1
        assert len(reassembler) == 0

    def test_out_of_order_reassembly(self):
        payload = bytes(range(256)) * 6
        results, _ = self.roundtrip(payload, shuffle=[2, 0, 1])
        final = [r for r in results if r is not None]
        assert len(final) == 1
        assert final[0][1] == payload

    def test_duplicate_fragments_harmless(self):
        payload = b"Z" * 1200
        frames = fragment_datagram(make_header(len(payload)), payload, mtu=576)
        reassembler = Reassembler()
        pieces = []
        for frame in frames:
            header = IPv4Header.parse(frame[:20])
            pieces.append((header, frame[20:]))
        reassembler.accept(*pieces[0])
        reassembler.accept(*pieces[0])  # duplicate
        result = None
        for piece in pieces[1:]:
            result = reassembler.accept(*piece) or result
        assert result is not None and result[1] == payload

    def test_interleaved_datagrams(self):
        a_payload = b"A" * 1200
        b_payload = b"B" * 1200
        a_frames = fragment_datagram(make_header(1200, ident=1), a_payload, 576)
        b_frames = fragment_datagram(make_header(1200, ident=2), b_payload, 576)
        reassembler = Reassembler()
        done = {}
        for frame in [x for pair in zip(a_frames, b_frames) for x in pair]:
            header = IPv4Header.parse(frame[:20])
            result = reassembler.accept(header, frame[20:])
            if result:
                done[result[0].identification] = result[1]
        assert done == {1: a_payload, 2: b_payload}

    def test_eviction_at_capacity(self):
        reassembler = Reassembler(max_datagrams=1)
        a = fragment_datagram(make_header(1200, ident=1), b"A" * 1200, 576)
        b = fragment_datagram(make_header(1200, ident=2), b"B" * 1200, 576)
        ha = IPv4Header.parse(a[0][:20])
        reassembler.accept(ha, a[0][20:])
        hb = IPv4Header.parse(b[0][:20])
        reassembler.accept(hb, b[0][20:])  # evicts datagram 1
        assert reassembler.evicted == 1

    def test_byte_flood_rejected(self):
        reassembler = Reassembler(max_bytes_per_datagram=1000)
        frames = fragment_datagram(make_header(1200, ident=3), b"C" * 1200, 576)
        outcome = None
        for frame in frames:
            header = IPv4Header.parse(frame[:20])
            outcome = reassembler.accept(header, frame[20:])
        assert outcome is None
        assert reassembler.rejected >= 1

    @given(
        size=st.integers(1, 4000),
        mtu=st.sampled_from([68, 256, 576, 1500]),
        seed=st.integers(0, 100),
    )
    @settings(max_examples=60, deadline=None)
    def test_reassembly_roundtrip_property(self, size, mtu, seed):
        """Property: fragment + reassemble (any arrival order) is the
        identity on payloads."""
        import numpy as np

        payload = bytes((i * 31 + seed) % 256 for i in range(size))
        frames = fragment_datagram(make_header(size, ident=seed), payload, mtu)
        order = np.random.default_rng(seed).permutation(len(frames))
        reassembler = Reassembler()
        final = None
        for index in order:
            header = IPv4Header.parse(frames[index][:20])
            result = reassembler.accept(header, frames[index][20:])
            if result is not None:
                final = result
        assert final is not None
        assert final[1] == payload


class TestStackReassembly:
    def test_fragmented_udp_through_stack(self):
        """A UDP datagram fragmented on the wire reassembles in IpLayer
        and delivers to the socket."""
        from repro.protocols import build_udp_receive_stack
        from repro.protocols.stack import IpLayer
        from repro.protocols.udp import build_datagram
        from repro.protocols import ethernet
        from repro.protocols.ethernet import MacAddress

        layers, sockets, stats = build_udp_receive_stack("10.0.0.1", ports=(9999,))
        # Swap in an IpLayer with reassembly enabled.
        layers[1] = IpLayer(
            stats, IPv4Address.parse("10.0.0.1"), reassembler=Reassembler()
        )
        payload = bytes(range(256)) * 4
        datagram = build_datagram(
            5555, 9999, payload,
            src=IPv4Address.parse("10.0.0.9"), dst=IPv4Address.parse("10.0.0.1"),
        )
        header = IPv4Header(
            src=IPv4Address.parse("10.0.0.9"),
            dst=IPv4Address.parse("10.0.0.1"),
            protocol=PROTO_UDP,
            total_length=20 + len(datagram),
            identification=77,
        )
        frames = [
            ethernet.frame(
                MacAddress.parse("02:00:00:00:00:02"),
                MacAddress.parse("02:00:00:00:00:01"),
                ethernet.ETHERTYPE_IP,
                fragment,
            )
            for fragment in fragment_datagram(header, datagram, mtu=576)
        ]
        assert len(frames) > 1
        scheduler = ConventionalScheduler(layers)
        scheduler.run_to_completion([Message(payload=f) for f in frames])
        assert stats.fragments == len(frames)
        assert sockets[9999].receive_buffer.read() == payload
