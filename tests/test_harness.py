"""Tests of the parallel experiment harness: worker-count determinism,
the content-hashed result cache, the golden regression gate, and the
BENCH writer.

The determinism tests are the satellite regression required by the
harness design: the same sweep run at ``--jobs 1`` and ``--jobs 4``
must serialize byte-identically, because every sweep point is a pure
function of its explicitly seeded parameters.
"""

from __future__ import annotations

import json

import pytest

from repro.errors import ConfigurationError
from repro.harness import (
    ResultCache,
    SweepPoint,
    SweepSpec,
    Tolerance,
    all_specs,
    bless,
    check_quantities,
    content_key,
    get_spec,
    load_golden,
    run_experiment,
    source_digest,
    write_bench,
)
from repro.harness.cli import main as harness_cli
from repro.harness.registry import EXPERIMENT_MODULES


# ----------------------------------------------------------------------
# A tiny but real sweep: four short Section-4 simulation points.

def tiny_sim_spec() -> SweepSpec:
    def points(scale: str) -> list[SweepPoint]:
        del scale
        return [
            SweepPoint(
                experiment="tinysim",
                key=f"{scheduler}/rate={rate}",
                func="repro.sim.runner:poisson_point",
                params={
                    "scheduler": scheduler,
                    "rate": rate,
                    "seeds": [0],
                    "duration": 0.03,
                },
            )
            for scheduler in ("conventional", "ldlp")
            for rate in (2000, 8000)
        ]

    def quantities(points, results):
        return {
            "ldlp_total_misses_8000": results["ldlp/rate=8000"]["misses"][
                "instruction"
            ]
            + results["ldlp/rate=8000"]["misses"]["data"]
        }

    return SweepSpec(
        name="tinysim",
        points=points,
        quantities=quantities,
        sources=("repro.sim", "repro.core"),
        default_tolerance=Tolerance(rel=0.1),
    )


class TestWorkerDeterminism:
    def test_jobs1_equals_jobs4(self, tmp_path):
        """The satellite regression: identical bytes at any job count."""
        spec = tiny_sim_spec()
        serial = run_experiment(
            spec, jobs=1, cache=ResultCache(tmp_path / "a")
        )
        parallel = run_experiment(
            spec, jobs=4, cache=ResultCache(tmp_path / "b")
        )
        assert serial.results_json() == parallel.results_json()
        assert serial.computed == parallel.computed == 4

    def test_result_order_is_declared_order(self, tmp_path):
        spec = tiny_sim_spec()
        run = run_experiment(spec, jobs=4, cache=ResultCache(tmp_path))
        assert list(run.results) == [point.key for point in run.points]

    def test_jobs_must_be_positive(self, tmp_path):
        with pytest.raises(ConfigurationError):
            run_experiment(
                tiny_sim_spec(), jobs=0, cache=ResultCache(tmp_path)
            )


class TestResultCache:
    def test_second_run_is_fully_cached_and_identical(self, tmp_path):
        spec = tiny_sim_spec()
        cache = ResultCache(tmp_path)
        first = run_experiment(spec, jobs=1, cache=cache)
        second = run_experiment(spec, jobs=1, cache=cache)
        assert first.computed == 4 and first.cache_hits == 0
        assert second.computed == 0 and second.cache_hits == 4
        assert second.hit_rate == 1.0
        assert first.results_json() == second.results_json()

    def test_cached_points_keep_original_elapsed(self, tmp_path):
        spec = tiny_sim_spec()
        cache = ResultCache(tmp_path)
        first = run_experiment(spec, jobs=1, cache=cache)
        second = run_experiment(spec, jobs=1, cache=cache)
        assert second.serial_s == pytest.approx(first.serial_s, rel=1e-6)

    def test_disabled_cache_always_recomputes(self, tmp_path):
        spec = tiny_sim_spec()
        cache = ResultCache(tmp_path, enabled=False)
        run_experiment(spec, jobs=1, cache=cache)
        again = run_experiment(spec, jobs=1, cache=cache)
        assert again.computed == 4
        assert not any(tmp_path.rglob("*.json"))

    def test_key_depends_on_params(self):
        spec = tiny_sim_spec()
        a, b = spec.points_for("ci")[:2]
        assert content_key(a, spec.sources) != content_key(b, spec.sources)
        assert content_key(a, spec.sources) == content_key(a, spec.sources)

    def test_key_depends_on_sources(self):
        point = tiny_sim_spec().points_for("ci")[0]
        assert content_key(point, ("repro.sim",)) != content_key(
            point, ("repro.cache",)
        )

    def test_source_digest_covers_packages_and_modules(self):
        package = source_digest(("repro.sim",))
        module = source_digest(("repro.sim.runner",))
        assert package != module
        assert len(package) == 64

    def test_clear(self, tmp_path):
        spec = tiny_sim_spec()
        cache = ResultCache(tmp_path)
        run_experiment(spec, jobs=1, cache=cache)
        assert cache.clear("tinysim") == 4
        assert run_experiment(spec, jobs=1, cache=cache).computed == 4


class TestGoldenGate:
    def test_bless_then_check_passes(self, tmp_path):
        spec = tiny_sim_spec()
        run = run_experiment(spec, jobs=1, cache=ResultCache(tmp_path / "c"))
        quantities = run.quantities(spec)
        bless(spec, "ci", quantities, root=tmp_path / "g")
        golden = load_golden("tinysim", "ci", root=tmp_path / "g")
        assert check_quantities("tinysim", golden, quantities) == []

    def test_perturbation_fails(self, tmp_path):
        """A deliberate model perturbation must trip the gate."""
        spec = tiny_sim_spec()
        run = run_experiment(spec, jobs=1, cache=ResultCache(tmp_path / "c"))
        quantities = run.quantities(spec)
        bless(spec, "ci", quantities, root=tmp_path / "g")
        golden = load_golden("tinysim", "ci", root=tmp_path / "g")
        perturbed = {
            key: value * 1.5 for key, value in quantities.items()
        }
        breaches = check_quantities("tinysim", golden, perturbed)
        assert len(breaches) == 1
        assert "ldlp_total_misses_8000" in breaches[0].describe()

    def test_missing_and_extra_quantities_are_breaches(self):
        golden = {"present": (1.0, Tolerance(rel=0.1))}
        assert len(check_quantities("x", golden, {})) == 1
        assert len(check_quantities("x", golden, {"present": 1.0, "new": 2.0})) == 1

    def test_missing_golden_file_raises(self, tmp_path):
        with pytest.raises(ConfigurationError):
            load_golden("nope", "ci", root=tmp_path)

    def test_tolerance_semantics(self):
        tolerance = Tolerance(rel=0.1, abs=2.0)
        assert tolerance.allows(100.0, 109.0)
        assert not tolerance.allows(100.0, 111.0)
        assert tolerance.allows(1.0, 2.9)  # abs dominates near zero
        assert Tolerance().allows(5.0, 5.0)
        assert not Tolerance().allows(5.0, 5.0001)


class TestSpecs:
    def test_every_experiment_declares_a_sweep(self):
        specs = all_specs()
        assert len(specs) == len(EXPERIMENT_MODULES)
        for spec in specs:
            points = spec.points_for("ci")
            assert points, spec.name
            for point in points:
                # Params must be JSON-round-trippable for the cache.
                assert json.loads(json.dumps(point.params)) == point.params
                assert point.resolve() is not None

    def test_unknown_experiment_and_scale(self):
        with pytest.raises(ConfigurationError):
            get_spec("figure99")
        with pytest.raises(ConfigurationError):
            get_spec("figure5").points_for("huge")

    def test_duplicate_point_keys_rejected(self):
        spec = SweepSpec(
            name="dup",
            points=lambda scale: [
                SweepPoint("dup", "same", "repro.sim.runner:poisson_point", {}),
                SweepPoint("dup", "same", "repro.sim.runner:poisson_point", {}),
            ],
            quantities=lambda points, results: {},
            sources=("repro.sim",),
        )
        with pytest.raises(ConfigurationError):
            spec.points_for("ci")

    def test_figure5_figure6_share_cached_points(self, tmp_path):
        """The two figures are views of the same simulations: at equal
        (scheduler, rate, seeds, duration) they produce equal cache
        keys, so one computation serves both."""
        f5 = get_spec("figure5")
        f6 = get_spec("figure6")
        point5 = f5.points_for("default")[0]
        match = [
            p for p in f6.points_for("default") if p.params == point5.params
        ]
        assert match
        assert content_key(point5, f5.sources) == content_key(
            match[0], f6.sources
        )


class TestBench:
    def test_write_bench(self, tmp_path):
        spec = tiny_sim_spec()
        run = run_experiment(spec, jobs=2, cache=ResultCache(tmp_path / "c"))
        out = write_bench([run], tmp_path / "BENCH_experiments.json")
        data = json.loads(out.read_text())
        assert data["bench"] == "experiments"
        record = data["experiments"]["tinysim"]
        assert record["points"] == 4
        assert record["computed"] == 4
        assert record["hit_rate"] == 0.0
        assert record["wall_s"] > 0
        assert record["slowest_point"]["key"] in run.point_elapsed
        assert data["totals"]["points"] == 4

    def test_write_bench_clock_is_injectable(self, tmp_path):
        """The generated_unix stamp comes from the clock parameter, so a
        fixed clock makes the BENCH file fully deterministic (the real
        time.time default carries the canonical DET003 suppression)."""
        spec = tiny_sim_spec()
        run = run_experiment(spec, jobs=1, cache=ResultCache(tmp_path / "c"))
        out = write_bench(
            [run], tmp_path / "BENCH.json", clock=lambda: 1234567890.9
        )
        data = json.loads(out.read_text())
        assert data["generated_unix"] == 1234567890

    def test_hashpoint_digest_is_stable(self, capsys):
        """python -m repro.harness.hashpoint prints the same digest for
        the same point in-process (the CI seed-matrix smoke compares it
        across PYTHONHASHSEED values)."""
        from repro.harness.hashpoint import main as hashpoint_main

        digests = []
        for _ in range(2):
            assert hashpoint_main(["table1", "--scale", "ci"]) == 0
            line = capsys.readouterr().out.strip()
            name, digest = line.split()
            assert name.startswith("table1/")
            digests.append(digest)
        assert digests[0] == digests[1]
        assert len(digests[0]) == 64


class TestHarnessCli:
    def test_run_and_regress_roundtrip(self, tmp_path, capsys):
        args = [
            "schedules",
            "--cache-dir", str(tmp_path / "cache"),
            "--scale", "ci",
            "--bench-out", str(tmp_path / "BENCH.json"),
        ]
        assert harness_cli(["run", *args, "--no-render"]) == 0
        assert (tmp_path / "BENCH.json").exists()
        goldens = ["--goldens-dir", str(tmp_path / "goldens")]
        assert harness_cli(["regress", *args, *goldens, "--bless"]) == 0
        assert harness_cli(
            ["regress", *args, *goldens, "--expect-cached"]
        ) == 0
        out = capsys.readouterr().out
        assert "PASS    schedules" in out

    def test_regress_fails_without_golden(self, tmp_path, capsys):
        assert harness_cli([
            "regress", "schedules",
            "--cache-dir", str(tmp_path / "cache"),
            "--goldens-dir", str(tmp_path / "empty"),
            "--no-bench",
        ]) == 1
        assert "FAIL" in capsys.readouterr().out

    def test_regress_detects_drift(self, tmp_path, capsys):
        cache = ["--cache-dir", str(tmp_path / "cache")]
        goldens = ["--goldens-dir", str(tmp_path / "goldens")]
        assert harness_cli(
            ["regress", "schedules", *cache, *goldens, "--bless", "--no-bench"]
        ) == 0
        # Corrupt one golden value: the gate must fail on exactly it.
        path = tmp_path / "goldens" / "schedules.ci.json"
        data = json.loads(path.read_text())
        key = "ldlp_order_crc"
        data["quantities"][key]["value"] += 1
        path.write_text(json.dumps(data))
        assert harness_cli(
            ["regress", "schedules", *cache, *goldens, "--no-bench"]
        ) == 1
        assert key in capsys.readouterr().out

    def test_top_level_cli_dispatches(self, tmp_path, capsys):
        from repro.experiments.cli import main as top_main

        assert top_main([
            "run", "schedules",
            "--cache-dir", str(tmp_path / "cache"),
            "--no-bench", "--no-render",
        ]) == 0
        assert "schedules" in capsys.readouterr().out
