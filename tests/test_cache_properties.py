"""Hypothesis property tests for the cache models.

These pin the invariants the simulator's correctness rests on, over
randomly generated access traces rather than hand-picked cases:

* counter sanity — misses never exceed accesses, and hits + misses
  always equals accesses;
* capacity — a direct-mapped cache never holds more distinct lines
  than it has sets;
* locality — once a span smaller than the cache is resident, repeated
  access to it hits on every line;
* hierarchy — the second-level cache is probed exactly on primary
  misses, so its access count can never exceed the primary miss count;
* equivalence — the vectorized span path matches the scalar path, and
  1-way set-associative matches direct-mapped, access for access.
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cache.cache import DirectMappedCache, SetAssociativeCache
from repro.cache.hierarchy import CacheGeometry, MachineSpec, SplitCacheHierarchy

#: Small geometries keep traces interesting (evictions actually happen).
SIZES = st.sampled_from([256, 512, 1024])
LINE_SIZES = st.sampled_from([16, 32])
WAYS = st.sampled_from([1, 2, 4])

#: A trace of (addr, size) byte accesses within a few cache-sizes of
#: address space, so conflict misses are common.
ACCESSES = st.lists(
    st.tuples(st.integers(0, 4096), st.integers(0, 96)),
    min_size=1,
    max_size=40,
)


@settings(max_examples=60, deadline=None)
@given(size=SIZES, line_size=LINE_SIZES, accesses=ACCESSES)
def test_misses_never_exceed_accesses(size, line_size, accesses):
    cache = DirectMappedCache(size, line_size)
    for addr, span in accesses:
        cache.access_span(addr, span)
    stats = cache.stats
    assert stats.misses <= stats.accesses
    assert stats.hits + stats.misses == stats.accesses
    assert stats.evictions <= stats.misses


@settings(max_examples=60, deadline=None)
@given(size=SIZES, line_size=LINE_SIZES, ways=WAYS, accesses=ACCESSES)
def test_set_associative_counters_sane(size, line_size, ways, accesses):
    cache = SetAssociativeCache(size, line_size, ways=ways)
    for addr, span in accesses:
        cache.access(addr, span)
    stats = cache.stats
    assert stats.misses <= stats.accesses
    assert stats.hits + stats.misses == stats.accesses


@settings(max_examples=60, deadline=None)
@given(size=SIZES, line_size=LINE_SIZES, accesses=ACCESSES)
def test_occupancy_bounded_by_set_count(size, line_size, accesses):
    cache = DirectMappedCache(size, line_size)
    for addr, span in accesses:
        cache.access_span(addr, span)
    assert len(cache.resident_lines()) <= cache.num_lines


@settings(max_examples=60, deadline=None)
@given(
    size=SIZES,
    line_size=LINE_SIZES,
    addr=st.integers(0, 2048),
    data=st.data(),
)
def test_warm_span_hits_on_repeat(size, line_size, addr, data):
    """A contiguous span no larger than the cache, once resident, hits
    on every line of every subsequent access — the locality the LDLP
    batching argument depends on."""
    # Keep the span within num_lines distinct lines: starting mid-line,
    # a full cache-size span would touch one extra line and self-evict.
    span = data.draw(st.integers(1, size - addr % line_size))
    cache = DirectMappedCache(size, line_size)
    cache.access_span(addr, span)  # warm-up may miss freely
    before = cache.stats.misses
    for _ in range(3):
        assert cache.access_span(addr, span) == 0
    assert cache.stats.misses == before


@settings(max_examples=40, deadline=None)
@given(accesses=ACCESSES, instruction=st.booleans())
def test_l2_accesses_bounded_by_l1_misses(accesses, instruction):
    """The unified L2 is probed only on primary misses."""
    spec = MachineSpec(
        icache=CacheGeometry(size=512, line_size=32),
        dcache=CacheGeometry(size=512, line_size=32),
        l2=CacheGeometry(size=2048, line_size=32),
    )
    hierarchy = SplitCacheHierarchy(spec)
    for addr, span in accesses:
        if instruction:
            hierarchy.fetch_code(addr, span)
        else:
            hierarchy.read_data(addr, span)
    primary = hierarchy.icache if instruction else hierarchy.dcache
    assert hierarchy.l2 is not None
    assert hierarchy.l2.stats.accesses <= primary.stats.misses


@settings(max_examples=60, deadline=None)
@given(size=SIZES, line_size=LINE_SIZES, accesses=ACCESSES)
def test_span_path_matches_scalar_path(size, line_size, accesses):
    """The vectorized DirectMappedCache.access_span must be observably
    identical to the scalar Cache.access loop: same per-call miss
    counts, same final counters, same resident lines."""
    fast = DirectMappedCache(size, line_size)
    slow = DirectMappedCache(size, line_size)
    for addr, span in accesses:
        assert fast.access_span(addr, span) == super(
            DirectMappedCache, slow
        ).access_span(addr, span)
    assert fast.stats.misses == slow.stats.misses
    assert fast.stats.hits == slow.stats.hits
    assert fast.stats.evictions == slow.stats.evictions
    assert fast.resident_lines() == slow.resident_lines()


@settings(max_examples=60, deadline=None)
@given(size=SIZES, line_size=LINE_SIZES, accesses=ACCESSES)
def test_one_way_equals_direct_mapped(size, line_size, accesses):
    """SetAssociativeCache(ways=1) is a direct-mapped cache."""
    direct = DirectMappedCache(size, line_size)
    assoc = SetAssociativeCache(size, line_size, ways=1)
    for addr, span in accesses:
        assert direct.access(addr, span) == assoc.access(addr, span)
    assert direct.stats.misses == assoc.stats.misses
    assert direct.stats.hits == assoc.stats.hits
    assert direct.resident_lines() == assoc.resident_lines()


@settings(max_examples=40, deadline=None)
@given(size=SIZES, line_size=LINE_SIZES, accesses=ACCESSES)
def test_span_report_returns_exactly_the_missed_lines(size, line_size, accesses):
    cache = DirectMappedCache(size, line_size)
    for addr, span in accesses:
        if span == 0:
            continue
        missed = cache.access_span_report(addr, span)
        first = addr // line_size
        last = (addr + span - 1) // line_size
        assert np.all(missed >= first) and np.all(missed <= last)
        # After the access every touched line must be resident.
        for line in range(first, last + 1):
            present = cache.contains_line(line)
            # A line can only be absent if a later line of the same
            # access evicted it (span longer than the cache).
            if last - first + 1 <= cache.num_lines:
                assert present
