"""Hypothesis property tests for the cache models.

These pin the invariants the simulator's correctness rests on, over
randomly generated access traces rather than hand-picked cases:

* counter sanity — misses never exceed accesses, and hits + misses
  always equals accesses;
* capacity — a direct-mapped cache never holds more distinct lines
  than it has sets;
* locality — once a span smaller than the cache is resident, repeated
  access to it hits on every line;
* hierarchy — the second-level cache is probed exactly on primary
  misses, so its access count can never exceed the primary miss count;
* equivalence — the vectorized span path matches the scalar path, and
  1-way set-associative matches direct-mapped, access for access.
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

import pytest

from repro.cache.cache import DirectMappedCache, SetAssociativeCache
from repro.cache.chunked import SegmentedAccessPlan, UnsupportedPlanError, unit_plan
from repro.cache.hierarchy import CacheGeometry, MachineSpec, SplitCacheHierarchy
from repro.errors import ConfigurationError

#: Small geometries keep traces interesting (evictions actually happen).
SIZES = st.sampled_from([256, 512, 1024])
LINE_SIZES = st.sampled_from([16, 32])
WAYS = st.sampled_from([1, 2, 4])

#: A trace of (addr, size) byte accesses within a few cache-sizes of
#: address space, so conflict misses are common.
ACCESSES = st.lists(
    st.tuples(st.integers(0, 4096), st.integers(0, 96)),
    min_size=1,
    max_size=40,
)


@settings(max_examples=60, deadline=None)
@given(size=SIZES, line_size=LINE_SIZES, accesses=ACCESSES)
def test_misses_never_exceed_accesses(size, line_size, accesses):
    cache = DirectMappedCache(size, line_size)
    for addr, span in accesses:
        cache.access_span(addr, span)
    stats = cache.stats
    assert stats.misses <= stats.accesses
    assert stats.hits + stats.misses == stats.accesses
    assert stats.evictions <= stats.misses


@settings(max_examples=60, deadline=None)
@given(size=SIZES, line_size=LINE_SIZES, ways=WAYS, accesses=ACCESSES)
def test_set_associative_counters_sane(size, line_size, ways, accesses):
    cache = SetAssociativeCache(size, line_size, ways=ways)
    for addr, span in accesses:
        cache.access(addr, span)
    stats = cache.stats
    assert stats.misses <= stats.accesses
    assert stats.hits + stats.misses == stats.accesses


@settings(max_examples=60, deadline=None)
@given(size=SIZES, line_size=LINE_SIZES, accesses=ACCESSES)
def test_occupancy_bounded_by_set_count(size, line_size, accesses):
    cache = DirectMappedCache(size, line_size)
    for addr, span in accesses:
        cache.access_span(addr, span)
    assert len(cache.resident_lines()) <= cache.num_lines


@settings(max_examples=60, deadline=None)
@given(
    size=SIZES,
    line_size=LINE_SIZES,
    addr=st.integers(0, 2048),
    data=st.data(),
)
def test_warm_span_hits_on_repeat(size, line_size, addr, data):
    """A contiguous span no larger than the cache, once resident, hits
    on every line of every subsequent access — the locality the LDLP
    batching argument depends on."""
    # Keep the span within num_lines distinct lines: starting mid-line,
    # a full cache-size span would touch one extra line and self-evict.
    span = data.draw(st.integers(1, size - addr % line_size))
    cache = DirectMappedCache(size, line_size)
    cache.access_span(addr, span)  # warm-up may miss freely
    before = cache.stats.misses
    for _ in range(3):
        assert cache.access_span(addr, span) == 0
    assert cache.stats.misses == before


@settings(max_examples=40, deadline=None)
@given(accesses=ACCESSES, instruction=st.booleans())
def test_l2_accesses_bounded_by_l1_misses(accesses, instruction):
    """The unified L2 is probed only on primary misses."""
    spec = MachineSpec(
        icache=CacheGeometry(size=512, line_size=32),
        dcache=CacheGeometry(size=512, line_size=32),
        l2=CacheGeometry(size=2048, line_size=32),
    )
    hierarchy = SplitCacheHierarchy(spec)
    for addr, span in accesses:
        if instruction:
            hierarchy.fetch_code(addr, span)
        else:
            hierarchy.read_data(addr, span)
    primary = hierarchy.icache if instruction else hierarchy.dcache
    assert hierarchy.l2 is not None
    assert hierarchy.l2.stats.accesses <= primary.stats.misses


@settings(max_examples=60, deadline=None)
@given(size=SIZES, line_size=LINE_SIZES, accesses=ACCESSES)
def test_span_path_matches_scalar_path(size, line_size, accesses):
    """The vectorized DirectMappedCache.access_span must be observably
    identical to the scalar Cache.access loop: same per-call miss
    counts, same final counters, same resident lines."""
    fast = DirectMappedCache(size, line_size)
    slow = DirectMappedCache(size, line_size)
    for addr, span in accesses:
        assert fast.access_span(addr, span) == super(
            DirectMappedCache, slow
        ).access_span(addr, span)
    assert fast.stats.misses == slow.stats.misses
    assert fast.stats.hits == slow.stats.hits
    assert fast.stats.evictions == slow.stats.evictions
    assert fast.resident_lines() == slow.resident_lines()


@settings(max_examples=60, deadline=None)
@given(size=SIZES, line_size=LINE_SIZES, accesses=ACCESSES)
@pytest.mark.parametrize("policy", ["lru", "fifo"])
def test_one_way_equals_direct_mapped(policy, size, line_size, accesses):
    """SetAssociativeCache(ways=1) is a direct-mapped cache — under
    either replacement policy, since a one-line set has no replacement
    order to maintain."""
    direct = DirectMappedCache(size, line_size)
    assoc = SetAssociativeCache(size, line_size, ways=1, policy=policy)
    for addr, span in accesses:
        assert direct.access(addr, span) == assoc.access(addr, span)
    assert direct.stats.misses == assoc.stats.misses
    assert direct.stats.hits == assoc.stats.hits
    assert direct.stats.evictions == assoc.stats.evictions
    assert direct.resident_lines() == assoc.resident_lines()


#: Spans sized in *lines* relative to the cache so the vectorized
#: access_span boundary (count == num_lines, where the fast path hands
#: off to the scalar loop) is actually crossed: with 8–64 lines per
#: cache, relative spans of num_lines - 2 .. num_lines + 2 lines all
#: occur, on warm as well as cold tag state.
BOUNDARY_OPS = st.lists(
    st.tuples(st.integers(0, 4096), st.integers(-2, 2)),
    min_size=1,
    max_size=12,
)


@settings(max_examples=80, deadline=None)
@given(size=SIZES, line_size=LINE_SIZES, ops=BOUNDARY_OPS)
def test_span_boundary_full_stats_parity(size, line_size, ops):
    """Full CacheStats parity across the count == num_lines boundary.

    The vectorized access_span path is only taken while the span covers
    at most num_lines lines; the first span past that falls back to the
    scalar loop mid-sequence.  Hits, misses, *and* evictions — not just
    the returned miss counts — must agree with the pure scalar path at
    exactly that hand-off, on whatever warm state earlier spans left."""
    fast = DirectMappedCache(size, line_size)
    slow = DirectMappedCache(size, line_size)
    num_lines = fast.num_lines
    for addr, delta in ops:
        # delta is lines relative to the boundary; size straddles it.
        span = (num_lines + delta) * line_size - addr % line_size
        if span <= 0:
            continue
        assert fast.access_span(addr, span) == super(
            DirectMappedCache, slow
        ).access_span(addr, span)
        assert fast.stats.snapshot() == slow.stats.snapshot()
    assert fast.stats.hits == slow.stats.hits
    assert fast.stats.misses == slow.stats.misses
    assert fast.stats.evictions == slow.stats.evictions
    assert fast.resident_lines() == slow.resident_lines()


@settings(max_examples=60, deadline=None)
@given(size=SIZES, line_size=LINE_SIZES, ways=WAYS, accesses=ACCESSES)
def test_fifo_counters_sane(size, line_size, ways, accesses):
    """Counter sanity holds for the FIFO replacement policy too."""
    cache = SetAssociativeCache(size, line_size, ways=ways, policy="fifo")
    for addr, span in accesses:
        cache.access(addr, span)
    stats = cache.stats
    assert stats.misses <= stats.accesses
    assert stats.hits + stats.misses == stats.accesses
    assert stats.evictions <= stats.misses
    assert len(cache.resident_lines()) <= cache.num_lines


@settings(max_examples=60, deadline=None)
@given(size=SIZES, line_size=LINE_SIZES, ways=WAYS, accesses=ACCESSES)
def test_fifo_never_beats_itself_on_occupancy(size, line_size, ways, accesses):
    """LRU and FIFO see identical miss sets on cold sequential fills;
    they may diverge only once eviction order matters.  Either way the
    two policies' *accesses* agree exactly (the access stream is policy
    independent) and both respect capacity."""
    lru = SetAssociativeCache(size, line_size, ways=ways, policy="lru")
    fifo = SetAssociativeCache(size, line_size, ways=ways, policy="fifo")
    for addr, span in accesses:
        lru.access(addr, span)
        fifo.access(addr, span)
    assert lru.stats.accesses == fifo.stats.accesses
    assert len(lru.resident_lines()) <= lru.num_lines
    assert len(fifo.resident_lines()) <= fifo.num_lines


@settings(max_examples=40, deadline=None)
@given(size=SIZES, line_size=LINE_SIZES, ways=WAYS, accesses=ACCESSES)
@pytest.mark.parametrize("policy", ["lru", "fifo"])
def test_flush_behavior_matches_direct_mapped(
    policy, size, line_size, ways, accesses
):
    """After flush(), both cache classes agree: no resident lines,
    statistics preserved, and the refill of a previously-resident span
    misses without counting evictions (the slots are empty, not
    occupied) — the documented DirectMappedCache contract."""
    direct = DirectMappedCache(size, line_size)
    assoc = SetAssociativeCache(size, line_size, ways=ways, policy=policy)
    for addr, span in accesses:
        direct.access(addr, span)
        assoc.access(addr, span)
    for cache in (direct, assoc):
        stats_before = cache.stats.snapshot()
        cache.flush()
        assert cache.resident_lines() == set()
        assert cache.stats.snapshot() == stats_before
        evictions_before = cache.stats.evictions
        cache.access_line(0)
        assert cache.stats.evictions == evictions_before
        assert cache.contains_line(0)


# ----------------------------------------------------------------------
# Chunked (vectorized) kernels: repro.cache.chunked

#: Line streams with heavy set reuse (small line-number range) so the
#: chunked kernels see repeats, conflicts, and evictions.
LINE_STREAMS = st.lists(st.integers(0, 96), min_size=0, max_size=120)

#: The satellite chunk sizes: degenerate (1), odd (7), typical (64),
#: and the whole stream at once (None).
CHUNK_SIZES = st.sampled_from([1, 7, 64, None])


@settings(max_examples=60, deadline=None)
@given(size=SIZES, line_size=LINE_SIZES, lines=LINE_STREAMS, chunk=CHUNK_SIZES)
def test_stream_path_matches_scalar_path(size, line_size, lines, chunk):
    """access_stream ≡ an access_line loop: same per-position miss
    mask, same counters, same resident lines — for every chunk size."""
    stream = np.asarray(lines, dtype=np.int64)
    fast = DirectMappedCache(size, line_size)
    slow = DirectMappedCache(size, line_size)
    mask = fast.access_stream(stream, chunk_size=chunk)
    expected = [slow.access_line(int(line)) for line in lines]
    assert mask.tolist() == expected
    assert fast.stats.misses == slow.stats.misses
    assert fast.stats.hits == slow.stats.hits
    assert fast.stats.evictions == slow.stats.evictions
    assert fast.resident_lines() == slow.resident_lines()


@settings(max_examples=60, deadline=None)
@given(size=SIZES, line_size=LINE_SIZES, lines=LINE_STREAMS)
def test_stream_invariant_under_chunk_size(size, line_size, lines):
    """Chunking is purely an implementation knob: every chunk size
    (1, 7, 64, whole-stream) produces identical masks and state."""
    stream = np.asarray(lines, dtype=np.int64)
    reference = DirectMappedCache(size, line_size)
    ref_mask = reference.access_stream(stream, chunk_size=None)
    for chunk in (1, 7, 64):
        cache = DirectMappedCache(size, line_size)
        mask = cache.access_stream(stream, chunk_size=chunk)
        assert np.array_equal(mask, ref_mask)
        assert cache.stats.misses == reference.stats.misses
        assert cache.stats.hits == reference.stats.hits
        assert cache.stats.evictions == reference.stats.evictions
        assert cache.resident_lines() == reference.resident_lines()


@settings(max_examples=60, deadline=None)
@given(size=SIZES, line_size=LINE_SIZES, lines=LINE_STREAMS, chunk=CHUNK_SIZES)
def test_chunked_counters_sane(size, line_size, lines, chunk):
    """misses ≤ accesses (and hits + misses == accesses) on the
    chunked path, matching the scalar counter-sanity property."""
    cache = DirectMappedCache(size, line_size)
    cache.access_stream(np.asarray(lines, dtype=np.int64), chunk_size=chunk)
    stats = cache.stats
    assert stats.accesses == len(lines)
    assert stats.misses <= stats.accesses
    assert stats.hits + stats.misses == stats.accesses
    assert stats.evictions <= stats.misses


@settings(max_examples=40, deadline=None)
@given(size=SIZES, line_size=LINE_SIZES, lines=LINE_STREAMS, chunk=CHUNK_SIZES)
def test_chunked_l2_bounded_by_l1_misses(size, line_size, lines, chunk):
    """Feeding the chunked path's missed lines to a next-level cache
    keeps the hierarchy invariant: L2 accesses ≤ L1 misses."""
    l1 = DirectMappedCache(size, line_size)
    l2 = DirectMappedCache(4 * size, line_size)
    stream = np.asarray(lines, dtype=np.int64)
    mask = l1.access_stream(stream, chunk_size=chunk)
    missed = stream[mask]
    l2.access_stream(missed, chunk_size=chunk)
    assert l2.stats.accesses == int(mask.sum())
    assert l2.stats.accesses <= l1.stats.misses


@settings(max_examples=60, deadline=None)
@given(size=SIZES, line_size=LINE_SIZES, lines=LINE_STREAMS)
def test_segmented_plan_matches_call_parallel_path(size, line_size, lines):
    """A segmented plan over random segment boundaries reproduces the
    scalar per-call access_line_array_report path, provided no segment
    repeats a set (the plan's declared soundness condition)."""
    cache_sets = size // line_size
    stream = np.asarray(lines, dtype=np.int64)
    # Split the stream at arbitrary fixed boundaries, then drop
    # in-segment set repeats so the plan is supported.
    pieces = [stream[start : start + 5] for start in range(0, stream.size, 5)]
    segments = []
    for piece in pieces:
        sets = piece % cache_sets
        _, first_index = np.unique(sets, return_index=True)
        segments.append(piece[np.sort(first_index)])
    flat = (
        np.concatenate(segments) if segments else np.empty(0, dtype=np.int64)
    )
    offsets = np.cumsum([0] + [seg.size for seg in segments])
    planned = DirectMappedCache(size, line_size)
    scalar = DirectMappedCache(size, line_size)
    plan = SegmentedAccessPlan(flat, offsets, cache_sets)
    per_segment = plan.apply(planned._tags, planned.stats)
    for index, segment in enumerate(segments):
        missed = scalar.access_line_array_report(segment)
        assert int(per_segment[index]) == int(missed.size)
    assert planned.stats.misses == scalar.stats.misses
    assert planned.stats.hits == scalar.stats.hits
    assert planned.stats.evictions == scalar.stats.evictions
    assert planned.resident_lines() == scalar.resident_lines()


def test_segmented_plan_rejects_in_segment_set_repeat():
    """Two same-set positions in one segment defeat the static
    template; the plan must refuse rather than silently diverge."""
    with pytest.raises(UnsupportedPlanError):
        SegmentedAccessPlan(
            np.asarray([3, 3 + 8], dtype=np.int64),
            np.asarray([0, 2], dtype=np.int64),
            8,
        )
    # The same two lines in separate segments are fine.
    plan = SegmentedAccessPlan(
        np.asarray([3, 3 + 8], dtype=np.int64),
        np.asarray([0, 1, 2], dtype=np.int64),
        8,
    )
    assert plan.size == 2


def test_access_stream_validates_inputs():
    cache = DirectMappedCache(256, 32)
    with pytest.raises(ConfigurationError):
        cache.access_stream(np.asarray([-1], dtype=np.int64))
    with pytest.raises(ConfigurationError):
        cache.access_stream(np.asarray([1], dtype=np.int64), chunk_size=0)


def test_access_stream_empty_and_singleton():
    """The zero-length and length-1 degenerate streams (the PR 4
    truthiness bug class) behave exactly like the scalar loop."""
    cache = DirectMappedCache(256, 32)
    empty = cache.access_stream(np.empty(0, dtype=np.int64))
    assert empty.shape == (0,) and empty.dtype == bool
    assert cache.stats.accesses == 0
    single = cache.access_stream(np.asarray([5], dtype=np.int64))
    assert single.tolist() == [True]
    assert cache.access_stream(np.asarray([5], dtype=np.int64)).tolist() == [
        False
    ]
    assert unit_plan(np.empty(0, dtype=np.int64), 8).size == 0


@settings(max_examples=40, deadline=None)
@given(size=SIZES, line_size=LINE_SIZES, accesses=ACCESSES)
def test_span_report_returns_exactly_the_missed_lines(size, line_size, accesses):
    cache = DirectMappedCache(size, line_size)
    for addr, span in accesses:
        if span == 0:
            continue
        missed = cache.access_span_report(addr, span)
        first = addr // line_size
        last = (addr + span - 1) // line_size
        assert np.all(missed >= first) and np.all(missed <= last)
        # After the access every touched line must be resident.
        for line in range(first, last + 1):
            present = cache.contains_line(line)
            # A line can only be absent if a later line of the same
            # access evicted it (span longer than the cache).
            if last - first + 1 <= cache.num_lines:
                assert present
