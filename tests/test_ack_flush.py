"""Tests for batch-end delayed-ACK flushing (the LDLP fast-timer hook)."""

from repro.core import ConventionalScheduler, LDLPScheduler, Message
from repro.protocols import FLAG_ACK, TcpSender, build_tcp_receive_stack
from repro.protocols.stack import TcpLayer


def established(flush_acks: bool, scheduler_cls=LDLPScheduler):
    stack = build_tcp_receive_stack("10.0.0.1", 4000)
    tcp_layer = stack.layers[2]
    assert isinstance(tcp_layer, TcpLayer)
    tcp_layer.flush_acks_on_batch_end = flush_acks
    scheduler = scheduler_cls(stack.layers)
    sender = TcpSender(src="10.0.0.9", dst="10.0.0.1", src_port=7, dst_port=4000)
    scheduler.run_to_completion([Message(payload=sender.syn())])
    scheduler.run_to_completion(
        [Message(payload=sender.complete_handshake(stack.transmitted[-1]))]
    )
    return stack, scheduler, sender


def data_acks(stack):
    return [h for h in stack.transmitted if h.flags == FLAG_ACK]


class TestAckFlush:
    def test_default_keeps_delayed_acks(self):
        stack, scheduler, sender = established(flush_acks=False)
        # 3 segments in one batch: ack-every-2 leaves one segment unacked.
        scheduler.run_to_completion(
            [Message(payload=sender.data(b"x" * 64)) for _ in range(3)]
        )
        assert len(data_acks(stack)) == 1

    def test_flush_emits_trailing_ack(self):
        stack, scheduler, sender = established(flush_acks=True)
        scheduler.run_to_completion(
            [Message(payload=sender.data(b"x" * 64)) for _ in range(3)]
        )
        # One regular ACK (after segment 2) plus the batch-end flush.
        acks = data_acks(stack)
        assert len(acks) == 2
        # The flushed ACK acknowledges everything received.
        assert acks[-1].ack == sender.snd_nxt

    def test_even_batch_needs_no_flush_ack(self):
        stack, scheduler, sender = established(flush_acks=True)
        scheduler.run_to_completion(
            [Message(payload=sender.data(b"x" * 64)) for _ in range(4)]
        )
        assert len(data_acks(stack)) == 2  # no pending ACK to flush

    def test_delivery_identical_with_and_without(self):
        payloads = [bytes([i]) * 80 for i in range(7)]
        results = []
        for flush_acks in (False, True):
            stack, scheduler, sender = established(flush_acks)
            scheduler.run_to_completion(
                [Message(payload=sender.data(p)) for p in payloads]
            )
            results.append(stack.socket.receive_buffer.read())
        assert results[0] == results[1] == b"".join(payloads)

    def test_conventional_scheduler_unaffected_by_default(self):
        """The conventional scheduler has no batch boundary, so the flag
        fires after every message — every segment gets an ACK."""
        stack, scheduler, sender = established(
            flush_acks=True, scheduler_cls=ConventionalScheduler
        )
        scheduler.run_to_completion(
            [Message(payload=sender.data(b"x" * 64)) for _ in range(3)]
        )
        # Conventional scheduler never calls flush(); delayed ACKs stay
        # delayed exactly as in the traced kernel.
        assert len(data_acks(stack)) == 1
