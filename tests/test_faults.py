"""Fault injection, drop policies, and overload robustness.

Pins the repro.faults contract: injectors are deterministic per seed
and JSON round-trippable; every injected corruption is either detected
by the checksum reject path or leaves the bytes unchanged; the two
checksum routines never disagree; and whatever the faults do, admission
accounting conserves — ``offered == completed + dropped`` once the
queue drains — for every scheduler under every drop policy.
"""

import json

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.harnesscheck import (
    check_all_specs,
    check_spec,
    import_closure,
    module_path,
)
from repro.buffers.pool import MbufPool
from repro.core import (
    AdaptiveBatchBackoff,
    ConventionalScheduler,
    HeadDrop,
    QueueCap,
    TailDrop,
    make_drop_policy,
)
from repro.core.layer import LayerFootprint, Message, PassthroughLayer
from repro.errors import (
    BufferError_,
    ChecksumError,
    ConfigurationError,
    TraceError,
)
from repro.faults import (
    CorruptFault,
    DelayFault,
    DuplicateFault,
    FaultPlan,
    LossFault,
    MbufExhaustionWindows,
    ReorderFault,
    TruncateFault,
    flip_bytes,
    stage_from_params,
)
from repro.faults.campaigns import SWEEP, campaign_plan, fault_point
from repro.harness.points import SweepPoint, SweepSpec
from repro.protocols.checksum import (
    internet_checksum,
    internet_checksum_unrolled,
    verify_checksum,
)
from repro.sim.queues import BoundedQueue
from repro.sim.runner import (
    SCHEDULER_NAMES,
    SimulationConfig,
    run_simulation,
)
from repro.traffic.base import Arrival
from repro.traffic.bellcore import TraceSource, read_bellcore_trace
from repro.traffic.poisson import PoissonSource

ALL_STAGES = (
    LossFault(rate=0.1),
    DuplicateFault(rate=0.1),
    ReorderFault(rate=0.2, span=5),
    DelayFault(rate=0.1, mean=5e-4),
    TruncateFault(rate=0.1),
    CorruptFault(rate=0.2),
)


def make_arrivals(count=200, seed=0):
    rng = np.random.default_rng(seed)
    times = np.cumsum(rng.exponential(1e-4, size=count))
    return [Arrival(float(t), 552) for t in times]


def make_frames(count=64, seed=0):
    rng = np.random.default_rng(seed)
    return [
        rng.integers(0, 256, size=int(rng.integers(20, 600)), dtype=np.uint8)
        .tobytes()
        for _ in range(count)
    ]


class TestInjectorDeterminism:
    @pytest.mark.parametrize("stage", ALL_STAGES, ids=lambda s: s.kind)
    def test_same_seed_same_stream(self, stage):
        plan = FaultPlan(stages=(stage,))
        arrivals = make_arrivals()
        assert plan.apply(arrivals, 7) == plan.apply(arrivals, 7)
        frames = make_frames()
        assert plan.apply_frames(frames, 7) == plan.apply_frames(frames, 7)

    def test_different_seed_different_stream(self):
        plan = FaultPlan(stages=(LossFault(rate=0.3),))
        arrivals = make_arrivals(count=400)
        assert plan.apply(arrivals, 0) != plan.apply(arrivals, 1)

    def test_stage_rng_independent_of_other_stages(self):
        # Adding a stage must not reshuffle what an existing stage does.
        arrivals = make_arrivals()
        alone = FaultPlan(stages=(LossFault(rate=0.2),)).apply(arrivals, 3)
        stacked = FaultPlan(
            stages=(LossFault(rate=0.2), DelayFault(rate=0.0))
        ).apply(arrivals, 3)
        assert [a.size for a in alone] == [a.size for a in stacked]

    def test_original_list_never_mutated(self):
        arrivals = make_arrivals(count=50)
        copy = list(arrivals)
        FaultPlan(stages=ALL_STAGES).apply(arrivals, 0)
        assert arrivals == copy


class TestInjectorSemantics:
    def test_loss_removes_only(self):
        arrivals = make_arrivals(count=500)
        survivors = FaultPlan(stages=(LossFault(rate=0.3),)).apply(arrivals, 0)
        assert 0 < len(survivors) < 500
        assert set(survivors) <= set(arrivals)

    def test_duplicate_adds_time_shifted_copies(self):
        arrivals = make_arrivals(count=300)
        out = FaultPlan(stages=(DuplicateFault(rate=0.5, delay=1e-5),)).apply(
            arrivals, 0
        )
        assert len(out) > 300
        assert [a.time for a in out] == sorted(a.time for a in out)

    def test_reorder_keeps_timestamps(self):
        arrivals = make_arrivals(count=300)
        out = FaultPlan(stages=(ReorderFault(rate=0.5, span=4),)).apply(
            arrivals, 0
        )
        assert sorted(out, key=lambda a: a.time) == arrivals
        assert out != arrivals  # the delivery order did change

    def test_delay_only_increases_times(self):
        arrivals = make_arrivals(count=300)
        out = FaultPlan(stages=(DelayFault(rate=0.5, mean=1e-3),)).apply(
            arrivals, 0
        )
        assert len(out) == 300
        assert sum(a.time for a in out) > sum(a.time for a in arrivals)

    def test_truncate_shrinks_sizes(self):
        arrivals = make_arrivals(count=300)
        out = FaultPlan(stages=(TruncateFault(rate=0.5),)).apply(arrivals, 0)
        sizes = [a.size for a in out]
        assert min(sizes) >= 1
        assert min(sizes) < 552 and max(sizes) == 552

    def test_truncate_frames_respects_min_size(self):
        frames = make_frames()
        out = FaultPlan(stages=(TruncateFault(rate=1.0, min_size=8),)).apply_frames(
            frames, 0
        )
        assert all(len(f) >= 8 for f in out)
        assert any(len(f) < len(g) for f, g in zip(out, frames))

    def test_corrupt_is_identity_on_arrivals(self):
        arrivals = make_arrivals(count=50)
        assert FaultPlan(stages=(CorruptFault(rate=1.0),)).apply(arrivals, 0) == (
            arrivals
        )

    def test_corrupt_changes_frame_bytes(self):
        frames = make_frames()
        out = FaultPlan(stages=(CorruptFault(rate=1.0),)).apply_frames(frames, 0)
        assert all(len(f) == len(g) for f, g in zip(out, frames))
        assert all(f != g for f, g in zip(out, frames))

    def test_rate_validation(self):
        with pytest.raises(ConfigurationError):
            LossFault(rate=1.5)
        with pytest.raises(ConfigurationError):
            ReorderFault(span=0)
        with pytest.raises(ConfigurationError):
            DelayFault(mean=0.0)
        with pytest.raises(ConfigurationError):
            CorruptFault(max_flips=0)


class TestPlanRoundTrip:
    def test_stage_round_trip(self):
        for stage in ALL_STAGES:
            assert stage_from_params(stage.to_params()) == stage

    def test_plan_round_trip_and_json(self):
        plan = FaultPlan(
            stages=ALL_STAGES,
            flush_period_cycles=1e6,
            clock_derate=0.5,
            mbuf_windows=MbufExhaustionWindows(period=50, width=5, start=10),
        )
        params = json.loads(json.dumps(plan.to_params()))
        assert FaultPlan.from_params(params) == plan

    def test_unknown_stage_kind_rejected(self):
        with pytest.raises(ConfigurationError):
            stage_from_params({"kind": "gamma-ray"})

    def test_unknown_plan_field_rejected(self):
        with pytest.raises(ConfigurationError):
            FaultPlan.from_params({"stages": [], "typo": 1})

    def test_derate_validation_and_spec(self):
        from repro.cache.hierarchy import MachineSpec

        with pytest.raises(ConfigurationError):
            FaultPlan(clock_derate=0.0)
        with pytest.raises(ConfigurationError):
            FaultPlan(clock_derate=1.5)
        spec = FaultPlan(clock_derate=0.5).derated_spec(MachineSpec())
        assert spec.clock_hz == pytest.approx(50e6)

    def test_exhaustion_window_validation(self):
        with pytest.raises(ConfigurationError):
            MbufExhaustionWindows(period=10, width=10)
        with pytest.raises(ConfigurationError):
            MbufExhaustionWindows(period=0)


class TestChecksumRejectPaths:
    @given(data=st.binary(min_size=0, max_size=2000))
    @settings(max_examples=200, deadline=None)
    def test_routines_never_disagree(self, data):
        assert internet_checksum(data) == internet_checksum_unrolled(data)

    @given(data=st.binary(min_size=1, max_size=600), seed=st.integers(0, 2**31))
    @settings(max_examples=200, deadline=None)
    def test_routines_agree_after_corruption(self, data, seed):
        corrupted = flip_bytes(data, np.random.default_rng(seed))
        assert internet_checksum(corrupted) == internet_checksum_unrolled(corrupted)

    @given(data=st.binary(min_size=1, max_size=600), seed=st.integers(0, 2**31))
    @settings(max_examples=200, deadline=None)
    def test_single_byte_flip_always_detected(self, data, seed):
        expected = internet_checksum(data)
        corrupted = flip_bytes(data, np.random.default_rng(seed), max_flips=1)
        assert corrupted != data
        assert internet_checksum(corrupted) != expected
        with pytest.raises(ChecksumError):
            verify_checksum(corrupted, expected)

    @given(data=st.binary(min_size=1, max_size=600), seed=st.integers(0, 2**31))
    @settings(max_examples=200, deadline=None)
    def test_corruption_detected_or_harmless(self, data, seed):
        # The reject path fires exactly when the bytes changed in a way
        # the 16-bit checksum can see; flip_bytes guarantees the bytes
        # changed, so "undetected" requires a genuine checksum collision
        # — both routines must then agree it collided (no split-brain).
        expected = internet_checksum(data)
        corrupted = flip_bytes(data, np.random.default_rng(seed))
        detected = internet_checksum(corrupted) != expected
        if detected:
            with pytest.raises(ChecksumError):
                verify_checksum(corrupted, expected)
        else:
            assert internet_checksum_unrolled(corrupted) == expected


class TestDropPolicies:
    def _scheduler(self, policy, limit=4):
        footprint = LayerFootprint(
            code_bytes=64, data_bytes=16, base_cycles=1.0, per_byte_cycles=0.0
        )
        return ConventionalScheduler(
            [PassthroughLayer("l0", footprint)],
            None,
            limit,
            drop_policy=policy,
        )

    def test_tail_drop_rejects_newest(self):
        scheduler = self._scheduler(TailDrop())
        messages = [Message(size=1, arrival_time=0.0) for _ in range(6)]
        accepted = [scheduler.enqueue_arrival(m) for m in messages]
        assert accepted == [True] * 4 + [False] * 2
        assert scheduler.drops == 2
        assert list(scheduler.input_queue) == messages[:4]

    def test_head_drop_evicts_oldest(self):
        scheduler = self._scheduler(HeadDrop())
        messages = [Message(size=1, arrival_time=0.0) for _ in range(6)]
        accepted = [scheduler.enqueue_arrival(m) for m in messages]
        assert accepted == [True] * 6
        assert scheduler.drops == 2
        assert list(scheduler.input_queue) == messages[2:]

    def test_queue_cap_drops_early(self):
        scheduler = self._scheduler(QueueCap(cap=2), limit=10)
        messages = [Message(size=1, arrival_time=0.0) for _ in range(5)]
        accepted = [scheduler.enqueue_arrival(m) for m in messages]
        assert accepted == [True, True, False, False, False]
        assert scheduler.drops == 3

    def test_conservation_counter_identity(self):
        for policy in (TailDrop(), HeadDrop(), QueueCap(cap=2)):
            scheduler = self._scheduler(policy)
            for _ in range(10):
                scheduler.enqueue_arrival(Message(size=1, arrival_time=0.0))
            assert scheduler.arrivals == 10
            assert scheduler.drops + len(scheduler.input_queue) == 10

    def test_adaptive_batch_scaling(self):
        policy = AdaptiveBatchBackoff(min_batch=2)
        assert policy.batch_limit(14, 0, 500) == 2     # empty: floor
        assert policy.batch_limit(14, 500, 500) == 14  # full: cache fit
        limits = [policy.batch_limit(14, q, 500) for q in range(0, 501, 50)]
        assert limits == sorted(limits)                # monotone in depth
        assert all(2 <= limit <= 14 for limit in limits)

    def test_registry(self):
        assert make_drop_policy("head").name == "head"
        assert make_drop_policy("batch-cap", cap=7).cap == 7
        with pytest.raises(ConfigurationError):
            make_drop_policy("coin-flip")
        with pytest.raises(ConfigurationError):
            QueueCap(cap=0)
        with pytest.raises(ConfigurationError):
            AdaptiveBatchBackoff(min_batch=0)


class TestConservationUnderFaults:
    @pytest.mark.parametrize("scheduler", SCHEDULER_NAMES)
    @pytest.mark.parametrize("stage", ALL_STAGES, ids=lambda s: s.kind)
    def test_every_injector_every_scheduler(self, scheduler, stage):
        duration = 0.02
        config = SimulationConfig(scheduler=scheduler, duration=duration)
        source = PoissonSource(11000.0, rng=0)
        arrivals = FaultPlan(stages=(stage,)).apply(
            source.arrival_list(duration), 0
        )
        result = run_simulation(source, config, seed=0, arrivals=arrivals)
        assert result.completed > 0
        assert result.offered == result.completed + result.dropped

    @pytest.mark.parametrize("policy", ("tail", "head", "batch-cap", "adaptive"))
    @pytest.mark.parametrize("scheduler", ("conventional", "ldlp"))
    def test_every_policy_under_combined_plan(self, scheduler, policy):
        duration = 0.02
        plan = FaultPlan(stages=ALL_STAGES, flush_period_cycles=5e5)
        config = SimulationConfig(
            scheduler=scheduler,
            duration=duration,
            drop_policy=policy,
            input_limit=40,
            flush_period_cycles=plan.flush_period_cycles,
        )
        source = PoissonSource(14000.0, rng=1)
        arrivals = plan.apply(source.arrival_list(duration), 1)
        result = run_simulation(source, config, seed=1, arrivals=arrivals)
        assert result.completed > 0
        assert result.offered == result.completed + result.dropped

    def test_default_policy_matches_legacy_tail_drop(self):
        duration = 0.03
        source = PoissonSource(12000.0, rng=0)
        arrivals = source.arrival_list(duration)
        base = SimulationConfig(scheduler="ldlp", duration=duration)
        explicit = SimulationConfig(
            scheduler="ldlp", duration=duration, drop_policy="tail"
        )
        first = run_simulation(source, base, seed=0, arrivals=arrivals)
        second = run_simulation(source, explicit, seed=0, arrivals=arrivals)
        assert first.to_dict() == second.to_dict()


class TestEnvironmentFaults:
    def test_cache_flush_costs_extra_misses(self):
        duration = 0.02
        source = PoissonSource(8000.0, rng=0)
        arrivals = source.arrival_list(duration)
        clean = run_simulation(
            source,
            SimulationConfig(scheduler="ldlp", duration=duration),
            seed=0,
            arrivals=arrivals,
        )
        flushed = run_simulation(
            source,
            SimulationConfig(
                scheduler="ldlp", duration=duration, flush_period_cycles=1e5
            ),
            seed=0,
            arrivals=arrivals,
        )
        assert flushed.offered == flushed.completed + flushed.dropped
        assert flushed.misses.total > clean.misses.total

    def test_flush_period_validation(self):
        with pytest.raises(ConfigurationError):
            SimulationConfig(flush_period_cycles=0.0)
        with pytest.raises(ConfigurationError):
            SimulationConfig(drop_policy="nonsense")

    def test_mbuf_exhaustion_windows(self):
        pool = MbufPool(limit=1024)
        windows = MbufExhaustionWindows(period=10, width=3, start=5)
        pool.set_fault_gate(windows.gate())
        outcomes = []
        held = []
        for _ in range(25):
            try:
                held.append(pool.alloc())
                outcomes.append(True)
            except BufferError_:
                outcomes.append(False)
        # Attempts 5,6,7 and 15,16,17 fall inside the carved windows.
        expected = [i < 5 or (i - 5) % 10 >= 3 for i in range(25)]
        assert outcomes == expected
        assert pool.stats.denied == outcomes.count(False)
        pool.set_fault_gate(None)
        held.append(pool.alloc())  # gate cleared: allocation works again
        for mbuf in held:
            pool.free(mbuf)
        pool.verify_balanced()


class TestSatelliteFixes:
    def test_drain_negative_limit_raises(self):
        queue = BoundedQueue(capacity=8)
        for item in range(5):
            queue.offer(item)
        with pytest.raises(ConfigurationError):
            queue.drain(-1)
        assert queue.drain(2) == [0, 1]
        assert queue.drain() == [2, 3, 4]

    def test_reset_stats_keeps_items(self):
        queue = BoundedQueue(capacity=2)
        for item in range(4):
            queue.offer(item)
        assert queue.drops == 2 and queue.offered == 4
        queue.reset_stats()
        assert queue.drops == 0 and queue.offered == 0
        assert len(queue) == 2 and queue.peak_depth == 2

    def test_bellcore_rejects_dirty_traces(self, tmp_path):
        cases = {
            "negative.txt": "-1.0 64\n",
            "backwards.txt": "1.0 64\n0.5 64\n",
            "oversize.txt": "0.0 9999\n",
            "runt.txt": "0.0 0\n",
        }
        for name, body in cases.items():
            path = tmp_path / name
            path.write_text(body)
            with pytest.raises(TraceError) as excinfo:
                read_bellcore_trace(path)
            message = str(excinfo.value)
            assert str(path) in message and "clamp" in message
            # file:line points at the offending record
            assert f"{path}:{body.count(chr(10))}" in message

    def test_bellcore_clamp_escape_hatch(self, tmp_path):
        path = tmp_path / "dirty.txt"
        path.write_text("-1.0 64\n0.5 9999\n0.2 0\n")
        arrivals = read_bellcore_trace(path, clamp=True)
        assert [a.time for a in arrivals] == [0.0, 0.5, 0.5]
        assert [a.size for a in arrivals] == [64, 1518, 1]

    def test_run_simulation_empty_stream_rate_zero(self):
        result = run_simulation(
            TraceSource([]),
            SimulationConfig(scheduler="ldlp", duration=0.01),
            seed=0,
        )
        assert result.arrival_rate == 0.0
        assert result.offered == 0 and result.completed == 0

    def test_run_simulation_array_batch_sizes(self, monkeypatch):
        # A scheduler exposing batch_sizes as a numpy array used to hit
        # "truth value of an array is ambiguous" in run_simulation.
        from repro.core.scheduler import LDLPScheduler

        original = LDLPScheduler.service_step

        def service_step(self):
            self.batch_sizes = list(self.batch_sizes)
            completions = original(self)
            self.batch_sizes = np.asarray(self.batch_sizes)
            return completions

        monkeypatch.setattr(LDLPScheduler, "service_step", service_step)
        result = run_simulation(
            PoissonSource(8000.0, rng=0),
            SimulationConfig(scheduler="ldlp", duration=0.01),
            seed=0,
        )
        assert result.mean_batch_size >= 1.0


class TestCampaigns:
    def test_fault_point_deterministic_and_conserving(self):
        params = dict(
            scheduler="ldlp",
            policy="head",
            rate=12000.0,
            seeds=[0, 1],
            duration=0.02,
            plan=campaign_plan().to_params(),
        )
        first = fault_point(**params)
        second = fault_point(**params)
        assert first == second
        assert first["conservation_violations"] == 0
        assert first["result"]["completed"] > 0

    def test_sweep_points_unique_and_serializable(self):
        for scale in ("ci", "default"):
            points = SWEEP.points_for(scale)
            assert len({p.key for p in points}) == len(points)
            json.dumps([p.params for p in points])

    def test_quantities_cover_every_policy_at_top_rate(self):
        points = SWEEP.points_for("ci")
        results = {
            p.key: {
                "result": {
                    "scheduler": p.params["scheduler"],
                    "arrival_rate": float(p.params["rate"]),
                    "offered": 10,
                    "completed": 9,
                    "dropped": 1,
                    "duration": 0.1,
                    "latency": {
                        "count": 9, "mean": 1e-3, "median": 1e-3,
                        "p95": 2e-3, "p99": 3e-3, "maximum": 4e-3,
                    },
                    "misses": {"instruction": 1.0, "data": 1.0},
                    "cycles_per_message": 100.0,
                    "mean_batch_size": 1.0,
                },
                "policy": p.params["policy"],
                "conservation_violations": 0,
            }
            for p in points
        }
        quantities = SWEEP.quantities(points, results)
        assert quantities["conservation_violations"] == 0.0
        for scheduler in ("conventional", "ilp", "ldlp"):
            for policy in ("tail", "head"):
                assert f"{scheduler}/{policy}/drop_frac" in quantities
                assert f"{scheduler}/{policy}/p99_ms" in quantities


class TestHarnessCheck:
    def test_module_path_resolution(self):
        assert module_path("repro.sim.runner").name == "runner.py"
        assert module_path("repro.core").name == "__init__.py"
        assert module_path("repro.no.such.module") is None
        assert module_path("numpy") is None

    def test_closure_follows_real_imports_only(self):
        closure = import_closure("repro.sim.runner")
        assert "repro.core.scheduler" in closure    # direct import
        assert "repro.obs.runtime" in closure       # transitive
        assert "repro.cache.hierarchy" in closure
        # Sibling experiments reachable only through the re-export hub
        # repro.experiments.__init__ must NOT leak into the closure.
        assert not any(m.startswith("repro.experiments") for m in closure)

    def _spec(self, sources):
        return SweepSpec(
            name="probe",
            points=lambda scale: [
                SweepPoint(
                    experiment="probe",
                    key="only",
                    func="repro.sim.runner:poisson_point",
                    params={},
                )
            ],
            quantities=lambda points, results: {},
            sources=sources,
        )

    def test_undeclared_source_flagged(self):
        findings = check_spec(self._spec(("repro.sim",)))
        assert findings
        assert all(f.rule_id == "HARN001" for f in findings)
        assert all(f.severity.value == "error" for f in findings)
        flagged = {f.details["module"] for f in findings}
        assert "repro.core.scheduler" in flagged

    def test_fully_declared_spec_clean(self):
        spec = self._spec(
            (
                "repro.sim",
                "repro.core",
                "repro.cache",
                "repro.machine",
                "repro.traffic",
                "repro.buffers",
                "repro.obs.runtime",
                "repro.errors",
                "repro.units",
            )
        )
        assert check_spec(spec) == []

    def test_repo_specs_all_clean(self):
        assert check_all_specs() == []
