"""Tests for the transmit-side stack, including full loopback."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    ConventionalScheduler,
    LDLPScheduler,
    MachineBinding,
    Message,
)
from repro.protocols import (
    IPv4Header,
    TcpHeader,
    TcpSender,
    build_tcp_receive_stack,
    build_tcp_transmit_stack,
)
from repro.protocols.ethernet import EthernetHeader


class TestTransmitStack:
    def test_single_segment(self):
        stack = build_tcp_transmit_stack()
        scheduler = ConventionalScheduler(stack.layers)
        scheduler.run_to_completion([stack.send(b"hello")])
        assert len(stack.wire) == 1
        assert stack.stats.segments_out == 1

    def test_frame_is_valid_ethernet_ip_tcp(self):
        stack = build_tcp_transmit_stack()
        scheduler = ConventionalScheduler(stack.layers)
        scheduler.run_to_completion([stack.send(b"payload-bytes")])
        frame = stack.wire[0]
        eth = EthernetHeader.parse(frame)
        assert eth.ethertype == 0x0800
        ip = IPv4Header.parse(frame[14:34])
        assert str(ip.dst) == "10.0.0.1"
        segment = frame[34 : 14 + ip.total_length]
        header, payload = TcpHeader.parse(
            segment, src=ip.src, dst=ip.dst, verify=True
        )
        assert payload == b"payload-bytes"
        assert header.dst_port == 4000

    def test_mss_segmentation(self):
        stack = build_tcp_transmit_stack(mss=100)
        scheduler = ConventionalScheduler(stack.layers)
        scheduler.run_to_completion([stack.send(b"z" * 250)])
        assert stack.stats.segments_out == 3
        sizes = []
        for frame in stack.wire:
            ip = IPv4Header.parse(frame[14:34])
            sizes.append(ip.total_length - 20 - 20)
        assert sizes == [100, 100, 50]

    def test_sequence_numbers_advance(self):
        stack = build_tcp_transmit_stack(mss=100, iss=1000)
        scheduler = ConventionalScheduler(stack.layers)
        scheduler.run_to_completion([stack.send(b"z" * 250)])
        seqs = []
        for frame in stack.wire:
            ip = IPv4Header.parse(frame[14:34])
            header, _ = TcpHeader.parse(frame[34 : 14 + ip.total_length])
            seqs.append(header.seq)
        assert seqs == [1000, 1100, 1200]

    def test_empty_send_emits_pure_ack(self):
        stack = build_tcp_transmit_stack()
        scheduler = ConventionalScheduler(stack.layers)
        scheduler.run_to_completion([stack.send(b"")])
        assert stack.stats.segments_out == 1
        ip = IPv4Header.parse(stack.wire[0][14:34])
        assert ip.total_length == 40  # headers only

    def test_ip_identification_increments(self):
        stack = build_tcp_transmit_stack(mss=50)
        scheduler = ConventionalScheduler(stack.layers)
        scheduler.run_to_completion([stack.send(b"q" * 120)])
        idents = [
            IPv4Header.parse(frame[14:34]).identification for frame in stack.wire
        ]
        assert idents == [1, 2, 3]

    def test_oversize_datagram_rejected_at_driver(self):
        # MSS larger than the Ethernet MTU payload: the driver refuses.
        stack = build_tcp_transmit_stack(mss=1600)
        scheduler = ConventionalScheduler(stack.layers)
        scheduler.run_to_completion([stack.send(b"x" * 1600)])
        assert stack.stats.oversize_rejected == 1
        assert stack.wire == []

    def test_ldlp_equals_conventional(self):
        wires = []
        for cls in (ConventionalScheduler, LDLPScheduler):
            stack = build_tcp_transmit_stack(mss=200)
            scheduler = cls(stack.layers)
            scheduler.run_to_completion(
                [stack.send(bytes([i]) * 300) for i in range(6)]
            )
            wires.append(list(stack.wire))
        assert wires[0] == wires[1]

    def test_machine_binding_charges_costs(self):
        binding = MachineBinding(rng=4)
        stack = build_tcp_transmit_stack()
        scheduler = LDLPScheduler(stack.layers, binding)
        scheduler.run_to_completion([stack.send(b"d" * 400) for _ in range(10)])
        assert binding.cpu.cycles > 0
        assert binding.cpu.icache_misses > 0


class TestLoopback:
    """Transmit frames must be accepted verbatim by the receive stack."""

    def build_pair(self, rx_cls=ConventionalScheduler, tx_cls=ConventionalScheduler,
                   mss=536):
        rx = build_tcp_receive_stack("10.0.0.1", 4000)
        rx.socket.receive_buffer.hiwat = 1 << 22
        rx_sched = rx_cls(rx.layers)
        # Handshake via the lightweight sender so the receiver's PCB is
        # established, then hand the sequence state to the transmit stack.
        probe = TcpSender(src="10.0.0.9", dst="10.0.0.1", src_port=7777,
                          dst_port=4000)
        rx_sched.run_to_completion([Message(payload=probe.syn())])
        synack = rx.transmitted[-1]
        rx_sched.run_to_completion(
            [Message(payload=probe.complete_handshake(synack))]
        )
        tx = build_tcp_transmit_stack(
            src="10.0.0.9", dst="10.0.0.1", src_port=7777, dst_port=4000,
            iss=probe.snd_nxt, mss=mss,
        )
        tx.connection.rcv_nxt = probe.rcv_nxt
        tx_sched = tx_cls(tx.layers)
        return rx, rx_sched, tx, tx_sched

    def test_loopback_delivery(self):
        rx, rx_sched, tx, tx_sched = self.build_pair()
        payload = bytes(range(256)) * 8  # 2048 bytes -> 4 segments
        tx_sched.run_to_completion([tx.send(payload)])
        rx_sched.run_to_completion([Message(payload=f) for f in tx.wire])
        assert rx.socket.receive_buffer.read() == payload
        assert rx.stats.bad_transport == 0

    def test_loopback_under_ldlp_both_sides(self):
        rx, rx_sched, tx, tx_sched = self.build_pair(
            rx_cls=LDLPScheduler, tx_cls=LDLPScheduler, mss=256
        )
        chunks = [bytes([i]) * (100 + i * 13) for i in range(10)]
        tx_sched.run_to_completion([tx.send(chunk) for chunk in chunks])
        rx_sched.run_to_completion([Message(payload=f) for f in tx.wire])
        assert rx.socket.receive_buffer.read() == b"".join(chunks)

    def test_loopback_acks_match_transmitted_bytes(self):
        rx, rx_sched, tx, tx_sched = self.build_pair(mss=128)
        tx_sched.run_to_completion([tx.send(b"m" * 512)])
        rx_sched.run_to_completion([Message(payload=f) for f in tx.wire])
        # Receiver ACKed up to everything it got (every 2nd of 4 segs).
        last_ack = rx.transmitted[-1].ack
        assert last_ack == tx.connection.snd_nxt

    @given(
        payload=st.binary(min_size=1, max_size=3000),
        mss=st.sampled_from([64, 256, 536, 1460]),
    )
    @settings(max_examples=25, deadline=None)
    def test_loopback_property(self, payload, mss):
        """Property: any payload at any MSS survives the full transmit →
        wire → receive round trip byte-for-byte."""
        rx, rx_sched, tx, tx_sched = self.build_pair(mss=mss)
        tx_sched.run_to_completion([tx.send(payload)])
        rx_sched.run_to_completion([Message(payload=f) for f in tx.wire])
        assert rx.socket.receive_buffer.read() == payload
