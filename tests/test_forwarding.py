"""Tests for the router forwarding path and incremental checksums."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import ConventionalScheduler, LDLPScheduler, Message
from repro.errors import ConfigurationError, ProtocolError
from repro.protocols.checksum import (
    incremental_checksum_update,
    internet_checksum,
)
from repro.protocols.craft import ip_frame
from repro.protocols.forward import (
    Route,
    RoutingTable,
    build_forwarding_path,
)
from repro.protocols.ip import IPv4Address, IPv4Header, PROTO_UDP


class TestIncrementalChecksum:
    def test_matches_full_recompute(self):
        header = IPv4Header(
            src=IPv4Address.parse("10.0.0.9"),
            dst=IPv4Address.parse("192.168.1.1"),
            protocol=PROTO_UDP,
            total_length=60,
            ttl=64,
        ).serialize()
        old_checksum = int.from_bytes(header[10:12], "big")
        old_word = (header[8] << 8) | header[9]
        new_word = ((header[8] - 1) << 8) | header[9]
        patched = incremental_checksum_update(old_checksum, old_word, new_word)
        rebuilt = bytearray(header)
        rebuilt[8] -= 1
        rebuilt[10:12] = b"\x00\x00"
        assert patched == internet_checksum(bytes(rebuilt))

    def test_rejects_out_of_range(self):
        with pytest.raises(ConfigurationError):
            incremental_checksum_update(0x10000, 0, 0)
        with pytest.raises(ConfigurationError):
            incremental_checksum_update(0, -1, 0)

    @given(
        words=st.lists(st.integers(0, 0xFFFF), min_size=2, max_size=20),
        index=st.integers(0, 19),
        new_value=st.integers(0, 0xFFFF),
    )
    @settings(max_examples=100, deadline=None)
    def test_incremental_equals_recompute_property(self, words, index,
                                                   new_value):
        """Property (RFC 1624): patching one word incrementally always
        equals recomputing the checksum from scratch — except for the
        all-zero datagram, where one's complement's two zeros (0x0000
        and 0xFFFF) are both valid; RFC 1624 §3 discusses exactly this
        degenerate case, which real headers (version != 0) never hit."""
        from hypothesis import assume

        index %= len(words)
        patched_words = list(words)
        patched_words[index] = new_value
        assume(any(words) and any(patched_words))
        data = b"".join(word.to_bytes(2, "big") for word in words)
        old_checksum = internet_checksum(data)
        new_data = b"".join(word.to_bytes(2, "big") for word in patched_words)
        incremental = incremental_checksum_update(
            old_checksum, words[index], new_value
        )
        assert incremental == internet_checksum(new_data)


class TestRoutingTable:
    def test_longest_prefix_wins(self):
        table = RoutingTable()
        table.add("10.0.0.0/8", "02:00:00:00:00:08")
        table.add("10.1.0.0/16", "02:00:00:00:00:16")
        table.add("10.1.2.0/24", "02:00:00:00:00:24")
        route = table.lookup(IPv4Address.parse("10.1.2.3"))
        assert str(route.next_hop_mac).endswith(":24")
        route = table.lookup(IPv4Address.parse("10.1.9.9"))
        assert str(route.next_hop_mac).endswith(":16")
        route = table.lookup(IPv4Address.parse("10.9.9.9"))
        assert str(route.next_hop_mac).endswith(":08")

    def test_default_route(self):
        table = RoutingTable()
        table.add("0.0.0.0/0", "02:00:00:00:00:99")
        assert table.lookup(IPv4Address.parse("8.8.8.8")) is not None

    def test_miss_counted(self):
        table = RoutingTable()
        table.add("10.0.0.0/8", "02:00:00:00:00:08")
        assert table.lookup(IPv4Address.parse("192.168.0.1")) is None
        assert table.misses == 1

    def test_bad_cidr_rejected(self):
        with pytest.raises(ProtocolError):
            Route.parse("10.0.0.0", "02:00:00:00:00:01")
        with pytest.raises(ProtocolError):
            Route.parse("10.0.0.0/40", "02:00:00:00:00:01")


def make_path():
    return build_forwarding_path(
        routes=[
            ("192.168.0.0/16", "02:00:00:00:00:aa"),
            ("0.0.0.0/0", "02:00:00:00:00:bb"),
        ]
    )


class TestForwardingPath:
    def test_forwarding_rewrites_and_decrements(self):
        path = make_path()
        scheduler = ConventionalScheduler(path.layers)
        frame = ip_frame("10.0.0.9", "192.168.5.5", PROTO_UDP, b"p" * 40, ttl=17)
        scheduler.run_to_completion([Message(payload=frame)])
        assert path.stats.forwarded == 1
        out_frame, route = path.transmitted[0]
        assert str(route.next_hop_mac).endswith(":aa")
        header = IPv4Header.parse(out_frame[14:34])  # checksum must verify
        assert header.ttl == 16
        assert str(header.dst) == "192.168.5.5"

    def test_ttl_expiry_dropped(self):
        path = make_path()
        scheduler = ConventionalScheduler(path.layers)
        frame = ip_frame("10.0.0.9", "192.168.5.5", PROTO_UDP, b"p" * 40, ttl=1)
        scheduler.run_to_completion([Message(payload=frame)])
        assert path.stats.ttl_expired == 1
        assert path.transmitted == []

    def test_no_route_dropped(self):
        path = build_forwarding_path(routes=[("10.0.0.0/8", "02:00:00:00:00:01")])
        scheduler = ConventionalScheduler(path.layers)
        frame = ip_frame("10.0.0.9", "172.16.0.1", PROTO_UDP, b"p" * 20)
        scheduler.run_to_completion([Message(payload=frame)])
        assert path.stats.no_route == 1

    def test_payload_untouched(self):
        path = make_path()
        scheduler = ConventionalScheduler(path.layers)
        payload = bytes(range(200))
        frame = ip_frame("10.0.0.9", "192.168.1.1", PROTO_UDP, payload)
        scheduler.run_to_completion([Message(payload=frame)])
        out_frame, _ = path.transmitted[0]
        header = IPv4Header.parse(out_frame[14:34])
        assert out_frame[14 + 20 : 14 + header.total_length] == payload

    def test_ldlp_equals_conventional(self):
        frames = [
            ip_frame("10.0.0.9", f"192.168.{i}.1", PROTO_UDP, bytes([i]) * 30,
                     ttl=30 + i)
            for i in range(10)
        ]
        outputs = []
        for cls in (ConventionalScheduler, LDLPScheduler):
            path = make_path()
            scheduler = cls(path.layers)
            scheduler.run_to_completion([Message(payload=f) for f in frames])
            outputs.append([frame for frame, _ in path.transmitted])
        assert outputs[0] == outputs[1]

    @given(ttl=st.integers(2, 255), third_octet=st.integers(0, 255))
    @settings(max_examples=50, deadline=None)
    def test_forwarded_header_always_verifies(self, ttl, third_octet):
        """Property: the incrementally patched header always passes a
        full checksum verification at the next hop."""
        path = make_path()
        scheduler = ConventionalScheduler(path.layers)
        frame = ip_frame(
            "10.0.0.9", f"192.168.{third_octet}.7", PROTO_UDP, b"q" * 24,
            ttl=ttl,
        )
        scheduler.run_to_completion([Message(payload=frame)])
        out_frame, _ = path.transmitted[0]
        header = IPv4Header.parse(out_frame[14:34])  # verify=True default
        assert header.ttl == ttl - 1
