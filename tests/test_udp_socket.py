"""Tests for repro.protocols.udp and repro.protocols.socketlayer."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.buffers import MbufChain
from repro.errors import ChecksumError, ProtocolError
from repro.protocols.ip import IPv4Address
from repro.protocols.socketlayer import Socket, SocketBuffer
from repro.protocols.udp import UdpHeader, build_datagram

SRC = IPv4Address.parse("10.0.0.2")
DST = IPv4Address.parse("10.0.0.1")


class TestUdp:
    def test_roundtrip_plain(self):
        wire = build_datagram(1234, 53, b"query")
        header, payload = UdpHeader.parse(wire)
        assert header.src_port == 1234
        assert header.dst_port == 53
        assert payload == b"query"

    def test_roundtrip_checksummed(self):
        wire = build_datagram(1234, 53, b"query", src=SRC, dst=DST)
        header, payload = UdpHeader.parse(wire, src=SRC, dst=DST, verify=True)
        assert payload == b"query"

    def test_corruption_detected(self):
        wire = bytearray(build_datagram(1234, 53, b"query", src=SRC, dst=DST))
        wire[-1] ^= 0x40
        with pytest.raises(ChecksumError):
            UdpHeader.parse(bytes(wire), src=SRC, dst=DST, verify=True)

    def test_zero_checksum_means_unchecked(self):
        wire = build_datagram(1234, 53, b"query")  # no checksum
        UdpHeader.parse(wire, src=SRC, dst=DST, verify=True)  # must not raise

    def test_short_datagram_rejected(self):
        with pytest.raises(ProtocolError):
            UdpHeader.parse(b"\x00" * 4)

    def test_bad_length_field_rejected(self):
        wire = bytearray(build_datagram(1, 2, b"abc"))
        wire[4:6] = (100).to_bytes(2, "big")  # longer than datagram
        with pytest.raises(ProtocolError):
            UdpHeader.parse(bytes(wire))

    def test_trailing_bytes_ignored(self):
        # Ethernet padding may trail the datagram; length field rules.
        wire = build_datagram(1, 2, b"abc") + b"\x00" * 10
        _header, payload = UdpHeader.parse(wire)
        assert payload == b"abc"

    @given(payload=st.binary(max_size=600))
    @settings(max_examples=60, deadline=None)
    def test_checksummed_roundtrip_property(self, payload):
        wire = build_datagram(7, 9, payload, src=SRC, dst=DST)
        _header, parsed = UdpHeader.parse(wire, src=SRC, dst=DST, verify=True)
        assert parsed == payload


class TestSocketBuffer:
    def test_append_and_read(self):
        sb = SocketBuffer()
        assert sb.append(b"hello")
        assert sb.read() == b"hello"
        assert len(sb) == 0

    def test_append_chain_no_copy(self):
        sb = SocketBuffer()
        chain = MbufChain.from_bytes(b"data")
        sb.append(chain)
        assert chain.segment_count == 0  # ownership moved
        assert sb.read() == b"data"

    def test_partial_read(self):
        sb = SocketBuffer()
        sb.append(b"0123456789")
        assert sb.read(4) == b"0123"
        assert sb.read() == b"456789"

    def test_hiwat_rejects_overflow(self):
        sb = SocketBuffer(hiwat=10)
        assert sb.append(b"x" * 10)
        assert not sb.append(b"y")
        assert sb.stats.rejected == 1

    def test_space_tracks_contents(self):
        sb = SocketBuffer(hiwat=100)
        sb.append(b"x" * 30)
        assert sb.space == 70
        sb.read(10)
        assert sb.space == 80

    def test_wakeup_fires_once(self):
        sb = SocketBuffer()
        calls = []
        sb.set_waiter(lambda: calls.append(1))
        sb.append(b"a")
        sb.append(b"b")
        assert calls == [1]
        assert sb.stats.wakeups == 1

    def test_invalid_hiwat(self):
        with pytest.raises(ProtocolError):
            SocketBuffer(hiwat=0)

    def test_fifo_order_across_appends(self):
        sb = SocketBuffer()
        sb.append(b"first")
        sb.append(b"second")
        assert sb.read() == b"firstsecond"


class TestSocket:
    def test_readable(self):
        sock = Socket("10.0.0.1", 80)
        assert not sock.readable()
        sock.receive_buffer.append(b"x")
        assert sock.readable()
