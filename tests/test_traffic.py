"""Tests for repro.traffic."""

import numpy as np
import pytest

from repro.errors import ConfigurationError, TraceError
from repro.traffic import (
    Arrival,
    BurstSource,
    DeterministicSource,
    OCT89_SIZE_MIX,
    ParetoOnOffSource,
    PoissonSource,
    SizeMix,
    TraceSource,
    hurst_estimate,
    pareto_samples,
    read_bellcore_trace,
    synthesize_bellcore_like,
    write_bellcore_trace,
)


class TestArrival:
    def test_validation(self):
        with pytest.raises(ConfigurationError):
            Arrival(-1.0, 100)
        with pytest.raises(ConfigurationError):
            Arrival(0.0, 0)


class TestPoisson:
    def test_rate_approximately_met(self):
        source = PoissonSource(5000, rng=0)
        arrivals = source.arrival_list(2.0)
        assert 9000 < len(arrivals) < 11000

    def test_sorted_and_bounded(self):
        arrivals = PoissonSource(1000, rng=1).arrival_list(0.5)
        times = [a.time for a in arrivals]
        assert times == sorted(times)
        assert all(0 <= t < 0.5 for t in times)

    def test_fixed_size(self):
        arrivals = PoissonSource(1000, size=552, rng=2).arrival_list(0.1)
        assert all(a.size == 552 for a in arrivals)

    def test_reproducible(self):
        a = PoissonSource(1000, rng=3).arrival_list(0.2)
        b = PoissonSource(1000, rng=3).arrival_list(0.2)
        assert a == b

    def test_exponential_gaps(self):
        arrivals = PoissonSource(10000, rng=4).arrival_list(1.0)
        gaps = np.diff([a.time for a in arrivals])
        # Exponential: std ~ mean.
        assert abs(gaps.std() / gaps.mean() - 1.0) < 0.1

    def test_invalid(self):
        with pytest.raises(ConfigurationError):
            PoissonSource(0)
        with pytest.raises(ConfigurationError):
            PoissonSource(100, size=0)

    def test_zero_duration(self):
        assert PoissonSource(1000, rng=0).arrival_list(0) == []


class TestDeterministic:
    def test_exact_count(self):
        arrivals = DeterministicSource(100).arrival_list(1.0)
        assert len(arrivals) == 99  # last lands exactly at the horizon
        gaps = np.diff([a.time for a in arrivals])
        assert np.allclose(gaps, 0.01)


class TestBurst:
    def test_burst_structure(self):
        source = BurstSource(burst_rate=10, burst_size=5)
        arrivals = source.arrival_list(0.5)
        assert len(arrivals) == 25
        assert arrivals[0].time == arrivals[4].time


class TestPareto:
    def test_mean_matches(self):
        rng = np.random.default_rng(0)
        samples = pareto_samples(rng, alpha=1.5, mean=2.0, count=200_000)
        # Heavy-tailed: generous tolerance.
        assert abs(samples.mean() - 2.0) < 0.25

    def test_alpha_must_exceed_one(self):
        rng = np.random.default_rng(0)
        with pytest.raises(ConfigurationError):
            pareto_samples(rng, alpha=1.0, mean=1.0, count=10)

    def test_heavy_tail(self):
        rng = np.random.default_rng(1)
        samples = pareto_samples(rng, alpha=1.2, mean=1.0, count=100_000)
        # Pareto with alpha 1.2 has samples far beyond 20x the mean.
        assert samples.max() > 20


class TestOnOff:
    def test_mean_rate_property(self):
        source = ParetoOnOffSource(
            num_sources=10, packet_rate_on=1000, mean_on=0.02, mean_off=0.08,
            rng=0,
        )
        assert source.mean_rate == pytest.approx(2000.0)

    def test_generated_rate_in_ballpark(self):
        source = ParetoOnOffSource(
            num_sources=20, packet_rate_on=500, mean_on=0.02, mean_off=0.08,
            rng=1,
        )
        arrivals = source.arrival_list(5.0)
        rate = len(arrivals) / 5.0
        assert 0.4 * source.mean_rate < rate < 2.0 * source.mean_rate

    def test_sorted_times(self):
        source = ParetoOnOffSource(num_sources=5, rng=2)
        times = [a.time for a in source.arrival_list(1.0)]
        assert times == sorted(times)

    def test_self_similar_burstier_than_poisson(self):
        """The Hurst estimate of the ON/OFF aggregate exceeds Poisson's."""
        duration, bins = 30.0, 4096
        onoff = ParetoOnOffSource(
            num_sources=24, packet_rate_on=800, mean_on=0.05, mean_off=0.15,
            alpha=1.3, rng=3,
        )
        target_rate = onoff.mean_rate
        poisson = PoissonSource(target_rate, rng=3)

        def counts(arrivals):
            edges = np.linspace(0, duration, bins + 1)
            return np.histogram([a.time for a in arrivals], bins=edges)[0]

        h_onoff = hurst_estimate(counts(onoff.arrival_list(duration)))
        h_poisson = hurst_estimate(counts(poisson.arrival_list(duration)))
        assert h_poisson < 0.65
        assert h_onoff > h_poisson + 0.1

    def test_invalid(self):
        with pytest.raises(ConfigurationError):
            ParetoOnOffSource(num_sources=0)
        with pytest.raises(ConfigurationError):
            ParetoOnOffSource(mean_on=0)

    def test_hurst_needs_samples(self):
        with pytest.raises(ConfigurationError):
            hurst_estimate(np.ones(10))


class TestSizeMix:
    def test_sampling_respects_support(self):
        rng = np.random.default_rng(0)
        sizes = OCT89_SIZE_MIX.sample(rng, 1000)
        assert set(sizes) <= set(OCT89_SIZE_MIX.sizes)

    def test_mean(self):
        mix = SizeMix(sizes=(100, 300), weights=(0.5, 0.5))
        assert mix.mean == pytest.approx(200.0)

    def test_callable(self):
        rng = np.random.default_rng(0)
        assert OCT89_SIZE_MIX(rng) in OCT89_SIZE_MIX.sizes

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            SizeMix(sizes=(), weights=())
        with pytest.raises(ConfigurationError):
            SizeMix(sizes=(1,), weights=(-1.0,))


class TestBellcore:
    def test_file_roundtrip(self, tmp_path):
        arrivals = [Arrival(0.001, 64), Arrival(0.005, 1518)]
        path = tmp_path / "trace.txt"
        write_bellcore_trace(arrivals, path)
        assert read_bellcore_trace(path) == arrivals

    def test_limit_truncates(self, tmp_path):
        # The paper uses "the first 1000 seconds" of the trace.
        arrivals = [Arrival(float(t), 64) for t in range(10)]
        path = tmp_path / "trace.txt"
        write_bellcore_trace(arrivals, path)
        assert len(read_bellcore_trace(path, limit=5.0)) == 5

    def test_malformed_rejected(self, tmp_path):
        path = tmp_path / "bad.txt"
        path.write_text("0.1 64 extra\n")
        with pytest.raises(TraceError):
            read_bellcore_trace(path)
        path.write_text("abc 64\n")
        with pytest.raises(TraceError):
            read_bellcore_trace(path)

    def test_comments_skipped(self, tmp_path):
        path = tmp_path / "trace.txt"
        path.write_text("# header\n\n0.5 64\n")
        assert len(read_bellcore_trace(path)) == 1

    def test_synthesize(self):
        arrivals = synthesize_bellcore_like(2.0, mean_rate=500, rng=0)
        assert arrivals
        rate = len(arrivals) / 2.0
        assert 100 < rate < 2000
        assert all(a.size in OCT89_SIZE_MIX.sizes for a in arrivals)

    def test_synthesize_validation(self):
        with pytest.raises(ConfigurationError):
            synthesize_bellcore_like(0.0)
        with pytest.raises(ConfigurationError):
            synthesize_bellcore_like(1.0, mean_rate=0)

    def test_trace_source_replay(self):
        arrivals = [Arrival(0.2, 64), Arrival(0.1, 64), Arrival(0.9, 64)]
        source = TraceSource(arrivals)
        replayed = source.arrival_list(0.5)
        assert [a.time for a in replayed] == [0.1, 0.2]
        assert len(source) == 3
