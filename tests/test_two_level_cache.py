"""Tests for the optional second-level cache (Section 1.2 / 4 remarks)."""

import numpy as np
import pytest

from repro.cache import CacheGeometry, MachineSpec, SplitCacheHierarchy
from repro.errors import ConfigurationError
from repro.machine import CPU
from repro.sim import SimulationConfig, run_simulation
from repro.traffic import PoissonSource
from repro.units import kb

L2_SPEC = MachineSpec(
    l2=CacheGeometry(size=kb(512)),
    miss_penalty=20,
    memory_penalty=100,
)


class TestSpecValidation:
    def test_l2_must_match_line_size(self):
        with pytest.raises(ConfigurationError):
            MachineSpec(l2=CacheGeometry(size=kb(512), line_size=64))

    def test_l2_must_be_larger(self):
        with pytest.raises(ConfigurationError):
            MachineSpec(l2=CacheGeometry(size=kb(4)))

    def test_memory_penalty_floor(self):
        with pytest.raises(ConfigurationError):
            MachineSpec(miss_penalty=50, memory_penalty=20)

    def test_with_clock_preserves_l2(self):
        scaled = L2_SPEC.with_clock(50e6)
        assert scaled.l2 == L2_SPEC.l2
        assert scaled.memory_penalty == 100


class TestHierarchy:
    def test_flat_model_unchanged(self):
        """Without an L2, every primary miss costs miss_penalty."""
        hierarchy = SplitCacheHierarchy(MachineSpec())
        assert hierarchy.fetch_code(0, 6144) == 192 * 20
        assert hierarchy.fetch_code(0, 6144) == 0

    def test_cold_miss_costs_memory_penalty(self):
        hierarchy = SplitCacheHierarchy(L2_SPEC)
        # First touch misses both levels.
        assert hierarchy.fetch_code(0, 32) == 100

    def test_l2_hit_costs_miss_penalty(self):
        hierarchy = SplitCacheHierarchy(L2_SPEC)
        hierarchy.fetch_code(0, 32)
        hierarchy.icache.flush()  # evict from L1 only
        assert hierarchy.fetch_code(0, 32) == 20

    def test_l1_hit_costs_nothing(self):
        hierarchy = SplitCacheHierarchy(L2_SPEC)
        hierarchy.fetch_code(0, 32)
        assert hierarchy.fetch_code(0, 32) == 0

    def test_l2_shared_between_i_and_d(self):
        """The L2 is unified: data fetches warm it for code too."""
        hierarchy = SplitCacheHierarchy(L2_SPEC)
        hierarchy.read_data(0, 32)
        assert hierarchy.fetch_code(0, 32) == 20  # L2 hit

    def test_writes_allocate_in_l2(self):
        hierarchy = SplitCacheHierarchy(L2_SPEC)
        assert hierarchy.write_data(0, 32) == 0
        hierarchy.dcache.flush()
        assert hierarchy.read_data(0, 32) == 20  # L2 hit after write

    def test_flush_clears_l2(self):
        hierarchy = SplitCacheHierarchy(L2_SPEC)
        hierarchy.fetch_code(0, 32)
        hierarchy.flush()
        assert hierarchy.fetch_code(0, 32) == 100


class TestCpuWithL2:
    def test_line_array_path(self):
        cpu = CPU(L2_SPEC)
        lines = np.arange(0, 192, dtype=np.int64)
        cpu.fetch_code_lines(lines)
        assert cpu.stall_cycles == 192 * 100
        cpu.hierarchy.icache.flush()
        before = cpu.stall_cycles
        cpu.fetch_code_lines(lines)
        assert cpu.stall_cycles - before == 192 * 20

    def test_span_path(self):
        cpu = CPU(L2_SPEC)
        cpu.read_data_span(0, 552)
        assert cpu.stall_cycles == 18 * 100


class TestEndToEnd:
    def test_l2_narrows_but_preserves_ldlp_win(self):
        """With a big L2 the penalty gap shrinks but the working set
        still exceeds L1, so LDLP still wins at high load."""
        source = PoissonSource(8000, rng=0)
        arrivals = source.arrival_list(0.1)
        results = {}
        for name in ("conventional", "ldlp"):
            config = SimulationConfig(
                scheduler=name, duration=0.1, spec=L2_SPEC
            )
            results[name] = run_simulation(source, config, seed=0,
                                           arrivals=arrivals)
        assert (
            results["ldlp"].cycles_per_message
            < results["conventional"].cycles_per_message
        )

    def test_l2_reduces_conventional_cost_vs_memory(self):
        """An L2 should be strictly cheaper than paying memory penalty
        on every primary miss."""
        source = PoissonSource(4000, rng=1)
        arrivals = source.arrival_list(0.1)
        flat_expensive = MachineSpec(miss_penalty=100, memory_penalty=100)
        with_l2 = L2_SPEC
        costs = {}
        for label, spec in (("flat100", flat_expensive), ("l2", with_l2)):
            config = SimulationConfig(
                scheduler="conventional", duration=0.1, spec=spec
            )
            costs[label] = run_simulation(
                source, config, seed=1, arrivals=arrivals
            ).cycles_per_message
        assert costs["l2"] < costs["flat100"]
