"""End-to-end tests of the experiment harnesses: do the paper's tables
and figures reproduce with the shapes the paper reports?

These run at reduced scale (few seeds, short simulated time) but assert
the same qualitative claims; the benchmarks record the full numbers.
"""

import pytest

from repro.experiments import (
    ablations,
    figure1,
    figure5,
    figure6,
    figure7,
    figure8,
    table1,
    table3,
)
from repro.experiments.cli import build_parser, main as cli_main
from repro.experiments.report import pct, render_table


class TestReport:
    def test_render_table(self):
        text = render_table(["a", "bb"], [["x", 1], ["yyy", 22]], title="T")
        assert "T" in text
        assert "yyy" in text

    def test_pct(self):
        assert pct(17.2) == "+17%"
        assert pct(-41.0) == "-41%"


class TestTable1:
    def test_exact_reproduction(self):
        result = table1.run(seed=0)
        assert result.matches_paper()

    def test_render_contains_layers(self):
        text = table1.run(seed=0).render()
        assert "Socket low" in text
        assert "30304" in text


class TestTable3:
    def test_within_tolerance(self):
        assert table3.run(seed=0).within_tolerance()

    def test_direction_of_every_cell(self):
        """Signs must match the paper everywhere: smaller lines shrink
        bytes and grow lines; larger lines do the opposite."""
        result = table3.run(seed=0)
        for line_size in (8, 16):
            row = result.measured_row(line_size)
            assert row["code_bytes"] < 0 and row["code_lines"] > 0
            assert row["ro_bytes"] < 0 and row["ro_lines"] > 0
            assert row["mut_bytes"] < 0 and row["mut_lines"] > 0
        row = result.measured_row(64)
        assert row["code_bytes"] > 0 and row["code_lines"] < 0

    def test_na_cells(self):
        row = table3.run(seed=0).measured_row(4)
        assert row["ro_bytes"] is None
        assert row["code_bytes"] is not None


class TestFigure1:
    def test_phase_totals_within_tolerance(self):
        assert figure1.run(seed=0).within_tolerance(rel=0.25)

    def test_code_map_lists_big_functions(self):
        text = figure1.run(seed=0).code_map()
        assert "tcp_input" in text
        assert "soreceive" in text

    def test_phase_table_renders(self):
        assert "pkt intr" in figure1.run(seed=0).phase_table()


SMALL_RATES = (1000, 4000, 7000, 9500)


@pytest.fixture(scope="module")
def figure5_result():
    return figure5.run(rates=SMALL_RATES, seeds=(0, 1), duration=0.12)


@pytest.fixture(scope="module")
def figure6_result():
    return figure6.run(rates=(1000, 4000, 7000, 9000, 10000), seeds=(0, 1),
                       duration=0.12)


class TestFigure5:
    def test_shape(self, figure5_result):
        assert figure5_result.shape_holds()

    def test_conventional_near_thousand(self, figure5_result):
        # Paper: ~1000 misses/message for the conventional stack.
        for result in figure5_result.conventional:
            assert 800 < result.misses.total < 1200

    def test_ldlp_flattens_at_cap(self, figure5_result):
        top = figure5_result.ldlp[-1]
        assert top.mean_batch_size > 8

    def test_render(self, figure5_result):
        assert "LDLP I" in figure5_result.render()


class TestFigure6:
    def test_shape(self, figure6_result):
        assert figure6_result.shape_holds()

    def test_conventional_saturates_before_ldlp(self, figure6_result):
        conv = figure6_result.conventional
        ldlp = figure6_result.ldlp
        # At 7000/s conventional is in the tens of ms; LDLP below 5 ms.
        index = figure6_result.rates.index(7000)
        assert conv[index].latency.mean > 10e-3
        assert ldlp[index].latency.mean < 5e-3

    def test_drop_bound_keeps_latency_finite(self, figure6_result):
        # 500-packet buffer: latency beyond ~140 ms implies drops.
        top = figure6_result.conventional[-1]
        assert top.dropped > 0
        assert top.latency.maximum < 0.5


class TestFigure7:
    @pytest.fixture(scope="class")
    def result(self):
        return figure7.run(
            clocks_mhz=(10, 20, 40, 80), duration=0.4, mean_rate=1000,
            seeds=(0,),
        )

    def test_shape(self, result):
        assert result.shape_holds()

    def test_batching_grows_as_clock_falls(self, result):
        batches = [r.mean_batch_size for r in result.ldlp]
        assert batches[0] > batches[-1]

    def test_render(self, result):
        assert "MHz" in result.render()


class TestFigure8:
    @pytest.fixture(scope="class")
    def result(self):
        return figure8.run()

    def test_shape(self, result):
        assert result.shape_holds()

    def test_cold_intercepts_exact(self, result):
        # 426 and 176 cycles, annotated on the paper's figure.
        assert result.bsd_cold[0] == pytest.approx(426.0)
        assert result.simple_cold[0] == pytest.approx(176.0)

    def test_crossover_near_900(self, result):
        assert result.cold_crossover() == pytest.approx(900, abs=100)

    def test_warm_elaborate_wins_large(self, result):
        assert result.bsd_warm[-1] < result.simple_warm[-1]

    def test_cold_simple_wins_small(self, result):
        index = result.sizes.index(300)
        assert result.simple_cold[index] < result.bsd_cold[index]


class TestAblations:
    def test_batch_cap_one_equals_conventional(self):
        sweep = ablations.batch_cap_sweep(caps=(1, 8), duration=0.08)
        conv = sweep.conventional[0]
        capped = sweep.ldlp[0]
        # cap=1 LDLP degenerates to per-message processing: same misses
        # within a small queue-overhead margin.
        assert capped.misses.total == pytest.approx(conv.misses.total, rel=0.05)
        # cap=8 is far better.
        assert sweep.ldlp[1].misses.total < 0.5 * conv.misses.total

    def test_penalty_zero_removes_advantage(self):
        sweep = ablations.miss_penalty_sweep(penalties=(0, 30), rate=5000,
                                             duration=0.08)
        zero_conv, zero_ldlp = sweep.conventional[0], sweep.ldlp[0]
        assert zero_ldlp.cycles_per_message == pytest.approx(
            zero_conv.cycles_per_message, rel=0.05
        )
        high_conv, high_ldlp = sweep.conventional[1], sweep.ldlp[1]
        assert high_ldlp.cycles_per_message < 0.75 * high_conv.cycles_per_message

    def test_small_code_removes_advantage(self):
        sweep = ablations.code_size_sweep(code_sizes=(1024, 12288), rate=3500,
                                          duration=0.08)
        small_conv, small_ldlp = sweep.conventional[0], sweep.ldlp[0]
        # Whole stack fits the cache: LDLP buys nothing (Figure 4).
        assert small_ldlp.cycles_per_message == pytest.approx(
            small_conv.cycles_per_message, rel=0.1
        )
        big_conv, big_ldlp = sweep.conventional[1], sweep.ldlp[1]
        assert big_ldlp.cycles_per_message < 0.8 * big_conv.cycles_per_message


class TestCli:
    def test_parser_choices(self):
        parser = build_parser()
        args = parser.parse_args(["table1"])
        assert args.experiment == "table1"

    def test_cli_table1(self, capsys):
        assert cli_main(["table1"]) == 0
        out = capsys.readouterr().out
        assert "Table 1" in out

    def test_cli_figure8(self, capsys):
        assert cli_main(["figure8"]) == 0
        assert "crossover" in capsys.readouterr().out


class TestMotivation:
    def test_intro_arithmetic(self):
        from repro.experiments import motivation

        result = motivation.run(duration=0.15)
        # Conventional at 10k pairs/s across 20 hops: "a large fraction
        # of a second" (or more); LDLP keeps the whole path fast.
        conv_20 = result.end_to_end(result.conventional_per_hop, 20)
        ldlp_20 = result.end_to_end(result.ldlp_per_hop, 20)
        assert conv_20 > 0.3
        assert ldlp_20 < 0.1
        assert result.goal_met()

    def test_render(self):
        from repro.experiments import motivation

        text = motivation.run(duration=0.1).render()
        assert "per-hop processing" in text
