"""Failure injection: corrupted and adversarial input never crashes the
stack — it is counted and dropped.

A receive path's first job is to survive garbage; these tests throw
random bytes, bit-flipped valid frames, truncations, and mutated
signalling messages at the full stacks and assert the only observable
effects are drop counters.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import ConventionalScheduler, LDLPScheduler, Message
from repro.protocols import TcpSender, build_tcp_receive_stack
from repro.signalling import build_switch, saal_frame, setup


def total_drops(stats) -> int:
    return (
        stats.bad_frames
        + stats.non_ip
        + stats.bad_ip
        + stats.fragments
        + stats.bad_transport
        + stats.sobuf_full
    )


class TestTcpStackFuzz:
    @given(garbage=st.binary(min_size=0, max_size=200))
    @settings(max_examples=100, deadline=None)
    def test_random_bytes_never_crash(self, garbage):
        stack = build_tcp_receive_stack()
        scheduler = ConventionalScheduler(stack.layers)
        scheduler.run_to_completion([Message(payload=garbage)])
        assert stack.stats.delivered == 0
        assert total_drops(stack.stats) >= 1 or len(garbage) == 0

    @given(
        flips=st.lists(st.integers(0, 599), min_size=1, max_size=8),
        data=st.binary(min_size=1, max_size=500),
    )
    @settings(max_examples=100, deadline=None)
    def test_bitflipped_valid_frame_is_dropped_or_delivered_intact(
        self, flips, data
    ):
        """Flipping bits in a valid frame either gets caught by some
        validation layer (drop counted) or — if the flips only hit
        padding or compensate — never corrupts *delivered* bytes
        silently beyond what checksums can catch.  We assert no crash
        and bookkeeping consistency."""
        stack = build_tcp_receive_stack()
        scheduler = ConventionalScheduler(stack.layers)
        sender = TcpSender(
            src="10.0.0.9", dst="10.0.0.1", src_port=7777, dst_port=4000
        )
        scheduler.run_to_completion([Message(payload=sender.syn())])
        scheduler.run_to_completion(
            [Message(payload=sender.complete_handshake(stack.transmitted[-1]))]
        )
        frame = bytearray(sender.data(data))
        for flip in flips:
            frame[flip % len(frame)] ^= 1 << (flip % 8)
        scheduler.run_to_completion([Message(payload=bytes(frame))])
        delivered = stack.stats.delivered
        dropped = total_drops(stack.stats)
        assert delivered + dropped >= 1 or delivered == 0
        # The receive buffer holds either nothing or a prefix-consistent
        # payload (never more bytes than were sent).
        assert len(stack.socket.receive_buffer.read()) <= len(data)

    @given(cut=st.integers(0, 100))
    @settings(max_examples=50, deadline=None)
    def test_truncated_frames(self, cut):
        stack = build_tcp_receive_stack()
        scheduler = ConventionalScheduler(stack.layers)
        sender = TcpSender(
            src="10.0.0.9", dst="10.0.0.1", src_port=7777, dst_port=4000
        )
        frame = sender.syn()[: max(0, len(sender.syn()) - cut)]
        scheduler.run_to_completion([Message(payload=frame)])
        assert stack.stats.delivered == 0


class TestSignallingFuzz:
    @given(garbage=st.binary(min_size=0, max_size=120))
    @settings(max_examples=100, deadline=None)
    def test_random_bytes_never_crash(self, garbage):
        switch = build_switch()
        scheduler = ConventionalScheduler(switch.layers)
        scheduler.run_to_completion([Message(payload=garbage)])
        assert switch.stats.setups == 0
        assert switch.stats.bad_frames >= 1 or not garbage

    @given(
        flips=st.lists(st.integers(0, 300), min_size=1, max_size=6),
        call_ref=st.integers(0, 1000),
    )
    @settings(max_examples=100, deadline=None)
    def test_bitflipped_setup(self, flips, call_ref):
        """The SAAL CRC catches any corruption of a framed message."""
        switch = build_switch()
        scheduler = ConventionalScheduler(switch.layers)
        frame = bytearray(saal_frame(setup(call_ref, "dest").serialize(), 0))
        for flip in flips:
            frame[flip % len(frame)] ^= 1 << (flip % 8)
        scheduler.run_to_completion([Message(payload=bytes(frame))])
        # Either the CRC caught it (overwhelmingly likely) or the flips
        # cancelled out and the setup processed normally; never both.
        assert switch.stats.bad_frames + switch.stats.setups == 1

    @given(seed=st.integers(0, 2**16))
    @settings(max_examples=20, deadline=None)
    def test_mixed_garbage_and_valid_under_ldlp(self, seed):
        """Batched processing isolates bad messages: valid neighbours in
        the same LDLP batch still complete."""
        rng = np.random.default_rng(seed)
        switch = build_switch()
        scheduler = LDLPScheduler(switch.layers)
        messages = []
        valid = 0
        for index in range(20):
            if rng.random() < 0.5:
                messages.append(
                    Message(payload=saal_frame(
                        setup(index, "dest").serialize(), valid))
                )
                valid += 1
            else:
                messages.append(
                    Message(payload=bytes(rng.integers(0, 256, size=40,
                                                       dtype=np.uint8)))
                )
        scheduler.run_to_completion(messages)
        assert switch.stats.setups == valid
