"""Tests for the Table 2 narrative harness and the prefetch model/ablation."""

import pytest

from repro.cache.hierarchy import MachineSpec
from repro.errors import ConfigurationError
from repro.experiments import ablations, table2
from repro.machine import CPU
from repro.sim import SimulationConfig, run_simulation
from repro.traffic import PoissonSource


class TestTable2:
    @pytest.fixture(scope="class")
    def result(self):
        return table2.run(seed=0)

    def test_narrative_orderings_hold(self, result):
        assert result.narrative_holds()

    def test_entry_ends_asleep(self, result):
        functions = result.phase_functions("entry")
        assert functions[-1] in ("cpu_switch", "mi_switch")

    def test_interrupt_starts_at_the_device(self, result):
        functions = result.phase_functions("pkt intr")
        assert functions[0] == "XentInt"

    def test_render_mentions_fastpath(self, result):
        assert "fastpath" in result.render()

    def test_other_seeds_hold_too(self):
        assert table2.run(seed=3).narrative_holds()


class TestPrefetchModel:
    def test_spec_validation(self):
        with pytest.raises(ConfigurationError):
            MachineSpec(iprefetch_efficiency=1.0)
        with pytest.raises(ConfigurationError):
            MachineSpec(iprefetch_efficiency=-0.1)

    def test_instruction_stall_scaled(self):
        plain = CPU(MachineSpec())
        prefetching = CPU(MachineSpec(iprefetch_efficiency=0.5))
        plain.fetch_code_span(0, 6144)
        prefetching.fetch_code_span(0, 6144)
        assert prefetching.stall_cycles == pytest.approx(
            plain.stall_cycles * 0.5
        )

    def test_data_stall_unaffected(self):
        plain = CPU(MachineSpec())
        prefetching = CPU(MachineSpec(iprefetch_efficiency=0.5))
        plain.read_data_span(0, 552)
        prefetching.read_data_span(0, 552)
        assert prefetching.stall_cycles == plain.stall_cycles

    def test_with_clock_preserves_prefetch(self):
        spec = MachineSpec(iprefetch_efficiency=0.25).with_clock(50e6)
        assert spec.iprefetch_efficiency == 0.25


class TestPrefetchAblation:
    def test_prefetch_narrows_but_keeps_advantage(self):
        # 8000 msgs/s: past conventional saturation even with prefetch,
        # so batching is actually exercised.
        sweep = ablations.prefetch_sweep(
            efficiencies=(0.0, 0.75), rate=8000, duration=0.08
        )
        advantages = [
            conv.cycles_per_message / ldlp.cycles_per_message
            for conv, ldlp in zip(sweep.conventional, sweep.ldlp)
        ]
        assert advantages[0] > advantages[1]  # prefetch narrows the gap
        assert advantages[1] > 1.05  # but cannot erase it

    def test_prefetch_lowers_conventional_latency(self):
        source = PoissonSource(5000, rng=8)
        arrivals = source.arrival_list(0.1)
        means = []
        for efficiency in (0.0, 0.6):
            config = SimulationConfig(
                scheduler="conventional",
                duration=0.1,
                spec=MachineSpec(iprefetch_efficiency=efficiency),
            )
            means.append(
                run_simulation(source, config, seed=8,
                               arrivals=arrivals).latency.mean
            )
        assert means[1] < means[0]
