"""Tests for repro.protocols.tcp."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ChecksumError, ProtocolError
from repro.protocols.ip import IPv4Address
from repro.protocols.tcp import (
    FLAG_ACK,
    FLAG_FIN,
    FLAG_RST,
    FLAG_SYN,
    PcbTable,
    TcpHeader,
    TcpReceiver,
    TcpState,
    seq_add,
    seq_diff,
    seq_le,
    seq_lt,
)

LOCAL = IPv4Address.parse("10.0.0.1")
REMOTE = IPv4Address.parse("10.0.0.9")


class TestSequenceArithmetic:
    def test_wraparound_add(self):
        assert seq_add(0xFFFFFFFF, 1) == 0

    def test_diff_signed(self):
        assert seq_diff(5, 3) == 2
        assert seq_diff(3, 5) == -2

    def test_diff_across_wrap(self):
        assert seq_diff(2, 0xFFFFFFFE) == 4
        assert seq_diff(0xFFFFFFFE, 2) == -4

    def test_ordering_across_wrap(self):
        assert seq_lt(0xFFFFFFF0, 0x10)
        assert not seq_lt(0x10, 0xFFFFFFF0)
        assert seq_le(7, 7)

    @given(a=st.integers(0, 2**32 - 1), delta=st.integers(0, 2**30))
    @settings(max_examples=60, deadline=None)
    def test_add_then_diff(self, a, delta):
        """Property: diff(add(a, d), a) == d for d within half the space."""
        assert seq_diff(seq_add(a, delta), a) == delta


class TestTcpHeader:
    def test_roundtrip(self):
        header = TcpHeader(
            src_port=1234, dst_port=80, seq=111, ack=222, flags=FLAG_ACK,
            window=4096,
        )
        parsed, payload = TcpHeader.parse(header.serialize(b"hello"))
        assert parsed.src_port == 1234
        assert parsed.seq == 111
        assert parsed.window == 4096
        assert payload == b"hello"

    def test_checksum_roundtrip(self):
        header = TcpHeader(src_port=1, dst_port=2, seq=0, ack=0, flags=FLAG_ACK)
        wire = header.serialize(b"data", src=REMOTE, dst=LOCAL)
        parsed, payload = TcpHeader.parse(wire, src=REMOTE, dst=LOCAL, verify=True)
        assert payload == b"data"

    def test_corrupt_checksum_detected(self):
        header = TcpHeader(src_port=1, dst_port=2, seq=0, ack=0, flags=FLAG_ACK)
        wire = bytearray(header.serialize(b"data", src=REMOTE, dst=LOCAL))
        wire[-1] ^= 0x01
        with pytest.raises(ChecksumError):
            TcpHeader.parse(bytes(wire), src=REMOTE, dst=LOCAL, verify=True)

    def test_short_header_rejected(self):
        with pytest.raises(ProtocolError):
            TcpHeader.parse(b"\x00" * 12)

    def test_bad_offset_rejected(self):
        header = TcpHeader(src_port=1, dst_port=2, seq=0, ack=0, flags=0)
        raw = bytearray(header.serialize())
        raw[12] = 2 << 4  # offset 8 bytes < 20
        with pytest.raises(ProtocolError):
            TcpHeader.parse(bytes(raw))

    def test_options_roundtrip(self):
        header = TcpHeader(
            src_port=1, dst_port=2, seq=0, ack=0, flags=FLAG_SYN,
            options=b"\x02\x04\x05\xb4",
        )
        parsed, _ = TcpHeader.parse(header.serialize())
        assert parsed.options == b"\x02\x04\x05\xb4"

    def test_unpadded_options_rejected(self):
        header = TcpHeader(
            src_port=1, dst_port=2, seq=0, ack=0, flags=0, options=b"\x01"
        )
        with pytest.raises(ProtocolError):
            header.serialize()


def handshake(receiver: TcpReceiver, iss: int = 0x9000):
    """Run the client side of a handshake; returns the connection PCB."""
    syn = TcpHeader(src_port=5555, dst_port=80, seq=iss, ack=0, flags=FLAG_SYN)
    result = receiver.segment_arrives(syn, b"", src=REMOTE, dst=LOCAL)
    synack = result.emitted[0]
    assert synack.has(FLAG_SYN) and synack.has(FLAG_ACK)
    ack = TcpHeader(
        src_port=5555, dst_port=80, seq=seq_add(iss, 1),
        ack=seq_add(synack.seq, 1), flags=FLAG_ACK,
    )
    result = receiver.segment_arrives(ack, b"", src=REMOTE, dst=LOCAL)
    assert result.established
    pcb = receiver.table.lookup(LOCAL, 80, REMOTE, 5555)
    assert pcb is not None and pcb.state is TcpState.ESTABLISHED
    return pcb


def data_segment(pcb, payload: bytes, seq: int | None = None) -> TcpHeader:
    return TcpHeader(
        src_port=5555, dst_port=80,
        seq=pcb.rcv_nxt if seq is None else seq,
        ack=pcb.snd_nxt, flags=FLAG_ACK,
    )


class TestHandshake:
    def make(self):
        receiver = TcpReceiver()
        receiver.listen(LOCAL, 80)
        return receiver

    def test_passive_open(self):
        receiver = self.make()
        pcb = handshake(receiver)
        assert pcb.remote_port == 5555

    def test_syn_to_closed_port_gets_rst(self):
        receiver = self.make()
        syn = TcpHeader(src_port=5555, dst_port=81, seq=1, ack=0, flags=FLAG_SYN)
        result = receiver.segment_arrives(syn, b"", src=REMOTE, dst=LOCAL)
        assert result.emitted[0].has(FLAG_RST)
        assert receiver.stats.resets_sent == 1

    def test_rst_is_not_answered(self):
        receiver = self.make()
        rst = TcpHeader(src_port=5555, dst_port=81, seq=1, ack=0, flags=FLAG_RST)
        result = receiver.segment_arrives(rst, b"", src=REMOTE, dst=LOCAL)
        assert result.emitted == []

    def test_non_syn_to_listener_gets_rst(self):
        receiver = self.make()
        ack = TcpHeader(src_port=5555, dst_port=80, seq=1, ack=1, flags=FLAG_ACK)
        result = receiver.segment_arrives(ack, b"", src=REMOTE, dst=LOCAL)
        assert result.emitted[0].has(FLAG_RST)


class TestDataTransfer:
    def make(self):
        receiver = TcpReceiver()
        receiver.listen(LOCAL, 80)
        pcb = handshake(receiver)
        return receiver, pcb

    def test_in_order_delivery(self):
        receiver, pcb = self.make()
        result = receiver.segment_arrives(
            data_segment(pcb, b"hello"), b"hello", src=REMOTE, dst=LOCAL
        )
        assert result.delivered == b"hello"
        assert receiver.stats.fastpath_hits == 1

    def test_ack_every_second_segment(self):
        # "this TCP implementation sends an ACK for every second data
        # packet" — the trace's common case.
        receiver, pcb = self.make()
        acks = 0
        for index in range(6):
            result = receiver.segment_arrives(
                data_segment(pcb, b"x" * 100), b"x" * 100, src=REMOTE, dst=LOCAL
            )
            acks += sum(1 for h in result.emitted if h.flags == FLAG_ACK)
        assert acks == 3
        assert receiver.stats.delayed_acks == 3

    def test_duplicate_segment_reacked(self):
        receiver, pcb = self.make()
        seg = data_segment(pcb, b"abc")
        receiver.segment_arrives(seg, b"abc", src=REMOTE, dst=LOCAL)
        result = receiver.segment_arrives(seg, b"abc", src=REMOTE, dst=LOCAL)
        assert result.delivered == b""
        assert receiver.stats.duplicates == 1
        assert result.emitted and result.emitted[0].has(FLAG_ACK)

    def test_out_of_order_buffered_then_merged(self):
        receiver, pcb = self.make()
        base = pcb.rcv_nxt
        # Segment 2 arrives first.
        ooo = data_segment(pcb, b"22", seq=seq_add(base, 2))
        result = receiver.segment_arrives(ooo, b"22", src=REMOTE, dst=LOCAL)
        assert result.delivered == b""
        assert receiver.stats.out_of_order == 1
        # Now segment 1: both deliver together.
        result = receiver.segment_arrives(
            data_segment(pcb, b"11", seq=base), b"11", src=REMOTE, dst=LOCAL
        )
        assert result.delivered == b"1122"

    def test_ack_carries_rcv_nxt(self):
        receiver, pcb = self.make()
        receiver.segment_arrives(
            data_segment(pcb, b"ab"), b"ab", src=REMOTE, dst=LOCAL
        )
        result = receiver.segment_arrives(
            data_segment(pcb, b"cd"), b"cd", src=REMOTE, dst=LOCAL
        )
        assert result.emitted[0].ack == pcb.rcv_nxt

    def test_force_ack_flushes_delayed(self):
        receiver, pcb = self.make()
        receiver.segment_arrives(
            data_segment(pcb, b"x"), b"x", src=REMOTE, dst=LOCAL
        )
        assert pcb.unacked_segments == 1
        ack = receiver.force_ack(pcb)
        assert ack is not None and ack.ack == pcb.rcv_nxt
        assert receiver.force_ack(pcb) is None


class TestTeardown:
    def test_fin_triggers_fin_ack_and_close(self):
        receiver = TcpReceiver()
        receiver.listen(LOCAL, 80)
        pcb = handshake(receiver)
        fin = TcpHeader(
            src_port=5555, dst_port=80, seq=pcb.rcv_nxt, ack=pcb.snd_nxt,
            flags=FLAG_FIN | FLAG_ACK,
        )
        result = receiver.segment_arrives(fin, b"", src=REMOTE, dst=LOCAL)
        assert any(h.has(FLAG_FIN) for h in result.emitted)
        assert pcb.state is TcpState.LAST_ACK
        last_ack = TcpHeader(
            src_port=5555, dst_port=80, seq=seq_add(fin.seq, 1),
            ack=pcb.snd_nxt, flags=FLAG_ACK,
        )
        result = receiver.segment_arrives(last_ack, b"", src=REMOTE, dst=LOCAL)
        assert result.closed
        assert receiver.table.lookup(LOCAL, 80, REMOTE, 5555).state is TcpState.LISTEN

    def test_rst_tears_down(self):
        receiver = TcpReceiver()
        receiver.listen(LOCAL, 80)
        pcb = handshake(receiver)
        rst = TcpHeader(
            src_port=5555, dst_port=80, seq=pcb.rcv_nxt, ack=0, flags=FLAG_RST
        )
        result = receiver.segment_arrives(rst, b"", src=REMOTE, dst=LOCAL)
        assert result.closed


class TestPcbTable:
    def test_single_entry_cache_hits(self):
        # "TCP is able to use its fastpath, and the single-entry PCB
        # cache hits."
        receiver = TcpReceiver()
        receiver.listen(LOCAL, 80)
        pcb = handshake(receiver)
        before = receiver.table.cache_hits
        for _ in range(5):
            receiver.segment_arrives(
                data_segment(pcb, b"z"), b"z", src=REMOTE, dst=LOCAL
            )
        assert receiver.table.cache_hits >= before + 4

    def test_cache_misses_on_alternating_connections(self):
        receiver = TcpReceiver()
        receiver.listen(LOCAL, 80)
        handshake(receiver)
        table = receiver.table
        other = IPv4Address.parse("10.0.0.88")
        syn = TcpHeader(src_port=7777, dst_port=80, seq=5, ack=0, flags=FLAG_SYN)
        receiver.segment_arrives(syn, b"", src=other, dst=LOCAL)
        a = table.lookup(LOCAL, 80, REMOTE, 5555)
        b = table.lookup(LOCAL, 80, other, 7777)
        misses_before = table.cache_misses
        table.lookup(LOCAL, 80, REMOTE, 5555)
        table.lookup(LOCAL, 80, other, 7777)
        assert table.cache_misses == misses_before + 2
        assert a is not b

    def test_remove_clears_cache(self):
        table = PcbTable()
        receiver = TcpReceiver(table)
        receiver.listen(LOCAL, 80)
        pcb = handshake(receiver)
        table.remove(pcb)
        assert table.lookup(LOCAL, 80, REMOTE, 5555).state is TcpState.LISTEN

    def test_ack_every_validation(self):
        with pytest.raises(ProtocolError):
            TcpReceiver(ack_every=0)
