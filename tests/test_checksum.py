"""Tests for repro.protocols.checksum (Figure 8's subject)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.buffers import MbufChain
from repro.errors import ChecksumError, ConfigurationError
from repro.protocols.checksum import (
    BSD_CKSUM_MODEL,
    SIMPLE_CKSUM_MODEL,
    ChecksumCostModel,
    checksum_chain,
    internet_checksum,
    internet_checksum_unrolled,
    verify_checksum,
)


class TestCorrectness:
    def test_rfc1071_example(self):
        # RFC 1071's worked example: 0001 f203 f4f5 f6f7 -> sum ddf2,
        # checksum = ~ddf2 = 220d.
        data = bytes([0x00, 0x01, 0xF2, 0x03, 0xF4, 0xF5, 0xF6, 0xF7])
        assert internet_checksum(data) == 0x220D

    def test_empty(self):
        assert internet_checksum(b"") == 0xFFFF

    def test_odd_length_pads_right(self):
        # A single byte 0xAB counts as the word 0xAB00.
        assert internet_checksum(bytes([0xAB])) == (~0xAB00) & 0xFFFF

    def test_all_ones_sums_to_zero_checksum(self):
        assert internet_checksum(b"\xff\xff\xff\xff") == 0x0000

    def test_verification_of_stamped_data(self):
        # Appending the checksum makes the whole thing sum to 0.
        data = b"The quick brown fox!"  # even length
        checksum = internet_checksum(data)
        stamped = data + checksum.to_bytes(2, "big")
        assert internet_checksum(stamped) == 0

    def test_verify_checksum_helper(self):
        data = b"hi"
        verify_checksum(data, internet_checksum(data))
        with pytest.raises(ChecksumError):
            verify_checksum(data, 0x1234)

    def test_carry_folding(self):
        # Many 0xFFFF words force repeated carry wraps.
        assert internet_checksum(b"\xff" * 1000) == internet_checksum(b"\xff" * 1000)

    @given(data=st.binary(max_size=2048))
    @settings(max_examples=100, deadline=None)
    def test_simple_equals_unrolled(self, data):
        """Property: both implementations always agree (the paper's two
        routines compute the same function)."""
        assert internet_checksum(data) == internet_checksum_unrolled(data)

    @given(data=st.binary(min_size=2, max_size=512))
    @settings(max_examples=60, deadline=None)
    def test_stamped_verifies(self, data):
        """Property: data + its checksum always verifies to zero."""
        if len(data) % 2:
            data += b"\x00"
        checksum = internet_checksum(data)
        assert internet_checksum(data + checksum.to_bytes(2, "big")) == 0


class TestChainChecksum:
    @given(
        data=st.binary(max_size=1200),
        segment=st.integers(1, 97),
        simple=st.booleans(),
    )
    @settings(max_examples=80, deadline=None)
    def test_chain_matches_flat(self, data, segment, simple):
        """Property: checksumming an mbuf chain with arbitrary (odd!)
        segment boundaries equals checksumming the flat bytes."""
        chain = MbufChain.from_bytes(data, segment_size=segment)
        assert checksum_chain(chain, simple=simple) == internet_checksum(data)

    def test_odd_segment_boundary(self):
        # Regression: a 3-byte first segment leaves the second segment
        # byte-swapped relative to word alignment.
        data = b"abcdefgh"
        chain = MbufChain.from_bytes(data, segment_size=3)
        assert checksum_chain(chain) == internet_checksum(data)

    def test_empty_chain(self):
        chain = MbufChain.from_bytes(b"")
        assert checksum_chain(chain) == 0xFFFF


class TestCostModels:
    def test_paper_footprints(self):
        # Section 5.1: 1104 bytes total, 992 active; simple 288 active.
        assert BSD_CKSUM_MODEL.code_bytes == 1104
        assert BSD_CKSUM_MODEL.active_code_bytes == 992
        assert SIMPLE_CKSUM_MODEL.active_code_bytes == 288

    def test_cold_extra_lines(self):
        assert BSD_CKSUM_MODEL.cold_extra_lines(32) == 31
        assert SIMPLE_CKSUM_MODEL.cold_extra_lines(32) == 9

    def test_warm_cycles_linear(self):
        model = SIMPLE_CKSUM_MODEL
        assert model.warm_cycles(100) == pytest.approx(
            model.setup_cycles + 100 * model.cycles_per_byte
        )

    def test_elaborate_cheaper_per_byte(self):
        assert BSD_CKSUM_MODEL.cycles_per_byte < SIMPLE_CKSUM_MODEL.cycles_per_byte

    def test_invalid_model_rejected(self):
        with pytest.raises(ConfigurationError):
            ChecksumCostModel("bad", 100, 200, 10, 1.0)
        with pytest.raises(ConfigurationError):
            ChecksumCostModel("bad", 100, 100, -1, 1.0)
