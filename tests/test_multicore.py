"""Tests of the multi-core machine, dispatch policies, and sweep.

The two acceptance pins of the multi-core work live here: (1) with one
core, every dispatch policy reproduces the single-core benchmark
bit-identically for every scheduler, and (2) the whole multicore sweep
is byte-identical across harness worker counts and repeat runs.  Plus
the RSS balance property: flow-hash dispatch spreads flows over cores
within a stated bound (each core gets between 0.5x and 1.5x the fair
share once there are at least 32 flows per core).
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.harnesscheck import check_dispatch_coverage
from repro.cache.hierarchy import CacheGeometry, MachineSpec
from repro.core.dispatch import (
    APP_CLASS_KEY,
    DISPATCH_POLICIES,
    FLOW_KEY,
    AppDefinedDispatch,
    FlowHashRSS,
    LDLPAwareDispatch,
    make_dispatch_policy,
    stable_hash,
)
from repro.core.layer import Message
from repro.errors import ConfigurationError
from repro.experiments import multicore as experiment
from repro.harness import ResultCache, run_experiment
from repro.machine.multicore import MultiCoreMachine, MultiCoreSpec
from repro.sim.multicore import (
    MultiCoreConfig,
    MultiCoreRunResult,
    multicore_point,
    run_multicore,
)
from repro.sim.runner import SimulationConfig, run_simulation
from repro.traffic.poisson import PoissonSource

ALL_SCHEDULERS = ("conventional", "ilp", "ldlp", "grouped")


def flow_message(flow: int, app_class: int | None = None) -> Message:
    """A message tagged the way the multi-core runner tags arrivals."""
    message = Message()
    message.meta[FLOW_KEY] = flow
    message.meta[APP_CLASS_KEY] = (
        app_class if app_class is not None else flow % 8
    )
    return message


# ----------------------------------------------------------------------
# Dispatch-policy semantics


class TestDispatchPolicies:
    def test_registry_names_match_policy_names(self):
        for name, factory in DISPATCH_POLICIES.items():
            assert factory().name == name

    def test_unknown_policy_raises(self):
        with pytest.raises(ConfigurationError):
            make_dispatch_policy("round-robin-but-wrong")

    def test_rss_is_per_flow_sticky(self):
        """Every message of one flow lands on the same core."""
        policy = FlowHashRSS()
        for flow in range(50):
            cores = {
                policy.select(flow_message(flow), 4) for _ in range(5)
            }
            assert len(cores) == 1

    def test_rss_matches_stable_hash(self):
        policy = FlowHashRSS()
        assert policy.select(flow_message(17), 8) == stable_hash(17) % 8

    def test_app_rules_table_wins_over_hash(self):
        policy = AppDefinedDispatch(rules={3: 1, 5: 2})
        assert policy.select(flow_message(0, app_class=3), 4) == 1
        assert policy.select(flow_message(0, app_class=5), 4) == 2

    def test_app_falls_back_to_field_hash(self):
        policy = AppDefinedDispatch(rules={3: 1})
        assert policy.select(flow_message(0, app_class=7), 4) == (
            stable_hash(7) % 4
        )

    def test_ldlp_steers_whole_chunks_then_rotates(self):
        policy = LDLPAwareDispatch(chunk=3)
        picks = [policy.select(Message(), 2) for _ in range(9)]
        assert picks == [0, 0, 0, 1, 1, 1, 0, 0, 0]

    def test_ldlp_chunk_must_be_positive(self):
        with pytest.raises(ConfigurationError):
            LDLPAwareDispatch(chunk=0)

    def test_ldlp_recovers_from_shrunk_core_count(self):
        policy = LDLPAwareDispatch(chunk=1)
        policy.select(Message(), 8)
        policy.select(Message(), 8)  # rotated to core 1
        assert policy.select(Message(), 1) == 0

    def test_selects_are_deterministic(self):
        """No policy may draw randomness: same inputs, same core."""
        for name in DISPATCH_POLICIES:
            first = [
                make_dispatch_policy(name).select(flow_message(i), 4)
                for i in range(40)
            ]
            second = [
                make_dispatch_policy(name).select(flow_message(i), 4)
                for i in range(40)
            ]
            assert first == second


class TestRSSBalanceProperty:
    @given(
        cores=st.sampled_from([2, 3, 4, 8]),
        flows_per_core=st.integers(32, 128),
        start=st.integers(0, 10_000),
    )
    @settings(max_examples=30, deadline=None)
    def test_rss_balances_flows_within_bound(
        self, cores, flows_per_core, start
    ):
        """The stated bound: with >= 32 flows per core, every core
        receives between 0.5x and 1.5x the fair share of flows."""
        policy = FlowHashRSS()
        flows = cores * flows_per_core
        counts = [0] * cores
        for flow in range(start, start + flows):
            counts[policy.select(flow_message(flow), cores)] += 1
        fair = flows / cores
        assert min(counts) >= 0.5 * fair
        assert max(counts) <= 1.5 * fair


# ----------------------------------------------------------------------
# Machine topology


class TestMultiCoreSpec:
    def test_core_count_must_be_positive(self):
        with pytest.raises(ConfigurationError):
            MultiCoreSpec(num_cores=0)

    def test_per_core_l2_is_rejected(self):
        spec = MachineSpec(l2=CacheGeometry(size=65536, line_size=32))
        with pytest.raises(ConfigurationError):
            MultiCoreSpec(num_cores=2, core=spec)

    def test_shared_l2_line_size_must_match(self):
        with pytest.raises(ConfigurationError):
            MultiCoreSpec(
                num_cores=2,
                shared_l2=CacheGeometry(size=65536, line_size=64),
            )

    def test_shared_l2_must_cover_primaries(self):
        with pytest.raises(ConfigurationError):
            MultiCoreSpec(
                num_cores=2,
                shared_l2=CacheGeometry(size=4096, line_size=32),
            )

    def test_shared_l2_is_one_instance(self):
        machine = MultiCoreMachine(
            MultiCoreSpec(
                num_cores=3,
                shared_l2=CacheGeometry(size=65536, line_size=32),
            )
        )
        assert machine.shared_l2 is not None
        for cpu in machine.cpus:
            assert cpu.hierarchy.l2 is machine.shared_l2

    def test_per_core_counters_vocabulary(self):
        machine = MultiCoreMachine(MultiCoreSpec(num_cores=2))
        counters = machine.per_core_counters()
        assert len(counters) == 2
        assert set(counters[0]) == {
            "cycles", "stall_cycles", "icache_misses", "dcache_misses",
        }


# ----------------------------------------------------------------------
# Acceptance pin 1: one core == the single-core benchmark, bit for bit


class TestSingleCoreEquivalence:
    @pytest.mark.parametrize("scheduler", ALL_SCHEDULERS)
    @pytest.mark.parametrize("dispatch", sorted(DISPATCH_POLICIES))
    def test_one_core_reproduces_run_simulation(self, scheduler, dispatch):
        base = run_simulation(
            PoissonSource(9000.0, size=552, rng=7),
            SimulationConfig(
                scheduler=scheduler, duration=0.04, engine="scalar"
            ),
            seed=7,
        )
        multi = run_multicore(
            PoissonSource(9000.0, size=552, rng=7),
            MultiCoreConfig(
                scheduler=scheduler,
                dispatch=dispatch,
                num_cores=1,
                duration=0.04,
            ),
            seed=7,
        )
        assert multi.aggregate.to_dict() == base.to_dict()


# ----------------------------------------------------------------------
# Multi-core behaviour


class TestMultiCoreRun:
    def test_messages_conserved_across_dispatch(self):
        for dispatch in DISPATCH_POLICIES:
            point = multicore_point(
                "ldlp", dispatch, 3, 12000.0, [0], 0.03
            )
            assert point["conservation_violations"] == 0
            aggregate = point["result"]["aggregate"]
            assert aggregate["offered"] == (
                aggregate["completed"] + aggregate["dropped"]
            )

    def test_per_core_counts_sum_to_aggregate(self):
        result = run_multicore(
            PoissonSource(12000.0, size=552, rng=1),
            MultiCoreConfig(scheduler="ldlp", dispatch="rss", num_cores=4,
                            duration=0.03),
            seed=1,
        )
        assert sum(c.completed for c in result.cores) == (
            result.aggregate.completed
        )
        assert sum(c.dispatched for c in result.cores) == (
            result.aggregate.offered
        )
        assert sum(c.drops for c in result.cores) == result.aggregate.dropped

    def test_ldlp_dispatch_beats_rss_on_imisses_at_4_cores(self):
        """The locality claim: chunked steering keeps layer code
        resident, so LDLP-aware dispatch misses less than RSS."""
        rss = multicore_point("ldlp", "rss", 4, 12000.0, [0, 1], 0.04)
        ldlp = multicore_point("ldlp", "ldlp", 4, 12000.0, [0, 1], 0.04)
        rss_imiss = rss["result"]["aggregate"]["misses"]["instruction"]
        ldlp_imiss = ldlp["result"]["aggregate"]["misses"]["instruction"]
        assert ldlp_imiss < rss_imiss

    def test_result_dict_roundtrip(self):
        result = run_multicore(
            PoissonSource(9000.0, size=552, rng=0),
            MultiCoreConfig(num_cores=2, duration=0.02),
            seed=0,
        )
        rebuilt = MultiCoreRunResult.from_dict(result.to_dict())
        assert rebuilt.to_dict() == result.to_dict()

    def test_config_validation(self):
        with pytest.raises(ConfigurationError):
            MultiCoreConfig(dispatch="nope")
        with pytest.raises(ConfigurationError):
            MultiCoreConfig(num_cores=0)
        with pytest.raises(ConfigurationError):
            MultiCoreConfig(num_flows=0)


# ----------------------------------------------------------------------
# Acceptance pin 2: byte-identical across --jobs and repeat runs


class TestSweepDeterminism:
    def tiny_spec(self):
        """The real multicore sweep shrunk to stay fast under pytest."""
        from repro.harness.points import SweepPoint, SweepSpec

        def points(scale: str) -> list[SweepPoint]:
            del scale
            return [
                SweepPoint(
                    experiment="tinymulticore",
                    key=f"{dispatch}/cores={cores}",
                    func="repro.sim.multicore:multicore_point",
                    params={
                        "scheduler": "ldlp",
                        "dispatch": dispatch,
                        "cores": cores,
                        "rate": 12000.0,
                        "seeds": [0, 1],
                        "duration": 0.02,
                    },
                )
                for dispatch in sorted(DISPATCH_POLICIES)
                for cores in (1, 2)
            ]

        return SweepSpec(
            name="tinymulticore",
            points=points,
            quantities=lambda points, results: {},
            sources=("repro.sim", "repro.core", "repro.machine"),
        )

    def test_every_policy_identical_across_jobs(self, tmp_path):
        spec = self.tiny_spec()
        serial = run_experiment(spec, jobs=1, cache=ResultCache(tmp_path / "a"))
        parallel = run_experiment(spec, jobs=2, cache=ResultCache(tmp_path / "b"))
        assert serial.results_json() == parallel.results_json()

    def test_point_repeats_byte_identically(self):
        import json

        first = multicore_point("grouped", "app", 2, 12000.0, [0, 1], 0.02)
        second = multicore_point("grouped", "app", 2, 12000.0, [0, 1], 0.02)
        assert json.dumps(first, sort_keys=True) == json.dumps(
            second, sort_keys=True
        )

    def test_different_seeds_differ(self):
        first = multicore_point("ldlp", "rss", 2, 12000.0, [0], 0.02)
        second = multicore_point("ldlp", "rss", 2, 12000.0, [5], 0.02)
        assert first["result"] != second["result"]


# ----------------------------------------------------------------------
# Experiment declaration and the HARN002 coverage rule


class TestExperimentSweep:
    def test_ci_sweep_exercises_every_policy(self):
        points = experiment.sweep_points("ci")
        exercised = {point.params["dispatch"] for point in points}
        assert exercised == set(DISPATCH_POLICIES)

    def test_ci_sweep_reaches_four_cores(self):
        """The acceptance pin needs >= 4 cores in the golden record."""
        points = experiment.sweep_points("ci")
        assert max(point.params["cores"] for point in points) >= 4

    def test_golden_quantities_pin_the_locality_ratio(self):
        points = experiment.sweep_points("ci")
        results = {
            point.key: multicore_point(
                **{**point.params, "seeds": [0], "duration": 0.02}
            )
            for point in points
        }
        quantities = experiment.golden_quantities(points, results)
        assert quantities["conservation_violations"] == 0.0
        # The locality win needs a batching scheduler: LDLP batches the
        # chunks the dispatcher steers; conventional processes messages
        # one at a time, so steering cannot change its miss rate.
        assert quantities["ldlp/ldlp_vs_rss_imiss"] < 1.0
        assert quantities["conventional/ldlp_vs_rss_imiss"] == (
            pytest.approx(1.0, rel=0.05)
        )

    def test_assemble_and_render(self):
        points = experiment.sweep_points("ci")[:2]
        results = {
            point.key: multicore_point(
                **{**point.params, "seeds": [0], "duration": 0.02}
            )
            for point in points
        }
        table = experiment.assemble(points, results).render()
        assert "dispatch" in table and "cores" in table

    def test_harn002_clean_on_shipped_registry(self):
        assert check_dispatch_coverage() == []

    def test_harn002_flags_unexercised_policy(self, monkeypatch):
        import repro.core.dispatch as dispatch_module

        monkeypatch.setitem(
            dispatch_module.DISPATCH_POLICIES, "phantom", FlowHashRSS
        )
        findings = check_dispatch_coverage()
        assert len(findings) == 1
        assert findings[0].rule_id == "HARN002"
        assert findings[0].details["policy"] == "phantom"
