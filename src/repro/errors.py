"""Exception hierarchy for the repro package.

Every error raised by this library derives from :class:`ReproError` so
callers can catch library failures with a single ``except`` clause while
letting programming errors (``TypeError`` etc.) propagate.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro package."""


class ConfigurationError(ReproError):
    """A component was constructed with invalid or inconsistent parameters.

    Examples: a cache whose size is not a multiple of its line size, a
    negative miss penalty, a traffic source with a non-positive rate.
    """


class LayoutError(ReproError):
    """Code or data regions could not be placed in the memory layout."""


class TraceError(ReproError):
    """A memory trace is malformed or cannot be parsed."""


class ProtocolError(ReproError):
    """A packet failed protocol-level validation.

    Raised when parsing malformed frames, when checksums do not verify,
    or when a protocol state machine receives an inadmissible message.
    """


class ChecksumError(ProtocolError):
    """A checksum did not verify."""


class BufferError_(ReproError):
    """An mbuf operation was invalid (out of range adjust, empty chain...).

    Named with a trailing underscore to avoid shadowing the builtin
    ``BufferError``; exported as ``MbufError`` from :mod:`repro.buffers`.
    """


class SchedulerError(ReproError):
    """A layer-processing scheduler was driven incorrectly.

    Examples: registering two layers with the same priority in a stack
    that requires a total order, or running a scheduler with no layers.
    """


class GroupingError(SchedulerError):
    """Layer groups do not form an ordered partition of the stack.

    Carries the offending layer indices so tooling (and error messages)
    can say exactly *which* layers overlap, are unreachable, or would
    complete out of order, instead of a bare assertion.
    """

    def __init__(
        self,
        message: str,
        *,
        overlapping: tuple[int, ...] = (),
        missing: tuple[int, ...] = (),
        out_of_range: tuple[int, ...] = (),
        misordered: tuple[int, ...] = (),
        empty_groups: tuple[int, ...] = (),
    ) -> None:
        super().__init__(message)
        self.overlapping = overlapping
        self.missing = missing
        self.out_of_range = out_of_range
        self.misordered = misordered
        self.empty_groups = empty_groups


class SimulationError(ReproError):
    """The discrete-event simulation reached an inconsistent state."""


class ObsError(ReproError):
    """An observability artifact violates the documented obs schema.

    Raised by :mod:`repro.obs.schema` validators when a sink payload
    (Chrome trace, metrics JSON) is malformed, and by sinks driven with
    inconsistent recorder state (e.g. a span ended on an unknown track).
    """


class SignallingError(ProtocolError):
    """A signalling (mini-Q.93B) protocol violation."""


class WireError(ProtocolError):
    """A gossip wire-format message is malformed or cannot be framed.

    Raised by :mod:`repro.gossip.wire` when encoding is asked for an
    unknown message kind or framing mode, when a collection element
    exceeds the 16-bit length field, or when decoding runs off the end
    of a datagram.
    """
