"""Unit helpers: byte sizes, frequencies, and cycle/time conversion.

The simulations in this package keep time in *CPU cycles* internally and
convert to seconds only at reporting boundaries.  These helpers make the
conversions explicit and keep magic numbers out of the simulation code.
"""

from __future__ import annotations

from dataclasses import dataclass

from .errors import ConfigurationError

#: Number of bytes in a kibibyte.  The paper writes "8 KB caches" meaning
#: 8192 bytes; we follow that convention throughout.
KB = 1024

#: One megahertz, in hertz.
MHZ = 1_000_000


def kb(n: float) -> int:
    """Return ``n`` kibibytes as an integer byte count.

    >>> kb(8)
    8192
    """
    return int(n * KB)


def mhz(n: float) -> float:
    """Return ``n`` megahertz in hertz.

    >>> mhz(100)
    100000000.0
    """
    return float(n) * MHZ


@dataclass(frozen=True)
class Clock:
    """A CPU clock used to convert between cycles and seconds.

    Parameters
    ----------
    hz:
        Clock frequency in hertz.  Must be positive.
    """

    hz: float

    def __post_init__(self) -> None:
        if self.hz <= 0:
            raise ConfigurationError(f"clock frequency must be positive, got {self.hz}")

    def cycles_to_seconds(self, cycles: float) -> float:
        """Convert a cycle count to seconds."""
        return cycles / self.hz

    def seconds_to_cycles(self, seconds: float) -> float:
        """Convert seconds to (fractional) cycles."""
        return seconds * self.hz

    def cycles_to_us(self, cycles: float) -> float:
        """Convert a cycle count to microseconds."""
        return self.cycles_to_seconds(cycles) * 1e6


def format_bytes(n: int) -> str:
    """Render a byte count the way the paper does (``30 KB``, ``552 B``).

    >>> format_bytes(8192)
    '8 KB'
    >>> format_bytes(552)
    '552 B'
    """
    if n >= KB and n % KB == 0:
        return f"{n // KB} KB"
    if n >= 10 * KB:
        return f"{n / KB:.1f} KB"
    return f"{n} B"


def format_duration(seconds: float) -> str:
    """Render a duration with the unit the paper's figures use.

    >>> format_duration(0.000_1)
    '100.0 us'
    >>> format_duration(0.01)
    '10.0 ms'
    """
    if seconds < 0:
        raise ConfigurationError(f"duration must be non-negative, got {seconds}")
    if seconds < 1e-3:
        return f"{seconds * 1e6:.1f} us"
    if seconds < 1.0:
        return f"{seconds * 1e3:.1f} ms"
    return f"{seconds:.3f} s"
