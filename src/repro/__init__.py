"""repro — reproduction of Blackwell, "Speeding up Protocols for Small
Messages" (SIGCOMM 1996).

The package implements locality-driven layer processing (LDLP) — the
paper's contribution — together with every substrate the paper's
evaluation depends on: a cache simulator, memory-trace tooling,
working-set analysis, a byte-level protocol stack with mbuf buffers, a
discrete-event load simulator, and synthetic traffic sources.

Quickstart::

    from repro import ldlp_vs_conventional
    result = ldlp_vs_conventional(arrival_rate=8000.0, seed=1)
    print(result.summary())

See ``examples/`` for runnable scenarios and ``repro.experiments`` for
the per-table/per-figure reproduction harnesses.
"""

from .errors import ReproError
from .version import __version__

__all__ = ["ReproError", "__version__", "ldlp_vs_conventional"]


def ldlp_vs_conventional(*args, **kwargs):
    """Compare LDLP against conventional scheduling on the paper's
    synthetic five-layer stack.  Thin convenience wrapper; see
    :func:`repro.sim.runner.compare_schedulers` for parameters."""
    from .sim.runner import compare_schedulers

    return compare_schedulers(*args, **kwargs)
