"""Layer classification of trace references (the taxonomy of Table 1).

Code is classified into layers by a function→layer map.  Data is
classified by *first touch*: a cache line belongs to whichever layer's
function referenced it first during the trace, exactly as the paper
describes ("data is classified based on the function executing when it
was first accessed during the trace").
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Mapping

from .record import MemRef

#: Layer name used when a reference cannot be attributed.
UNCLASSIFIED = "unclassified"


@dataclass
class LayerClassifier:
    """Maps references to protocol-stack layers.

    Parameters
    ----------
    fn_to_layer:
        Mapping from function name to layer name.  Functions absent from
        the map classify as :data:`UNCLASSIFIED`.
    """

    fn_to_layer: Mapping[str, str] = field(default_factory=dict)

    def layer_of_fn(self, fn: str | None) -> str:
        if fn is None:
            return UNCLASSIFIED
        return self.fn_to_layer.get(fn, UNCLASSIFIED)

    def layer_of(self, ref: MemRef) -> str:
        """Classify a single reference by its executing function."""
        return self.layer_of_fn(ref.fn)

    def layers(self) -> list[str]:
        """All layer names in the map, in first-appearance order."""
        seen: dict[str, None] = {}
        for layer in self.fn_to_layer.values():
            seen.setdefault(layer)
        return list(seen)


class FirstTouchAttributor:
    """Attributes data atoms (small aligned chunks) to layers by first touch.

    The attribution granularity is the *classification* line size used by
    the paper (32 bytes): whichever layer first touches any byte of a
    32-byte-aligned chunk owns the whole chunk.
    """

    def __init__(self, classifier: LayerClassifier, chunk_size: int = 32) -> None:
        self.classifier = classifier
        self.chunk_size = chunk_size
        self._owner: dict[int, str] = {}

    def observe(self, ref: MemRef) -> None:
        """Record first-touch ownership for a data reference."""
        layer = self.classifier.layer_of(ref)
        first = ref.addr // self.chunk_size
        last = (ref.end - 1) // self.chunk_size
        for chunk in range(first, last + 1):
            self._owner.setdefault(chunk, layer)

    def observe_all(self, refs: Iterable[MemRef]) -> None:
        for ref in refs:
            if not ref.is_code():
                self.observe(ref)

    def owner_of_addr(self, addr: int) -> str:
        """Layer owning the chunk containing ``addr``."""
        return self._owner.get(addr // self.chunk_size, UNCLASSIFIED)

    def owners(self) -> dict[int, str]:
        """Chunk-number → layer map (copy)."""
        return dict(self._owner)
