"""Text serialization of traces.

Format, one record per line:

* ``C|R|W <addr> <size> [fn]`` — a memory reference (hex address);
* ``# phase <label>`` — phase marker;
* ``> <fn>`` / ``< <fn>`` — call / return events;
* blank lines and lines starting with ``;`` are ignored.

The format is deliberately line-oriented and greppable, in the spirit of
the paper's "several programs were used to combine and analyze the
individual traces".
"""

from __future__ import annotations

from pathlib import Path
from typing import Iterable, TextIO

from ..errors import TraceError
from .buffer import CallEvent, PhaseMark, TraceBuffer
from .record import MemRef, RefKind


def dump_trace(trace: TraceBuffer, stream: TextIO) -> None:
    """Write a trace to an open text stream."""
    phase_iter = iter(trace.phase_marks)
    call_iter = iter(trace.call_events)
    next_phase = next(phase_iter, None)
    next_call = next(call_iter, None)
    for index, ref in enumerate(trace.refs):
        while next_phase is not None and next_phase.index == index:
            stream.write(f"# phase {next_phase.label}\n")
            next_phase = next(phase_iter, None)
        while next_call is not None and next_call.index == index:
            marker = ">" if next_call.enter else "<"
            stream.write(f"{marker} {next_call.fn}\n")
            next_call = next(call_iter, None)
        fn = f" {ref.fn}" if ref.fn is not None else ""
        stream.write(f"{ref.kind.value} {ref.addr:#x} {ref.size}{fn}\n")
    # Trailing annotations at end-of-trace.
    while next_phase is not None:
        stream.write(f"# phase {next_phase.label}\n")
        next_phase = next(phase_iter, None)
    while next_call is not None:
        marker = ">" if next_call.enter else "<"
        stream.write(f"{marker} {next_call.fn}\n")
        next_call = next(call_iter, None)


def save_trace(trace: TraceBuffer, path: str | Path) -> None:
    """Write a trace to ``path``."""
    with open(path, "w", encoding="ascii") as stream:
        dump_trace(trace, stream)


def parse_trace(lines: Iterable[str]) -> TraceBuffer:
    """Parse a trace from an iterable of text lines."""
    trace = TraceBuffer()
    for lineno, raw in enumerate(lines, start=1):
        line = raw.strip()
        if not line or line.startswith(";"):
            continue
        try:
            trace_line(trace, line)
        except TraceError:
            raise
        except (ValueError, IndexError) as exc:
            raise TraceError(f"line {lineno}: cannot parse {line!r}") from exc
    return trace


def trace_line(trace: TraceBuffer, line: str) -> None:
    """Apply one parsed trace line to a buffer."""
    if line.startswith("# phase "):
        trace.phase_marks.append(PhaseMark(len(trace.refs), line[len("# phase "):]))
        return
    if line.startswith("> "):
        trace.call_events.append(CallEvent(len(trace.refs), line[2:], enter=True))
        return
    if line.startswith("< "):
        trace.call_events.append(CallEvent(len(trace.refs), line[2:], enter=False))
        return
    fields = line.split()
    if len(fields) not in (3, 4):
        raise TraceError(f"malformed reference line {line!r}")
    kind = RefKind.from_letter(fields[0])
    addr = int(fields[1], 0)
    size = int(fields[2])
    fn = fields[3] if len(fields) == 4 else None
    trace.refs.append(MemRef(kind, addr, size, fn))


def load_trace(path: str | Path) -> TraceBuffer:
    """Read a trace from ``path``."""
    with open(path, "r", encoding="ascii") as stream:
        return parse_trace(stream)
