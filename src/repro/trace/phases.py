"""Per-phase trace statistics (the totals printed under Figure 1).

For each phase of a trace, Figure 1 reports, separately for writes,
reads, and code: the number of distinct bytes touched (line-aggregated)
and the raw number of references.
"""

from __future__ import annotations

from dataclasses import dataclass

from .buffer import TraceBuffer
from .record import MemRef, RefKind


@dataclass(frozen=True)
class KindTotals:
    """Distinct bytes (line-aggregated) and raw reference count."""

    bytes: int
    refs: int


@dataclass(frozen=True)
class PhaseStats:
    """Figure-1-style totals for one trace phase."""

    label: str
    write: KindTotals
    read: KindTotals
    code: KindTotals

    def format(self) -> str:
        """Render in the layout the paper prints under each column."""
        return (
            f"{self.label}:\n"
            f"  Write: {self.write.bytes} bytes {self.write.refs} refs\n"
            f"  Read: {self.read.bytes} bytes {self.read.refs} refs\n"
            f"  Code: {self.code.bytes} bytes {self.code.refs} refs"
        )


def _totals(refs: list[MemRef], kind: RefKind, line_size: int) -> KindTotals:
    lines: set[int] = set()
    count = 0
    for ref in refs:
        if ref.kind is not kind:
            continue
        count += 1
        first = ref.addr // line_size
        last = (ref.end - 1) // line_size
        lines.update(range(first, last + 1))
    return KindTotals(bytes=len(lines) * line_size, refs=count)


def phase_stats(trace: TraceBuffer, line_size: int = 32) -> list[PhaseStats]:
    """Compute Figure-1-style per-phase totals for every phase of a trace."""
    result = []
    for label, sl in trace.phase_slices():
        refs = trace.refs[sl]
        result.append(
            PhaseStats(
                label=label,
                write=_totals(refs, RefKind.WRITE, line_size),
                read=_totals(refs, RefKind.READ, line_size),
                code=_totals(refs, RefKind.CODE, line_size),
            )
        )
    return result
