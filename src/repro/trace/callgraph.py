"""Procedure call-graph extraction from traces.

The paper notes its tracing system "can also produce a procedure call
graph [and] has been generally useful in understanding control flow in
the kernel".  This module rebuilds that capability from the call/return
events recorded in a :class:`~repro.trace.buffer.TraceBuffer`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import networkx as nx

from ..errors import TraceError
from .buffer import TraceBuffer


@dataclass
class CallGraph:
    """A directed call graph with call-count edge weights.

    Attributes
    ----------
    graph:
        ``networkx.DiGraph`` whose nodes are function names; edge
        ``(a, b)`` carries attribute ``calls`` — how many times ``a``
        called ``b`` in the trace.
    roots:
        Functions entered with an empty call stack (trace entry points).
    """

    graph: nx.DiGraph = field(default_factory=nx.DiGraph)
    roots: list[str] = field(default_factory=list)

    def call_count(self, caller: str, callee: str) -> int:
        """Number of recorded ``caller`` → ``callee`` calls (0 if none)."""
        if not self.graph.has_edge(caller, callee):
            return 0
        return self.graph.edges[caller, callee]["calls"]

    def callees(self, fn: str) -> list[str]:
        """Functions called directly by ``fn``, sorted by call count."""
        if fn not in self.graph:
            return []
        return sorted(
            self.graph.successors(fn),
            key=lambda callee: -self.call_count(fn, callee),
        )

    def transitive_callees(self, fn: str) -> set[str]:
        """Every function reachable from ``fn`` (excluding ``fn`` itself)."""
        if fn not in self.graph:
            return set()
        return set(nx.descendants(self.graph, fn))

    def format(self, root: str | None = None, _depth: int = 0) -> str:
        """Render as an indented tree (cycles cut at repeats)."""
        lines: list[str] = []
        starts = [root] if root is not None else self.roots
        for start in starts:
            self._format_into(start, lines, indent=0, path=set())
        return "\n".join(lines)

    def _format_into(
        self, fn: str, lines: list[str], indent: int, path: set[str]
    ) -> None:
        suffix = " (recursive)" if fn in path else ""
        lines.append("  " * indent + fn + suffix)
        if suffix:
            return
        for callee in self.callees(fn):
            self._format_into(callee, lines, indent + 1, path | {fn})


def build_call_graph(trace: TraceBuffer) -> CallGraph:
    """Build a :class:`CallGraph` from a trace's call/return events."""
    result = CallGraph()
    stack: list[str] = []
    for event in trace.call_events:
        if event.enter:
            if stack:
                caller = stack[-1]
                if result.graph.has_edge(caller, event.fn):
                    result.graph.edges[caller, event.fn]["calls"] += 1
                else:
                    result.graph.add_edge(caller, event.fn, calls=1)
            else:
                result.graph.add_node(event.fn)
                if event.fn not in result.roots:
                    result.roots.append(event.fn)
            stack.append(event.fn)
        else:
            if not stack:
                raise TraceError(f"return from {event.fn!r} with empty stack")
            top = stack.pop()
            if top != event.fn:
                raise TraceError(
                    f"mismatched return: entered {top!r}, returned {event.fn!r}"
                )
    return result
