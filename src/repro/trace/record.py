"""Memory-reference records — the atoms of a trace.

The paper's tracing apparatus (Section 2.2) simulates Alpha instructions
and logs every memory reference to a trace buffer.  Our traces are
streams of :class:`MemRef` records carrying the same information the
analysis needs: what kind of access, where, how wide, and which function
was executing (used for layer classification, Table 1).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from ..errors import TraceError


class RefKind(enum.Enum):
    """The kind of memory reference."""

    #: Instruction fetch.
    CODE = "C"
    #: Data load.
    READ = "R"
    #: Data store.
    WRITE = "W"

    @classmethod
    def from_letter(cls, letter: str) -> "RefKind":
        """Parse the single-letter encoding used by the trace file format."""
        for kind in cls:
            if kind.value == letter:
                return kind
        raise TraceError(f"unknown reference kind {letter!r}")


@dataclass(frozen=True, slots=True)
class MemRef:
    """One memory reference.

    Attributes
    ----------
    kind:
        Instruction fetch, data read, or data write.
    addr:
        Byte address of the first byte referenced.
    size:
        Number of bytes referenced (4 for an Alpha instruction fetch;
        1..8 for typical data accesses; larger for modelled block moves).
    fn:
        Name of the function executing when the reference occurred, or
        ``None`` when unknown.  Data references are attributed to layers
        through this field (first-touch attribution, Table 1).
    """

    kind: RefKind
    addr: int
    size: int = 4
    fn: str | None = None

    def __post_init__(self) -> None:
        if self.addr < 0:
            raise TraceError(f"reference address must be non-negative, got {self.addr}")
        if self.size <= 0:
            raise TraceError(f"reference size must be positive, got {self.size}")

    @property
    def end(self) -> int:
        """One past the last byte referenced."""
        return self.addr + self.size

    def is_code(self) -> bool:
        return self.kind is RefKind.CODE

    def is_write(self) -> bool:
        return self.kind is RefKind.WRITE


def code_ref(addr: int, size: int = 4, fn: str | None = None) -> MemRef:
    """Convenience constructor for an instruction fetch."""
    return MemRef(RefKind.CODE, addr, size, fn)


def read_ref(addr: int, size: int = 4, fn: str | None = None) -> MemRef:
    """Convenience constructor for a data load."""
    return MemRef(RefKind.READ, addr, size, fn)


def write_ref(addr: int, size: int = 4, fn: str | None = None) -> MemRef:
    """Convenience constructor for a data store."""
    return MemRef(RefKind.WRITE, addr, size, fn)
