"""``python -m repro.trace.cli`` — analyze saved trace files.

The paper's tracing apparatus came with "several programs used to
combine and analyze the individual traces"; this is ours.  Given a
trace in the text format of :mod:`repro.trace.io`, it prints the
working-set breakdown, per-phase totals, the line-size sensitivity
table, and optionally the call graph.
"""

from __future__ import annotations

import argparse
import sys

from ..cache.workingset import Category, WorkingSetAnalyzer
from .callgraph import build_call_graph
from .classify import LayerClassifier
from .io import load_trace
from .phases import phase_stats


def analyze(path: str, callgraph: bool = False, line_sizes: bool = False) -> str:
    """Produce the full text report for one trace file."""
    trace = load_trace(path)
    sections: list[str] = [f"trace: {path} ({len(trace.refs)} references)"]

    analyzer = WorkingSetAnalyzer(LayerClassifier())
    analyzer.consume(trace.refs)
    totals = analyzer.totals_at(32)
    sections.append(
        "working set (32-byte lines): "
        + ", ".join(
            f"{category.value} {count.bytes} B / {count.lines} lines"
            for category, count in totals.items()
        )
    )

    phases = phase_stats(trace)
    if phases:
        sections.append("phases:")
        for phase in phases:
            sections.append("  " + phase.format().replace("\n", "\n  "))

    if line_sizes:
        table = analyzer.line_size_table()
        sections.append("line-size sensitivity (vs 32 B):")
        for row in table.rows:
            cells = []
            for category in Category:
                delta = row.deltas[category]
                cells.append(
                    f"{category.value}: "
                    + (delta.format() if delta else "N/A")
                )
            sections.append(f"  {row.line_size:>3} B  " + "  ".join(cells))

    if callgraph and trace.call_events:
        graph = build_call_graph(trace)
        sections.append("call graph:")
        sections.append(graph.format())

    return "\n".join(sections)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-trace",
        description="Analyze a saved memory trace (repro.trace text format).",
    )
    parser.add_argument("trace", help="path to the trace file")
    parser.add_argument(
        "--callgraph", action="store_true", help="print the procedure call graph"
    )
    parser.add_argument(
        "--line-sizes",
        action="store_true",
        help="print the Table-3-style line-size sensitivity",
    )
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    print(analyze(args.trace, callgraph=args.callgraph, line_sizes=args.line_sizes))
    return 0


if __name__ == "__main__":
    sys.exit(main())
