"""Memory-trace infrastructure: records, buffers, analysis, and I/O.

This package rebuilds the paper's tracing apparatus (Section 2.2) as a
library: traces are streams of :class:`MemRef` records collected in a
:class:`TraceBuffer`, segmented into phases, classified into layers, and
serialized to a greppable text format.
"""

from .buffer import CallEvent, PhaseMark, TraceBuffer
from .callgraph import CallGraph, build_call_graph
from .classify import UNCLASSIFIED, FirstTouchAttributor, LayerClassifier
from .io import dump_trace, load_trace, parse_trace, save_trace
from .phases import KindTotals, PhaseStats, phase_stats
from .record import MemRef, RefKind, code_ref, read_ref, write_ref

__all__ = [
    "CallEvent",
    "CallGraph",
    "FirstTouchAttributor",
    "KindTotals",
    "LayerClassifier",
    "MemRef",
    "PhaseMark",
    "PhaseStats",
    "RefKind",
    "TraceBuffer",
    "UNCLASSIFIED",
    "build_call_graph",
    "code_ref",
    "dump_trace",
    "load_trace",
    "parse_trace",
    "phase_stats",
    "read_ref",
    "save_trace",
    "write_ref",
]
