"""The trace buffer: an append-only log of references plus annotations.

Mirrors the kernel trace buffer of Section 2.2: the instruction
simulator appends references as they happen; phase markers and
call/return events are interleaved so the analysis tools can segment the
trace (Table 2 / Figure 1 phases) and recover the procedure call graph.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator

from ..errors import TraceError
from .record import MemRef, RefKind


@dataclass(frozen=True, slots=True)
class PhaseMark:
    """Marks the start of a named trace phase at a reference index."""

    index: int
    label: str


@dataclass(frozen=True, slots=True)
class CallEvent:
    """A procedure call (``enter=True``) or return at a reference index."""

    index: int
    fn: str
    enter: bool


class TraceBuffer:
    """An in-memory trace: references, phase marks, and call events.

    The buffer enforces that annotation indices are monotone (they refer
    to positions in the reference stream as it is appended).
    """

    def __init__(self) -> None:
        self.refs: list[MemRef] = []
        self.phase_marks: list[PhaseMark] = []
        self.call_events: list[CallEvent] = []
        self._fn_stack: list[str] = []

    def __len__(self) -> int:
        return len(self.refs)

    def __iter__(self) -> Iterator[MemRef]:
        return iter(self.refs)

    @property
    def current_fn(self) -> str | None:
        """Function on top of the call stack, or None outside any call."""
        return self._fn_stack[-1] if self._fn_stack else None

    def append(self, ref: MemRef) -> None:
        """Append one reference.

        If the reference has no function attribution, the current call
        stack top is attached (the tracer knows who is executing).
        """
        if ref.fn is None and self._fn_stack:
            ref = MemRef(ref.kind, ref.addr, ref.size, self._fn_stack[-1])
        self.refs.append(ref)

    def extend(self, refs: Iterable[MemRef]) -> None:
        for ref in refs:
            self.append(ref)

    def record(self, kind: RefKind, addr: int, size: int = 4) -> None:
        """Append a reference built in place (hot-path convenience)."""
        self.append(MemRef(kind, addr, size))

    def mark_phase(self, label: str) -> None:
        """Start a new phase at the current position."""
        if self.phase_marks and self.phase_marks[-1].index == len(self.refs):
            raise TraceError(
                f"phase {self.phase_marks[-1].label!r} would be empty; "
                f"refusing to mark {label!r} at the same position"
            )
        self.phase_marks.append(PhaseMark(len(self.refs), label))

    def enter(self, fn: str) -> None:
        """Record entry into function ``fn``."""
        self.call_events.append(CallEvent(len(self.refs), fn, enter=True))
        self._fn_stack.append(fn)

    def leave(self) -> None:
        """Record return from the current function."""
        if not self._fn_stack:
            raise TraceError("return with empty call stack")
        fn = self._fn_stack.pop()
        self.call_events.append(CallEvent(len(self.refs), fn, enter=False))

    def phase_slices(self) -> list[tuple[str, slice]]:
        """Return (label, slice) pairs covering the reference stream.

        References before the first mark belong to an implicit
        ``"prelude"`` phase, which is omitted when empty.
        """
        result: list[tuple[str, slice]] = []
        if not self.phase_marks:
            if self.refs:
                result.append(("prelude", slice(0, len(self.refs))))
            return result
        first = self.phase_marks[0].index
        if first > 0:
            result.append(("prelude", slice(0, first)))
        for i, mark in enumerate(self.phase_marks):
            end = (
                self.phase_marks[i + 1].index
                if i + 1 < len(self.phase_marks)
                else len(self.refs)
            )
            result.append((mark.label, slice(mark.index, end)))
        return result

    def refs_in_phase(self, label: str) -> list[MemRef]:
        """Return all references in the named phase (first occurrence)."""
        for name, sl in self.phase_slices():
            if name == label:
                return self.refs[sl]
        raise TraceError(f"no phase named {label!r} in trace")
