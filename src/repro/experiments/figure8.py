"""Experiment F8 — Figure 8: cache effects in checksum routines.

Compares the elaborate 4.4BSD ``in_cksum`` (992 bytes of active code)
against the simple routine (288 bytes) over message sizes 0..1000, with
warm and cold instruction caches, using the DEC 3000/400 cost model
(10-cycle primary-miss penalty).  The cold costs are produced by
actually running the routines' code footprints through the cache
simulator, not by closed-form arithmetic.

Expected shape: warm — the elaborate routine wins at nearly all sizes;
cold — the simple routine wins up to ~900 bytes; cold-start intercepts
near 426 (4.4BSD) and 176 (simple) cycles.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from ..machine.cpu import CPU
from ..cache.hierarchy import DEC3000_400
from ..harness.points import SweepPoint, SweepSpec, Tolerance
from ..machine.layout import MemoryLayout
from ..machine.program import Region, RegionKind
from ..protocols.checksum import (
    BSD_CKSUM_MODEL,
    SIMPLE_CKSUM_MODEL,
    ChecksumCostModel,
)
from .report import render_table

PAPER_SIZES = tuple(range(0, 1001, 50))

#: Figure 8's annotated cold-start costs.
PAPER_BSD_COLD_INTERCEPT = 426.0
PAPER_SIMPLE_COLD_INTERCEPT = 176.0
PAPER_COLD_CROSSOVER = 900.0


def checksum_cycles(
    model: ChecksumCostModel,
    message_bytes: int,
    cold: bool,
    spec=DEC3000_400,
) -> float:
    """Cycle cost of one checksum call under the machine model.

    The routine's active code is swept through the instruction cache
    (flushed first when ``cold``); data is assumed cached, as in the
    paper's measurement ("the data being checksummed was in the cache
    in all cases").
    """
    cpu = CPU(spec)
    layout = MemoryLayout(line_size=spec.icache.line_size, rng=0)
    region = Region(model.name, model.active_code_bytes, RegionKind.CODE)
    layout.place_sequential(region)
    lines = region.line_numbers(spec.icache.line_size)
    if not cold:
        # Fill the instruction cache with a throwaway pass, then charge
        # the real call: its fetches must all hit.
        cpu.fetch_code_lines(lines)
        before = cpu.cycles
        cpu.fetch_code_lines(lines)
        stall = cpu.cycles - before
        assert stall == 0, "warm pass must not miss"
        return stall + model.warm_cycles(message_bytes)
    cpu.cold_start()
    before = cpu.cycles
    cpu.fetch_code_lines(lines)
    return (cpu.cycles - before) + model.warm_cycles(message_bytes)


@dataclass(frozen=True)
class Figure8Result:
    sizes: tuple[int, ...]
    bsd_warm: list[float]
    simple_warm: list[float]
    bsd_cold: list[float]
    simple_cold: list[float]

    def cold_crossover(self) -> float:
        """Message size where the elaborate routine overtakes, cold."""
        for size, bsd, simple in zip(self.sizes, self.bsd_cold, self.simple_cold):
            if bsd <= simple:
                return float(size)
        return float("inf")

    def shape_holds(self) -> bool:
        warm_ok = sum(
            bsd <= simple
            for bsd, simple in zip(self.bsd_warm[3:], self.simple_warm[3:])
        ) == len(self.sizes) - 3
        crossover = self.cold_crossover()
        crossover_ok = 700 <= crossover <= 1000
        intercepts_ok = (
            abs(self.bsd_cold[0] - PAPER_BSD_COLD_INTERCEPT) < 40
            and abs(self.simple_cold[0] - PAPER_SIMPLE_COLD_INTERCEPT) < 40
        )
        return warm_ok and crossover_ok and intercepts_ok

    def render(self) -> str:
        rows = []
        for index, size in enumerate(self.sizes):
            rows.append(
                [
                    size,
                    f"{self.bsd_warm[index]:.0f}",
                    f"{self.simple_warm[index]:.0f}",
                    f"{self.bsd_cold[index]:.0f}",
                    f"{self.simple_cold[index]:.0f}",
                ]
            )
        table = render_table(
            ["size B", "4.4BSD warm", "simple warm", "4.4BSD cold", "simple cold"],
            rows,
            title="Figure 8: checksum cost (CPU cycles), DEC 3000/400 model",
        )
        return (
            table
            + f"\ncold crossover: {self.cold_crossover():.0f} B "
            f"(paper ~{PAPER_COLD_CROSSOVER:.0f} B); cold intercepts "
            f"{self.bsd_cold[0]:.0f}/{self.simple_cold[0]:.0f} "
            f"(paper {PAPER_BSD_COLD_INTERCEPT:.0f}/{PAPER_SIMPLE_COLD_INTERCEPT:.0f})"
        )


def run(sizes: tuple[int, ...] = PAPER_SIZES) -> Figure8Result:
    return Figure8Result(
        sizes=tuple(sizes),
        bsd_warm=[checksum_cycles(BSD_CKSUM_MODEL, s, cold=False) for s in sizes],
        simple_warm=[
            checksum_cycles(SIMPLE_CKSUM_MODEL, s, cold=False) for s in sizes
        ],
        bsd_cold=[checksum_cycles(BSD_CKSUM_MODEL, s, cold=True) for s in sizes],
        simple_cold=[
            checksum_cycles(SIMPLE_CKSUM_MODEL, s, cold=True) for s in sizes
        ],
    )


def main() -> None:
    print(run().render())


# ----------------------------------------------------------------------
# Declarative sweep interface (repro.harness)

_MODELS = {"bsd": BSD_CKSUM_MODEL, "simple": SIMPLE_CKSUM_MODEL}


def checksum_point(model: str, cold: bool, sizes: list[int]) -> dict:
    """One checksum series: a routine swept over message sizes."""
    cost_model = _MODELS[model]
    return {
        "cycles": [
            checksum_cycles(cost_model, size, cold=cold) for size in sizes
        ]
    }


def sweep_points(scale: str) -> list[SweepPoint]:
    """Four points (routine x cache temperature); the experiment is
    deterministic and fast, so every scale runs the full size sweep."""
    del scale
    return [
        SweepPoint(
            experiment="figure8",
            key=f"{model}/{'cold' if cold else 'warm'}",
            func="repro.experiments.figure8:checksum_point",
            params={"model": model, "cold": cold, "sizes": list(PAPER_SIZES)},
        )
        for model in ("bsd", "simple")
        for cold in (False, True)
    ]


def assemble(points: list[SweepPoint], results: dict[str, Any]) -> Figure8Result:
    del points
    return Figure8Result(
        sizes=PAPER_SIZES,
        bsd_warm=results["bsd/warm"]["cycles"],
        simple_warm=results["simple/warm"]["cycles"],
        bsd_cold=results["bsd/cold"]["cycles"],
        simple_cold=results["simple/cold"]["cycles"],
    )


def golden_quantities(
    points: list[SweepPoint], results: dict[str, Any]
) -> dict[str, float]:
    """Figure 8's annotated numbers: the 426/176-cycle cold intercepts
    and the ~900-byte cold crossover, plus warm endpoints."""
    figure = assemble(points, results)
    return {
        "bsd_cold_intercept": figure.bsd_cold[0],
        "simple_cold_intercept": figure.simple_cold[0],
        "cold_crossover_bytes": figure.cold_crossover(),
        "bsd_warm_at_1000": figure.bsd_warm[-1],
        "simple_warm_at_1000": figure.simple_warm[-1],
    }


SWEEP = SweepSpec(
    name="figure8",
    points=sweep_points,
    quantities=golden_quantities,
    assemble=assemble,
    sources=(
        "repro.machine",
        "repro.cache",
        "repro.protocols.checksum",
        "repro.buffers.mbuf",
        "repro.core",
        "repro.sim",
        "repro.traffic",
        "repro.obs.runtime",
        "repro.errors",
        "repro.units",
        "repro.experiments.figure8",
        "repro.experiments.report",
        "repro.harness.points",
    ),
    # The checksum model is deterministic: exact reproduction (a hair of
    # absolute slack for float accumulation across numpy builds).
    default_tolerance=Tolerance(abs=1e-6),
)


if __name__ == "__main__":
    main()
