"""Experiment T2 — Table 2: the phases of the receive & acknowledge path.

Table 2 is prose, not numbers: it narrates what happens in each trace
phase.  This harness regenerates its content from the model — the phase
script, the functions that actually executed in the generated trace,
and the call relationships — so the narrative is checked against the
code rather than retyped.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from ..harness.points import SweepPoint, SweepSpec
from ..netbsd.functions import fn_to_layer_map
from ..netbsd.receive_path import PHASES, ReceivePathModel
from ..trace.buffer import TraceBuffer

#: The events Table 2's narrative requires of each phase: function
#: pairs (caller precedes callee in the phase's execution order).
NARRATIVE_ORDERINGS: dict[str, list[tuple[str, str]]] = {
    "entry": [
        ("syscall", "soreceive"),   # "call is dispatched to the socket layer"
        ("soreceive", "sbwait"),    # "no data is available ... process sleeps"
        ("sbwait", "tsleep"),
    ],
    "pkt intr": [
        ("leintr", "ether_input"),  # "message arrives on Ethernet"
        ("ether_input", "ipintr"),  # "vectored through the IP layer"
        ("ipintr", "tcp_input"),    # "and then to TCP"
        ("tcp_input", "in_cksum"),  # "computes the checksum"
        ("tcp_input", "sbappend"),  # "delivers the contents to the socket"
        ("sbappend", "sowakeup"),   # "wakes up the sleeping process"
    ],
    "exit": [
        ("soreceive", "uiomove"),   # "copies it into the process's space"
        ("uiomove", "tcp_output"),  # "calls the TCP layer to send an ACK"
        ("tcp_output", "ip_output"),
        ("ip_output", "ether_output"),
    ],
}


@dataclass(frozen=True)
class Table2Result:
    trace: TraceBuffer
    seed: int

    def phase_functions(self, phase: str) -> list[str]:
        """Functions executing in a phase, in first-execution order."""
        seen: dict[str, None] = {}
        for ref in self.trace.refs_in_phase(phase):
            if ref.is_code() and ref.fn:
                seen.setdefault(ref.fn)
        return list(seen)

    def narrative_holds(self) -> bool:
        """Every Table-2 ordering appears in the generated trace."""
        for phase, orderings in NARRATIVE_ORDERINGS.items():
            functions = self.phase_functions(phase)
            positions = {name: index for index, name in enumerate(functions)}
            for before, after in orderings:
                if before not in positions or after not in positions:
                    return False
                if positions[before] > positions[after]:
                    return False
        return True

    def render(self) -> str:
        layer_of = fn_to_layer_map()
        lines = ["Table 2: phases of the TCP receive & acknowledge path", ""]
        summaries = {
            "entry": (
                "Process makes read system call; call is dispatched to the "
                "socket layer; no data is available, so the process sleeps."
            ),
            "pkt intr": (
                "Message arrives on Ethernet and triggers a device "
                "interrupt; an mbuf is allocated and filled; the message is "
                "vectored through IP (host-addressed, not a fragment) to "
                "TCP's fastpath (single-entry PCB cache hits); checksum, "
                "PCB update, socket-buffer append, and wakeup."
            ),
            "exit": (
                "The process wakes, the socket layer copies the data to "
                "user space, TCP sends an ACK, and the system call returns."
            ),
        }
        for phase in PHASES:
            lines.append(f"{phase}:")
            lines.append(f"  {summaries[phase]}")
            functions = self.phase_functions(phase)
            annotated = ", ".join(
                f"{name} [{layer_of.get(name, '?')}]" for name in functions[:14]
            )
            more = f" (+{len(functions) - 14} more)" if len(functions) > 14 else ""
            lines.append(f"  executes: {annotated}{more}")
            lines.append("")
        return "\n".join(lines)


def run(seed: int = 0) -> Table2Result:
    model = ReceivePathModel(seed=seed)
    return Table2Result(trace=model.build_trace(), seed=seed)


def main() -> None:
    result = run()
    print(result.render())
    print(f"narrative orderings hold: {result.narrative_holds()}")


# ----------------------------------------------------------------------
# Declarative sweep interface (repro.harness)


def compute_point(seed: int) -> dict:
    """Table 2's checkable content: does the generated trace realize
    every narrated ordering, and how many functions run per phase."""
    result = run(seed=seed)
    return {
        "narrative_holds": result.narrative_holds(),
        "phase_function_counts": {
            phase: len(result.phase_functions(phase)) for phase in PHASES
        },
    }


def sweep_points(scale: str) -> list[SweepPoint]:
    del scale
    return [
        SweepPoint(
            experiment="table2",
            key="seed=0",
            func="repro.experiments.table2:compute_point",
            params={"seed": 0},
        )
    ]


def golden_quantities(
    points: list[SweepPoint], results: dict[str, Any]
) -> dict[str, float]:
    data = results[points[0].key]
    quantities = {"narrative_holds": float(bool(data["narrative_holds"]))}
    for phase, count in data["phase_function_counts"].items():
        quantities[f"functions_{phase.replace(' ', '_')}"] = float(count)
    return quantities


SWEEP = SweepSpec(
    name="table2",
    points=sweep_points,
    quantities=golden_quantities,
    sources=(
        "repro.netbsd",
        "repro.trace",
        "repro.cache",
        "repro.core",
        "repro.machine",
        "repro.sim",
        "repro.traffic",
        "repro.obs.runtime",
        "repro.errors",
        "repro.units",
        "repro.experiments.table2",
        "repro.harness.points",
    ),
)


if __name__ == "__main__":
    main()
