"""Figures 2 and 3 — the conceptual schedules, rendered.

The paper's Figures 2 and 3 are diagrams, not measurements: they show
the (layer, message) visit orders of conventional, ILP, and blocked
processing.  This module renders those orders from the actual scheduler
implementations, which doubles as a check that the code realizes the
figures.
"""

from __future__ import annotations

from typing import Any

from ..core.layer import CountingLayer, Message
from ..core.scheduler import (
    ConventionalScheduler,
    ILPScheduler,
    LDLPScheduler,
)
from ..core.batching import BatchPolicy
from ..harness.points import SweepPoint, SweepSpec


def observed_order(
    scheduler_cls, num_layers: int, num_messages: int, batch: int | None = None
) -> list[tuple[int, int]]:
    """Run a scheduler on counting layers; return its (layer, message)
    invocation order."""
    layers = [CountingLayer(f"L{i}") for i in range(num_layers)]
    kwargs = {}
    if batch is not None:
        kwargs["batch_policy"] = BatchPolicy(max_batch=batch)
    scheduler = scheduler_cls(layers, **kwargs)
    messages = [Message() for _ in range(num_messages)]
    index_of = {message.msg_id: i for i, message in enumerate(messages)}
    order: list[tuple[int, int]] = []

    # Interleave the per-layer logs back into a global order by
    # re-running with instrumented deliver.
    events: list[tuple[int, int]] = []

    original_delivers = []
    for layer_index, layer in enumerate(layers):
        original = layer.deliver

        def instrumented(message, _index=layer_index, _original=original):
            events.append((_index, index_of[message.msg_id]))
            return _original(message)

        original_delivers.append(original)
        layer.deliver = instrumented  # type: ignore[method-assign]
    scheduler.run_to_completion(messages)
    order.extend(events)
    return order


def render_order(
    order: list[tuple[int, int]], num_layers: int, num_messages: int
) -> str:
    """Render a visit order as a Figure-3-style timeline.

    One row per step; each row shows the layer x message matrix with
    ``*`` at the active cell — the visual of the paper's Figure 3.
    """
    lines = [
        "step  " + "  ".join(f"L{i}" for i in range(num_layers)) + "   msg"
    ]
    for step, (layer, message) in enumerate(order):
        cells = "   ".join("*" if i == layer else "." for i in range(num_layers))
        lines.append(f"{step:>4}  {cells}   P{message}")
    return "\n".join(lines)


def figure23_text(num_layers: int = 4, num_messages: int = 2) -> str:
    """The three schedules of Figures 2/3, from the real schedulers."""
    sections = []
    for title, cls, batch in (
        ("Conventional", ConventionalScheduler, None),
        ("ILP (same outer order)", ILPScheduler, None),
        ("Blocked / LDLP", LDLPScheduler, num_messages),
    ):
        order = observed_order(cls, num_layers, num_messages, batch)
        sections.append(f"{title}: " + " ".join(
            f"(L{layer},P{message})" for layer, message in order
        ))
    return "\n".join(sections)


def main() -> None:
    print("Figure 2/3: schedules produced by the implemented schedulers\n")
    print(figure23_text())
    print()
    order = observed_order(LDLPScheduler, 4, 2, batch=2)
    print(render_order(order, 4, 2))


# ----------------------------------------------------------------------
# Declarative sweep interface (repro.harness)

_SCHEDULER_CLASSES = {
    "conventional": ConventionalScheduler,
    "ilp": ILPScheduler,
    "ldlp": LDLPScheduler,
}


def compute_point(scheduler: str, num_layers: int, num_messages: int) -> dict:
    """The exact (layer, message) visit order one scheduler produces."""
    batch = num_messages if scheduler == "ldlp" else None
    order = observed_order(
        _SCHEDULER_CLASSES[scheduler], num_layers, num_messages, batch
    )
    return {"order": [[layer, message] for layer, message in order]}


def sweep_points(scale: str) -> list[SweepPoint]:
    del scale  # the conceptual figures have one canonical size
    return [
        SweepPoint(
            experiment="schedules",
            key=scheduler,
            func="repro.experiments.schedules:compute_point",
            params={"scheduler": scheduler, "num_layers": 4, "num_messages": 2},
        )
        for scheduler in _SCHEDULER_CLASSES
    ]


def golden_quantities(
    points: list[SweepPoint], results: dict[str, Any]
) -> dict[str, float]:
    """Fingerprint each schedule's visit order so any change to a
    scheduler's visit sequence trips the gate by name."""
    import zlib

    quantities: dict[str, float] = {}
    for point in points:
        order = results[point.key]["order"]
        encoded = ";".join(f"{layer},{message}" for layer, message in order)
        quantities[f"{point.key}_order_crc"] = float(zlib.crc32(encoded.encode()))
        quantities[f"{point.key}_steps"] = float(len(order))
    return quantities


SWEEP = SweepSpec(
    name="schedules",
    points=sweep_points,
    quantities=golden_quantities,
    sources=(
        "repro.core",
        "repro.cache",
        "repro.machine",
        "repro.sim",
        "repro.traffic",
        "repro.obs.runtime",
        "repro.errors",
        "repro.units",
        "repro.experiments.schedules",
        "repro.harness.points",
    ),
)


if __name__ == "__main__":
    main()
