"""Experiment F5 — Figure 5: cache misses per message vs arrival rate.

Runs the Section-4 synthetic benchmark (five 6 KB layers, 552-byte
Poisson messages, 100 MHz CPU, 8 KB direct-mapped I/D caches, 20-cycle
miss penalty) for conventional and LDLP scheduling across arrival rates,
and reports instruction and data misses per message — the paper's
Figure 5 series.

Expected shape: conventional stays flat near ~1000 misses/message;
LDLP's instruction misses fall steeply as batching kicks in, data misses
rise slightly, and the curve flattens beyond ~8500 msgs/s where the
batch cap (14 messages in the 8 KB data cache) binds.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..sim.runner import SimulationConfig, run_averaged
from ..sim.stats import RunResult
from ..traffic.poisson import PoissonSource
from .report import render_table

#: The paper sweeps 1000..10000 msgs/sec.
PAPER_RATES = tuple(range(1000, 10001, 1000))

#: Default experiment scale: full paper methodology is 100 placements x
#: 1 s; the default here is sized for minutes-scale runs.  Pass
#: ``paper_scale=True`` to ``run`` for the full version.
DEFAULT_SEEDS = (0, 1, 2)
DEFAULT_DURATION = 0.15


@dataclass(frozen=True)
class Figure5Result:
    rates: tuple[int, ...]
    conventional: list[RunResult]
    ldlp: list[RunResult]

    def series(self, scheduler: str, component: str) -> list[float]:
        """One plotted series: scheduler in {conventional, ldlp},
        component in {instruction, data, total}."""
        results = self.conventional if scheduler == "conventional" else self.ldlp
        return [getattr(r.misses, component, r.misses.total) if component != "total"
                else r.misses.total for r in results]

    def shape_holds(self) -> bool:
        """The paper's qualitative claims about Figure 5."""
        conv_total = [r.misses.total for r in self.conventional]
        ldlp_i = [r.misses.instruction for r in self.ldlp]
        ldlp_d = [r.misses.data for r in self.ldlp]
        # Conventional roughly flat (within 15% of its own mean).
        mean_conv = sum(conv_total) / len(conv_total)
        flat = all(abs(v - mean_conv) < 0.15 * mean_conv for v in conv_total)
        # LDLP instruction misses fall by >5x from the lowest to the
        # highest rate; data misses do not fall.
        falls = ldlp_i[0] / max(ldlp_i[-1], 1e-9) > 5
        data_up = ldlp_d[-1] >= ldlp_d[0] * 0.8
        # At the top rate LDLP total is far below conventional.
        wins = self.ldlp[-1].misses.total < 0.35 * self.conventional[-1].misses.total
        return flat and falls and data_up and wins

    def render(self) -> str:
        rows = []
        for index, rate in enumerate(self.rates):
            conv = self.conventional[index]
            ldlp = self.ldlp[index]
            rows.append(
                [
                    rate,
                    f"{conv.misses.instruction:.0f}",
                    f"{conv.misses.data:.0f}",
                    f"{ldlp.misses.instruction:.0f}",
                    f"{ldlp.misses.data:.0f}",
                    f"{ldlp.mean_batch_size:.1f}",
                ]
            )
        return render_table(
            ["rate/s", "conv I", "conv D", "LDLP I", "LDLP D", "batch"],
            rows,
            title="Figure 5: cache misses per message (Poisson, 552-byte messages)",
        )


def run(
    rates: tuple[int, ...] = PAPER_RATES,
    seeds: tuple[int, ...] = DEFAULT_SEEDS,
    duration: float = DEFAULT_DURATION,
    paper_scale: bool = False,
) -> Figure5Result:
    if paper_scale:
        seeds = tuple(range(100))
        duration = 1.0
    conventional: list[RunResult] = []
    ldlp: list[RunResult] = []
    for rate in rates:
        def source_factory(seed, rate=rate):
            return PoissonSource(rate, rng=seed)

        for name, bucket in (("conventional", conventional), ("ldlp", ldlp)):
            config = SimulationConfig(scheduler=name, duration=duration)
            bucket.append(run_averaged(source_factory, config, list(seeds)))
    return Figure5Result(rates=tuple(rates), conventional=conventional, ldlp=ldlp)


def main() -> None:
    print(run().render())


if __name__ == "__main__":
    main()
