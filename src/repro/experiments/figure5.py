"""Experiment F5 — Figure 5: cache misses per message vs arrival rate.

Runs the Section-4 synthetic benchmark (five 6 KB layers, 552-byte
Poisson messages, 100 MHz CPU, 8 KB direct-mapped I/D caches, 20-cycle
miss penalty) for conventional and LDLP scheduling across arrival rates,
and reports instruction and data misses per message — the paper's
Figure 5 series.

Expected shape: conventional stays flat near ~1000 misses/message;
LDLP's instruction misses fall steeply as batching kicks in, data misses
rise slightly, and the curve flattens beyond ~8500 msgs/s where the
batch cap (14 messages in the 8 KB data cache) binds.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from ..harness.points import SweepPoint, SweepSpec, Tolerance
from ..sim.runner import SimulationConfig, run_averaged
from ..sim.stats import RunResult
from ..traffic.poisson import PoissonSource
from .report import render_table

#: The paper sweeps 1000..10000 msgs/sec.
PAPER_RATES = tuple(range(1000, 10001, 1000))

#: Default experiment scale: full paper methodology is 100 placements x
#: 1 s; the default here is sized for minutes-scale runs.  Pass
#: ``paper_scale=True`` to ``run`` for the full version.
DEFAULT_SEEDS = (0, 1, 2)
DEFAULT_DURATION = 0.15


@dataclass(frozen=True)
class Figure5Result:
    rates: tuple[int, ...]
    conventional: list[RunResult]
    ldlp: list[RunResult]

    def series(self, scheduler: str, component: str) -> list[float]:
        """One plotted series: scheduler in {conventional, ldlp},
        component in {instruction, data, total}."""
        results = self.conventional if scheduler == "conventional" else self.ldlp
        return [getattr(r.misses, component, r.misses.total) if component != "total"
                else r.misses.total for r in results]

    def shape_holds(self) -> bool:
        """The paper's qualitative claims about Figure 5."""
        conv_total = [r.misses.total for r in self.conventional]
        ldlp_i = [r.misses.instruction for r in self.ldlp]
        ldlp_d = [r.misses.data for r in self.ldlp]
        # Conventional roughly flat (within 15% of its own mean).
        mean_conv = sum(conv_total) / len(conv_total)
        flat = all(abs(v - mean_conv) < 0.15 * mean_conv for v in conv_total)
        # LDLP instruction misses fall by >5x from the lowest to the
        # highest rate; data misses do not fall.
        falls = ldlp_i[0] / max(ldlp_i[-1], 1e-9) > 5
        data_up = ldlp_d[-1] >= ldlp_d[0] * 0.8
        # At the top rate LDLP total is far below conventional.
        wins = self.ldlp[-1].misses.total < 0.35 * self.conventional[-1].misses.total
        return flat and falls and data_up and wins

    def render(self) -> str:
        rows = []
        for index, rate in enumerate(self.rates):
            conv = self.conventional[index]
            ldlp = self.ldlp[index]
            rows.append(
                [
                    rate,
                    f"{conv.misses.instruction:.0f}",
                    f"{conv.misses.data:.0f}",
                    f"{ldlp.misses.instruction:.0f}",
                    f"{ldlp.misses.data:.0f}",
                    f"{ldlp.mean_batch_size:.1f}",
                ]
            )
        return render_table(
            ["rate/s", "conv I", "conv D", "LDLP I", "LDLP D", "batch"],
            rows,
            title="Figure 5: cache misses per message (Poisson, 552-byte messages)",
        )


def run(
    rates: tuple[int, ...] = PAPER_RATES,
    seeds: tuple[int, ...] = DEFAULT_SEEDS,
    duration: float = DEFAULT_DURATION,
    paper_scale: bool = False,
) -> Figure5Result:
    if paper_scale:
        seeds = tuple(range(100))
        duration = 1.0
    conventional: list[RunResult] = []
    ldlp: list[RunResult] = []
    for rate in rates:
        def source_factory(seed, rate=rate):
            return PoissonSource(rate, rng=seed)

        for name, bucket in (("conventional", conventional), ("ldlp", ldlp)):
            config = SimulationConfig(scheduler=name, duration=duration)
            bucket.append(run_averaged(source_factory, config, list(seeds)))
    return Figure5Result(rates=tuple(rates), conventional=conventional, ldlp=ldlp)


def main() -> None:
    print(run().render())


# ----------------------------------------------------------------------
# Declarative sweep interface (repro.harness)

#: (rates, seeds, duration) per harness scale.
SWEEP_SCALES: dict[str, tuple[tuple[int, ...], tuple[int, ...], float]] = {
    "ci": ((1000, 4000, 7000, 9500), (0, 1), 0.1),
    "default": (PAPER_RATES, DEFAULT_SEEDS, DEFAULT_DURATION),
    "paper": (PAPER_RATES, tuple(range(100)), 1.0),
}

SCHEDULERS = ("conventional", "ldlp")


def sweep_points(scale: str) -> list[SweepPoint]:
    """One point per (scheduler, arrival rate): a pure Section-4 run."""
    rates, seeds, duration = SWEEP_SCALES[scale]
    return [
        SweepPoint(
            experiment="figure5",
            key=f"{scheduler}/rate={rate}",
            func="repro.sim.runner:poisson_point",
            params={
                "scheduler": scheduler,
                "rate": rate,
                "seeds": list(seeds),
                "duration": duration,
            },
        )
        for scheduler in SCHEDULERS
        for rate in rates
    ]


def point_series(
    points: list[SweepPoint], results: dict[str, Any], scheduler: str
) -> tuple[tuple[int, ...], list[RunResult]]:
    """Reassemble one scheduler's rate-ordered series from point results."""
    rates: list[int] = []
    series: list[RunResult] = []
    for point in points:
        if point.params["scheduler"] != scheduler:
            continue
        rates.append(int(point.params["rate"]))
        series.append(RunResult.from_dict(results[point.key]))
    return tuple(rates), series


def assemble(points: list[SweepPoint], results: dict[str, Any]) -> Figure5Result:
    rates, conventional = point_series(points, results, "conventional")
    _, ldlp = point_series(points, results, "ldlp")
    return Figure5Result(rates=rates, conventional=conventional, ldlp=ldlp)


def golden_quantities(
    points: list[SweepPoint], results: dict[str, Any]
) -> dict[str, float]:
    """Figure 5's paper-expected quantities: conventional flat near
    ~1000 misses/message, LDLP instruction misses falling >5x into the
    batch cap, and the top-rate miss-count advantage."""
    figure = assemble(points, results)
    conv_total = [r.misses.total for r in figure.conventional]
    ldlp_i = [r.misses.instruction for r in figure.ldlp]
    return {
        "conv_total_misses_mean": sum(conv_total) / len(conv_total),
        "conv_total_misses_top": conv_total[-1],
        "ldlp_instruction_first": ldlp_i[0],
        "ldlp_instruction_last": ldlp_i[-1],
        "ldlp_instruction_fall_ratio": ldlp_i[0] / max(ldlp_i[-1], 1e-9),
        "ldlp_data_last": figure.ldlp[-1].misses.data,
        "ldlp_over_conv_total_top": (
            figure.ldlp[-1].misses.total / figure.conventional[-1].misses.total
        ),
        "ldlp_batch_top": figure.ldlp[-1].mean_batch_size,
    }


SWEEP = SweepSpec(
    name="figure5",
    points=sweep_points,
    quantities=golden_quantities,
    assemble=assemble,
    sources=(
        "repro.sim",
        "repro.core",
        "repro.cache",
        "repro.machine",
        "repro.traffic",
        "repro.buffers",
        "repro.obs.runtime",
        "repro.errors",
        "repro.units",
    ),
    default_tolerance=Tolerance(rel=0.15),
    tolerances={
        "ldlp_instruction_fall_ratio": Tolerance(rel=0.35),
        "ldlp_instruction_last": Tolerance(rel=0.30),
        "ldlp_data_last": Tolerance(rel=0.30),
        "ldlp_over_conv_total_top": Tolerance(rel=0.30),
        "ldlp_batch_top": Tolerance(rel=0.30),
    },
)


if __name__ == "__main__":
    main()
