"""Experiment F7 — Figure 7: latency vs CPU clock on Ethernet traces.

The paper replays the Bellcore October-1989 Ethernet trace and varies
the simulated CPU clock from 10 to 80 MHz: "In general, as CPU speed
falls, latency increases.  When processor speed falls below 40 MHz, the
LDLP version batches packets to maintain throughput."

We substitute a synthetic self-similar trace (see DESIGN.md): aggregated
Pareto ON/OFF sources with the 1989 LAN packet-size mix.  A real
Bellcore trace file can be passed via ``arrivals``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from ..cache.hierarchy import MachineSpec
from ..harness.points import SweepPoint, SweepSpec, Tolerance
from ..sim.runner import SimulationConfig, run_simulation
from ..sim.stats import RunResult, merge_results
from ..traffic.base import Arrival
from ..traffic.bellcore import TraceSource, synthesize_bellcore_like
from ..units import format_duration, mhz
from .report import render_table

#: Clock sweep from the figure's x-axis.
PAPER_CLOCKS_MHZ = (10, 20, 30, 40, 50, 60, 70, 80)

DEFAULT_DURATION = 0.6
DEFAULT_MEAN_RATE = 1200.0
DEFAULT_SEEDS = (0, 1)


@dataclass(frozen=True)
class Figure7Result:
    clocks_mhz: tuple[int, ...]
    conventional: list[RunResult]
    ldlp: list[RunResult]

    def shape_holds(self) -> bool:
        """Latency falls as the clock rises, and LDLP tolerates much
        lower clock rates than conventional before saturating."""
        conv = [r.latency.mean for r in self.conventional]
        ldlp = [r.latency.mean for r in self.ldlp]
        falling_conv = conv[0] > conv[-1]
        falling_ldlp = ldlp[0] > ldlp[-1]
        # At mid-range clocks conventional is already saturated while
        # LDLP is not: compare at 30-40 MHz.
        mid = min(range(len(self.clocks_mhz)),
                  key=lambda i: abs(self.clocks_mhz[i] - 40))
        advantage = ldlp[mid] < conv[mid]
        return falling_conv and falling_ldlp and advantage

    def render(self) -> str:
        rows = []
        for index, clock in enumerate(self.clocks_mhz):
            conv = self.conventional[index]
            ldlp = self.ldlp[index]
            rows.append(
                [
                    clock,
                    format_duration(conv.latency.mean),
                    conv.dropped,
                    format_duration(ldlp.latency.mean),
                    ldlp.dropped,
                    f"{ldlp.mean_batch_size:.1f}",
                ]
            )
        return render_table(
            ["MHz", "conv mean", "conv drops", "LDLP mean", "LDLP drops", "batch"],
            rows,
            title="Figure 7: latency vs CPU clock (self-similar Ethernet-like trace)",
        )


def run(
    clocks_mhz: tuple[int, ...] = PAPER_CLOCKS_MHZ,
    duration: float = DEFAULT_DURATION,
    mean_rate: float = DEFAULT_MEAN_RATE,
    seeds: tuple[int, ...] = DEFAULT_SEEDS,
    arrivals: list[Arrival] | None = None,
) -> Figure7Result:
    conventional = []
    ldlp = []
    streams = {
        seed: (
            arrivals
            if arrivals is not None
            else synthesize_bellcore_like(
                duration, mean_rate=mean_rate, rng=seed
            )
        )
        for seed in seeds
    }
    for clock in clocks_mhz:
        spec = MachineSpec(clock_hz=mhz(clock))
        for name, bucket in (("conventional", conventional), ("ldlp", ldlp)):
            per_seed = []
            for seed in seeds:
                stream = streams[seed]
                config = SimulationConfig(
                    scheduler=name, duration=duration, spec=spec,
                    # Ethernet frames reach 1518 bytes.
                    buffer_size=2048,
                )
                per_seed.append(
                    run_simulation(
                        TraceSource(stream), config, seed=seed, arrivals=stream
                    )
                )
            bucket.append(merge_results(per_seed))
    return Figure7Result(
        clocks_mhz=tuple(clocks_mhz), conventional=conventional, ldlp=ldlp
    )


def main() -> None:
    print(run().render())


# ----------------------------------------------------------------------
# Declarative sweep interface (repro.harness)


def clock_point(
    scheduler: str,
    clock_mhz: int,
    seeds: list[int],
    duration: float,
    mean_rate: float,
    engine: str = "vec",
) -> dict:
    """One (scheduler, CPU clock) point on the self-similar trace.

    Each seed's trace is synthesized inside the point from the seed
    alone, so the point stays a pure function of its parameters.
    """
    spec = MachineSpec(clock_hz=mhz(clock_mhz))
    per_seed = []
    for seed in seeds:
        stream = synthesize_bellcore_like(duration, mean_rate=mean_rate, rng=seed)
        config = SimulationConfig(
            scheduler=scheduler,
            duration=duration,
            spec=spec,
            buffer_size=2048,
            engine=engine,
        )
        per_seed.append(
            run_simulation(TraceSource(stream), config, seed=seed, arrivals=stream)
        )
    return merge_results(per_seed).to_dict()


#: (clocks, seeds, duration, mean rate) per harness scale.
SWEEP_SCALES: dict[str, tuple[tuple[int, ...], tuple[int, ...], float, float]] = {
    "ci": ((10, 20, 40, 80), (0,), 0.4, 1000.0),
    "default": (PAPER_CLOCKS_MHZ, DEFAULT_SEEDS, DEFAULT_DURATION, DEFAULT_MEAN_RATE),
    "paper": (PAPER_CLOCKS_MHZ, tuple(range(10)), 1.0, DEFAULT_MEAN_RATE),
}


def sweep_points(scale: str) -> list[SweepPoint]:
    clocks, seeds, duration, mean_rate = SWEEP_SCALES[scale]
    return [
        SweepPoint(
            experiment="figure7",
            key=f"{scheduler}/clock={clock}MHz",
            func="repro.experiments.figure7:clock_point",
            params={
                "scheduler": scheduler,
                "clock_mhz": clock,
                "seeds": list(seeds),
                "duration": duration,
                "mean_rate": mean_rate,
            },
        )
        for scheduler in ("conventional", "ldlp")
        for clock in clocks
    ]


def _series(
    points: list[SweepPoint], results: dict[str, Any], scheduler: str
) -> tuple[tuple[int, ...], list[RunResult]]:
    clocks: list[int] = []
    series: list[RunResult] = []
    for point in points:
        if point.params["scheduler"] != scheduler:
            continue
        clocks.append(int(point.params["clock_mhz"]))
        series.append(RunResult.from_dict(results[point.key]))
    return tuple(clocks), series


def assemble(points: list[SweepPoint], results: dict[str, Any]) -> Figure7Result:
    clocks, conventional = _series(points, results, "conventional")
    _, ldlp = _series(points, results, "ldlp")
    return Figure7Result(
        clocks_mhz=clocks, conventional=conventional, ldlp=ldlp
    )


def golden_quantities(
    points: list[SweepPoint], results: dict[str, Any]
) -> dict[str, float]:
    """Figure 7's claims: latency falls with the clock, LDLP batches to
    survive slow clocks, and holds a mid-range (~40 MHz) advantage."""
    figure = assemble(points, results)
    mid = min(
        range(len(figure.clocks_mhz)),
        key=lambda i: abs(figure.clocks_mhz[i] - 40),
    )
    return {
        "conv_latency_slowest_ms": 1e3 * figure.conventional[0].latency.mean,
        "conv_latency_fastest_ms": 1e3 * figure.conventional[-1].latency.mean,
        "ldlp_latency_mid_ms": 1e3 * figure.ldlp[mid].latency.mean,
        "conv_over_ldlp_mid": (
            figure.conventional[mid].latency.mean / figure.ldlp[mid].latency.mean
        ),
        "ldlp_batch_slowest": figure.ldlp[0].mean_batch_size,
        "ldlp_batch_fastest": figure.ldlp[-1].mean_batch_size,
    }


SWEEP = SweepSpec(
    name="figure7",
    points=sweep_points,
    quantities=golden_quantities,
    assemble=assemble,
    sources=(
        "repro.sim",
        "repro.core",
        "repro.cache",
        "repro.machine",
        "repro.traffic",
        "repro.buffers",
        "repro.obs.runtime",
        "repro.errors",
        "repro.units",
        "repro.experiments.figure7",
        "repro.experiments.report",
        "repro.harness.points",
    ),
    default_tolerance=Tolerance(rel=0.3),
    tolerances={
        "conv_over_ldlp_mid": Tolerance(rel=0.5),
        "ldlp_batch_fastest": Tolerance(rel=0.3, abs=0.5),
    },
)


if __name__ == "__main__":
    main()
