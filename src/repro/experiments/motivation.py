"""The introduction's arithmetic: setup time across a switch chain.

Section 1: "If ATM switches are deployed like IP routers, then a
cross-country connection might pass through 10 to 20 switches.  Several
current signalling implementations spend 5 to 20 milliseconds
processing each message: this could add a large fraction of a second to
the connection setup time across a large network... Our performance
goal is to support 10000 pairs of setup/teardown requests per second
with processing latency of 100 microseconds for setup requests."

This harness measures per-switch SETUP processing latency on the
simulated machine (mini-Q.93B switch under load, conventional vs LDLP)
and composes it across an N-switch path: a SETUP traverses every hop in
sequence, so end-to-end setup time ≈ Σ per-hop (queueing + processing)
+ propagation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

import numpy as np

from ..core.batching import BatchPolicy
from ..harness.points import SweepPoint, SweepSpec, Tolerance
from ..core.binding import MachineBinding
from ..core.layer import Message
from ..core.scheduler import ConventionalScheduler, LDLPScheduler
from ..sim.runner import drive
from ..signalling.q93b import release, setup
from ..signalling.switch import build_switch, saal_frame
from ..units import format_duration
from .report import render_table

#: Cross-country speed-of-light propagation (one way, in fibre).
CROSS_COUNTRY_PROPAGATION = 0.020


def per_hop_latency(
    scheduler_name: str,
    pair_rate: float,
    duration: float = 0.3,
    seed: int = 5,
) -> float:
    """Mean per-message latency of one switch at a given load."""
    rng = np.random.default_rng(seed)
    switch = build_switch()
    binding = MachineBinding(rng=seed, buffer_size=512)
    if scheduler_name == "ldlp":
        scheduler = LDLPScheduler(
            switch.layers,
            binding,
            batch_policy=BatchPolicy.from_cache(
                binding.spec.dcache.size,
                typical_message_bytes=128,
                layer_data_reserve=1024,
            ),
        )
    else:
        scheduler = ConventionalScheduler(switch.layers, binding)
    arrivals = []
    time = 0.0
    sequence = 0
    call_ref = 1
    while True:
        time += rng.exponential(1.0 / pair_rate)
        if time >= duration:
            break
        for offset, wire in (
            (0.0, setup(call_ref, f"dest-{call_ref % 57}")),
            (200e-6, release(call_ref)),
        ):
            arrivals.append(
                (time + offset,
                 Message(payload=saal_frame(wire.serialize(), sequence)))
            )
            sequence += 1
        call_ref += 1
    arrivals.sort(key=lambda pair: pair[0])
    # Re-sequence after sorting (SAAL expects in-order sequence numbers).
    resequenced = []
    for index, (when, message) in enumerate(arrivals):
        resequenced.append((when, message))
    outcome = drive(scheduler, resequenced)
    summary = outcome.latency.summary()
    return summary.mean if summary.count else float("inf")


@dataclass(frozen=True)
class MotivationResult:
    """End-to-end setup time across hop counts and load levels."""

    pair_rate: float
    hops: tuple[int, ...]
    conventional_per_hop: float
    ldlp_per_hop: float

    def end_to_end(self, per_hop: float, hops: int) -> float:
        return hops * per_hop + CROSS_COUNTRY_PROPAGATION

    def goal_met(self) -> bool:
        """The paper's goal: ~100 us processing latency per setup at
        10 k pairs/s — checked against the LDLP per-hop latency."""
        return self.ldlp_per_hop < 1e-3

    def render(self) -> str:
        rows = []
        for hops in self.hops:
            rows.append(
                [
                    hops,
                    format_duration(
                        self.end_to_end(self.conventional_per_hop, hops)
                    ),
                    format_duration(self.end_to_end(self.ldlp_per_hop, hops)),
                ]
            )
        table = render_table(
            ["hops", "conventional e2e", "LDLP e2e"],
            rows,
            title=(
                f"Cross-network connection setup at {self.pair_rate:.0f} "
                f"setup/teardown pairs/s per switch (incl. 20 ms propagation)"
            ),
        )
        return (
            table
            + f"\nper-hop processing: conventional "
            f"{format_duration(self.conventional_per_hop)}, LDLP "
            f"{format_duration(self.ldlp_per_hop)} "
            f"(paper's goal: ~100 us at 10000 pairs/s)"
        )


def run(
    pair_rate: float = 10_000.0,
    hops: tuple[int, ...] = (1, 5, 10, 20),
    duration: float = 0.3,
    seed: int = 5,
) -> MotivationResult:
    return MotivationResult(
        pair_rate=pair_rate,
        hops=hops,
        conventional_per_hop=per_hop_latency(
            "conventional", pair_rate, duration, seed
        ),
        ldlp_per_hop=per_hop_latency("ldlp", pair_rate, duration, seed),
    )


def main() -> None:
    print(run().render())


# ----------------------------------------------------------------------
# Declarative sweep interface (repro.harness)


def compute_point(
    scheduler: str, pair_rate: float, duration: float, seed: int
) -> dict:
    """Per-hop SETUP latency of one switch under one scheduler."""
    return {
        "per_hop_latency_s": per_hop_latency(scheduler, pair_rate, duration, seed)
    }


#: (pair rate, duration, seed) per harness scale.
SWEEP_SCALES: dict[str, tuple[float, float, int]] = {
    "ci": (10_000.0, 0.15, 5),
    "default": (10_000.0, 0.3, 5),
    "paper": (10_000.0, 1.0, 5),
}


def sweep_points(scale: str) -> list[SweepPoint]:
    pair_rate, duration, seed = SWEEP_SCALES[scale]
    return [
        SweepPoint(
            experiment="motivation",
            key=scheduler,
            func="repro.experiments.motivation:compute_point",
            params={
                "scheduler": scheduler,
                "pair_rate": pair_rate,
                "duration": duration,
                "seed": seed,
            },
        )
        for scheduler in ("conventional", "ldlp")
    ]


def golden_quantities(
    points: list[SweepPoint], results: dict[str, Any]
) -> dict[str, float]:
    """Section 1's arithmetic: per-hop processing latency per scheduler
    and whether LDLP meets the paper's ~100 us goal (< 1 ms here)."""
    conv = results["conventional"]["per_hop_latency_s"]
    ldlp = results["ldlp"]["per_hop_latency_s"]
    return {
        "conventional_per_hop_ms": 1e3 * conv,
        "ldlp_per_hop_ms": 1e3 * ldlp,
        "goal_met": float(ldlp < 1e-3),
    }


SWEEP = SweepSpec(
    name="motivation",
    points=sweep_points,
    quantities=golden_quantities,
    sources=(
        "repro.sim",
        "repro.core",
        "repro.cache",
        "repro.machine",
        "repro.signalling",
        "repro.buffers",
        "repro.traffic",
        "repro.obs.runtime",
        "repro.errors",
        "repro.units",
        "repro.experiments.motivation",
        "repro.experiments.report",
        "repro.harness.points",
    ),
    default_tolerance=Tolerance(rel=0.3),
    tolerances={
        "goal_met": Tolerance(),
        "ldlp_per_hop_ms": Tolerance(rel=0.5),
    },
)


if __name__ == "__main__":
    main()
