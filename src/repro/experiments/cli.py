"""``ldlp-experiment`` — run any reproduction harness from the shell.

Usage::

    ldlp-experiment table1
    ldlp-experiment figure6 --paper-scale
    ldlp-experiment all

    ldlp-experiment run --jobs 4            # parallel harness + cache
    ldlp-experiment run figure5 figure6 --jobs 4 --scale default
    ldlp-experiment regress --jobs 2        # golden regression gate
    ldlp-experiment regress figure8 --bless

    ldlp-experiment trace figure6 --sink chrome   # Perfetto timeline
    ldlp-experiment trace receive --sink table    # live miss attribution

    ldlp-experiment faults degradation --jobs 4   # fault campaign sweep
    ldlp-experiment faults injectors              # survival matrix

    ldlp-experiment analyze                       # full static-analysis report
    ldlp-experiment analyze --determinism         # DET gate (exit 1 on ERROR)
    ldlp-experiment analyze --list-rules          # rule registry

The first form runs one experiment serially and prints its table.  The
``run``/``regress`` forms go through :mod:`repro.harness`: sweep points
fan out over a worker pool, results are cached by content hash, timings
land in ``BENCH_experiments.json``, and ``regress`` gates reproduced
quantities against the checked-in ``goldens/``.  ``trace`` goes through
:mod:`repro.obs`: it re-runs one experiment under a recorder and emits
a Chrome-trace timeline, a miss-attribution table, or counter metrics.
"""

from __future__ import annotations

import argparse
import sys

from . import (
    ablations,
    figure1,
    figure5,
    figure6,
    figure7,
    figure8,
    flows,
    gossip,
    motivation,
    multicore,
    schedules,
    table1,
    table2,
    table3,
)

EXPERIMENTS = {
    "table1": lambda args: print(table1.run(seed=args.seed).render()),
    "table2": lambda args: table2.main(),
    "table3": lambda args: print(table3.run(seed=args.seed).render()),
    "figure1": lambda args: _figure1(args),
    "figure5": lambda args: print(
        figure5.run(paper_scale=args.paper_scale).render()
    ),
    "figure6": lambda args: print(
        figure6.run(paper_scale=args.paper_scale).render()
    ),
    "figure7": lambda args: print(figure7.run().render()),
    "figure8": lambda args: print(figure8.run().render()),
    "ablations": lambda args: ablations.main(),
    "schedules": lambda args: schedules.main(),
    "motivation": lambda args: print(motivation.run().render()),
    "multicore": lambda args: multicore.main(),
    "flows": lambda args: flows.main(),
    "gossip": lambda args: gossip.main(),
    "analyze": lambda args: _analyze(args),
}


def _analyze(args: argparse.Namespace) -> None:
    """Static analysis of both modelled stacks (see repro.analysis)."""
    from ..analysis.cli import main as analysis_main

    analysis_main(
        ["--stack", "synthetic", "--stack", "netbsd", "--harness",
         "--determinism", "--seed", str(args.seed), "--fail-on", "never"]
    )


def _analyze_command(argv: list[str]) -> int:
    """``ldlp-experiment analyze [...]`` — the analyzer subcommand.

    With no flags this is the legacy report: every checker over both
    modelled stacks, informational (never fails).  ``--list-rules``
    prints the rule registry; ``--determinism`` runs only the DET
    determinism/parallel-purity gate, which *does* gate (exit 1 on an
    ERROR finding) so CI can wire it directly.
    """
    parser = argparse.ArgumentParser(
        prog="ldlp-experiment analyze",
        description="Static analysis of the reproduction (repro.analysis).",
    )
    parser.add_argument("--seed", type=int, default=0, help="placement seed")
    parser.add_argument(
        "--list-rules", action="store_true",
        help="print the rule registry and exit",
    )
    parser.add_argument(
        "--determinism", action="store_true",
        help="run only the DET determinism/parallel-purity gate",
    )
    parser.add_argument(
        "--format", dest="fmt", choices=("text", "json"), default="text"
    )
    parser.add_argument(
        "--fail-on", choices=("error", "warning", "never"), default=None
    )
    args = parser.parse_args(argv)
    from ..analysis.cli import main as analysis_main

    if args.list_rules:
        return analysis_main(["--list-rules"])
    if args.determinism:
        command = ["--determinism", "--format", args.fmt]
        if args.fail_on:
            command += ["--fail-on", args.fail_on]
        return analysis_main(command)
    return analysis_main(
        ["--stack", "synthetic", "--stack", "netbsd", "--harness",
         "--determinism", "--seed", str(args.seed), "--format", args.fmt,
         "--fail-on", args.fail_on or "never"]
    )


def _figure1(args: argparse.Namespace) -> None:
    result = figure1.run(seed=args.seed)
    print(result.phase_table())
    print()
    print(result.code_map())


def build_parser() -> argparse.ArgumentParser:
    """Parser for the serial one-experiment form."""
    parser = argparse.ArgumentParser(
        prog="ldlp-experiment",
        description=(
            "Regenerate the tables and figures of Blackwell, 'Speeding up "
            "Protocols for Small Messages' (SIGCOMM 1996)."
        ),
    )
    parser.add_argument(
        "experiment",
        choices=sorted(EXPERIMENTS) + ["all"],
        help="which table/figure to regenerate",
    )
    parser.add_argument("--seed", type=int, default=0, help="model/placement seed")
    parser.add_argument(
        "--paper-scale",
        action="store_true",
        help="full paper methodology (100 placements x 1 s) where applicable",
    )
    return parser


#: Subcommands dispatched to the parallel harness CLI (repro.harness.cli).
HARNESS_COMMANDS = ("run", "regress")

#: Subcommand dispatched to the tracing CLI (repro.obs.cli).
TRACE_COMMAND = "trace"

#: Subcommand dispatched to the fault-campaign CLI (repro.faults.cli).
FAULTS_COMMAND = "faults"

#: Subcommand dispatched to the static-analysis CLI (repro.analysis.cli).
ANALYZE_COMMAND = "analyze"


def main(argv: list[str] | None = None) -> int:
    """CLI entry: dispatch harness/trace subcommands or run serially."""
    if argv is None:
        argv = sys.argv[1:]
    if argv and argv[0] == ANALYZE_COMMAND:
        return _analyze_command(argv[1:])
    if argv and argv[0] in HARNESS_COMMANDS:
        from ..harness.cli import main as harness_main

        return harness_main(argv)
    if argv and argv[0] == TRACE_COMMAND:
        from ..obs.cli import main as obs_main

        return obs_main(argv[1:])
    if argv and argv[0] == FAULTS_COMMAND:
        from ..faults.cli import main as faults_main

        return faults_main(argv[1:])
    args = build_parser().parse_args(argv)
    names = sorted(EXPERIMENTS) if args.experiment == "all" else [args.experiment]
    for index, name in enumerate(names):
        if index:
            print("\n" + "=" * 72 + "\n")
        EXPERIMENTS[name](args)
    return 0


if __name__ == "__main__":
    sys.exit(main())
