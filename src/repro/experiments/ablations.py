"""Ablations A1-A3: design-choice sweeps behind the headline figures.

* **A1 batch cap** — why Figure 5's LDLP curve flattens: sweep the
  maximum batch size at a high arrival rate.
* **A2 miss penalty** — Section 1.2's trend argument: sweep the primary
  miss penalty (10 = DEC 3000/400, 20 = the paper's synthetic machine,
  60 instruction slots ≈ 30 cycles = Rosenblum's 1998 projection).
* **A3 layer code size** — Figure 4's large- vs small-message boundary:
  sweep per-layer code size; LDLP's advantage should vanish when the
  whole stack fits in the instruction cache and grow with code size.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..cache.hierarchy import MachineSpec
from ..sim.runner import SimulationConfig, run_simulation
from ..sim.stats import RunResult
from ..traffic.poisson import PoissonSource
from ..units import format_duration
from .report import render_table

DEFAULT_RATE = 9000.0
DEFAULT_DURATION = 0.15


@dataclass(frozen=True)
class SweepResult:
    """One ablation: parameter values and per-scheduler results."""

    parameter: str
    values: tuple[float, ...]
    conventional: list[RunResult]
    ldlp: list[RunResult]

    def render(self, title: str) -> str:
        rows = []
        for index, value in enumerate(self.values):
            conv = self.conventional[index]
            ldlp = self.ldlp[index]
            rows.append(
                [
                    value,
                    f"{conv.misses.total:.0f}",
                    format_duration(conv.latency.mean),
                    f"{ldlp.misses.total:.0f}",
                    format_duration(ldlp.latency.mean),
                    f"{ldlp.cycles_per_message:.0f}",
                ]
            )
        return render_table(
            [self.parameter, "conv miss", "conv lat", "LDLP miss", "LDLP lat",
             "LDLP cyc/msg"],
            rows,
            title=title,
        )


def _run_pair(config_conv: SimulationConfig, config_ldlp: SimulationConfig,
              rate: float, seed: int) -> tuple[RunResult, RunResult]:
    source = PoissonSource(rate, rng=seed)
    arrivals = source.arrival_list(config_conv.duration)
    conv = run_simulation(source, config_conv, seed=seed, arrivals=arrivals)
    ldlp = run_simulation(source, config_ldlp, seed=seed, arrivals=arrivals)
    return conv, ldlp


def batch_cap_sweep(
    caps: tuple[int, ...] = (1, 2, 4, 8, 14, 24, 32),
    rate: float = DEFAULT_RATE,
    duration: float = DEFAULT_DURATION,
    seed: int = 0,
) -> SweepResult:
    """A1: LDLP with the batch limit forced to each cap."""
    conventional = []
    ldlp = []
    for cap in caps:
        conv_cfg = SimulationConfig(scheduler="conventional", duration=duration)
        ldlp_cfg = SimulationConfig(
            scheduler="ldlp", duration=duration, batch_limit=cap
        )
        conv, batched = _run_pair(conv_cfg, ldlp_cfg, rate, seed)
        conventional.append(conv)
        ldlp.append(batched)
    return SweepResult("cap", tuple(float(c) for c in caps), conventional, ldlp)


def miss_penalty_sweep(
    penalties: tuple[int, ...] = (0, 10, 20, 30, 60),
    rate: float = 6000.0,
    duration: float = DEFAULT_DURATION,
    seed: int = 0,
) -> SweepResult:
    """A2: both schedulers across miss penalties."""
    conventional = []
    ldlp = []
    for penalty in penalties:
        spec = MachineSpec(miss_penalty=penalty)
        conv_cfg = SimulationConfig(
            scheduler="conventional", duration=duration, spec=spec
        )
        ldlp_cfg = SimulationConfig(scheduler="ldlp", duration=duration, spec=spec)
        conv, batched = _run_pair(conv_cfg, ldlp_cfg, rate, seed)
        conventional.append(conv)
        ldlp.append(batched)
    return SweepResult(
        "penalty", tuple(float(p) for p in penalties), conventional, ldlp
    )


def code_size_sweep(
    code_sizes: tuple[int, ...] = (1024, 2048, 4096, 6144, 8192, 12288),
    rate: float = 4000.0,
    duration: float = DEFAULT_DURATION,
    seed: int = 0,
) -> SweepResult:
    """A3: per-layer code size from cache-resident to far oversized.

    Compute cost is held fixed; only the memory footprint varies.
    """
    conventional = []
    ldlp = []
    for code in code_sizes:
        conv_cfg = SimulationConfig(
            scheduler="conventional", duration=duration, layer_code_bytes=code
        )
        ldlp_cfg = SimulationConfig(
            scheduler="ldlp", duration=duration, layer_code_bytes=code
        )
        conv, batched = _run_pair(conv_cfg, ldlp_cfg, rate, seed)
        conventional.append(conv)
        ldlp.append(batched)
    return SweepResult(
        "code B", tuple(float(c) for c in code_sizes), conventional, ldlp
    )


#: Section 5.2: "The NetBSD TCP and IP code ... is 55% smaller on the
#: i386"; typical i386 code about 40% smaller.  We model the i386 as the
#: same stack at 0.45x code density.
I386_DENSITY = 0.45


def cisc_density_sweep(
    densities: tuple[float, ...] = (1.0, I386_DENSITY),
    rate: float = 5000.0,
    duration: float = DEFAULT_DURATION,
    seed: int = 0,
) -> SweepResult:
    """A4 (Section 5.2): CISC code density.

    Scales per-layer code size by each density factor (1.0 = Alpha,
    0.45 = i386) with compute cost held fixed.  Denser code means
    better locality for the conventional schedule and a smaller LDLP
    advantage — the paper's CISC-vs-RISC observation.
    """
    conventional = []
    ldlp = []
    for density in densities:
        code = max(512, int(6144 * density) // 32 * 32)
        conv_cfg = SimulationConfig(
            scheduler="conventional", duration=duration, layer_code_bytes=code
        )
        ldlp_cfg = SimulationConfig(
            scheduler="ldlp", duration=duration, layer_code_bytes=code
        )
        conv, batched = _run_pair(conv_cfg, ldlp_cfg, rate, seed)
        conventional.append(conv)
        ldlp.append(batched)
    return SweepResult("density", tuple(densities), conventional, ldlp)


def prefetch_sweep(
    efficiencies: tuple[float, ...] = (0.0, 0.25, 0.5, 0.75),
    rate: float = 6000.0,
    duration: float = DEFAULT_DURATION,
    seed: int = 0,
) -> SweepResult:
    """A6 (Section 4 remark): instruction prefetch from the next level.

    "Some processors can prefetch instructions from the second level
    cache to hide some of the cache miss cost" — sweep the fraction of
    instruction stall hidden.  Prefetch narrows LDLP's advantage but
    cannot remove it while any instruction stall remains.
    """
    conventional = []
    ldlp = []
    for efficiency in efficiencies:
        spec = MachineSpec(iprefetch_efficiency=efficiency)
        conv_cfg = SimulationConfig(
            scheduler="conventional", duration=duration, spec=spec
        )
        ldlp_cfg = SimulationConfig(scheduler="ldlp", duration=duration, spec=spec)
        conv, batched = _run_pair(conv_cfg, ldlp_cfg, rate, seed)
        conventional.append(conv)
        ldlp.append(batched)
    return SweepResult("prefetch", tuple(efficiencies), conventional, ldlp)


def main() -> None:
    print(batch_cap_sweep().render("A1: LDLP batch-size cap at 9000 msgs/s"))
    print()
    print(miss_penalty_sweep().render("A2: miss-penalty sweep at 6000 msgs/s"))
    print()
    print(code_size_sweep().render("A3: per-layer code size at 4000 msgs/s"))
    print()
    print(
        cisc_density_sweep().render(
            "A4: CISC code density (1.0 = Alpha, 0.45 = i386) at 5000 msgs/s"
        )
    )
    print()
    print(
        prefetch_sweep().render(
            "A6: instruction-prefetch efficiency at 6000 msgs/s"
        )
    )
    from ..netbsd.cord import run_cord_experiment

    print()
    print(run_cord_experiment().render())


if __name__ == "__main__":
    main()
