"""Ablations A1-A3: design-choice sweeps behind the headline figures.

* **A1 batch cap** — why Figure 5's LDLP curve flattens: sweep the
  maximum batch size at a high arrival rate.
* **A2 miss penalty** — Section 1.2's trend argument: sweep the primary
  miss penalty (10 = DEC 3000/400, 20 = the paper's synthetic machine,
  60 instruction slots ≈ 30 cycles = Rosenblum's 1998 projection).
* **A3 layer code size** — Figure 4's large- vs small-message boundary:
  sweep per-layer code size; LDLP's advantage should vanish when the
  whole stack fits in the instruction cache and grow with code size.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Any

from ..cache.hierarchy import MachineSpec
from ..errors import ConfigurationError
from ..harness.points import SweepPoint, SweepSpec, Tolerance
from ..sim.runner import SimulationConfig, run_simulation
from ..sim.stats import RunResult
from ..traffic.poisson import PoissonSource
from ..units import format_duration
from .report import render_table

DEFAULT_RATE = 9000.0
DEFAULT_DURATION = 0.15


@dataclass(frozen=True)
class SweepResult:
    """One ablation: parameter values and per-scheduler results."""

    parameter: str
    values: tuple[float, ...]
    conventional: list[RunResult]
    ldlp: list[RunResult]

    def render(self, title: str) -> str:
        rows = []
        for index, value in enumerate(self.values):
            conv = self.conventional[index]
            ldlp = self.ldlp[index]
            rows.append(
                [
                    value,
                    f"{conv.misses.total:.0f}",
                    format_duration(conv.latency.mean),
                    f"{ldlp.misses.total:.0f}",
                    format_duration(ldlp.latency.mean),
                    f"{ldlp.cycles_per_message:.0f}",
                ]
            )
        return render_table(
            [self.parameter, "conv miss", "conv lat", "LDLP miss", "LDLP lat",
             "LDLP cyc/msg"],
            rows,
            title=title,
        )


def _run_pair(config_conv: SimulationConfig, config_ldlp: SimulationConfig,
              rate: float, seed: int) -> tuple[RunResult, RunResult]:
    source = PoissonSource(rate, rng=seed)
    arrivals = source.arrival_list(config_conv.duration)
    conv = run_simulation(source, config_conv, seed=seed, arrivals=arrivals)
    ldlp = run_simulation(source, config_ldlp, seed=seed, arrivals=arrivals)
    return conv, ldlp


def batch_cap_sweep(
    caps: tuple[int, ...] = (1, 2, 4, 8, 14, 24, 32),
    rate: float = DEFAULT_RATE,
    duration: float = DEFAULT_DURATION,
    seed: int = 0,
) -> SweepResult:
    """A1: LDLP with the batch limit forced to each cap."""
    conventional = []
    ldlp = []
    for cap in caps:
        conv_cfg = SimulationConfig(scheduler="conventional", duration=duration)
        ldlp_cfg = SimulationConfig(
            scheduler="ldlp", duration=duration, batch_limit=cap
        )
        conv, batched = _run_pair(conv_cfg, ldlp_cfg, rate, seed)
        conventional.append(conv)
        ldlp.append(batched)
    return SweepResult("cap", tuple(float(c) for c in caps), conventional, ldlp)


def miss_penalty_sweep(
    penalties: tuple[int, ...] = (0, 10, 20, 30, 60),
    rate: float = 6000.0,
    duration: float = DEFAULT_DURATION,
    seed: int = 0,
) -> SweepResult:
    """A2: both schedulers across miss penalties."""
    conventional = []
    ldlp = []
    for penalty in penalties:
        spec = MachineSpec(miss_penalty=penalty)
        conv_cfg = SimulationConfig(
            scheduler="conventional", duration=duration, spec=spec
        )
        ldlp_cfg = SimulationConfig(scheduler="ldlp", duration=duration, spec=spec)
        conv, batched = _run_pair(conv_cfg, ldlp_cfg, rate, seed)
        conventional.append(conv)
        ldlp.append(batched)
    return SweepResult(
        "penalty", tuple(float(p) for p in penalties), conventional, ldlp
    )


def code_size_sweep(
    code_sizes: tuple[int, ...] = (1024, 2048, 4096, 6144, 8192, 12288),
    rate: float = 4000.0,
    duration: float = DEFAULT_DURATION,
    seed: int = 0,
) -> SweepResult:
    """A3: per-layer code size from cache-resident to far oversized.

    Compute cost is held fixed; only the memory footprint varies.
    """
    conventional = []
    ldlp = []
    for code in code_sizes:
        conv_cfg = SimulationConfig(
            scheduler="conventional", duration=duration, layer_code_bytes=code
        )
        ldlp_cfg = SimulationConfig(
            scheduler="ldlp", duration=duration, layer_code_bytes=code
        )
        conv, batched = _run_pair(conv_cfg, ldlp_cfg, rate, seed)
        conventional.append(conv)
        ldlp.append(batched)
    return SweepResult(
        "code B", tuple(float(c) for c in code_sizes), conventional, ldlp
    )


#: Section 5.2: "The NetBSD TCP and IP code ... is 55% smaller on the
#: i386"; typical i386 code about 40% smaller.  We model the i386 as the
#: same stack at 0.45x code density.
I386_DENSITY = 0.45


def cisc_density_sweep(
    densities: tuple[float, ...] = (1.0, I386_DENSITY),
    rate: float = 5000.0,
    duration: float = DEFAULT_DURATION,
    seed: int = 0,
) -> SweepResult:
    """A4 (Section 5.2): CISC code density.

    Scales per-layer code size by each density factor (1.0 = Alpha,
    0.45 = i386) with compute cost held fixed.  Denser code means
    better locality for the conventional schedule and a smaller LDLP
    advantage — the paper's CISC-vs-RISC observation.
    """
    conventional = []
    ldlp = []
    for density in densities:
        code = max(512, int(6144 * density) // 32 * 32)
        conv_cfg = SimulationConfig(
            scheduler="conventional", duration=duration, layer_code_bytes=code
        )
        ldlp_cfg = SimulationConfig(
            scheduler="ldlp", duration=duration, layer_code_bytes=code
        )
        conv, batched = _run_pair(conv_cfg, ldlp_cfg, rate, seed)
        conventional.append(conv)
        ldlp.append(batched)
    return SweepResult("density", tuple(densities), conventional, ldlp)


def prefetch_sweep(
    efficiencies: tuple[float, ...] = (0.0, 0.25, 0.5, 0.75),
    rate: float = 6000.0,
    duration: float = DEFAULT_DURATION,
    seed: int = 0,
) -> SweepResult:
    """A6 (Section 4 remark): instruction prefetch from the next level.

    "Some processors can prefetch instructions from the second level
    cache to hide some of the cache miss cost" — sweep the fraction of
    instruction stall hidden.  Prefetch narrows LDLP's advantage but
    cannot remove it while any instruction stall remains.
    """
    conventional = []
    ldlp = []
    for efficiency in efficiencies:
        spec = MachineSpec(iprefetch_efficiency=efficiency)
        conv_cfg = SimulationConfig(
            scheduler="conventional", duration=duration, spec=spec
        )
        ldlp_cfg = SimulationConfig(scheduler="ldlp", duration=duration, spec=spec)
        conv, batched = _run_pair(conv_cfg, ldlp_cfg, rate, seed)
        conventional.append(conv)
        ldlp.append(batched)
    return SweepResult("prefetch", tuple(efficiencies), conventional, ldlp)


# ----------------------------------------------------------------------
# Declarative sweep interface (repro.harness)


def _configs_for(
    sweep: str, value: float, duration: float
) -> tuple[SimulationConfig, SimulationConfig]:
    """Conventional and LDLP configurations for one ablation value."""
    if sweep == "batch_cap":
        conv = SimulationConfig(scheduler="conventional", duration=duration)
        ldlp = SimulationConfig(
            scheduler="ldlp", duration=duration, batch_limit=int(value)
        )
    elif sweep == "miss_penalty":
        spec = MachineSpec(miss_penalty=int(value))
        conv = SimulationConfig(
            scheduler="conventional", duration=duration, spec=spec
        )
        ldlp = SimulationConfig(scheduler="ldlp", duration=duration, spec=spec)
    elif sweep == "code_size":
        conv = SimulationConfig(
            scheduler="conventional", duration=duration,
            layer_code_bytes=int(value),
        )
        ldlp = SimulationConfig(
            scheduler="ldlp", duration=duration, layer_code_bytes=int(value)
        )
    elif sweep == "prefetch":
        spec = MachineSpec(iprefetch_efficiency=float(value))
        conv = SimulationConfig(
            scheduler="conventional", duration=duration, spec=spec
        )
        ldlp = SimulationConfig(scheduler="ldlp", duration=duration, spec=spec)
    else:
        raise ConfigurationError(f"unknown ablation sweep {sweep!r}")
    return conv, ldlp


def compute_point(
    sweep: str, value: float, rate: float, duration: float, seed: int = 0,
    engine: str = "vec",
) -> dict:
    """One ablation value: conventional vs LDLP on the same arrivals."""
    conv_cfg, ldlp_cfg = _configs_for(sweep, value, duration)
    conv_cfg = replace(conv_cfg, engine=engine)
    ldlp_cfg = replace(ldlp_cfg, engine=engine)
    conv, ldlp = _run_pair(conv_cfg, ldlp_cfg, rate, seed)
    return {"conventional": conv.to_dict(), "ldlp": ldlp.to_dict()}


#: Per scale: {sweep: (values, rate)} plus the shared duration.
SWEEP_SCALES: dict[str, tuple[dict[str, tuple[tuple[float, ...], float]], float]] = {
    "ci": (
        {
            "batch_cap": ((1, 8, 14), DEFAULT_RATE),
            "miss_penalty": ((0, 20, 60), 6000.0),
            "code_size": ((1024, 6144, 12288), 4000.0),
            "prefetch": ((0.0, 0.5), 6000.0),
        },
        0.08,
    ),
    "default": (
        {
            "batch_cap": ((1, 2, 4, 8, 14, 24, 32), DEFAULT_RATE),
            "miss_penalty": ((0, 10, 20, 30, 60), 6000.0),
            "code_size": ((1024, 2048, 4096, 6144, 8192, 12288), 4000.0),
            "prefetch": ((0.0, 0.25, 0.5, 0.75), 6000.0),
        },
        DEFAULT_DURATION,
    ),
    "paper": (
        {
            "batch_cap": ((1, 2, 4, 8, 14, 24, 32), DEFAULT_RATE),
            "miss_penalty": ((0, 10, 20, 30, 60), 6000.0),
            "code_size": ((1024, 2048, 4096, 6144, 8192, 12288), 4000.0),
            "prefetch": ((0.0, 0.25, 0.5, 0.75), 6000.0),
        },
        0.5,
    ),
}


def sweep_points(scale: str) -> list[SweepPoint]:
    sweeps, duration = SWEEP_SCALES[scale]
    return [
        SweepPoint(
            experiment="ablations",
            key=f"{sweep}={value:g}",
            func="repro.experiments.ablations:compute_point",
            params={
                "sweep": sweep,
                "value": value,
                "rate": rate,
                "duration": duration,
                "seed": 0,
            },
        )
        for sweep, (values, rate) in sweeps.items()
        for value in values
    ]


def _pair(results: dict[str, Any], key: str) -> tuple[RunResult, RunResult]:
    data = results[key]
    return (
        RunResult.from_dict(data["conventional"]),
        RunResult.from_dict(data["ldlp"]),
    )


def golden_quantities(
    points: list[SweepPoint], results: dict[str, Any]
) -> dict[str, float]:
    """The design-choice claims: cap=1 degenerates to conventional,
    penalty=0 removes the advantage, cache-resident code removes it,
    and each sweep's strongest setting keeps a solid win."""
    del points
    quantities: dict[str, float] = {}
    for key, label in (
        ("batch_cap=1", "batch1"),
        ("batch_cap=14", "batch14"),
        ("miss_penalty=0", "penalty0"),
        ("miss_penalty=60", "penalty60"),
        ("code_size=1024", "code_small"),
        ("code_size=12288", "code_big"),
        ("prefetch=0.5", "prefetch_half"),
    ):
        if key not in results:
            continue
        conv, ldlp = _pair(results, key)
        if key.startswith("batch_cap"):
            quantities[f"{label}_miss_ratio"] = (
                ldlp.misses.total / max(conv.misses.total, 1e-9)
            )
        else:
            quantities[f"{label}_cycles_ratio"] = (
                ldlp.cycles_per_message / max(conv.cycles_per_message, 1e-9)
            )
    return quantities


SWEEP = SweepSpec(
    name="ablations",
    points=sweep_points,
    quantities=golden_quantities,
    sources=(
        "repro.sim",
        "repro.core",
        "repro.cache",
        "repro.machine",
        "repro.traffic",
        "repro.buffers",
        "repro.netbsd",
        "repro.trace",
        "repro.obs.runtime",
        "repro.errors",
        "repro.units",
        "repro.experiments.ablations",
        "repro.experiments.report",
        "repro.harness.points",
    ),
    default_tolerance=Tolerance(rel=0.15),
    tolerances={
        "batch1_miss_ratio": Tolerance(rel=0.1),
        "penalty0_cycles_ratio": Tolerance(rel=0.1),
        "code_small_cycles_ratio": Tolerance(rel=0.12),
    },
)


def main() -> None:
    print(batch_cap_sweep().render("A1: LDLP batch-size cap at 9000 msgs/s"))
    print()
    print(miss_penalty_sweep().render("A2: miss-penalty sweep at 6000 msgs/s"))
    print()
    print(code_size_sweep().render("A3: per-layer code size at 4000 msgs/s"))
    print()
    print(
        cisc_density_sweep().render(
            "A4: CISC code density (1.0 = Alpha, 0.45 = i386) at 5000 msgs/s"
        )
    )
    print()
    print(
        prefetch_sweep().render(
            "A6: instruction-prefetch efficiency at 6000 msgs/s"
        )
    )
    from ..netbsd.cord import run_cord_experiment

    print()
    print(run_cord_experiment().render())


if __name__ == "__main__":
    main()
