"""Reproduction harnesses: one module per table/figure of the paper.

Each module exposes ``run(...) -> <Result>`` returning a structured
result with a ``render()`` text table and a shape/tolerance predicate,
plus a ``main()`` entry point.  The ``ldlp-experiment`` CLI (see
:mod:`repro.experiments.cli`) drives them from the shell.
"""

from . import (
    ablations,
    figure1,
    figure5,
    figure6,
    figure7,
    figure8,
    motivation,
    schedules,
    table1,
    table2,
    table3,
)

__all__ = [
    "ablations",
    "figure1",
    "figure5",
    "figure6",
    "figure7",
    "figure8",
    "motivation",
    "schedules",
    "table1",
    "table2",
    "table3",
]
