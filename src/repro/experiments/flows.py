"""Flow-lookup cache sweep — hit ratio and lookup misses per message.

The ``flows`` experiment sweeps lookup-cache size x organization x
Zipf skew x scheduler over the Section-4 stack with route/PCB lookup
charging attached (:mod:`repro.flows`), and reports each combination's
lookup-cache hit ratio and full-table-walks per completed message.
A companion grid (``bellcore/`` keys) runs the same Zipf flow tagging
over the self-similar Pareto ON/OFF base — the bursty stateful source
whose per-batch re-materialization exposed the ``ZipfFlowSource``
snapshot bug this sweep regression-guards.

Two golden-pinned headlines, both Jain's DEC-TR-592 qualitative claims
transplanted onto the paper's machine model:

* hit ratio grows monotonically with lookup-cache size at fixed skew
  (the classic lookup-cache curve — pinned per (scheduler,
  organization, skew) as an exact 1.0 boolean, plus the raw curve
  values under tolerance);
* batching schedulers (LDLP, Grouped) incur *at most* the per-message
  schedulers' lookup misses per message at equal load over the Poisson
  grid, because one batch resolves each distinct destination once
  (``lookup_amortization_ok``, exact 1.0) — with exactly zero
  conservation violations.  Over the bursty Bellcore grid only the
  performed-lookup *fraction* reduction is guaranteed
  (``lookup_reduction_ok``, exact 1.0): batch dedup also skips LRU
  recency refreshes, so an LRU organization can miss slightly more per
  message while still performing a smaller share of its demanded
  lookups.

Every sweep point is the pure module-level
:func:`repro.flows.runner.flows_point`, so the sweep parallelizes over
the harness worker pool and caches by content hash like any other
experiment.  Points accept ``engine`` for the CI dual-engine passes,
but flow-charged runs always fall back to the scalar loop
(``vec_supported`` declines them), so both passes share one set of
byte-identical results.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from ..flows.runner import FlowRunResult, flows_point
from ..harness.points import SweepPoint, SweepSpec, Tolerance
from .report import render_table

#: Slack for the amortization comparison: misses/msg are ratios of
#: exact integer counters, so equality up to float noise still counts.
_EPSILON = 1e-9


@dataclass(frozen=True)
class FlowRow:
    """One rendered (scheduler, organization, skew, entries) combination."""

    scheduler: str
    organization: str
    skew: float
    entries: int
    result: FlowRunResult
    violations: int
    #: Base arrival process ("poisson" or "bellcore" self-similar).
    base: str = "poisson"


@dataclass(frozen=True)
class FlowSweepResult:
    """The assembled flow sweep: one row per combination."""

    rows: tuple[FlowRow, ...]

    def conservation_violations(self) -> int:
        """Total per-seed conservation failures across every point."""
        return sum(row.violations for row in self.rows)

    def hit_ratio_curve(
        self, scheduler: str, organization: str, skew: float,
        base: str = "poisson",
    ) -> list[tuple[int, float]]:
        """(entries, hit ratio) pairs for one curve, smallest cache first."""
        points = [
            (row.entries, row.result.hit_ratio)
            for row in self.rows
            if row.scheduler == scheduler
            and row.organization == organization
            and row.skew == skew
            and row.base == base
        ]
        return sorted(points)

    def hit_ratio_monotonic(
        self, scheduler: str, organization: str, skew: float,
        base: str = "poisson",
    ) -> bool:
        """Whether one curve's hit ratio never drops as the cache grows."""
        curve = self.hit_ratio_curve(scheduler, organization, skew, base)
        return all(
            earlier <= later + _EPSILON
            for (_, earlier), (_, later) in zip(curve, curve[1:])
        )

    def amortization_ok(self, base: str = "poisson") -> bool:
        """Batching schedulers never exceed conventional lookup misses.

        For every (organization, skew, entries) combination over one
        base process where both the conventional scheduler and a
        batching scheduler (ldlp, grouped) ran, the batching
        scheduler's lookup misses per completed message must be at most
        conventional's.  This is an *empirical* pin, not a theorem: it
        holds over the memoryless Poisson grid, but batch dedup also
        skips the LRU recency refresh a repeated in-batch access would
        have given a hot flow, so over bursty self-similar traffic an
        LRU organization can genuinely miss slightly *more* per message
        while still performing fewer lookups — which is why this pin is
        scoped per base and the guaranteed property is
        :meth:`lookup_reduction_ok`.
        """
        baseline: dict[tuple[str, float, int], float] = {}
        for row in self.rows:
            if row.scheduler == "conventional" and row.base == base:
                key = (row.organization, row.skew, row.entries)
                baseline[key] = row.result.lookup_misses_per_message
        for row in self.rows:
            if row.scheduler not in ("ldlp", "grouped") or row.base != base:
                continue
            reference = baseline.get(
                (row.organization, row.skew, row.entries)
            )
            if reference is None:
                continue
            if row.result.lookup_misses_per_message > reference + _EPSILON:
                return False
        return True

    def lookup_reduction_ok(self) -> bool:
        """Batching never performs a larger *fraction* of demanded lookups.

        The dedup guarantee proper, normalized so it holds for any base
        process: every row performs at most as many lookups as its
        messages demanded (``lookups <= demand``), and a batching
        scheduler's performed fraction ``lookups / demand`` never
        exceeds the conventional counterpart's (which is exactly 1 —
        size-one batches have nothing to deduplicate).  Raw lookup
        *counts* are deliberately not compared: schedulers drop
        different amounts under load, so a batching scheduler that
        completes more messages may legitimately perform more total
        lookups.
        """
        baseline: dict[tuple[str, str, float, int], float] = {}
        for row in self.rows:
            if row.result.lookups > row.result.demand:
                return False
            if row.scheduler == "conventional" and row.result.demand:
                key = (row.base, row.organization, row.skew, row.entries)
                baseline[key] = row.result.lookups / row.result.demand
        for row in self.rows:
            if row.scheduler not in ("ldlp", "grouped"):
                continue
            if not row.result.demand:
                continue
            reference = baseline.get(
                (row.base, row.organization, row.skew, row.entries)
            )
            if reference is None:
                continue
            ratio = row.result.lookups / row.result.demand
            if ratio > reference + _EPSILON:
                return False
        return True

    def render(self) -> str:
        """The flow-sweep table (hit ratio, misses, amortization)."""
        table_rows = []
        for row in self.rows:
            result = row.result
            run = result.run
            table_rows.append(
                [
                    row.base,
                    row.scheduler,
                    row.organization,
                    f"{row.skew:g}",
                    row.entries,
                    run.completed,
                    f"{100.0 * result.hit_ratio:.1f}%",
                    f"{result.lookup_misses_per_message:.3f}",
                    f"{result.lookups / max(result.demand, 1):.2f}",
                    f"{run.mean_batch_size:.1f}",
                    "ok" if row.violations == 0 else f"{row.violations} BAD",
                ]
            )
        return render_table(
            [
                "base",
                "scheduler",
                "org",
                "skew",
                "entries",
                "done",
                "hit%",
                "miss/msg",
                "lkup/dmnd",
                "batch",
                "conserved",
            ],
            table_rows,
            title=(
                "Flow-lookup cache sweep: hit ratio and lookup misses vs "
                "cache size x organization x Zipf skew x scheduler"
            ),
        )


# ----------------------------------------------------------------------
# Declarative sweep interface (repro.harness)

#: (organizations, entry counts, skews, schedulers, seeds, duration)
#: per harness scale.  The offered load is fixed and high enough that
#: batching schedulers assemble real batches — that is what exposes
#: lookup amortization.  The default and paper scales cover every
#: registered organization (HARN003 gates that this stays true).
SWEEP_SCALES: dict[
    str,
    tuple[
        tuple[str, ...],
        tuple[int, ...],
        tuple[float, ...],
        tuple[str, ...],
        tuple[int, ...],
        float,
    ],
] = {
    "ci": (
        ("direct", "lru4", "fifo4"),
        (4, 16, 64),
        (1.1,),
        ("conventional", "ldlp"),
        (0, 1),
        0.05,
    ),
    "default": (
        ("direct", "lru2", "fifo2", "lru4", "fifo4"),
        (4, 16, 64),
        (0.6, 1.1),
        ("conventional", "ilp", "ldlp", "grouped"),
        (0, 1, 2),
        0.1,
    ),
    "paper": (
        ("direct", "lru2", "fifo2", "lru4", "fifo4"),
        (4, 8, 16, 32, 64, 128),
        (0.5, 1.0, 1.5),
        ("conventional", "ilp", "ldlp", "grouped"),
        tuple(range(10)),
        0.3,
    ),
}

#: Poisson arrival rate (messages/s): just above the conventional
#: scheduler's capacity, so queues form and batches are non-trivial.
SWEEP_RATE = 11000.0

#: Modeled destination population the Zipf draw ranks over.
SWEEP_NUM_FLOWS = 64

#: Bellcore-base companion grid per scale: (organizations, entry
#: counts, skews, schedulers, seeds, duration).  A smaller grid than
#: the Poisson one — the point is Zipf flows over a *bursty* stateful
#: base (the ROADMAP PR-9 headroom item and the snapshot-bug regression
#: surface), not a second full organization sweep.
BELLCORE_SCALES: dict[
    str,
    tuple[
        tuple[str, ...],
        tuple[int, ...],
        tuple[float, ...],
        tuple[str, ...],
        tuple[int, ...],
        float,
    ],
] = {
    "ci": (
        ("direct",),
        (4, 16, 64),
        (1.1,),
        ("conventional", "ldlp"),
        (0, 1),
        0.05,
    ),
    "default": (
        ("direct", "lru4"),
        (4, 16, 64),
        (1.1,),
        ("conventional", "ilp", "ldlp", "grouped"),
        (0, 1, 2),
        0.1,
    ),
    "paper": (
        ("direct", "lru2", "lru4"),
        (4, 16, 64, 128),
        (1.0, 1.5),
        ("conventional", "ilp", "ldlp", "grouped"),
        (0, 1, 2, 3, 4),
        0.3,
    ),
}


def sweep_points(scale: str) -> list[SweepPoint]:
    """Cache size x organization x skew x scheduler at fixed load.

    Poisson points keep their original keys and parameters (stable
    content hashes, stable golden names); the Bellcore companion grid
    rides along under ``bellcore/``-prefixed keys with
    ``base="bellcore"``.
    """
    organizations, entries_list, skews, schedulers, seeds, duration = (
        SWEEP_SCALES[scale]
    )
    points = [
        SweepPoint(
            experiment="flows",
            key=(
                f"{scheduler}/{organization}/skew={skew:g}/"
                f"entries={entries}"
            ),
            func="repro.flows.runner:flows_point",
            params={
                "scheduler": scheduler,
                "organization": organization,
                "entries": entries,
                "skew": skew,
                "rate": SWEEP_RATE,
                "seeds": list(seeds),
                "duration": duration,
                "num_flows": SWEEP_NUM_FLOWS,
            },
        )
        for scheduler in schedulers
        for organization in organizations
        for skew in skews
        for entries in entries_list
    ]
    organizations, entries_list, skews, schedulers, seeds, duration = (
        BELLCORE_SCALES[scale]
    )
    points.extend(
        SweepPoint(
            experiment="flows",
            key=(
                f"bellcore/{scheduler}/{organization}/skew={skew:g}/"
                f"entries={entries}"
            ),
            func="repro.flows.runner:flows_point",
            params={
                "scheduler": scheduler,
                "organization": organization,
                "entries": entries,
                "skew": skew,
                "rate": SWEEP_RATE,
                "seeds": list(seeds),
                "duration": duration,
                "num_flows": SWEEP_NUM_FLOWS,
                "base": "bellcore",
            },
        )
        for scheduler in schedulers
        for organization in organizations
        for skew in skews
        for entries in entries_list
    )
    return points


def assemble(
    points: list[SweepPoint], results: dict[str, Any]
) -> FlowSweepResult:
    """Rebuild the sweep table from point results."""
    rows = []
    for point in points:
        data = results[point.key]
        rows.append(
            FlowRow(
                scheduler=point.params["scheduler"],
                organization=point.params["organization"],
                skew=float(point.params["skew"]),
                entries=int(point.params["entries"]),
                result=FlowRunResult.from_dict(data["result"]),
                violations=int(data["conservation_violations"]),
                base=str(point.params.get("base", "poisson")),
            )
        )
    return FlowSweepResult(rows=tuple(rows))


def golden_quantities(
    points: list[SweepPoint], results: dict[str, Any]
) -> dict[str, float]:
    """The pinned flow-lookup curves.

    Per combination: the lookup-cache hit ratio and lookup misses per
    completed message (tolerance-gated curve values).  Per (scheduler,
    organization, skew): an exact 1.0 pin that the hit-ratio curve is
    monotone in cache size — Jain's qualitative result.  Sweep-wide:
    the exact amortization boolean (batching never exceeds
    conventional's misses/msg over the Poisson grid), the exact
    lookup-reduction boolean (batching never performs more lookups,
    any base), and the exact-zero conservation count.
    """
    sweep = assemble(points, results)
    quantities: dict[str, float] = {}
    curves: list[tuple[str, str, str, float]] = []
    for row in sweep.rows:
        mark = "bellcore/" if row.base == "bellcore" else ""
        prefix = (
            f"{mark}{row.scheduler}/{row.organization}/skew={row.skew:g}/"
            f"entries={row.entries}"
        )
        quantities[f"{prefix}/hit_ratio"] = row.result.hit_ratio
        quantities[f"{prefix}/lookup_misses_per_msg"] = (
            row.result.lookup_misses_per_message
        )
        curve = (row.base, row.scheduler, row.organization, row.skew)
        if curve not in curves:
            curves.append(curve)
    for base, scheduler, organization, skew in curves:
        mark = "bellcore/" if base == "bellcore" else ""
        quantities[
            f"{mark}{scheduler}/{organization}/skew={skew:g}/"
            f"hit_ratio_monotonic"
        ] = float(
            sweep.hit_ratio_monotonic(scheduler, organization, skew, base)
        )
    quantities["lookup_amortization_ok"] = float(sweep.amortization_ok())
    quantities["lookup_reduction_ok"] = float(sweep.lookup_reduction_ok())
    quantities["conservation_violations"] = float(
        sweep.conservation_violations()
    )
    return quantities


def _exact_tolerances() -> dict[str, Tolerance]:
    """Exact-match tolerances for every boolean/count quantity.

    Enumerated statically over every scale's combinations so the spec
    covers whichever scale a regress run uses.
    """
    names = {
        "lookup_amortization_ok",
        "lookup_reduction_ok",
        "conservation_violations",
    }
    grids = [("", SWEEP_SCALES), ("bellcore/", BELLCORE_SCALES)]
    for mark, scales in grids:
        for organizations, _, skews, schedulers, _, _ in scales.values():
            for scheduler in schedulers:
                for organization in organizations:
                    for skew in skews:
                        names.add(
                            f"{mark}{scheduler}/{organization}/skew={skew:g}/"
                            f"hit_ratio_monotonic"
                        )
    return {name: Tolerance() for name in sorted(names)}


SWEEP = SweepSpec(
    name="flows",
    points=sweep_points,
    quantities=golden_quantities,
    assemble=assemble,
    sources=(
        "repro.sim",
        "repro.core",
        "repro.cache",
        "repro.machine",
        "repro.traffic",
        "repro.buffers",
        "repro.flows",
        "repro.obs.runtime",
        "repro.units",
        "repro.errors",
        "repro.experiments.report",
        "repro.experiments.flows",
        "repro.harness.points",
    ),
    default_tolerance=Tolerance(rel=0.4, abs=0.02),
    tolerances=_exact_tolerances(),
)


def run(scale: str = "ci") -> FlowSweepResult:
    """Run the sweep serially (no worker pool) and assemble the table."""
    points = sweep_points(scale)
    results = {point.key: flows_point(**point.params) for point in points}
    return assemble(points, results)


def main() -> None:
    """Serial CLI entry: run the CI-scale sweep and print the table."""
    print(run().render())


if __name__ == "__main__":
    main()
