"""Multi-core dispatch sweep — throughput and per-core miss rate.

The ``multicore`` experiment sweeps core count x dispatch policy x
scheduler over the synthetic Section-4 stack dispatched across N
modeled cores (:mod:`repro.sim.multicore`), and reports aggregate
throughput, misses per message, and dispatch imbalance for each
combination.  The golden-pinned headline is the locality claim behind
receive-side dispatch: at the top swept core count, LDLP-aware dispatch
must show a lower I-cache miss rate than flow-hash RSS under a batching
scheduler (the pinned ``ldlp/ldlp_vs_rss_imiss`` ratio sits well below
1), because chunked steering lets each core batch arrivals and keep
layer code resident — while under the conventional scheduler the ratio
pins at 1, since per-message processing cannot profit from steering.

Every sweep point is the pure module-level
:func:`repro.sim.multicore.multicore_point`, so the sweep parallelizes
over the harness worker pool and caches by content hash like any other
experiment.  Points take no ``engine`` parameter: the multi-core drive
loop is always the scalar event merge (the vectorized engine is a
single-core whole-run replay), so both CI engine passes share one set
of cached results.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from ..harness.points import SweepPoint, SweepSpec, Tolerance
from ..sim.multicore import MultiCoreRunResult, multicore_point
from .report import render_table

#: Dispatch policies the sweep compares (all registered policies —
#: HARN002 gates that this stays in sync with the registry).
SWEEP_DISPATCH = ("rss", "app", "ldlp")


@dataclass(frozen=True)
class MultiCoreRow:
    """One rendered (scheduler, dispatch, core count) combination."""

    scheduler: str
    dispatch: str
    cores: int
    result: MultiCoreRunResult
    imbalance: float
    violations: int


@dataclass(frozen=True)
class MultiCoreSweepResult:
    """The assembled dispatch sweep: one row per combination."""

    rows: tuple[MultiCoreRow, ...]

    def top_cores(self) -> int:
        """The highest swept core count."""
        return max(row.cores for row in self.rows)

    def conservation_violations(self) -> int:
        """Total per-seed conservation failures across every point."""
        return sum(row.violations for row in self.rows)

    def imiss_ratio(self, scheduler: str, improved: str = "ldlp",
                    baseline: str = "rss") -> float:
        """I-miss/msg ratio of two dispatch policies at the top core count.

        Below 1 means ``improved`` keeps layer code more cache-resident
        than ``baseline`` — the receive-side-dispatch locality claim.
        """
        top = self.top_cores()
        by_dispatch = {
            row.dispatch: row.result.aggregate.misses.instruction
            for row in self.rows
            if row.scheduler == scheduler and row.cores == top
        }
        base = by_dispatch.get(baseline, float("nan"))
        new = by_dispatch.get(improved, float("nan"))
        if not base or base != base:
            return float("nan")
        return new / base

    def render(self) -> str:
        """The dispatch-sweep table (throughput, misses, imbalance)."""
        table_rows = []
        for row in self.rows:
            aggregate = row.result.aggregate
            table_rows.append(
                [
                    row.scheduler,
                    row.dispatch,
                    row.cores,
                    aggregate.offered,
                    aggregate.completed,
                    aggregate.dropped,
                    f"{aggregate.delivered_rate / 1e3:.1f}k/s",
                    f"{aggregate.misses.instruction:.0f}",
                    f"{aggregate.misses.data:.0f}",
                    f"{row.imbalance:.2f}",
                    "ok" if row.violations == 0 else f"{row.violations} BAD",
                ]
            )
        return render_table(
            [
                "scheduler",
                "dispatch",
                "cores",
                "offered",
                "done",
                "drops",
                "tput",
                "I/msg",
                "D/msg",
                "imbal",
                "conserved",
            ],
            table_rows,
            title=(
                "Multi-core dispatch sweep: throughput and misses vs "
                "core count x dispatch policy x scheduler"
            ),
        )


# ----------------------------------------------------------------------
# Declarative sweep interface (repro.harness)

#: (core counts, schedulers, seeds, duration) per harness scale.  The
#: aggregate arrival rate is fixed: scaling cores at constant offered
#: load is what exposes the locality difference between policies.
SWEEP_SCALES: dict[
    str, tuple[tuple[int, ...], tuple[str, ...], tuple[int, ...], float]
] = {
    "ci": ((1, 2, 4), ("conventional", "ldlp"), (0, 1), 0.06),
    "default": (
        (1, 2, 4, 8),
        ("conventional", "ilp", "ldlp", "grouped"),
        (0, 1, 2),
        0.1,
    ),
    "paper": (
        (1, 2, 4, 8, 16),
        ("conventional", "ilp", "ldlp", "grouped"),
        tuple(range(10)),
        0.3,
    ),
}

#: Aggregate Poisson arrival rate (messages/s) offered to the dispatcher.
SWEEP_RATE = 12000.0


def sweep_points(scale: str) -> list[SweepPoint]:
    """Core count x dispatch policy x scheduler at fixed offered load."""
    core_counts, schedulers, seeds, duration = SWEEP_SCALES[scale]
    return [
        SweepPoint(
            experiment="multicore",
            key=f"{scheduler}/{dispatch}/cores={cores}",
            func="repro.sim.multicore:multicore_point",
            params={
                "scheduler": scheduler,
                "dispatch": dispatch,
                "cores": cores,
                "rate": SWEEP_RATE,
                "seeds": list(seeds),
                "duration": duration,
            },
        )
        for scheduler in schedulers
        for dispatch in SWEEP_DISPATCH
        for cores in core_counts
    ]


def assemble(
    points: list[SweepPoint], results: dict[str, Any]
) -> MultiCoreSweepResult:
    """Rebuild the sweep table from point results."""
    rows = []
    for point in points:
        data = results[point.key]
        rows.append(
            MultiCoreRow(
                scheduler=point.params["scheduler"],
                dispatch=point.params["dispatch"],
                cores=int(point.params["cores"]),
                result=MultiCoreRunResult.from_dict(data["result"]),
                imbalance=float(data["dispatch_imbalance"]),
                violations=int(data["conservation_violations"]),
            )
        )
    return MultiCoreSweepResult(rows=tuple(rows))


def golden_quantities(
    points: list[SweepPoint], results: dict[str, Any]
) -> dict[str, float]:
    """The pinned multi-core curves.

    Per (scheduler, dispatch) at the top swept core count: I-misses per
    message and delivered throughput.  Per scheduler: the LDLP-vs-RSS
    I-miss ratio at that core count — the receive-side-dispatch
    locality claim.  For batching schedulers the ratio sits well below
    1; for the conventional scheduler it pins at 1 (per-message
    processing cannot profit from chunked steering, which is itself
    worth pinning).  The sweep-wide conservation-violation count must
    stay exactly zero.
    """
    sweep = assemble(points, results)
    top = sweep.top_cores()
    quantities: dict[str, float] = {}
    schedulers = []
    for row in sweep.rows:
        if row.cores != top:
            continue
        if row.scheduler not in schedulers:
            schedulers.append(row.scheduler)
        prefix = f"{row.scheduler}/{row.dispatch}/cores={top}"
        quantities[f"{prefix}/imiss_per_msg"] = (
            row.result.aggregate.misses.instruction
        )
        quantities[f"{prefix}/kmsg_per_s"] = (
            row.result.aggregate.delivered_rate / 1e3
        )
    for scheduler in schedulers:
        quantities[f"{scheduler}/ldlp_vs_rss_imiss"] = sweep.imiss_ratio(
            scheduler
        )
    quantities["conservation_violations"] = float(
        sweep.conservation_violations()
    )
    return quantities


SWEEP = SweepSpec(
    name="multicore",
    points=sweep_points,
    quantities=golden_quantities,
    assemble=assemble,
    sources=(
        "repro.sim",
        "repro.core",
        "repro.cache",
        "repro.machine",
        "repro.traffic",
        "repro.buffers",
        "repro.obs.runtime",
        "repro.units",
        "repro.errors",
        "repro.experiments.report",
        "repro.experiments.multicore",
        "repro.harness.points",
    ),
    default_tolerance=Tolerance(rel=0.4, abs=0.02),
    tolerances={
        "conservation_violations": Tolerance(),
    },
)


def run(scale: str = "ci") -> MultiCoreSweepResult:
    """Run the sweep serially (no worker pool) and assemble the table."""
    points = sweep_points(scale)
    results = {
        point.key: multicore_point(**point.params) for point in points
    }
    return assemble(points, results)


def main() -> None:
    """Serial CLI entry: run the CI-scale sweep and print the table."""
    print(run().render())


if __name__ == "__main__":
    main()
