"""Plain-text table rendering for the experiment harnesses."""

from __future__ import annotations

from typing import Sequence


def render_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: str | None = None,
) -> str:
    """Render a monospace table with right-aligned numeric columns."""
    cells = [[str(value) for value in row] for row in rows]
    widths = [len(header) for header in headers]
    for row in cells:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))

    def is_numericish(text: str) -> bool:
        stripped = text.replace("%", "").replace("+", "").replace("-", "")
        stripped = stripped.replace(".", "").replace("x", "").replace("/", "")
        return stripped.isdigit() if stripped else False

    def fmt_row(row: Sequence[str]) -> str:
        parts = []
        for index, cell in enumerate(row):
            if index > 0 and is_numericish(cell):
                parts.append(cell.rjust(widths[index]))
            else:
                parts.append(cell.ljust(widths[index]))
        return "  ".join(parts).rstrip()

    lines = []
    if title:
        lines.append(title)
        lines.append("=" * len(title))
    lines.append(fmt_row(list(headers)))
    lines.append("  ".join("-" * width for width in widths))
    lines.extend(fmt_row(row) for row in cells)
    return "\n".join(lines)


def pct(value: float) -> str:
    """Format a percentage delta the way Table 3 prints it (``+17%``)."""
    return f"{value:+.0f}%"


def ratio_note(measured: float, paper: float) -> str:
    """A compact measured-vs-paper annotation."""
    if paper == 0:
        return f"{measured:.0f} (paper 0)"
    return f"{measured:.0f} (paper {paper:.0f}, {measured / paper:.2f}x)"
