"""Fleet-scale gossip sweep — session framing and collection batching.

The ``gossip`` experiment drives Zipf-skewed peer fleets
(:mod:`repro.gossip`) through the flow-charged stack, sweeping framing
mode x collection batch size x scheduler x drop policy.  It pins the
wire-protocol story the Dispersy document tells and the paper predicts:

* **sessions shrink headers** — session framing's header-bytes per
  logical message is strictly below sessionless at *every* collection
  size (exact 1.0 boolean per collection size, plus the raw per-point
  header-bytes/msg under tolerance);
* **collections amortize framing** — header-bytes/msg falls
  monotonically as the collection batch size grows, for both framing
  modes (exact 1.0 per framing; this is LDLP's amortization argument
  applied to wire bytes instead of I-cache lines);
* **peer skew keeps lookups cached** — lookup-misses per completed
  datagram per point (tolerance-gated), with mixed tagged/untagged
  batches charged through the untagged-walk accounting;
* **conservation** — exactly zero seeds where
  ``offered != completed + dropped``.

Every sweep point is the pure module-level
:func:`repro.gossip.runner.gossip_point`; flow-charged runs always take
the scalar loop, so the CI dual-engine passes share byte-identical
results.  The HARN004 analysis rule pins that every framing mode
registered in :data:`repro.gossip.wire.FRAMING_MODES` appears in this
sweep at every scale.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from ..gossip.runner import GossipRunResult, gossip_point
from ..harness.points import SweepPoint, SweepSpec, Tolerance
from .report import render_table

#: Slack for cross-point comparisons of exact-counter ratios.
_EPSILON = 1e-9


@dataclass(frozen=True)
class GossipRow:
    """One (framing, collection size, scheduler, drop policy) combination."""

    framing: str
    collection_size: int
    scheduler: str
    policy: str
    result: GossipRunResult
    violations: int


@dataclass(frozen=True)
class GossipSweepResult:
    """The assembled gossip sweep: one row per combination."""

    rows: tuple[GossipRow, ...]

    def conservation_violations(self) -> int:
        """Total per-seed conservation failures across every point."""
        return sum(row.violations for row in self.rows)

    def session_savings_ok(self, collection_size: int) -> bool:
        """Session framing beats sessionless at one collection size.

        For every (scheduler, policy) pair where both framings ran at
        this collection size, session framing's header-bytes per
        logical message must be strictly below sessionless — the whole
        point of negotiating a session is deleting the version and
        community fields from every subsequent header.
        """
        sessionless: dict[tuple[str, str], float] = {}
        for row in self.rows:
            if row.collection_size != collection_size:
                continue
            if row.framing == "sessionless":
                sessionless[(row.scheduler, row.policy)] = (
                    row.result.header_bytes_per_message
                )
        compared = 0
        for row in self.rows:
            if row.collection_size != collection_size:
                continue
            if row.framing != "session":
                continue
            base = sessionless.get((row.scheduler, row.policy))
            if base is None:
                continue
            compared += 1
            if row.result.header_bytes_per_message >= base - _EPSILON:
                return False
        return compared > 0

    def header_curve(self, framing: str) -> list[tuple[int, float]]:
        """(collection size, header-bytes/msg) pairs for one framing."""
        curve: dict[int, float] = {}
        for row in self.rows:
            if row.framing == framing:
                # Header accounting is a pure function of the fleet
                # spec, so every (scheduler, policy) at one size agrees.
                curve[row.collection_size] = (
                    row.result.header_bytes_per_message
                )
        return sorted(curve.items())

    def header_amortization_ok(self, framing: str) -> bool:
        """Header-bytes/msg falls as the collection batch grows."""
        curve = self.header_curve(framing)
        return all(
            earlier > later + _EPSILON
            for (_, earlier), (_, later) in zip(curve, curve[1:])
        )

    def render(self) -> str:
        """The gossip-sweep table (headers, lookups, conservation)."""
        table_rows = []
        for row in self.rows:
            result = row.result
            run = result.run
            table_rows.append(
                [
                    row.framing,
                    row.collection_size,
                    row.scheduler,
                    row.policy,
                    run.completed,
                    f"{result.header_bytes_per_message:.1f}",
                    f"{result.wire_bytes_per_message:.1f}",
                    f"{result.lookup_misses_per_message:.3f}",
                    result.untagged,
                    f"{run.mean_batch_size:.1f}",
                    "ok" if row.violations == 0 else f"{row.violations} BAD",
                ]
            )
        return render_table(
            [
                "framing",
                "k",
                "scheduler",
                "policy",
                "done",
                "hdrB/msg",
                "wireB/msg",
                "miss/msg",
                "untagged",
                "batch",
                "conserved",
            ],
            table_rows,
            title=(
                "Gossip fleet sweep: framing mode x collection size x "
                "scheduler x drop policy"
            ),
        )


# ----------------------------------------------------------------------
# Declarative sweep interface (repro.harness)

#: (framings, collection sizes, schedulers, drop policies, seeds,
#: duration, num_peers) per harness scale.  Both registered framing
#: modes appear at every scale — HARN004 gates that this stays true.
SWEEP_SCALES: dict[
    str,
    tuple[
        tuple[str, ...],
        tuple[int, ...],
        tuple[str, ...],
        tuple[str, ...],
        tuple[int, ...],
        float,
        int,
    ],
] = {
    "ci": (
        ("session", "sessionless"),
        (1, 8),
        ("conventional", "ldlp"),
        ("tail",),
        (0, 1),
        0.05,
        2_000,
    ),
    "default": (
        ("session", "sessionless"),
        (1, 4, 16),
        ("conventional", "ilp", "ldlp", "grouped"),
        ("tail", "head"),
        (0, 1, 2),
        0.1,
        50_000,
    ),
    "paper": (
        ("session", "sessionless"),
        (1, 2, 4, 8, 16, 32),
        ("conventional", "ilp", "ldlp", "grouped"),
        ("tail", "head", "adaptive"),
        (0, 1, 2, 3, 4),
        0.3,
        1_000_000,
    ),
}

#: Datagram arrival rate (datagrams/s): above the conventional
#: scheduler's capacity on collection-sized datagrams, so queues form,
#: batches are non-trivial, and drop policies engage.
SWEEP_RATE = 12000.0

#: Zipf skew of peer popularity (Jain-style destination locality).
SWEEP_PEER_SKEW = 1.1

#: Communities the fleet's peers are partitioned into.
SWEEP_NUM_COMMUNITIES = 4


def sweep_points(scale: str) -> list[SweepPoint]:
    """Framing x collection size x scheduler x drop policy at fixed load."""
    framings, sizes, schedulers, policies, seeds, duration, num_peers = (
        SWEEP_SCALES[scale]
    )
    return [
        SweepPoint(
            experiment="gossip",
            key=(
                f"{framing}/k={size}/{scheduler}/{policy}"
            ),
            func="repro.gossip.runner:gossip_point",
            params={
                "framing": framing,
                "collection_size": size,
                "scheduler": scheduler,
                "policy": policy,
                "rate": SWEEP_RATE,
                "seeds": list(seeds),
                "duration": duration,
                "num_peers": num_peers,
                "num_communities": SWEEP_NUM_COMMUNITIES,
                "peer_skew": SWEEP_PEER_SKEW,
            },
        )
        for framing in framings
        for size in sizes
        for scheduler in schedulers
        for policy in policies
    ]


def assemble(
    points: list[SweepPoint], results: dict[str, Any]
) -> GossipSweepResult:
    """Rebuild the sweep table from point results."""
    rows = []
    for point in points:
        data = results[point.key]
        rows.append(
            GossipRow(
                framing=point.params["framing"],
                collection_size=int(point.params["collection_size"]),
                scheduler=point.params["scheduler"],
                policy=point.params["policy"],
                result=GossipRunResult.from_dict(data["result"]),
                violations=int(data["conservation_violations"]),
            )
        )
    return GossipSweepResult(rows=tuple(rows))


def golden_quantities(
    points: list[SweepPoint], results: dict[str, Any]
) -> dict[str, float]:
    """The pinned gossip curves.

    Per combination: header-bytes/msg, wire-bytes/msg, and
    lookup-misses per completed datagram (tolerance-gated).  Per
    collection size: the exact session-savings boolean.  Per framing:
    the exact header-amortization boolean.  Sweep-wide: the exact-zero
    conservation count.
    """
    sweep = assemble(points, results)
    quantities: dict[str, float] = {}
    sizes: list[int] = []
    framings: list[str] = []
    for row in sweep.rows:
        prefix = (
            f"{row.framing}/k={row.collection_size}/{row.scheduler}/"
            f"{row.policy}"
        )
        quantities[f"{prefix}/header_bytes_per_msg"] = (
            row.result.header_bytes_per_message
        )
        quantities[f"{prefix}/wire_bytes_per_msg"] = (
            row.result.wire_bytes_per_message
        )
        quantities[f"{prefix}/lookup_misses_per_msg"] = (
            row.result.lookup_misses_per_message
        )
        if row.collection_size not in sizes:
            sizes.append(row.collection_size)
        if row.framing not in framings:
            framings.append(row.framing)
    for size in sizes:
        quantities[f"session_savings_ok/k={size}"] = float(
            sweep.session_savings_ok(size)
        )
    for mode in framings:
        quantities[f"header_amortization_ok/{mode}"] = float(
            sweep.header_amortization_ok(mode)
        )
    quantities["conservation_violations"] = float(
        sweep.conservation_violations()
    )
    return quantities


def _exact_tolerances() -> dict[str, Tolerance]:
    """Exact-match tolerances for every boolean/count quantity.

    Enumerated statically over every scale's combinations so the spec
    covers whichever scale a regress run uses.
    """
    names = {"conservation_violations"}
    for framings, sizes, _, _, _, _, _ in SWEEP_SCALES.values():
        for size in sizes:
            names.add(f"session_savings_ok/k={size}")
        for mode in framings:
            names.add(f"header_amortization_ok/{mode}")
    return {name: Tolerance() for name in sorted(names)}


SWEEP = SweepSpec(
    name="gossip",
    points=sweep_points,
    quantities=golden_quantities,
    assemble=assemble,
    sources=(
        "repro.sim",
        "repro.core",
        "repro.cache",
        "repro.machine",
        "repro.traffic",
        "repro.buffers",
        "repro.flows",
        "repro.gossip",
        "repro.obs.runtime",
        "repro.units",
        "repro.errors",
        "repro.experiments.report",
        "repro.experiments.gossip",
        "repro.harness.points",
    ),
    default_tolerance=Tolerance(rel=0.4, abs=0.02),
    tolerances=_exact_tolerances(),
)


def run(scale: str = "ci") -> GossipSweepResult:
    """Run the sweep serially (no worker pool) and assemble the table."""
    points = sweep_points(scale)
    results = {point.key: gossip_point(**point.params) for point in points}
    return assemble(points, results)


def main() -> None:
    """Serial CLI entry: run the CI-scale sweep and print the table."""
    print(run().render())


if __name__ == "__main__":
    main()
