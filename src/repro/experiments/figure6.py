"""Experiment F6 — Figure 6: latency vs arrival rate (Poisson traffic).

Same setup as Figure 5, reporting mean message latency.  Expected
shape: identical at low load; conventional saturates (latency pinned
near the 500-packet buffer bound, with drops) well before 10 k msgs/s;
LDLP holds sub-millisecond-to-few-millisecond latency almost to 10 k.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from ..harness.points import SweepPoint, SweepSpec, Tolerance
from ..sim.runner import SimulationConfig, run_averaged
from ..sim.stats import RunResult
from ..traffic.poisson import PoissonSource
from ..units import format_duration
from .figure5 import DEFAULT_DURATION, DEFAULT_SEEDS, PAPER_RATES, point_series
from .report import render_table


@dataclass(frozen=True)
class Figure6Result:
    rates: tuple[int, ...]
    conventional: list[RunResult]
    ldlp: list[RunResult]

    def shape_holds(self) -> bool:
        """The paper's qualitative claims about Figure 6."""
        conv = self.conventional
        ldlp = self.ldlp
        # Comparable at the lowest rate (within 3x either way).
        low_ratio = conv[0].latency.mean / ldlp[0].latency.mean
        comparable = 1 / 3 <= low_ratio <= 3
        # Conventional saturates: latency at the top rate beyond 10 ms
        # and drops occur; LDLP stays below 10 ms at 9000/s.
        conv_saturated = conv[-1].latency.mean > 10e-3 and conv[-1].dropped > 0
        ldlp_index = self.rates.index(9000) if 9000 in self.rates else -1
        ldlp_ok = ldlp[ldlp_index].latency.mean < 10e-3
        # LDLP latency is never dramatically worse than conventional.
        never_worse = all(
            l.latency.mean < max(3 * c.latency.mean, 2e-3)
            for c, l in zip(conv, ldlp)
        )
        return comparable and conv_saturated and ldlp_ok and never_worse

    def render(self) -> str:
        rows = []
        for index, rate in enumerate(self.rates):
            conv = self.conventional[index]
            ldlp = self.ldlp[index]
            rows.append(
                [
                    rate,
                    format_duration(conv.latency.mean),
                    format_duration(conv.latency.p99),
                    conv.dropped,
                    format_duration(ldlp.latency.mean),
                    format_duration(ldlp.latency.p99),
                    ldlp.dropped,
                ]
            )
        return render_table(
            [
                "rate/s",
                "conv mean",
                "conv p99",
                "conv drops",
                "LDLP mean",
                "LDLP p99",
                "LDLP drops",
            ],
            rows,
            title="Figure 6: latency vs arrival rate (Poisson, 500-packet buffer)",
        )


def run(
    rates: tuple[int, ...] = PAPER_RATES,
    seeds: tuple[int, ...] = DEFAULT_SEEDS,
    duration: float = DEFAULT_DURATION,
    paper_scale: bool = False,
) -> Figure6Result:
    if paper_scale:
        seeds = tuple(range(100))
        duration = 1.0
    conventional = []
    ldlp = []
    for rate in rates:
        def source_factory(seed, rate=rate):
            return PoissonSource(rate, rng=seed)

        for name, bucket in (("conventional", conventional), ("ldlp", ldlp)):
            config = SimulationConfig(scheduler=name, duration=duration)
            bucket.append(run_averaged(source_factory, config, list(seeds)))
    return Figure6Result(rates=tuple(rates), conventional=conventional, ldlp=ldlp)


def main() -> None:
    print(run().render())


# ----------------------------------------------------------------------
# Declarative sweep interface (repro.harness)

#: (rates, seeds, duration) per harness scale.  The point function and
#: parameters are shared with Figure 5 (the same simulations produce
#: both figures), so at matching scales the result cache serves both
#: experiments from one set of computed points.
SWEEP_SCALES: dict[str, tuple[tuple[int, ...], tuple[int, ...], float]] = {
    "ci": ((1000, 4000, 7000, 9000, 10000), (0, 1), 0.1),
    "default": (PAPER_RATES, DEFAULT_SEEDS, DEFAULT_DURATION),
    "paper": (PAPER_RATES, tuple(range(100)), 1.0),
}


def sweep_points(scale: str) -> list[SweepPoint]:
    rates, seeds, duration = SWEEP_SCALES[scale]
    return [
        SweepPoint(
            experiment="figure6",
            key=f"{scheduler}/rate={rate}",
            func="repro.sim.runner:poisson_point",
            params={
                "scheduler": scheduler,
                "rate": rate,
                "seeds": list(seeds),
                "duration": duration,
            },
        )
        for scheduler in ("conventional", "ldlp")
        for rate in rates
    ]


def assemble(points: list[SweepPoint], results: dict[str, Any]) -> Figure6Result:
    rates, conventional = point_series(points, results, "conventional")
    _, ldlp = point_series(points, results, "ldlp")
    return Figure6Result(rates=rates, conventional=conventional, ldlp=ldlp)


def golden_quantities(
    points: list[SweepPoint], results: dict[str, Any]
) -> dict[str, float]:
    """Figure 6's claims: comparable at low load, conventional saturates
    with drops well before 10 k msgs/s, LDLP holds low latency to ~9 k."""
    figure = assemble(points, results)
    conv, ldlp = figure.conventional, figure.ldlp
    ldlp_index = figure.rates.index(9000) if 9000 in figure.rates else -1
    return {
        "low_rate_conv_over_ldlp": conv[0].latency.mean / ldlp[0].latency.mean,
        "conv_latency_top_ms": 1e3 * conv[-1].latency.mean,
        "conv_drops_top": float(conv[-1].dropped),
        "ldlp_latency_9000_ms": 1e3 * ldlp[ldlp_index].latency.mean,
        "ldlp_drops_total": float(sum(r.dropped for r in ldlp)),
    }


SWEEP = SweepSpec(
    name="figure6",
    points=sweep_points,
    quantities=golden_quantities,
    assemble=assemble,
    sources=(
        "repro.sim",
        "repro.core",
        "repro.cache",
        "repro.machine",
        "repro.traffic",
        "repro.buffers",
        "repro.obs.runtime",
        "repro.errors",
        "repro.units",
    ),
    default_tolerance=Tolerance(rel=0.25),
    tolerances={
        "low_rate_conv_over_ldlp": Tolerance(rel=0.5),
        "conv_drops_top": Tolerance(rel=0.3, abs=50.0),
        "ldlp_latency_9000_ms": Tolerance(rel=0.5),
        "ldlp_drops_total": Tolerance(rel=0.5, abs=100.0),
    },
)


if __name__ == "__main__":
    main()
