"""Experiment T1 — Table 1: working-set breakdown of the receive path.

Regenerates the per-layer code / read-only / mutable working-set sizes
of the NetBSD TCP receive-&-acknowledge path at 32-byte cache lines and
prints them next to the paper's published values.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Any

from ..cache.workingset import Category, WorkingSetReport
from ..harness.points import SweepPoint, SweepSpec
from ..netbsd.layers import ALL_LAYERS, PAPER_TABLE1, PAPER_TABLE1_TOTAL
from ..netbsd.receive_path import ReceivePathModel
from .report import render_table


@dataclass(frozen=True)
class Table1Result:
    """Measured vs published Table 1."""

    report: WorkingSetReport
    seed: int

    def measured(self, layer: str, category: Category) -> int:
        return self.report.layer(layer, category).bytes

    def matches_paper(self) -> bool:
        """True when every per-layer cell equals the published value."""
        for layer in ALL_LAYERS:
            target = PAPER_TABLE1[layer]
            if self.measured(layer, Category.CODE) != target.code:
                return False
            if self.measured(layer, Category.READONLY) != target.readonly:
                return False
            if self.measured(layer, Category.MUTABLE) != target.mutable:
                return False
        return True

    def render(self) -> str:
        rows = []
        for layer in ALL_LAYERS:
            target = PAPER_TABLE1[layer]
            rows.append(
                [
                    layer,
                    self.measured(layer, Category.CODE),
                    target.code,
                    self.measured(layer, Category.READONLY),
                    target.readonly,
                    self.measured(layer, Category.MUTABLE),
                    target.mutable,
                ]
            )
        totals = [self.report.total(category).bytes for category in Category]
        rows.append(
            [
                "Total",
                totals[0],
                PAPER_TABLE1_TOTAL.code,
                totals[1],
                PAPER_TABLE1_TOTAL.readonly,
                totals[2],
                PAPER_TABLE1_TOTAL.mutable,
            ]
        )
        table = render_table(
            [
                "Layer",
                "code",
                "(paper)",
                "ro-data",
                "(paper)",
                "mut-data",
                "(paper)",
            ],
            rows,
            title="Table 1: working set of the TCP receive & acknowledge path (bytes)",
        )
        note = (
            "\nNote: the paper's printed code total (30592) exceeds its own "
            "row sum (30304) by 288; we reproduce the rows."
        )
        return table + note


def run(seed: int = 0) -> Table1Result:
    """Build the trace, run the working-set analysis, return the result."""
    model = ReceivePathModel(seed=seed)
    analyzer = model.analyze()
    return Table1Result(report=analyzer.report(32), seed=seed)


def main() -> None:
    print(run().render())


# ----------------------------------------------------------------------
# Declarative sweep interface (repro.harness)


def slug(layer: str) -> str:
    """Quantity-name-safe form of a layer name (``Socket low`` ->
    ``socket_low``)."""
    return re.sub(r"[^a-z0-9]+", "_", layer.lower()).strip("_")


def compute_point(seed: int) -> dict:
    """The full measured Table 1 as plain numbers."""
    result = run(seed=seed)
    return {
        "layers": {
            layer: {
                "code": result.measured(layer, Category.CODE),
                "readonly": result.measured(layer, Category.READONLY),
                "mutable": result.measured(layer, Category.MUTABLE),
            }
            for layer in ALL_LAYERS
        },
        "totals": {
            "code": result.report.total(Category.CODE).bytes,
            "readonly": result.report.total(Category.READONLY).bytes,
            "mutable": result.report.total(Category.MUTABLE).bytes,
        },
        "matches_paper": result.matches_paper(),
    }


def sweep_points(scale: str) -> list[SweepPoint]:
    del scale  # deterministic single-seed analysis at every scale
    return [
        SweepPoint(
            experiment="table1",
            key="seed=0",
            func="repro.experiments.table1:compute_point",
            params={"seed": 0},
        )
    ]


def golden_quantities(
    points: list[SweepPoint], results: dict[str, Any]
) -> dict[str, float]:
    """Every Table-1 cell, by name, plus the column totals — all exact
    integers, so the tolerance is zero."""
    data = results[points[0].key]
    quantities: dict[str, float] = {
        "total_code": float(data["totals"]["code"]),
        "total_readonly": float(data["totals"]["readonly"]),
        "total_mutable": float(data["totals"]["mutable"]),
        "matches_paper": float(bool(data["matches_paper"])),
    }
    for layer, cells in data["layers"].items():
        for category, value in cells.items():
            quantities[f"{slug(layer)}_{category}"] = float(value)
    return quantities


SWEEP = SweepSpec(
    name="table1",
    points=sweep_points,
    quantities=golden_quantities,
    sources=(
        "repro.netbsd",
        "repro.trace",
        "repro.cache",
        "repro.core",
        "repro.machine",
        "repro.sim",
        "repro.traffic",
        "repro.obs.runtime",
        "repro.errors",
        "repro.units",
        "repro.experiments.table1",
        "repro.experiments.report",
        "repro.harness.points",
    ),
)


if __name__ == "__main__":
    main()
