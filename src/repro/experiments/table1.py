"""Experiment T1 — Table 1: working-set breakdown of the receive path.

Regenerates the per-layer code / read-only / mutable working-set sizes
of the NetBSD TCP receive-&-acknowledge path at 32-byte cache lines and
prints them next to the paper's published values.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..cache.workingset import Category, WorkingSetReport
from ..netbsd.layers import ALL_LAYERS, PAPER_TABLE1, PAPER_TABLE1_TOTAL
from ..netbsd.receive_path import ReceivePathModel
from .report import render_table


@dataclass(frozen=True)
class Table1Result:
    """Measured vs published Table 1."""

    report: WorkingSetReport
    seed: int

    def measured(self, layer: str, category: Category) -> int:
        return self.report.layer(layer, category).bytes

    def matches_paper(self) -> bool:
        """True when every per-layer cell equals the published value."""
        for layer in ALL_LAYERS:
            target = PAPER_TABLE1[layer]
            if self.measured(layer, Category.CODE) != target.code:
                return False
            if self.measured(layer, Category.READONLY) != target.readonly:
                return False
            if self.measured(layer, Category.MUTABLE) != target.mutable:
                return False
        return True

    def render(self) -> str:
        rows = []
        for layer in ALL_LAYERS:
            target = PAPER_TABLE1[layer]
            rows.append(
                [
                    layer,
                    self.measured(layer, Category.CODE),
                    target.code,
                    self.measured(layer, Category.READONLY),
                    target.readonly,
                    self.measured(layer, Category.MUTABLE),
                    target.mutable,
                ]
            )
        totals = [self.report.total(category).bytes for category in Category]
        rows.append(
            [
                "Total",
                totals[0],
                PAPER_TABLE1_TOTAL.code,
                totals[1],
                PAPER_TABLE1_TOTAL.readonly,
                totals[2],
                PAPER_TABLE1_TOTAL.mutable,
            ]
        )
        table = render_table(
            [
                "Layer",
                "code",
                "(paper)",
                "ro-data",
                "(paper)",
                "mut-data",
                "(paper)",
            ],
            rows,
            title="Table 1: working set of the TCP receive & acknowledge path (bytes)",
        )
        note = (
            "\nNote: the paper's printed code total (30592) exceeds its own "
            "row sum (30304) by 288; we reproduce the rows."
        )
        return table + note


def run(seed: int = 0) -> Table1Result:
    """Build the trace, run the working-set analysis, return the result."""
    model = ReceivePathModel(seed=seed)
    analyzer = model.analyze()
    return Table1Result(report=analyzer.report(32), seed=seed)


def main() -> None:
    print(run().render())


if __name__ == "__main__":
    main()
