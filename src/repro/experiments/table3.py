"""Experiment T3 — Table 3: working-set sensitivity to cache line size.

Reanalyzes the receive-path trace at 4/8/16/32/64-byte lines and prints
the percentage change in bytes and lines versus the 32-byte baseline,
next to the published Table 3.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from ..cache.workingset import Category, LineSizeTable, WorkingSetAnalyzer
from ..harness.points import SweepPoint, SweepSpec, Tolerance
from ..netbsd.layers import PAPER_TABLE3
from ..netbsd.receive_path import ReceivePathModel
from .report import pct, render_table


@dataclass(frozen=True)
class Table3Result:
    table: LineSizeTable
    seed: int

    def measured_row(self, line_size: int) -> dict[str, float | None]:
        row = self.table.row(line_size)
        out: dict[str, float | None] = {}
        for key, category in (
            ("code", Category.CODE),
            ("ro", Category.READONLY),
            ("mut", Category.MUTABLE),
        ):
            delta = row.deltas[category]
            out[f"{key}_bytes"] = delta.bytes_pct if delta else None
            out[f"{key}_lines"] = delta.lines_pct if delta else None
        return out

    def within_tolerance(self, tolerance_points: float = 15.0) -> bool:
        """True when every defined cell is within ``tolerance_points``
        percentage points of the published value (500% row is scaled)."""
        for paper_row in PAPER_TABLE3:
            measured = self.measured_row(paper_row.line_size)
            pairs = [
                (measured["code_bytes"], paper_row.code_bytes_pct),
                (measured["code_lines"], paper_row.code_lines_pct),
                (measured["ro_bytes"], paper_row.ro_bytes_pct),
                (measured["ro_lines"], paper_row.ro_lines_pct),
                (measured["mut_bytes"], paper_row.mut_bytes_pct),
                (measured["mut_lines"], paper_row.mut_lines_pct),
            ]
            for got, want in pairs:
                if want is None:
                    continue
                if got is None:
                    return False
                allowed = tolerance_points * max(1.0, abs(want) / 75.0)
                if abs(got - want) > allowed:
                    return False
        return True

    def render(self) -> str:
        rows = []
        for paper_row in PAPER_TABLE3:
            measured = self.measured_row(paper_row.line_size)

            def cell(got: float | None, want: float | None) -> str:
                if want is None:
                    return "N/A"
                assert got is not None
                return f"{pct(got)} ({pct(want)})"

            rows.append(
                [
                    paper_row.line_size,
                    cell(measured["code_bytes"], paper_row.code_bytes_pct),
                    cell(measured["code_lines"], paper_row.code_lines_pct),
                    cell(measured["ro_bytes"], paper_row.ro_bytes_pct),
                    cell(measured["ro_lines"], paper_row.ro_lines_pct),
                    cell(measured["mut_bytes"], paper_row.mut_bytes_pct),
                    cell(measured["mut_lines"], paper_row.mut_lines_pct),
                ]
            )
        return render_table(
            [
                "Line",
                "code bytes (paper)",
                "code lines (paper)",
                "ro bytes (paper)",
                "ro lines (paper)",
                "mut bytes (paper)",
                "mut lines (paper)",
            ],
            rows,
            title="Table 3: working-set change vs 32-byte cache lines",
        )


def run(seed: int = 0) -> Table3Result:
    model = ReceivePathModel(seed=seed)
    analyzer: WorkingSetAnalyzer = model.analyze()
    return Table3Result(table=analyzer.line_size_table(), seed=seed)


def main() -> None:
    print(run().render())


# ----------------------------------------------------------------------
# Declarative sweep interface (repro.harness)


def compute_point(seed: int) -> dict:
    """Every defined Table-3 cell (percent change vs 32-byte lines)."""
    result = run(seed=seed)
    rows: dict[str, dict[str, float]] = {}
    for paper_row in PAPER_TABLE3:
        measured = result.measured_row(paper_row.line_size)
        rows[str(paper_row.line_size)] = {
            key: value for key, value in measured.items() if value is not None
        }
    return {"rows": rows, "within_tolerance": result.within_tolerance()}


def sweep_points(scale: str) -> list[SweepPoint]:
    del scale
    return [
        SweepPoint(
            experiment="table3",
            key="seed=0",
            func="repro.experiments.table3:compute_point",
            params={"seed": 0},
        )
    ]


def golden_quantities(
    points: list[SweepPoint], results: dict[str, Any]
) -> dict[str, float]:
    data = results[points[0].key]
    quantities: dict[str, float] = {
        "within_tolerance": float(bool(data["within_tolerance"]))
    }
    for line_size, cells in data["rows"].items():
        for key, value in cells.items():
            quantities[f"l{line_size}_{key}"] = float(value)
    return quantities


SWEEP = SweepSpec(
    name="table3",
    points=sweep_points,
    quantities=golden_quantities,
    sources=(
        "repro.netbsd",
        "repro.trace",
        "repro.cache",
        "repro.core",
        "repro.machine",
        "repro.sim",
        "repro.traffic",
        "repro.obs.runtime",
        "repro.errors",
        "repro.units",
        "repro.experiments.table3",
        "repro.experiments.report",
        "repro.harness.points",
    ),
    # Percent-change cells are deterministic floats; allow only float
    # noise across numpy builds.
    default_tolerance=Tolerance(abs=1e-6),
)


if __name__ == "__main__":
    main()
