"""Experiment F1 — Figure 1: the active-code map of the receive path.

Regenerates (a) the per-phase write/read/code totals printed under each
column of Figure 1 and (b) an ASCII rendering of the active-code map:
which functions run in which phase and how many of their bytes are
touched.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from ..harness.points import SweepPoint, SweepSpec
from ..netbsd.functions import CATALOG, catalog_by_name
from ..netbsd.layers import PAPER_PHASES
from ..netbsd.receive_path import PHASES, ReceivePathModel
from ..trace.buffer import TraceBuffer
from ..trace.phases import PhaseStats, phase_stats
from .report import render_table


@dataclass(frozen=True)
class Figure1Result:
    trace: TraceBuffer
    stats: list[PhaseStats]
    seed: int

    def measured(self, label: str) -> PhaseStats:
        for phase in self.stats:
            if phase.label == label:
                return phase
        raise KeyError(label)

    def within_tolerance(self, rel: float = 0.25) -> bool:
        """Every phase total within ``rel`` of the published value."""
        for paper in PAPER_PHASES:
            got = self.measured(paper.label)
            pairs = [
                (got.code.bytes, paper.code_bytes),
                (got.code.refs, paper.code_refs),
                (got.read.bytes, paper.read_bytes),
                (got.read.refs, paper.read_refs),
                (got.write.bytes, paper.write_bytes),
                (got.write.refs, paper.write_refs),
            ]
            for measured, want in pairs:
                if abs(measured - want) > rel * want:
                    return False
        return True

    def phase_table(self) -> str:
        rows = []
        for paper in PAPER_PHASES:
            got = self.measured(paper.label)
            rows.append(
                [
                    paper.label,
                    f"{got.code.bytes}/{paper.code_bytes}",
                    f"{got.code.refs}/{paper.code_refs}",
                    f"{got.read.bytes}/{paper.read_bytes}",
                    f"{got.read.refs}/{paper.read_refs}",
                    f"{got.write.bytes}/{paper.write_bytes}",
                    f"{got.write.refs}/{paper.write_refs}",
                ]
            )
        return render_table(
            [
                "Phase",
                "code B (ours/paper)",
                "code refs",
                "read B",
                "read refs",
                "write B",
                "write refs",
            ],
            rows,
            title="Figure 1 column totals: measured/paper",
        )

    def code_map(self, bar_width: int = 40) -> str:
        """ASCII active-code map: touched bytes per function per phase."""
        by_name = catalog_by_name()
        touched_lines: dict[str, dict[str, set[int]]] = {}
        for label, sl in self.trace.phase_slices():
            for ref in self.trace.refs[sl]:
                if not ref.is_code() or ref.fn not in by_name:
                    continue
                per_fn = touched_lines.setdefault(ref.fn, {})
                per_fn.setdefault(label, set()).add(ref.addr // 32)
        lines_out = ["Active code map (one row per function; # = 64 touched bytes)"]
        header = f"{'function':<22}{'size':>6}  " + "  ".join(
            f"{phase:<14}" for phase in PHASES
        )
        lines_out.append(header)
        for spec in CATALOG:
            per_fn = touched_lines.get(spec.name)
            if not per_fn:
                continue
            cells = []
            for phase in PHASES:
                count = len(per_fn.get(phase, ())) * 32
                bar = "#" * min(bar_width, count // 64)
                cells.append(f"{bar:<14}")
            lines_out.append(f"{spec.name:<22}{spec.size:>6}  " + "  ".join(cells))
        return "\n".join(lines_out)


def run(seed: int = 0) -> Figure1Result:
    model = ReceivePathModel(seed=seed)
    trace = model.build_trace()
    return Figure1Result(trace=trace, stats=phase_stats(trace), seed=seed)


def main() -> None:
    result = run()
    print(result.phase_table())
    print()
    print(result.code_map())


# ----------------------------------------------------------------------
# Declarative sweep interface (repro.harness)


def compute_point(seed: int) -> dict:
    """Figure 1's per-phase column totals as plain numbers."""
    result = run(seed=seed)
    return {
        "phases": {
            phase.label: {
                "code_bytes": phase.code.bytes,
                "code_refs": phase.code.refs,
                "read_bytes": phase.read.bytes,
                "read_refs": phase.read.refs,
                "write_bytes": phase.write.bytes,
                "write_refs": phase.write.refs,
            }
            for phase in result.stats
        },
        "within_tolerance": result.within_tolerance(rel=0.25),
    }


def sweep_points(scale: str) -> list[SweepPoint]:
    del scale
    return [
        SweepPoint(
            experiment="figure1",
            key="seed=0",
            func="repro.experiments.figure1:compute_point",
            params={"seed": 0},
        )
    ]


def golden_quantities(
    points: list[SweepPoint], results: dict[str, Any]
) -> dict[str, float]:
    data = results[points[0].key]
    quantities: dict[str, float] = {
        "within_tolerance": float(bool(data["within_tolerance"]))
    }
    for label, totals in data["phases"].items():
        prefix = label.replace(" ", "_")
        for key, value in totals.items():
            quantities[f"{prefix}_{key}"] = float(value)
    return quantities


SWEEP = SweepSpec(
    name="figure1",
    points=sweep_points,
    quantities=golden_quantities,
    sources=(
        "repro.netbsd",
        "repro.trace",
        "repro.cache",
        "repro.core",
        "repro.machine",
        "repro.sim",
        "repro.traffic",
        "repro.obs.runtime",
        "repro.errors",
        "repro.units",
        "repro.experiments.figure1",
        "repro.experiments.report",
        "repro.harness.points",
    ),
)


if __name__ == "__main__":
    main()
