"""``ldlp-experiment trace`` — emit traces, tables, or metrics.

Usage::

    ldlp-experiment trace figure6 --sink chrome --out figure6.trace.json
    ldlp-experiment trace figure6 --sink table
    ldlp-experiment trace receive --sink chrome --out receive.trace.json
    ldlp-experiment trace receive --sink table       # live miss attribution
    ldlp-experiment trace figure5 --sink metrics

Simulator experiments (``figure5``/``figure6``/``figure7``) trace one
representative operating point of the Section-4 benchmark — every
configured scheduler against the identical arrival sequence — with one
Chrome-trace track per layer.  ``receive`` (aliases ``table1``,
``figure1``) traces the NetBSD receive-&-acknowledge path: phase and
per-function spans plus the live miss-attribution table.
"""

from __future__ import annotations

import argparse
import json
import sys

from .attribution import render_live_table1, replay_receive_path
from .runtime import Recorder, recording
from .schema import validate_chrome_trace
from .sinks import MetricsSink, TableSink
from .tracing import (
    chrome_trace_for_receive,
    chrome_trace_for_sim,
    trace_schedulers,
)

#: Experiments the trace command understands.  Simulator figures share
#: one implementation; the receive path has aliases for the experiments
#: derived from its trace.
SIM_EXPERIMENTS = ("figure5", "figure6", "figure7")
RECEIVE_ALIASES = ("receive", "table1", "figure1")

SINKS = ("chrome", "table", "metrics")


def build_parser() -> argparse.ArgumentParser:
    """The ``trace`` argument parser (also used by ``--help`` docs)."""
    parser = argparse.ArgumentParser(
        prog="ldlp-experiment trace",
        description="Emit a structured trace of one experiment run.",
    )
    parser.add_argument(
        "experiment",
        choices=SIM_EXPERIMENTS + RECEIVE_ALIASES,
        help="what to trace (simulator figure or the receive path)",
    )
    parser.add_argument(
        "--sink", choices=SINKS, default="chrome",
        help="output form: chrome trace JSON, text table, or metrics JSON",
    )
    parser.add_argument(
        "--out", default=None,
        help="output path (default: <experiment>.trace.json for chrome, stdout otherwise)",
    )
    parser.add_argument("--seed", type=int, default=0, help="placement/traffic seed")
    parser.add_argument(
        "--rate", type=float, default=9000.0,
        help="arrival rate for simulator traces (msgs/s, default 9000)",
    )
    parser.add_argument(
        "--duration", type=float, default=0.02,
        help="simulated seconds for simulator traces (default 0.02)",
    )
    parser.add_argument(
        "--scheduler", action="append", default=None,
        metavar="NAME",
        help="scheduler(s) to trace (repeatable; default: conventional and ldlp)",
    )
    return parser


def _emit_text(text: str, out: str | None) -> None:
    if out:
        with open(out, "w") as handle:
            handle.write(text + "\n")
        print(f"wrote {out}")
    else:
        print(text)


def _trace_sim(args: argparse.Namespace) -> int:
    schedulers = tuple(args.scheduler) if args.scheduler else ("conventional", "ldlp")
    runs = trace_schedulers(
        schedulers=schedulers,
        rate=args.rate,
        seed=args.seed,
        duration=args.duration,
    )
    if args.sink == "chrome":
        sink = chrome_trace_for_sim(runs)
        payload = sink.to_payload()
        summary = validate_chrome_trace(payload)
        out = args.out or f"{args.experiment}.trace.json"
        path = sink.write(out)
        print(
            f"wrote {path}: {summary['spans']} spans on {summary['tracks']} "
            f"tracks across {summary['processes']} process(es) "
            f"(load into chrome://tracing or https://ui.perfetto.dev)"
        )
        return 0
    if args.sink == "table":
        tables = [
            TableSink(run.recorder, title=f"{args.experiment} · {run.name}").render()
            for run in runs
        ]
        _emit_text("\n\n".join(tables), args.out)
        return 0
    payload = {
        run.name: MetricsSink(run.recorder).to_payload() for run in runs
    }
    _emit_text(json.dumps(payload, indent=1, sort_keys=True), args.out)
    return 0


def _trace_receive(args: argparse.Namespace) -> int:
    if args.sink == "chrome":
        sink, attribution = chrome_trace_for_receive(seed=args.seed)
        payload = sink.to_payload()
        summary = validate_chrome_trace(payload)
        out = args.out or "receive.trace.json"
        path = sink.write(out)
        print(
            f"wrote {path}: {summary['spans']} spans on {summary['tracks']} "
            f"tracks, {attribution.cycles} modelled cycles"
        )
        return 0
    if args.sink == "table":
        recorder = Recorder(keep_spans=False)
        with recording(recorder):
            attribution = replay_receive_path(seed=args.seed, recorder=recorder)
        text = attribution.render() + "\n\n" + render_live_table1(attribution)
        _emit_text(text, args.out)
        return 0
    recorder = Recorder(keep_spans=False)
    with recording(recorder):
        replay_receive_path(seed=args.seed, recorder=recorder)
    _emit_text(
        json.dumps(MetricsSink(recorder).to_payload(), indent=1, sort_keys=True),
        args.out,
    )
    return 0


def main(argv: list[str] | None = None) -> int:
    """Entry point for ``ldlp-experiment trace`` / ``python -m repro.obs.cli``."""
    args = build_parser().parse_args(argv)
    if args.experiment in SIM_EXPERIMENTS:
        return _trace_sim(args)
    return _trace_receive(args)


if __name__ == "__main__":
    sys.exit(main())
