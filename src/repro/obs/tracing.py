"""Orchestration: run a workload with a recorder installed, feed sinks.

This is the glue between the generic recorder/sink machinery and the
two instrumented workloads:

* **simulator runs** (Figures 5-7): one recorder per scheduler
  configuration, replaying the *same* arrival sequence, so a Chrome
  trace shows conventional and LDLP as two process groups with one
  track per layer — the batch-vs-single-message schedule difference is
  directly visible;
* **the NetBSD receive path** (Tables 1-3, Figure 1): the trace
  generator emits phase spans and the miss-attribution replay emits
  per-function spans on per-layer tracks.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..cache.hierarchy import MachineSpec
from .attribution import MissAttribution, replay_receive_path
from .runtime import Recorder, recording
from .sinks import ChromeTraceSink


@dataclass(frozen=True)
class TracedRun:
    """One traced simulator configuration: its recorder and result."""

    name: str
    recorder: Recorder
    result: "object"  # repro.sim.stats.RunResult (kept loose for sinks)


def trace_simulation(
    scheduler: str = "ldlp",
    rate: float = 9000.0,
    seed: int = 0,
    duration: float = 0.02,
    message_size: int = 552,
    spec: MachineSpec | None = None,
    arrivals: list | None = None,
) -> TracedRun:
    """Run one Section-4 simulation with tracing enabled.

    Imports the simulator lazily so building a receive-path trace never
    pays for the scheduler stack.
    """
    from ..sim.runner import SimulationConfig, run_simulation
    from ..traffic.poisson import PoissonSource

    config = SimulationConfig(
        scheduler=scheduler,
        duration=duration,
        spec=spec or MachineSpec(),
    )
    source = PoissonSource(rate, size=message_size, rng=seed)
    recorder = Recorder(keep_spans=True)
    with recording(recorder):
        result = run_simulation(source, config, seed=seed, arrivals=arrivals)
    return TracedRun(name=scheduler, recorder=recorder, result=result)


def trace_schedulers(
    schedulers: tuple[str, ...] = ("conventional", "ldlp"),
    rate: float = 9000.0,
    seed: int = 0,
    duration: float = 0.02,
    message_size: int = 552,
) -> list[TracedRun]:
    """Trace several schedulers against the identical arrival sequence."""
    from ..traffic.poisson import PoissonSource

    source = PoissonSource(rate, size=message_size, rng=seed)
    arrivals = source.arrival_list(duration)
    return [
        trace_simulation(
            scheduler=name,
            rate=rate,
            seed=seed,
            duration=duration,
            message_size=message_size,
            arrivals=arrivals,
        )
        for name in schedulers
    ]


def chrome_trace_for_sim(runs: list[TracedRun]) -> ChromeTraceSink:
    """Assemble simulator runs into one Chrome trace (cycles clock)."""
    sink = ChromeTraceSink(clock_unit="cycles")
    for run in runs:
        sink.add_recorder(run.recorder, run.name)
    return sink


def trace_receive_path(
    seed: int = 0, spec: MachineSpec | None = None
) -> tuple[Recorder, MissAttribution]:
    """Trace the receive-&-acknowledge path: spans + miss attribution.

    The returned recorder carries phase spans (from trace generation)
    and per-function spans on per-layer tracks (from the replay), both
    on the modelled-cycle clock; the attribution carries the function
    table and the live Table-1 working set.
    """
    recorder = Recorder(keep_spans=True)
    with recording(recorder):
        attribution = replay_receive_path(
            seed=seed, spec=spec, recorder=recorder
        )
    return recorder, attribution


def chrome_trace_for_receive(seed: int = 0) -> tuple[ChromeTraceSink, MissAttribution]:
    """One-call Chrome trace of the receive path (modelled cycles)."""
    recorder, attribution = trace_receive_path(seed=seed)
    sink = ChromeTraceSink(clock_unit="modelled cycles")
    sink.add_recorder(recorder, "receive-path")
    return sink, attribution
