"""Live per-function / per-layer miss attribution from a memory trace.

The paper's Tables 1-3 and Figure 1 work because the in-kernel
simulator could say which function, layer and phase each reference (and
so each cache miss) belonged to.  This module is that attribution for
our traces: it replays a function-annotated
:class:`~repro.trace.buffer.TraceBuffer` through a cold
:class:`~repro.cache.hierarchy.SplitCacheHierarchy`, charging a modelled
cycle clock (one cycle per reference plus the machine's read-miss
penalty), and attributes every access, miss and stall cycle to the
function — and through the function, the Table-1 layer — that issued it.

Two products come out of one replay:

* the **function table** (Figure 1's function×column shape): per
  function, references / misses / stall cycles split into code, read
  and write columns;
* the **live working set** (Table 1's layer×category shape): distinct
  lines touched per layer, split into code / read-only / mutable by the
  paper's rules (a line written at least once is mutable; data lines
  belong to the layer of the function that touched them first).

The live working set is computed from the same replayed event stream —
not from :class:`~repro.cache.workingset.WorkingSetAnalyzer` — so the
golden pin in ``tests/test_obs.py`` that compares it against the static
Table 1 catalogue is a genuine two-implementation cross-check.

When a :class:`~repro.obs.runtime.Recorder` is supplied, the replay also
emits one span per function activation (tracks are Table-1 layers, the
clock is the modelled cycle count), which is how the receive path gets
its Chrome-trace timeline.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from ..cache.hierarchy import MachineSpec, SplitCacheHierarchy
from ..trace.buffer import TraceBuffer
from .runtime import Recorder

#: Layer name used for functions outside the supplied function→layer map
#: (kernel stacks, the message buffer, the DMA ring).
AUX_LAYER = "aux"


@dataclass
class FunctionMisses:
    """Attribution row for one function (Figure 1's column shape)."""

    fn: str
    layer: str
    code_refs: int = 0
    code_misses: int = 0
    read_refs: int = 0
    read_misses: int = 0
    write_refs: int = 0
    write_misses: int = 0
    stall_cycles: int = 0

    @property
    def refs(self) -> int:
        """Total references issued by the function."""
        return self.code_refs + self.read_refs + self.write_refs

    @property
    def misses(self) -> int:
        """Total primary-cache misses attributed to the function."""
        return self.code_misses + self.read_misses + self.write_misses


@dataclass
class _LineInfo:
    """First-touch ownership and write history of one cache line."""

    layer: str
    written: bool = False


@dataclass
class MissAttribution:
    """Everything one replay produced (see module docstring)."""

    spec: MachineSpec
    functions: dict[str, FunctionMisses]
    code_lines: dict[int, str] = field(default_factory=dict)
    data_lines: dict[int, _LineInfo] = field(default_factory=dict)
    cycles: int = 0

    def function_table(self) -> list[FunctionMisses]:
        """Rows sorted by layer then by total misses, busiest first."""
        return sorted(
            self.functions.values(),
            key=lambda row: (row.layer, -row.misses, row.fn),
        )

    def layer_misses(self) -> dict[str, int]:
        """Total primary-cache misses per layer."""
        totals: dict[str, int] = {}
        for row in self.functions.values():
            totals[row.layer] = totals.get(row.layer, 0) + row.misses
        return totals

    def live_working_set(self, line_size: int = 32) -> dict[str, dict[str, int]]:
        """Per-layer working set in bytes: Table 1's layer×category shape.

        Categories are ``code``, ``readonly`` and ``mutable``; aux lines
        (owner :data:`AUX_LAYER`) are excluded, matching Table 1's
        caption.
        """
        table: dict[str, dict[str, int]] = {}

        def bump(layer: str, category: str) -> None:
            row = table.setdefault(
                layer, {"code": 0, "readonly": 0, "mutable": 0}
            )
            row[category] += line_size

        for layer in self.code_lines.values():
            if layer != AUX_LAYER:
                bump(layer, "code")
        for info in self.data_lines.values():
            if info.layer != AUX_LAYER:
                bump(info.layer, "mutable" if info.written else "readonly")
        return table

    def render(self, top: int = 20) -> str:
        """The per-function miss table as text (busiest ``top`` rows)."""
        from ..experiments.report import render_table

        rows = []
        for row in sorted(
            self.functions.values(), key=lambda r: (-r.misses, r.layer, r.fn)
        )[:top]:
            rows.append(
                [
                    row.fn,
                    row.layer,
                    row.code_refs,
                    row.code_misses,
                    row.read_refs,
                    row.read_misses,
                    row.write_refs,
                    row.write_misses,
                    row.stall_cycles,
                ]
            )
        return render_table(
            [
                "function",
                "layer",
                "code refs",
                "I-miss",
                "read refs",
                "D-miss",
                "write refs",
                "W-miss",
                "stall cyc",
            ],
            rows,
            title=(
                f"Live miss attribution (top {min(top, len(self.functions))} "
                f"functions by misses; {self.cycles} modelled cycles)"
            ),
        )


class MissAttributor:
    """Replays a function-annotated trace, attributing misses.

    Parameters
    ----------
    spec:
        Machine description; the replay uses its cold split I/D caches
        and its read-miss penalty for the modelled clock.
    fn_layers:
        Function name → Table-1 layer map
        (:func:`repro.netbsd.functions.fn_to_layer_map`); unmapped
        functions land in :data:`AUX_LAYER`.
    aux_addrs:
        Predicate marking addresses Table 1's caption excludes (stacks,
        message buffer, DMA ring); those lines are still replayed
        through the caches — their misses are real — but are kept out
        of the live working set.
    """

    def __init__(
        self,
        spec: MachineSpec | None = None,
        fn_layers: dict[str, str] | None = None,
        aux_addrs: Callable[[int], bool] | None = None,
    ) -> None:
        self.spec = spec or MachineSpec()
        self.fn_layers = fn_layers or {}
        self.aux_addrs = aux_addrs or (lambda addr: False)

    def _layer_of(self, fn: str | None) -> str:
        if fn is None:
            return AUX_LAYER
        return self.fn_layers.get(fn, AUX_LAYER)

    def replay(
        self, trace: TraceBuffer, recorder: Recorder | None = None
    ) -> MissAttribution:
        """Replay the full trace; optionally emit spans into ``recorder``.

        The replay is single-pass: references are charged against cold
        caches in trace order while call events open/close per-function
        spans and phase marks open/close phase spans, all on the
        modelled cycle clock.
        """
        hierarchy = SplitCacheHierarchy(self.spec)
        line_size = self.spec.icache.line_size
        penalty = self.spec.miss_penalty
        result = MissAttribution(spec=self.spec, functions={})
        cycles = 0

        phase_slices = trace.phase_slices()
        events = trace.call_events
        event_index = 0
        phase_index = 0
        open_phase = None
        span_stack: list[object] = []

        for ref_index, ref in enumerate(trace.refs):
            # Close/open phase spans at their marked positions.
            while (
                phase_index < len(phase_slices)
                and phase_slices[phase_index][1].start == ref_index
            ):
                if recorder is not None:
                    if open_phase is not None:
                        recorder.end(open_phase, float(cycles))
                    open_phase = recorder.begin(
                        "phase", phase_slices[phase_index][0], float(cycles)
                    )
                phase_index += 1
            # Apply call events scheduled before this reference.
            while event_index < len(events) and events[event_index].index <= ref_index:
                event = events[event_index]
                event_index += 1
                if recorder is None:
                    continue
                if event.enter:
                    span_stack.append(
                        recorder.begin(
                            self._layer_of(event.fn), event.fn, float(cycles)
                        )
                    )
                elif span_stack:
                    recorder.end(span_stack.pop(), float(cycles))

            row = result.functions.get(ref.fn or "?")
            if row is None:
                row = FunctionMisses(fn=ref.fn or "?", layer=self._layer_of(ref.fn))
                result.functions[row.fn] = row
            line = ref.addr // line_size
            cycles += 1
            if ref.is_code():
                missed = hierarchy.icache.access_span_report(ref.addr, ref.size)  # type: ignore[attr-defined]
                row.code_refs += 1
                row.code_misses += int(missed.size)
                stall = int(missed.size) * penalty
                row.stall_cycles += stall
                cycles += stall
                result.code_lines.setdefault(line, row.layer)
            else:
                missed = hierarchy.dcache.access_span_report(ref.addr, ref.size)  # type: ignore[attr-defined]
                if ref.is_write():
                    # Writes allocate but never stall (write buffer).
                    row.write_refs += 1
                    row.write_misses += int(missed.size)
                else:
                    row.read_refs += 1
                    row.read_misses += int(missed.size)
                    stall = int(missed.size) * penalty
                    row.stall_cycles += stall
                    cycles += stall
                if not self.aux_addrs(ref.addr):
                    info = result.data_lines.setdefault(line, _LineInfo(row.layer))
                    if ref.is_write():
                        info.written = True

        if recorder is not None:
            while span_stack:
                recorder.end(span_stack.pop(), float(cycles))
            if open_phase is not None:
                recorder.end(open_phase, float(cycles))
            recorder.count("obs.replayed_refs", float(len(trace.refs)))
            recorder.count("obs.modelled_cycles", float(cycles))
        result.cycles = cycles
        return result


def replay_receive_path(
    seed: int = 0,
    spec: MachineSpec | None = None,
    recorder: Recorder | None = None,
) -> MissAttribution:
    """Build and replay the NetBSD receive-&-acknowledge trace.

    The one-call form the CLI and tests use: constructs the
    :class:`~repro.netbsd.receive_path.ReceivePathModel`, generates its
    three-phase trace (with phase spans landing in ``recorder`` when
    given), and replays it with Figure-1 function→layer attribution and
    Table-1 aux exclusion.
    """
    from ..netbsd.functions import fn_to_layer_map
    from ..netbsd.receive_path import ReceivePathModel

    model = ReceivePathModel(seed=seed)
    trace = model.build_trace()
    attributor = MissAttributor(
        spec=spec,
        fn_layers=fn_to_layer_map(),
        aux_addrs=model.is_aux_addr,
    )
    return attributor.replay(trace, recorder=recorder)


def render_live_table1(attribution: MissAttribution) -> str:
    """Live working set vs the static Table 1 catalogue, side by side."""
    from ..experiments.report import render_table
    from ..netbsd.layers import ALL_LAYERS, PAPER_TABLE1

    live = attribution.live_working_set()
    rows = []
    for layer in ALL_LAYERS:
        got = live.get(layer, {"code": 0, "readonly": 0, "mutable": 0})
        want = PAPER_TABLE1[layer]
        rows.append(
            [
                layer,
                got["code"],
                want.code,
                got["readonly"],
                want.readonly,
                got["mutable"],
                want.mutable,
            ]
        )
    return render_table(
        ["Layer", "code", "(paper)", "ro-data", "(paper)", "mut-data", "(paper)"],
        rows,
        title="Live miss-attribution working set vs Table 1 (bytes)",
    )
