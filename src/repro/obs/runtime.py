"""The run-scoped recorder: spans, counters, and the global switch.

This module is the dependency-free core of :mod:`repro.obs`.  It defines
the event model (:class:`Span`, :class:`CounterSet`) and the
:class:`Recorder` that instrumented hot paths write into, plus the
process-global install point the instrumentation checks.

Zero cost when disabled
-----------------------
Instrumentation sites follow one pattern::

    recorder = active_recorder()
    if recorder is not None:
        ...record a span or bump a counter...

With no recorder installed (the default), the only cost is one global
read and an ``is None`` test; no object is allocated, no RNG is drawn,
and no cache state is touched, so simulation results are byte-identical
with tracing on or off (``tests/test_obs.py`` pins this).

Clocks
------
The recorder does not own a clock: every ``begin``/``end`` carries an
explicit timestamp supplied by the caller, because "now" differs by
subsystem — ``machine.executor``/``sim.runner`` spans use CPU cycles
(:attr:`repro.machine.cpu.CPU.cycles`), while trace-generation spans in
:mod:`repro.netbsd.receive_path` use the reference index, and the
miss-attribution replay uses modelled cycles (1 per reference plus the
miss penalty).  The clock unit is recorded per span track by the sink.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Callable, Iterator

#: Signature of a counter probe: returns the *cumulative* values of a
#: set of named counters (e.g. cache hits/misses); the recorder stores
#: end-minus-begin deltas on the span.
CounterProbe = Callable[[], dict[str, float]]


class CounterSet:
    """A bag of named monotonically accumulated counters.

    Counter names are dotted strings (``mbuf.alloc``,
    ``layer0.icache_misses``); values are floats so cycle counts and
    event counts share one type.
    """

    def __init__(self) -> None:
        self._values: dict[str, float] = {}

    def add(self, name: str, amount: float = 1.0) -> None:
        """Accumulate ``amount`` into the named counter."""
        self._values[name] = self._values.get(name, 0.0) + amount

    def merge(self, other: dict[str, float]) -> None:
        """Accumulate every counter of ``other`` into this set."""
        for name, amount in other.items():
            self.add(name, amount)

    def get(self, name: str) -> float:
        """Current value of the named counter (0.0 when never bumped)."""
        return self._values.get(name, 0.0)

    def as_dict(self) -> dict[str, float]:
        """Sorted snapshot of all counters (JSON-serializable)."""
        return {name: self._values[name] for name in sorted(self._values)}

    def __len__(self) -> int:
        return len(self._values)

    def __bool__(self) -> bool:
        return bool(self._values)


@dataclass(frozen=True)
class Span:
    """One closed enter/exit interval on a named track.

    Attributes
    ----------
    track:
        The timeline the span belongs to — one track per protocol layer
        (``layer0`` … ``layer4``), plus ``scheduler`` and phase tracks.
        Sinks map tracks to Chrome-trace threads.
    name:
        What ran (layer invocation, scheduler step, trace phase,
        function name in a replay).
    start / end:
        Clock values at enter and exit (unit depends on the producer;
        see the module docstring).
    args:
        Small JSON-serializable annotations (message size, batch size).
    counters:
        End-minus-start deltas of the probe's counters over the span
        (cache hits/misses, stall cycles, …).
    """

    track: str
    name: str
    start: float
    end: float
    args: dict[str, Any] = field(default_factory=dict)
    counters: dict[str, float] = field(default_factory=dict)

    @property
    def duration(self) -> float:
        """Span length in its clock's unit."""
        return self.end - self.start


@dataclass
class _OpenSpan:
    """Book-keeping for a span that has begun but not ended."""

    track: str
    name: str
    start: float
    args: dict[str, Any]
    probe: CounterProbe | None
    baseline: dict[str, float]


@dataclass(frozen=True)
class Instant:
    """A zero-duration marker on a track (message arrival, drop)."""

    track: str
    name: str
    time: float
    args: dict[str, Any] = field(default_factory=dict)


class Recorder:
    """Run-scoped collection point for spans, instants, and counters.

    Parameters
    ----------
    keep_spans:
        When False the recorder accumulates only counters and per-track
        totals, discarding span/instant objects — the metrics-sink mode
        the harness uses, where memory must stay bounded over thousands
        of sweep-point messages.
    """

    def __init__(self, keep_spans: bool = True) -> None:
        self.keep_spans = keep_spans
        self.spans: list[Span] = []
        self.instants: list[Instant] = []
        self.counters = CounterSet()
        #: Aggregate per-track counter totals (always maintained, even
        #: when spans themselves are discarded).
        self.track_totals: dict[str, CounterSet] = {}

    # ------------------------------------------------------------------
    # Spans

    def begin(
        self,
        track: str,
        name: str,
        clock: float,
        probe: CounterProbe | None = None,
        **args: Any,
    ) -> _OpenSpan:
        """Open a span; returns the handle :meth:`end` closes."""
        baseline = probe() if probe is not None else {}
        return _OpenSpan(track, name, clock, dict(args), probe, baseline)

    def end(self, handle: _OpenSpan, clock: float) -> Span | None:
        """Close a span handle, computing counter deltas since begin."""
        deltas: dict[str, float] = {}
        if handle.probe is not None:
            current = handle.probe()
            deltas = {
                key: current[key] - handle.baseline.get(key, 0.0)
                for key in current
            }
        totals = self.track_totals.setdefault(handle.track, CounterSet())
        totals.add("spans")
        totals.add("clock_units", clock - handle.start)
        totals.merge(deltas)
        if not self.keep_spans:
            return None
        span = Span(
            track=handle.track,
            name=handle.name,
            start=handle.start,
            end=clock,
            args=handle.args,
            counters=deltas,
        )
        self.spans.append(span)
        return span

    @contextmanager
    def span(
        self,
        track: str,
        name: str,
        clock: Callable[[], float],
        probe: CounterProbe | None = None,
        **args: Any,
    ) -> Iterator[_OpenSpan]:
        """Context-manager form: ``clock`` is called at enter and exit."""
        handle = self.begin(track, name, clock(), probe, **args)
        try:
            yield handle
        finally:
            self.end(handle, clock())

    def instant(self, track: str, name: str, clock: float, **args: Any) -> None:
        """Record a zero-duration event (skipped in counters-only mode)."""
        totals = self.track_totals.setdefault(track, CounterSet())
        totals.add(f"instant.{name}")
        if self.keep_spans:
            self.instants.append(Instant(track, name, clock, dict(args)))

    # ------------------------------------------------------------------
    # Counters

    def count(self, name: str, amount: float = 1.0) -> None:
        """Bump a run-global counter."""
        self.counters.add(name, amount)

    def tracks(self) -> list[str]:
        """All track names seen, in first-seen order."""
        seen = dict.fromkeys(span.track for span in self.spans)
        for instant in self.instants:
            seen.setdefault(instant.track, None)
        for track in self.track_totals:
            seen.setdefault(track, None)
        return list(seen)


def machine_counters(cpu: Any) -> CounterProbe:
    """A counter probe over a :class:`repro.machine.cpu.CPU`.

    Duck-typed (anything with ``cycles``, ``stall_cycles`` and a
    ``hierarchy`` of I/D caches works) so this module stays free of
    machine-layer imports.
    """

    hierarchy = cpu.hierarchy

    def probe() -> dict[str, float]:
        return {
            "cycles": float(cpu.cycles),
            "stall_cycles": float(cpu.stall_cycles),
            "icache_hits": float(hierarchy.icache.stats.hits),
            "icache_misses": float(hierarchy.icache.stats.misses),
            "dcache_hits": float(hierarchy.dcache.stats.hits),
            "dcache_misses": float(hierarchy.dcache.stats.misses),
        }

    return probe


# ----------------------------------------------------------------------
# The process-global install point

_recorder: Recorder | None = None


def active_recorder() -> Recorder | None:
    """The installed recorder, or None when tracing is disabled.

    This is the single check every instrumentation site performs; it
    must stay a plain module-global read.
    """
    return _recorder


def install(recorder: Recorder | None) -> Recorder | None:
    """Install (or, with None, remove) the process-global recorder.

    Returns the previously installed recorder so callers can restore it.
    Prefer the :func:`recording` context manager, which restores
    automatically.
    """
    global _recorder
    previous = _recorder
    _recorder = recorder  # det: allow[DET005] process-local install point; harness workers install and restore their own recorder per point
    return previous


@contextmanager
def recording(recorder: Recorder) -> Iterator[Recorder]:
    """Install ``recorder`` for the duration of the ``with`` block."""
    previous = install(recorder)
    try:
        yield recorder
    finally:
        install(previous)
