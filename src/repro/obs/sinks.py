"""Pluggable sinks turning recorded spans/counters into artifacts.

Three sinks ship with the subsystem (ISSUE 3's contract):

* :class:`ChromeTraceSink` — a ``chrome://tracing``/Perfetto-loadable
  timeline, one thread (track) per protocol layer, one process per
  traced configuration (e.g. ``conventional`` vs ``ldlp``);
* :class:`TableSink` — plain-text per-track counter totals, and (for
  the receive path) the live per-function miss-attribution table from
  :mod:`repro.obs.attribution`;
* :class:`MetricsSink` — flat counter totals, the shape the harness
  folds into ``BENCH_experiments.json``.

All payload shapes are documented and validated in
:mod:`repro.obs.schema`.
"""

from __future__ import annotations

import json
from pathlib import Path

from ..errors import ObsError
from .runtime import Recorder


class ChromeTraceSink:
    """Assembles one Chrome-trace payload from one or more recorders.

    Each recorder becomes a Chrome *process* (named after its
    configuration) and each of its tracks a named *thread*, so a
    conventional-vs-LDLP comparison renders as two process groups with
    one row per layer.  Timestamps map one simulated clock unit to one
    microsecond; ``otherData.clock_unit`` records the unit.
    """

    def __init__(self, clock_unit: str = "cycles") -> None:
        self.clock_unit = clock_unit
        self._processes: list[tuple[int, str, Recorder]] = []

    def add_recorder(self, recorder: Recorder, process_name: str) -> None:
        """Add one traced configuration as a Chrome process."""
        if not recorder.keep_spans:
            raise ObsError(
                "chrome sink needs a span-keeping recorder "
                "(Recorder(keep_spans=True))"
            )
        self._processes.append((len(self._processes) + 1, process_name, recorder))

    def to_payload(self) -> dict:
        """Build the JSON-serializable Chrome-trace object."""
        if not self._processes:
            raise ObsError("chrome sink has no recorders to serialize")
        events: list[dict] = []
        for pid, process_name, recorder in self._processes:
            events.append(
                {
                    "name": "process_name",
                    "ph": "M",
                    "pid": pid,
                    "args": {"name": process_name},
                }
            )
            tids = {track: tid for tid, track in enumerate(recorder.tracks(), 1)}
            for track, tid in tids.items():
                events.append(
                    {
                        "name": "thread_name",
                        "ph": "M",
                        "pid": pid,
                        "tid": tid,
                        "args": {"name": track},
                    }
                )
                events.append(
                    {
                        "name": "thread_sort_index",
                        "ph": "M",
                        "pid": pid,
                        "tid": tid,
                        "args": {"sort_index": tid},
                    }
                )
            for span in recorder.spans:
                args = dict(span.args)
                args.update(span.counters)
                events.append(
                    {
                        "name": span.name,
                        "cat": span.track,
                        "ph": "X",
                        "ts": span.start,
                        "dur": span.duration,
                        "pid": pid,
                        "tid": tids[span.track],
                        "args": args,
                    }
                )
            for instant in recorder.instants:
                events.append(
                    {
                        "name": instant.name,
                        "ph": "I",
                        "s": "t",
                        "ts": instant.time,
                        "pid": pid,
                        "tid": tids[instant.track],
                        "args": dict(instant.args),
                    }
                )
        return {
            "traceEvents": events,
            "displayTimeUnit": "ms",
            "otherData": {"clock_unit": self.clock_unit, "producer": "repro.obs"},
        }

    def write(self, path: str | Path) -> Path:
        """Serialize the payload to ``path`` and return it."""
        out = Path(path)
        out.write_text(json.dumps(self.to_payload(), indent=1) + "\n")
        return out


class MetricsSink:
    """Flattens a recorder into counter totals (the BENCH shape)."""

    def __init__(self, recorder: Recorder) -> None:
        self.recorder = recorder

    def to_payload(self) -> dict:
        """``{"counters": {...}, "tracks": {track: {...}}}``."""
        return {
            "counters": self.recorder.counters.as_dict(),
            "tracks": {
                track: totals.as_dict()
                for track, totals in sorted(self.recorder.track_totals.items())
            },
        }

    def write(self, path: str | Path) -> Path:
        """Serialize the payload to ``path`` and return it."""
        out = Path(path)
        out.write_text(json.dumps(self.to_payload(), indent=1, sort_keys=True) + "\n")
        return out


class TableSink:
    """Renders per-track counter totals as a monospace table."""

    #: Columns shown when present in a track's totals, in order.
    COLUMNS = (
        "spans",
        "clock_units",
        "cycles",
        "stall_cycles",
        "icache_misses",
        "dcache_misses",
    )

    def __init__(self, recorder: Recorder, title: str = "obs track totals") -> None:
        self.recorder = recorder
        self.title = title

    def render(self) -> str:
        """The per-track totals table as text."""
        from ..experiments.report import render_table

        totals = self.recorder.track_totals
        if not totals:
            return f"{self.title}: no tracks recorded"
        present = [
            column
            for column in self.COLUMNS
            if any(column in bag.as_dict() for bag in totals.values())
        ]
        rows = []
        for track in sorted(totals):
            bag = totals[track].as_dict()
            rows.append([track] + [f"{bag.get(column, 0.0):.0f}" for column in present])
        return render_table(["track"] + list(present), rows, title=self.title)

    def write(self, path: str | Path) -> Path:
        """Write the rendered table to ``path`` and return it."""
        out = Path(path)
        out.write_text(self.render() + "\n")
        return out
