"""repro.obs — structured tracing, metrics, and miss attribution.

A zero-cost-when-disabled observability layer threaded through the
simulator's hot paths.  The pieces:

* :mod:`~repro.obs.runtime` — the :class:`Recorder` (spans, instants,
  counters), the process-global install point every instrumented site
  checks, and the :func:`recording` context manager;
* :mod:`~repro.obs.schema` — the documented event schema and payload
  validators (the contract, see ARCHITECTURE.md);
* :mod:`~repro.obs.sinks` — Chrome-trace / table / metrics sinks;
* :mod:`~repro.obs.attribution` — live per-function miss attribution
  and the Table-1-shaped live working set;
* :mod:`~repro.obs.tracing` — orchestration (traced simulator runs,
  traced receive path);
* :mod:`~repro.obs.cli` — ``ldlp-experiment trace``.

Instrumented producers: :meth:`repro.core.binding.MachineBinding.charge`
(per-layer invocation spans), :func:`repro.sim.runner.drive` (scheduler
steps, arrival/drop instants), :meth:`repro.machine.executor
.FootprintExecutor.run_layer`, :meth:`repro.netbsd.receive_path
.ReceivePathModel.build_trace` (phase spans), and
:class:`repro.buffers.pool.MbufPool` (allocation counters).
"""

from .attribution import (
    AUX_LAYER,
    FunctionMisses,
    MissAttribution,
    MissAttributor,
    render_live_table1,
    replay_receive_path,
)
from .runtime import (
    CounterSet,
    Instant,
    Recorder,
    Span,
    active_recorder,
    install,
    machine_counters,
    recording,
)
from .schema import validate_chrome_trace, validate_metrics
from .sinks import ChromeTraceSink, MetricsSink, TableSink
from .tracing import (
    TracedRun,
    chrome_trace_for_receive,
    chrome_trace_for_sim,
    trace_receive_path,
    trace_schedulers,
    trace_simulation,
)

__all__ = [
    "AUX_LAYER",
    "ChromeTraceSink",
    "CounterSet",
    "FunctionMisses",
    "Instant",
    "MetricsSink",
    "MissAttribution",
    "MissAttributor",
    "Recorder",
    "Span",
    "TableSink",
    "TracedRun",
    "active_recorder",
    "chrome_trace_for_receive",
    "chrome_trace_for_sim",
    "install",
    "machine_counters",
    "recording",
    "render_live_table1",
    "replay_receive_path",
    "trace_receive_path",
    "trace_schedulers",
    "trace_simulation",
    "validate_chrome_trace",
    "validate_metrics",
]
