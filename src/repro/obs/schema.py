"""The documented obs event schema and its validators.

This module is the repo's first formally documented interface (see
ARCHITECTURE.md, "The obs event schema"): sinks, tests, and external
consumers all validate against the definitions here rather than against
whatever a sink happens to emit.

Two wire formats are defined:

**Chrome trace JSON** (``ChromeTraceSink``) — the subset of the Trace
Event Format that ``chrome://tracing`` and Perfetto load:

* the payload is an object with a ``traceEvents`` list and a
  ``displayTimeUnit`` of ``"ms"``;
* every span is a *complete* event (``"ph": "X"``) with ``name``,
  ``cat``, ``ts``, ``dur``, ``pid``, ``tid`` and an ``args`` object;
* instants are ``"ph": "I"`` events with scope ``"t"`` (thread);
* tracks are threads: each recorder track gets a ``tid`` announced by a
  ``thread_name`` metadata event (``"ph": "M"``), and each recorder
  (one per traced configuration) gets a ``pid`` announced by a
  ``process_name`` metadata event;
* timestamps are in microseconds by convention; we emit **one simulated
  clock unit per microsecond** (CPU cycles for simulator runs,
  reference indices for trace generation) and record the unit in
  ``otherData.clock_unit``.

**Metrics JSON** (``MetricsSink``) — an object with ``counters`` (flat
name → number) and ``tracks`` (track name → counter totals), the shape
folded into ``BENCH_experiments.json`` entries by the harness.
"""

from __future__ import annotations

from typing import Any

from ..errors import ObsError

#: Event phases a sink may emit (complete, instant, metadata).
CHROME_PHASES = ("X", "I", "M")

#: Keys required on every complete ("X") event.
COMPLETE_EVENT_KEYS = ("name", "cat", "ph", "ts", "dur", "pid", "tid")

#: Keys required on every instant ("I") event.
INSTANT_EVENT_KEYS = ("name", "ph", "ts", "s", "pid", "tid")

#: Metadata event names we emit (thread/process naming).
METADATA_NAMES = ("thread_name", "process_name", "thread_sort_index")


def _require(condition: bool, message: str) -> None:
    """Raise :class:`ObsError` with ``message`` unless ``condition``."""
    if not condition:
        raise ObsError(f"invalid chrome trace: {message}")


def validate_chrome_trace(payload: Any) -> dict[str, int]:
    """Validate a Chrome-trace payload against the documented schema.

    Returns summary counts (``events``, ``spans``, ``instants``,
    ``tracks``, ``processes``) and raises
    :class:`~repro.errors.ObsError` on any schema violation.  This is
    the same check ``tests/test_obs.py`` gates the sink with.
    """
    _require(isinstance(payload, dict), "payload must be a JSON object")
    _require("traceEvents" in payload, "missing 'traceEvents'")
    events = payload["traceEvents"]
    _require(isinstance(events, list), "'traceEvents' must be a list")
    _require(len(events) > 0, "'traceEvents' is empty")

    named_threads: set[tuple[int, int]] = set()
    named_processes: set[int] = set()
    spans = instants = 0
    for index, event in enumerate(events):
        _require(isinstance(event, dict), f"event {index} is not an object")
        phase = event.get("ph")
        _require(
            phase in CHROME_PHASES,
            f"event {index} has unsupported phase {phase!r}",
        )
        if phase == "M":
            _require(
                event.get("name") in METADATA_NAMES,
                f"metadata event {index} has unknown name {event.get('name')!r}",
            )
            _require("pid" in event, f"metadata event {index} missing pid")
            if event["name"] == "thread_name":
                _require("tid" in event, f"thread_name event {index} missing tid")
                named_threads.add((event["pid"], event["tid"]))
            elif event["name"] == "process_name":
                named_processes.add(event["pid"])
            continue
        keys = COMPLETE_EVENT_KEYS if phase == "X" else INSTANT_EVENT_KEYS
        for key in keys:
            _require(key in event, f"{phase!r} event {index} missing {key!r}")
        _require(
            isinstance(event["ts"], (int, float)) and event["ts"] >= 0,
            f"event {index} has invalid ts {event.get('ts')!r}",
        )
        if phase == "X":
            _require(
                isinstance(event["dur"], (int, float)) and event["dur"] >= 0,
                f"event {index} has invalid dur {event.get('dur')!r}",
            )
            _require(
                (event["pid"], event["tid"]) in named_threads,
                f"event {index} uses unnamed track pid={event['pid']} "
                f"tid={event['tid']} (thread_name metadata must precede spans)",
            )
            spans += 1
        else:
            instants += 1
    _require(spans > 0, "trace contains no span events")
    return {
        "events": len(events),
        "spans": spans,
        "instants": instants,
        "tracks": len(named_threads),
        "processes": len(named_processes),
    }


def validate_metrics(payload: Any) -> None:
    """Validate a metrics-sink payload (flat counters + track totals)."""
    _require(isinstance(payload, dict), "metrics payload must be an object")
    for key in ("counters", "tracks"):
        _require(key in payload, f"metrics payload missing {key!r}")
    _require(
        isinstance(payload["counters"], dict)
        and all(
            isinstance(value, (int, float))
            for value in payload["counters"].values()
        ),
        "'counters' must map names to numbers",
    )
    _require(isinstance(payload["tracks"], dict), "'tracks' must be an object")
    for track, totals in payload["tracks"].items():
        _require(
            isinstance(totals, dict)
            and all(isinstance(value, (int, float)) for value in totals.values()),
            f"track {track!r} totals must map names to numbers",
        )
