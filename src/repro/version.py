"""Package version, kept in one place."""

__version__ = "1.0.0"
