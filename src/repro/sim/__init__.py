"""Discrete-event simulation: engine, queues, statistics, the
Section-4 synthetic benchmark runner, and its multi-core
generalization (:mod:`repro.sim.multicore`)."""

from .engine import Simulator
from .events import Event, EventQueue
from .multicore import (
    CoreStats,
    MultiCoreConfig,
    MultiCoreRunResult,
    drive_multicore,
    merge_multicore_results,
    multicore_point,
    run_multicore,
    run_multicore_averaged,
)
from .queues import BoundedQueue
from .runner import (
    ComparisonResult,
    DriveStats,
    drive,
    ENGINE_NAMES,
    SCHEDULER_NAMES,
    SimulationConfig,
    build_paper_stack,
    compare_schedulers,
    run_averaged,
    run_simulation,
)
from .stats import (
    LatencyRecorder,
    LatencySummary,
    MissesPerMessage,
    RunResult,
    merge_results,
)
from .vec import arrival_table, try_drive_vec, vec_supported

__all__ = [
    "BoundedQueue",
    "CoreStats",
    "DriveStats",
    "drive",
    "drive_multicore",
    "ComparisonResult",
    "ENGINE_NAMES",
    "Event",
    "EventQueue",
    "arrival_table",
    "LatencyRecorder",
    "LatencySummary",
    "MissesPerMessage",
    "MultiCoreConfig",
    "MultiCoreRunResult",
    "RunResult",
    "SCHEDULER_NAMES",
    "SimulationConfig",
    "Simulator",
    "build_paper_stack",
    "compare_schedulers",
    "merge_multicore_results",
    "merge_results",
    "multicore_point",
    "run_averaged",
    "run_multicore",
    "run_multicore_averaged",
    "run_simulation",
    "try_drive_vec",
    "vec_supported",
]
