"""Discrete-event simulation: engine, queues, statistics, and the
Section-4 synthetic benchmark runner."""

from .engine import Simulator
from .events import Event, EventQueue
from .queues import BoundedQueue
from .runner import (
    ComparisonResult,
    DriveStats,
    drive,
    ENGINE_NAMES,
    SCHEDULER_NAMES,
    SimulationConfig,
    build_paper_stack,
    compare_schedulers,
    run_averaged,
    run_simulation,
)
from .stats import (
    LatencyRecorder,
    LatencySummary,
    MissesPerMessage,
    RunResult,
    merge_results,
)
from .vec import arrival_table, try_drive_vec, vec_supported

__all__ = [
    "BoundedQueue",
    "DriveStats",
    "drive",
    "ComparisonResult",
    "ENGINE_NAMES",
    "Event",
    "EventQueue",
    "arrival_table",
    "LatencyRecorder",
    "LatencySummary",
    "MissesPerMessage",
    "RunResult",
    "SCHEDULER_NAMES",
    "SimulationConfig",
    "Simulator",
    "build_paper_stack",
    "compare_schedulers",
    "merge_results",
    "run_averaged",
    "run_simulation",
    "try_drive_vec",
    "vec_supported",
]
