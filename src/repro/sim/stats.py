"""Latency, throughput, and miss statistics for simulation runs."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import SimulationError


class LatencyRecorder:
    """Accumulates per-message latencies (seconds)."""

    def __init__(self) -> None:
        self._samples: list[float] = []

    def record(self, latency: float) -> None:
        """Append one latency sample; negative values are a model bug."""
        if latency < 0:
            raise SimulationError(f"negative latency {latency}")
        self._samples.append(latency)

    def __len__(self) -> int:
        return len(self._samples)

    def summary(self) -> "LatencySummary":
        """Reduce the samples to a :class:`LatencySummary` (NaNs if empty)."""
        if not self._samples:
            return LatencySummary(0, float("nan"), float("nan"), float("nan"),
                                  float("nan"), float("nan"))
        data = np.asarray(self._samples)
        return LatencySummary(
            count=int(data.size),
            mean=float(data.mean()),
            median=float(np.median(data)),
            p95=float(np.percentile(data, 95)),
            p99=float(np.percentile(data, 99)),
            maximum=float(data.max()),
        )


@dataclass(frozen=True)
class LatencySummary:
    """Summary statistics of message latency, all in seconds."""

    count: int
    mean: float
    median: float
    p95: float
    p99: float
    maximum: float

    def to_dict(self) -> dict:
        """JSON-serializable form (harness result cache)."""
        return {
            "count": self.count,
            "mean": self.mean,
            "median": self.median,
            "p95": self.p95,
            "p99": self.p99,
            "maximum": self.maximum,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "LatencySummary":
        """Inverse of :meth:`to_dict`."""
        return cls(**data)

    def format(self) -> str:
        """Human-readable one-liner with unit-scaled durations."""
        from ..units import format_duration

        if self.count == 0:
            return "no completed messages"
        return (
            f"n={self.count} mean={format_duration(self.mean)} "
            f"median={format_duration(self.median)} p95={format_duration(self.p95)} "
            f"p99={format_duration(self.p99)} max={format_duration(self.maximum)}"
        )


@dataclass(frozen=True)
class MissesPerMessage:
    """Primary-cache misses per completed message (Figure 5's y-axis)."""

    instruction: float
    data: float

    @property
    def total(self) -> float:
        """Instruction plus data misses per message."""
        return self.instruction + self.data

    def to_dict(self) -> dict:
        """JSON-serializable form (harness result cache)."""
        return {"instruction": self.instruction, "data": self.data}

    @classmethod
    def from_dict(cls, data: dict) -> "MissesPerMessage":
        """Inverse of :meth:`to_dict`."""
        return cls(**data)


@dataclass(frozen=True)
class RunResult:
    """Everything one simulation run produces.

    Attributes mirror the paper's reporting: latency (Figure 6/7),
    misses per message (Figure 5), plus throughput and drop accounting.
    """

    scheduler: str
    arrival_rate: float
    offered: int
    completed: int
    dropped: int
    duration: float
    latency: LatencySummary
    misses: MissesPerMessage
    cycles_per_message: float
    mean_batch_size: float

    @property
    def delivered_rate(self) -> float:
        """Completed messages per second of simulated time."""
        if self.duration <= 0:
            return 0.0
        return self.completed / self.duration

    @property
    def drop_fraction(self) -> float:
        """Fraction of offered messages dropped at the input buffer."""
        if self.offered == 0:
            return 0.0
        return self.dropped / self.offered

    def summary(self) -> str:
        """One reporting line: throughput, drops, latency, misses, batch."""
        return (
            f"{self.scheduler}: rate={self.arrival_rate:.0f}/s "
            f"completed={self.completed}/{self.offered} "
            f"(drops={self.dropped}) latency[{self.latency.format()}] "
            f"misses/msg I={self.misses.instruction:.0f} D={self.misses.data:.0f} "
            f"cycles/msg={self.cycles_per_message:.0f} "
            f"batch={self.mean_batch_size:.1f}"
        )

    def to_dict(self) -> dict:
        """JSON-serializable form (harness result cache, BENCH files)."""
        return {
            "scheduler": self.scheduler,
            "arrival_rate": self.arrival_rate,
            "offered": self.offered,
            "completed": self.completed,
            "dropped": self.dropped,
            "duration": self.duration,
            "latency": self.latency.to_dict(),
            "misses": self.misses.to_dict(),
            "cycles_per_message": self.cycles_per_message,
            "mean_batch_size": self.mean_batch_size,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "RunResult":
        """Inverse of :meth:`to_dict` (rebuilds the nested summaries)."""
        fields = dict(data)
        fields["latency"] = LatencySummary.from_dict(fields["latency"])
        fields["misses"] = MissesPerMessage.from_dict(fields["misses"])
        return cls(**fields)


def merge_results(results: list[RunResult]) -> RunResult:
    """Average several same-configuration runs (the paper's 100-placement
    averaging).  Latency summaries are averaged field-wise, weighted by
    sample count; counters are summed."""
    if not results:
        raise SimulationError("cannot merge zero results")
    total_completed = sum(r.completed for r in results)
    weights = np.asarray(
        [r.latency.count if r.latency.count else 0 for r in results], dtype=float
    )
    if weights.sum() == 0:
        weights = np.ones(len(results))
    weights = weights / weights.sum()

    def wavg(getter) -> float:
        """Weighted average of one field, ignoring non-finite entries."""
        values = np.asarray([getter(r) for r in results], dtype=float)
        finite = np.isfinite(values)
        if not finite.any():
            return float("nan")
        w = weights.copy()
        w[~finite] = 0.0
        if w.sum() == 0:
            return float("nan")
        return float(np.dot(values[finite], w[finite] / w.sum()))

    latency = LatencySummary(
        count=sum(r.latency.count for r in results),
        mean=wavg(lambda r: r.latency.mean),
        median=wavg(lambda r: r.latency.median),
        p95=wavg(lambda r: r.latency.p95),
        p99=wavg(lambda r: r.latency.p99),
        maximum=max((r.latency.maximum for r in results if r.latency.count), default=float("nan")),
    )
    return RunResult(
        scheduler=results[0].scheduler,
        arrival_rate=float(np.mean([r.arrival_rate for r in results])),
        offered=sum(r.offered for r in results),
        completed=total_completed,
        dropped=sum(r.dropped for r in results),
        duration=sum(r.duration for r in results),
        latency=latency,
        misses=MissesPerMessage(
            instruction=wavg(lambda r: r.misses.instruction),
            data=wavg(lambda r: r.misses.data),
        ),
        cycles_per_message=wavg(lambda r: r.cycles_per_message),
        mean_batch_size=wavg(lambda r: r.mean_batch_size),
    )
