"""Discrete-event primitives: timestamped events in a priority queue."""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Any, Callable

from ..errors import SimulationError

#: An event handler receives the simulator and the event payload.
Handler = Callable[[Any], None]


@dataclass(order=True)
class Event:
    """A scheduled occurrence.

    Ordering is (time, sequence): ties break in scheduling order, which
    keeps runs deterministic.
    """

    time: float
    seq: int
    handler: Handler = field(compare=False)
    payload: Any = field(compare=False, default=None)
    cancelled: bool = field(compare=False, default=False)


class EventQueue:
    """A time-ordered queue of events."""

    def __init__(self) -> None:
        self._heap: list[Event] = []
        self._counter = itertools.count()

    def __len__(self) -> int:
        return sum(1 for event in self._heap if not event.cancelled)

    def push(self, time: float, handler: Handler, payload: Any = None) -> Event:
        """Schedule a handler at ``time``; returns a cancellable event."""
        if time < 0:
            raise SimulationError(f"cannot schedule at negative time {time}")
        event = Event(time, next(self._counter), handler, payload)
        heapq.heappush(self._heap, event)
        return event

    def pop(self) -> Event:
        """Remove and return the earliest non-cancelled event."""
        while self._heap:
            event = heapq.heappop(self._heap)
            if not event.cancelled:
                return event
        raise SimulationError("pop from empty event queue")

    def peek_time(self) -> float | None:
        """Time of the next live event, or None when the queue is empty."""
        while self._heap and self._heap[0].cancelled:
            heapq.heappop(self._heap)
        return self._heap[0].time if self._heap else None

    @staticmethod
    def cancel(event: Event) -> None:
        """Mark an event dead; it will be skipped (and dropped) on pop."""
        event.cancelled = True
