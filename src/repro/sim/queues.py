"""Bounded FIFO queue with drop accounting (shared by switch models)."""

from __future__ import annotations

from collections import deque
from typing import Generic, TypeVar

from ..errors import ConfigurationError

T = TypeVar("T")


class BoundedQueue(Generic[T]):
    """A FIFO with a capacity limit; offers beyond capacity are dropped.

    The paper's simulations bound buffering at 500 packets; the drop
    counter is what turns overload into loss instead of unbounded delay.
    """

    def __init__(self, capacity: int = 500) -> None:
        if capacity <= 0:
            raise ConfigurationError(f"queue capacity must be positive: {capacity}")
        self.capacity = capacity
        self.drops = 0
        self.offered = 0
        self.peak_depth = 0
        self._items: deque[T] = deque()

    def __len__(self) -> int:
        return len(self._items)

    def __bool__(self) -> bool:
        return bool(self._items)

    def offer(self, item: T) -> bool:
        """Enqueue if there is room; count a drop otherwise."""
        self.offered += 1
        if len(self._items) >= self.capacity:
            self.drops += 1
            return False
        self._items.append(item)
        self.peak_depth = max(self.peak_depth, len(self._items))
        return True

    def take(self) -> T:
        """Dequeue the oldest item (raises IndexError when empty)."""
        return self._items.popleft()

    def drain(self, limit: int | None = None) -> list[T]:
        """Remove and return up to ``limit`` items (all when None).

        A negative ``limit`` is a caller bug — ``min(limit, len)`` would
        silently turn it into ``range(-n)`` and return ``[]`` — so it
        raises instead of masking the error.
        """
        if limit is not None and limit < 0:
            raise ConfigurationError(f"drain limit must be non-negative: {limit}")
        count = len(self._items) if limit is None else min(limit, len(self._items))
        return [self._items.popleft() for _ in range(count)]

    def reset_stats(self) -> None:
        """Zero the drop/offer/peak counters (queued items are kept).

        Lets one queue be reused across campaign phases — e.g. a fault
        sweep that measures drops per overload level — without the
        previous phase's accounting bleeding into the next.
        """
        self.drops = 0
        self.offered = 0
        self.peak_depth = len(self._items)
