"""A minimal discrete-event simulation engine.

Used by the signalling-switch example and available as a general
substrate; the Figure 5-7 runner drives the CPU clock directly (the CPU
*is* the clock there) but shares the same statistics types.
"""

from __future__ import annotations

from typing import Any

from ..errors import SimulationError
from .events import Event, EventQueue, Handler


class Simulator:
    """An event loop with a monotone clock."""

    def __init__(self) -> None:
        self.queue = EventQueue()
        self.now = 0.0
        self._running = False

    def schedule(self, delay: float, handler: Handler, payload: Any = None) -> Event:
        """Schedule ``handler(payload)`` after ``delay`` seconds."""
        if delay < 0:
            raise SimulationError(f"delay must be non-negative, got {delay}")
        return self.queue.push(self.now + delay, handler, payload)

    def schedule_at(self, time: float, handler: Handler, payload: Any = None) -> Event:
        """Schedule ``handler(payload)`` at absolute ``time``."""
        if time < self.now:
            raise SimulationError(f"cannot schedule in the past ({time} < {self.now})")
        return self.queue.push(time, handler, payload)

    def run(self, until: float | None = None) -> float:
        """Run events until the queue drains or the clock passes ``until``.

        Returns the final clock value.
        """
        if self._running:
            raise SimulationError("simulator is already running")
        self._running = True
        try:
            while True:
                next_time = self.queue.peek_time()
                if next_time is None:
                    break
                if until is not None and next_time > until:
                    self.now = until
                    break
                event = self.queue.pop()
                self.now = event.time
                event.handler(event.payload)
        finally:
            self._running = False
        return self.now

    def step(self) -> bool:
        """Run a single event; returns False when the queue is empty."""
        next_time = self.queue.peek_time()
        if next_time is None:
            return False
        event = self.queue.pop()
        self.now = event.time
        event.handler(event.payload)
        return True
