"""Multi-core synthetic benchmark: dispatch stage -> N cores -> stats.

The single-core drive loop (:func:`repro.sim.runner.drive`) generalized
to the modern topology: a receive-side dispatch stage
(:mod:`repro.core.dispatch`) steers each arrival onto one of N modeled
cores (:mod:`repro.machine.multicore`), each running its own scheduler
instance over private I/D caches, optionally behind one shared L2.
Admission-time dispatch composes with admission-time drops: the
dispatcher picks the core *first*, then that core's
:class:`~repro.core.overload.DropPolicy` decides admission, so every
drop-policy sweep from :mod:`repro.faults` carries over unchanged.

The drive loop is a deterministic discrete-event merge of per-core CPU
clocks: the next event is always the earliest of (next arrival, next
busy core's service step), with ties admitting first — exactly the
single-core loop's order, which is why a ``num_cores=1`` run reproduces
:func:`repro.sim.runner.run_simulation` bit-identically for every
dispatch policy (``tests/test_multicore.py`` pins this).  Multi-core
runs always use the scalar service-step path; the vectorized engine
(:mod:`repro.sim.vec`) is a single-core whole-run replay and does not
apply here.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass, field, replace
from typing import Any

import numpy as np

from ..cache.hierarchy import CacheGeometry, MachineSpec
from ..core.dispatch import (
    APP_CLASS_KEY,
    DISPATCH_POLICIES,
    FLOW_KEY,
    DispatchPolicy,
    make_dispatch_policy,
)
from ..core.layer import Message
from ..core.overload import DROP_POLICIES
from ..core.scheduler import Scheduler
from ..errors import ConfigurationError
from ..machine.multicore import MultiCoreSpec
from ..obs.runtime import active_recorder, machine_counters
from ..traffic.base import Arrival, TrafficSource
from ..traffic.poisson import PoissonSource
from .runner import SCHEDULER_NAMES, SimulationConfig, build_scheduler
from .stats import (
    LatencyRecorder,
    MissesPerMessage,
    RunResult,
    merge_results,
)


@dataclass(frozen=True)
class MultiCoreConfig:
    """Configuration of one multi-core benchmark run.

    The per-core knobs (``scheduler``, layer shape, ``input_limit``,
    ``drop_policy``, ``flush_period_cycles``, buffer geometry) mean
    exactly what they mean in :class:`~repro.sim.runner.SimulationConfig`
    — each core gets its own scheduler built from them.  On top of that:

    ``num_cores`` / ``shared_l2``
        The machine topology (see :class:`repro.machine.multicore.MultiCoreSpec`).
    ``dispatch``
        Dispatch-policy registry name (:data:`repro.core.dispatch.DISPATCH_POLICIES`).
    ``num_flows`` / ``app_classes``
        The modeled traffic structure the dispatcher keys on: arrivals
        are tagged with a deterministic flow id in ``0..num_flows-1``
        and a decoded application class ``flow % app_classes``.
    """

    scheduler: str = "ldlp"
    dispatch: str = "rss"
    num_cores: int = 4
    num_flows: int = 64
    app_classes: int = 8
    num_layers: int = 5
    layer_code_bytes: int = 6144
    layer_data_bytes: int = 256
    layer_base_cycles: float = 1376.0
    layer_per_byte_cycles: float = 0.5
    spec: MachineSpec = field(default_factory=MachineSpec)
    shared_l2: CacheGeometry | None = None
    duration: float = 0.2
    input_limit: int = 500
    batch_limit: int | None = None
    pool_buffers: int = 32
    buffer_size: int = 2048
    random_placement: bool = True
    drop_policy: str = "tail"
    flush_period_cycles: float | None = None

    def __post_init__(self) -> None:
        if self.scheduler not in SCHEDULER_NAMES:
            raise ConfigurationError(
                f"unknown scheduler {self.scheduler!r}; expected one of "
                f"{SCHEDULER_NAMES}"
            )
        if self.dispatch not in DISPATCH_POLICIES:
            raise ConfigurationError(
                f"unknown dispatch policy {self.dispatch!r}; expected one "
                f"of {tuple(sorted(DISPATCH_POLICIES))}"
            )
        if self.drop_policy not in DROP_POLICIES:
            raise ConfigurationError(
                f"unknown drop policy {self.drop_policy!r}; expected one of "
                f"{tuple(sorted(DROP_POLICIES))}"
            )
        if self.duration <= 0:
            raise ConfigurationError("duration must be positive")
        if self.num_flows < 1:
            raise ConfigurationError("num_flows must be >= 1")
        if self.app_classes < 1:
            raise ConfigurationError("app_classes must be >= 1")
        if self.flush_period_cycles is not None and self.flush_period_cycles <= 0:
            raise ConfigurationError("cache-flush period must be positive")
        # Topology validation (core count, shared-L2 geometry).
        MultiCoreSpec(self.num_cores, self.spec, self.shared_l2)

    def machine_spec(self) -> MultiCoreSpec:
        """The machine topology this config describes."""
        return MultiCoreSpec(self.num_cores, self.spec, self.shared_l2)

    def core_config(self) -> SimulationConfig:
        """The single-core :class:`SimulationConfig` each core is built from."""
        return SimulationConfig(
            scheduler=self.scheduler,
            num_layers=self.num_layers,
            layer_code_bytes=self.layer_code_bytes,
            layer_data_bytes=self.layer_data_bytes,
            layer_base_cycles=self.layer_base_cycles,
            layer_per_byte_cycles=self.layer_per_byte_cycles,
            spec=self.machine_spec().core_spec(),
            duration=self.duration,
            input_limit=self.input_limit,
            batch_limit=self.batch_limit,
            pool_buffers=self.pool_buffers,
            buffer_size=self.buffer_size,
            random_placement=self.random_placement,
            drop_policy=self.drop_policy,
            flush_period_cycles=self.flush_period_cycles,
            engine="scalar",
        )

    def with_dispatch(self, dispatch: str) -> "MultiCoreConfig":
        """This config with only the dispatch policy swapped."""
        return replace(self, dispatch=dispatch)


def core_seed(seed: int, core: int) -> int:
    """The placement seed of one core.

    Core 0 uses ``seed`` verbatim — the single-core equivalence anchor —
    and higher cores derive distinct deterministic seeds (CRC-mixed, no
    process entropy), so an N-core run samples N independent random code
    placements, the paper's averaging methodology applied per core.
    """
    if core == 0:
        return int(seed)
    return zlib.crc32(f"core:{seed}:{core}".encode("utf-8"))


def build_cores(config: MultiCoreConfig, seed: int) -> list[Scheduler]:
    """Build one machine-bound scheduler per core.

    Each core reuses the exact single-core constructor
    (:func:`repro.sim.runner.build_scheduler`) with its own placement
    seed; with a shared L2 configured, every core's hierarchy is then
    rewired to probe one shared cache instance.
    """
    base = config.core_config()
    cores = [
        build_scheduler(base, core_seed(seed, index))
        for index in range(config.num_cores)
    ]
    if config.shared_l2 is not None:
        shared = config.shared_l2.build()
        for scheduler in cores:
            assert scheduler.binding is not None
            scheduler.binding.cpu.hierarchy.l2 = shared
    return cores


def tag_flows(
    messages: list[tuple[float, Message]],
    seed: int,
    num_flows: int,
    app_classes: int,
) -> None:
    """Tag each message with its flow id and decoded application class.

    The flow id is a CRC mix of (seed, arrival index) modulo
    ``num_flows`` — deterministic, PYTHONHASHSEED-independent — and the
    application class is ``flow % app_classes``, modeling many flows
    multiplexed over fewer application-level services.  Dispatch
    policies key on these meta fields (:data:`~repro.core.dispatch.FLOW_KEY`,
    :data:`~repro.core.dispatch.APP_CLASS_KEY`).
    """
    for index, (_, message) in enumerate(messages):
        flow = zlib.crc32(f"flow:{seed}:{index}".encode("utf-8")) % num_flows
        message.meta[FLOW_KEY] = int(flow)
        message.meta[APP_CLASS_KEY] = int(flow % app_classes)


@dataclass
class MultiCoreDriveStats:
    """Raw outcome of :func:`drive_multicore`."""

    latency: LatencyRecorder
    completed: int
    service_cycles: float
    #: Completions attributed to each core, in core order.
    per_core_completed: list[int]
    #: Service cycles attributed to each core, in core order.
    per_core_service_cycles: list[float]
    #: Arrivals dispatched to each core, in core order.
    per_core_dispatched: list[int]


def drive_multicore(
    cores: list[Scheduler],
    dispatch: DispatchPolicy,
    arrivals: list[tuple[float, Message]],
    flush_period_cycles: float | None = None,
) -> MultiCoreDriveStats:
    """Drive N bound schedulers from one dispatched arrival stream.

    Deterministic event merge over per-core CPU clocks: repeatedly take
    the earliest pending event — the next arrival (admitted via the
    dispatch policy, then the target core's drop policy) or a service
    step on the busy core with the lowest cycle count (ties broken by
    core index).  Arrivals at or before a core's current cycle are
    admitted before that core steps again, matching the single-core
    loop's admission order exactly.

    With a :mod:`repro.obs` recorder installed, each core's service
    steps are spans on a ``core{i}/scheduler`` track with machine
    counters attached (per-core miss attribution), every dispatch an
    instant on the ``dispatch`` track, and drops/flushes counted per
    core as well as globally.
    """
    if not cores:
        raise ConfigurationError("drive_multicore() needs at least one core")
    for scheduler in cores:
        if scheduler.binding is None:
            raise ConfigurationError(
                "drive_multicore() needs machine-bound schedulers"
            )
    if flush_period_cycles is not None and flush_period_cycles <= 0:
        raise ConfigurationError("cache-flush period must be positive")
    recorder = active_recorder()
    num_cores = len(cores)
    clock = cores[0].binding.cpu.clock  # type: ignore[union-attr]
    pending = [
        (clock.seconds_to_cycles(time), message) for time, message in arrivals
    ]
    next_flush = [flush_period_cycles] * num_cores
    latency = LatencyRecorder()
    per_core_completed = [0] * num_cores
    per_core_service = [0.0] * num_cores
    per_core_dispatched = [0] * num_cores
    index = 0
    completed = 0

    while True:
        busy = [
            (cores[i].binding.cpu.cycles, i)  # type: ignore[union-attr]
            for i in range(num_cores)
            if cores[i].busy
        ]
        next_service = min(busy) if busy else None
        next_arrival = pending[index][0] if index < len(pending) else None
        if next_arrival is None and next_service is None:
            break
        if next_arrival is not None and (
            next_service is None or next_arrival <= next_service[0]
        ):
            # Admission event: dispatch first, then the core's drop policy.
            cycle, message = pending[index]
            target = dispatch.select(message, num_cores) % num_cores
            scheduler = cores[target]
            cpu = scheduler.binding.cpu  # type: ignore[union-attr]
            if not scheduler.busy:
                cpu.advance_to_cycle(cycle)
            message.meta["arrival_cycle"] = cycle
            drops_before = scheduler.drops
            scheduler.enqueue_arrival(message)
            per_core_dispatched[target] += 1
            if recorder is not None:
                recorder.count("messages.arrivals")
                recorder.count(f"dispatch.core{target}.assigned")
                recorder.instant(
                    "dispatch", dispatch.name, cycle,
                    core=target, size=message.size,
                )
                lost = scheduler.drops - drops_before
                if lost:
                    recorder.count("messages.drops", float(lost))
                    recorder.count(f"dispatch.core{target}.drops", float(lost))
                    recorder.instant(
                        f"core{target}/scheduler", "drop", cpu.cycles,
                        size=message.size,
                    )
            index += 1
            continue

        # Service event on the earliest busy core.
        assert next_service is not None
        core_index = next_service[1]
        scheduler = cores[core_index]
        cpu = scheduler.binding.cpu  # type: ignore[union-attr]
        before = cpu.cycles
        handle = (
            recorder.begin(
                f"core{core_index}/scheduler",
                "service_step",
                cpu.cycles,
                machine_counters(cpu),
                pending_messages=scheduler.pending(),
            )
            if recorder is not None
            else None
        )
        completions = scheduler.service_step()
        if recorder is not None and handle is not None:
            handle.args["completions"] = len(completions)
            recorder.end(handle, cpu.cycles)
            recorder.count("scheduler.service_steps")
            recorder.count("messages.completions", float(len(completions)))
        for completion in completions:
            arrival_cycle = completion.message.meta.get("arrival_cycle")
            if arrival_cycle is None:
                continue
            completed += 1
            per_core_completed[core_index] += 1
            latency.record(
                clock.cycles_to_seconds(
                    completion.completion_cycle - arrival_cycle
                )
            )
        per_core_service[core_index] += cpu.cycles - before
        flush_at = next_flush[core_index]
        if flush_at is not None and cpu.cycles >= flush_at:
            cpu.cold_start()
            if recorder is not None:
                recorder.count("faults.cache_flushes")
                recorder.instant(
                    f"core{core_index}/scheduler", "cache_flush", cpu.cycles
                )
            while flush_at <= cpu.cycles:
                flush_at += flush_period_cycles  # type: ignore[operator]
            next_flush[core_index] = flush_at

    return MultiCoreDriveStats(
        latency=latency,
        completed=completed,
        service_cycles=sum(per_core_service),
        per_core_completed=per_core_completed,
        per_core_service_cycles=per_core_service,
        per_core_dispatched=per_core_dispatched,
    )


@dataclass(frozen=True)
class CoreStats:
    """Per-core attribution of one multi-core run."""

    core: int
    dispatched: int
    completed: int
    drops: int
    icache_misses: int
    dcache_misses: int
    cycles: float
    stall_cycles: float
    service_cycles: float

    def to_dict(self) -> dict[str, Any]:
        """JSON-serializable form (harness result cache)."""
        return {
            "core": self.core,
            "dispatched": self.dispatched,
            "completed": self.completed,
            "drops": self.drops,
            "icache_misses": self.icache_misses,
            "dcache_misses": self.dcache_misses,
            "cycles": self.cycles,
            "stall_cycles": self.stall_cycles,
            "service_cycles": self.service_cycles,
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "CoreStats":
        """Inverse of :meth:`to_dict`."""
        return cls(**data)


@dataclass(frozen=True)
class MultiCoreRunResult:
    """One multi-core run: the aggregate plus per-core attribution."""

    dispatch: str
    num_cores: int
    aggregate: RunResult
    cores: tuple[CoreStats, ...]

    @property
    def dispatch_imbalance(self) -> float:
        """Max over mean of per-core dispatched counts (1.0 = perfect).

        The load-balance figure of merit for a dispatch policy: RSS
        should sit near 1, sticky policies may trade imbalance for
        locality.
        """
        counts = [core.dispatched for core in self.cores]
        mean = sum(counts) / len(counts)
        if mean == 0:
            return 1.0
        return max(counts) / mean

    def to_dict(self) -> dict[str, Any]:
        """JSON-serializable form (harness result cache)."""
        return {
            "dispatch": self.dispatch,
            "num_cores": self.num_cores,
            "aggregate": self.aggregate.to_dict(),
            "cores": [core.to_dict() for core in self.cores],
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "MultiCoreRunResult":
        """Inverse of :meth:`to_dict`."""
        return cls(
            dispatch=data["dispatch"],
            num_cores=int(data["num_cores"]),
            aggregate=RunResult.from_dict(data["aggregate"]),
            cores=tuple(CoreStats.from_dict(core) for core in data["cores"]),
        )


def run_multicore(
    source: TrafficSource,
    config: MultiCoreConfig | None = None,
    seed: int = 0,
    arrivals: list[Arrival] | None = None,
) -> MultiCoreRunResult:
    """Run one multi-core configuration against one traffic source.

    ``arrivals`` overrides the source's stream (used to replay the
    identical arrival sequence against several dispatch policies or
    core counts).  The aggregate :class:`~repro.sim.stats.RunResult`
    uses the same accounting as the single-core benchmark — misses and
    cycles summed over cores, divided by total completions — so a
    one-core run is bit-identical to
    :func:`repro.sim.runner.run_simulation`.
    """
    config = config or MultiCoreConfig()
    cores = build_cores(config, seed)
    dispatch = make_dispatch_policy(config.dispatch)
    stream = arrivals if arrivals is not None else source.arrival_list(config.duration)
    timestamped = [
        (a.time, Message(size=a.size, arrival_time=a.time)) for a in stream
    ]
    tag_flows(timestamped, seed, config.num_flows, config.app_classes)
    outcome = drive_multicore(
        cores,
        dispatch,
        timestamped,
        flush_period_cycles=config.flush_period_cycles,
    )

    imisses = sum(s.binding.cpu.icache_misses for s in cores)  # type: ignore[union-attr]
    dmisses = sum(s.binding.cpu.dcache_misses for s in cores)  # type: ignore[union-attr]
    batch_sizes: list[int] = []
    for scheduler in cores:
        batch_sizes.extend(getattr(scheduler, "batch_sizes", []))
    mean_batch = float(np.mean(batch_sizes)) if len(batch_sizes) > 0 else 1.0
    rate = getattr(source, "rate", None)
    if rate is None:
        rate = len(stream) / config.duration if len(stream) > 0 else 0.0
    divisor = max(outcome.completed, 1)
    aggregate = RunResult(
        scheduler=config.scheduler,
        arrival_rate=float(rate),
        offered=sum(s.arrivals for s in cores),
        completed=outcome.completed,
        dropped=sum(s.drops for s in cores),
        duration=config.duration,
        latency=outcome.latency.summary(),
        misses=MissesPerMessage(
            instruction=imisses / divisor, data=dmisses / divisor
        ),
        cycles_per_message=outcome.service_cycles / divisor,
        mean_batch_size=mean_batch,
    )
    core_stats = tuple(
        CoreStats(
            core=index,
            dispatched=outcome.per_core_dispatched[index],
            completed=outcome.per_core_completed[index],
            drops=scheduler.drops,
            icache_misses=scheduler.binding.cpu.icache_misses,  # type: ignore[union-attr]
            dcache_misses=scheduler.binding.cpu.dcache_misses,  # type: ignore[union-attr]
            cycles=float(scheduler.binding.cpu.cycles),  # type: ignore[union-attr]
            stall_cycles=float(scheduler.binding.cpu.stall_cycles),  # type: ignore[union-attr]
            service_cycles=outcome.per_core_service_cycles[index],
        )
        for index, scheduler in enumerate(cores)
    )
    result = MultiCoreRunResult(
        dispatch=config.dispatch,
        num_cores=config.num_cores,
        aggregate=aggregate,
        cores=core_stats,
    )
    recorder = active_recorder()
    if recorder is not None:
        # Per-(policy, core count) miss totals: the BENCH record the
        # dispatch-locality claim is read from (ldlp vs rss at >= 4
        # cores), plus per-core attribution totals.
        prefix = f"multicore.{config.dispatch}.cores{config.num_cores}"
        recorder.count(f"{prefix}.imisses", float(imisses))
        recorder.count(f"{prefix}.dmisses", float(dmisses))
        recorder.count(f"{prefix}.completed", float(outcome.completed))
        for stats in core_stats:
            recorder.count(
                f"multicore.core{stats.core}.imisses",
                float(stats.icache_misses),
            )
    return result


def merge_multicore_results(
    results: list[MultiCoreRunResult],
) -> MultiCoreRunResult:
    """Merge same-configuration multi-core runs across seeds.

    The aggregate is seed-merged like the single-core benchmark
    (:func:`repro.sim.stats.merge_results`); per-core stats are summed
    element-wise (core i of every seed is the same modeled core).
    """
    if not results:
        raise ConfigurationError("cannot merge zero multi-core results")
    num_cores = results[0].num_cores
    merged_cores = []
    for index in range(num_cores):
        per_seed = [r.cores[index] for r in results]
        merged_cores.append(
            CoreStats(
                core=index,
                dispatched=sum(c.dispatched for c in per_seed),
                completed=sum(c.completed for c in per_seed),
                drops=sum(c.drops for c in per_seed),
                icache_misses=sum(c.icache_misses for c in per_seed),
                dcache_misses=sum(c.dcache_misses for c in per_seed),
                cycles=sum(c.cycles for c in per_seed),
                stall_cycles=sum(c.stall_cycles for c in per_seed),
                service_cycles=sum(c.service_cycles for c in per_seed),
            )
        )
    return MultiCoreRunResult(
        dispatch=results[0].dispatch,
        num_cores=num_cores,
        aggregate=merge_results([r.aggregate for r in results]),
        cores=tuple(merged_cores),
    )


def run_multicore_averaged(
    source_factory,
    config: MultiCoreConfig,
    seeds: list[int],
) -> MultiCoreRunResult:
    """Average one multi-core configuration over several seeds.

    ``source_factory(seed)`` returns a fresh traffic source; the same
    seed drives per-core code placement and flow tagging — the paper's
    placement-averaging methodology applied per core.
    """
    return merge_multicore_results(
        [run_multicore(source_factory(seed), config, seed=seed) for seed in seeds]
    )


def multicore_point(
    scheduler: str,
    dispatch: str,
    cores: int,
    rate: float,
    seeds: list[int],
    duration: float,
    policy: str = "tail",
    num_flows: int = 64,
    app_classes: int = 8,
    message_size: int = 552,
) -> dict[str, Any]:
    """One (scheduler, dispatch, core count) sweep point.

    Module-level and fully determined by its JSON parameters (the
    harness contract: parallel workers resolve it by dotted name, the
    result cache keys it by content hash).  Per seed, draw a Poisson
    arrival stream at the *aggregate* rate, dispatch it over ``cores``
    cores, and merge.  Returns the merged
    :class:`MultiCoreRunResult` plus a conservation audit — dispatching
    must neither create nor lose messages
    (``offered == completed + dropped`` once the queues drain).
    """
    config = MultiCoreConfig(
        scheduler=scheduler,
        dispatch=dispatch,
        num_cores=cores,
        num_flows=num_flows,
        app_classes=app_classes,
        duration=duration,
        drop_policy=policy,
    )
    results = []
    violations = 0
    for seed in seeds:
        source = PoissonSource(rate, size=message_size, rng=seed)
        result = run_multicore(source, config, seed=seed)
        aggregate = result.aggregate
        if aggregate.offered != aggregate.completed + aggregate.dropped:
            violations += 1
        results.append(result)
    merged = merge_multicore_results(results)
    return {
        "result": merged.to_dict(),
        "dispatch": dispatch,
        "cores": cores,
        "conservation_violations": violations,
        "dispatch_imbalance": merged.dispatch_imbalance,
    }
