"""The Section-4 synthetic benchmark: traffic → stack → scheduler → stats.

This is the harness behind Figures 5, 6 and 7.  The CPU is the clock:
arrivals are converted to cycle timestamps, the scheduler consumes work
and advances the CPU, and message latency is completion cycle minus
arrival cycle.

Paper parameters (all defaults here): five layers of 6 KB code / 256 B
data / 1652 cycles per 552-byte message; 100 MHz CPU; 8 KB direct-mapped
I and D caches; 20-cycle read-miss stall; 500-packet input buffer;
results averaged over runs with different random code placements.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

import numpy as np

from ..cache.hierarchy import MachineSpec
from ..core.batching import BatchPolicy
from ..core.binding import MachineBinding
from ..core.layer import Layer, LayerFootprint, Message, PassthroughLayer
from ..core.overload import DROP_POLICIES, make_drop_policy
from ..core.scheduler import (
    ConventionalScheduler,
    GroupedLDLPScheduler,
    ILPScheduler,
    LDLPScheduler,
    Scheduler,
)
from ..errors import ConfigurationError
from ..obs.runtime import active_recorder, machine_counters
from ..traffic.base import Arrival, TrafficSource
from ..traffic.poisson import PoissonSource
from .stats import (
    LatencyRecorder,
    MissesPerMessage,
    RunResult,
    merge_results,
)

#: Scheduler registry keyed by the names used throughout the experiments.
SCHEDULER_NAMES = ("conventional", "ilp", "ldlp", "grouped")

#: Drive-loop engines: the scalar reference loop and the vectorized
#: batch/columnar replay (:mod:`repro.sim.vec`), which is bit-identical
#: where supported and falls back to scalar where not.
ENGINE_NAMES = ("scalar", "vec")


def build_paper_stack(
    num_layers: int = 5,
    code_bytes: int = 6144,
    data_bytes: int = 256,
    base_cycles: float = 1376.0,
    per_byte_cycles: float = 0.5,
) -> list[Layer]:
    """The five synthetic layers of Section 4 (passthrough, full cost)."""
    footprint = LayerFootprint(
        code_bytes=code_bytes,
        data_bytes=data_bytes,
        base_cycles=base_cycles,
        per_byte_cycles=per_byte_cycles,
    )
    return [PassthroughLayer(f"layer{i}", footprint) for i in range(num_layers)]


@dataclass(frozen=True)
class SimulationConfig:
    """Configuration of one synthetic-benchmark run.

    ``drop_policy`` selects the input-buffer overload behaviour by
    registry name (:data:`repro.core.overload.DROP_POLICIES`); ``tail``
    is the paper's classic tail drop.  ``flush_period_cycles`` injects
    an environment fault: every that-many CPU cycles both caches are
    flushed cold, modelling interrupt/context-switch pollution
    (:mod:`repro.faults` campaigns sweep it).
    """

    scheduler: str = "ldlp"
    num_layers: int = 5
    layer_code_bytes: int = 6144
    layer_data_bytes: int = 256
    layer_base_cycles: float = 1376.0
    layer_per_byte_cycles: float = 0.5
    spec: MachineSpec = field(default_factory=MachineSpec)
    duration: float = 0.2
    input_limit: int = 500
    batch_limit: int | None = None
    pool_buffers: int = 32
    buffer_size: int = 2048
    random_placement: bool = True
    drop_policy: str = "tail"
    flush_period_cycles: float | None = None
    engine: str = "vec"

    def __post_init__(self) -> None:
        if self.engine not in ENGINE_NAMES:
            raise ConfigurationError(
                f"unknown engine {self.engine!r}; expected one of "
                f"{ENGINE_NAMES}"
            )
        if self.scheduler not in SCHEDULER_NAMES:
            raise ConfigurationError(
                f"unknown scheduler {self.scheduler!r}; expected one of "
                f"{SCHEDULER_NAMES}"
            )
        if self.duration <= 0:
            raise ConfigurationError("duration must be positive")
        if self.drop_policy not in DROP_POLICIES:
            raise ConfigurationError(
                f"unknown drop policy {self.drop_policy!r}; expected one of "
                f"{tuple(sorted(DROP_POLICIES))}"
            )
        if self.flush_period_cycles is not None and self.flush_period_cycles <= 0:
            raise ConfigurationError("cache-flush period must be positive")

    def with_scheduler(self, scheduler: str) -> "SimulationConfig":
        """This config with only the scheduler swapped."""
        return replace(self, scheduler=scheduler)


def build_scheduler(config: SimulationConfig, seed) -> Scheduler:
    """Build one machine-bound scheduler from a config and placement seed.

    Shared by :func:`run_simulation` and the multi-core runner
    (:mod:`repro.sim.multicore`), which builds one per core — reusing
    this exact constructor is what makes a one-core multi-core run
    bit-identical to the single-core benchmark.
    """
    layers = build_paper_stack(
        config.num_layers,
        config.layer_code_bytes,
        config.layer_data_bytes,
        config.layer_base_cycles,
        config.layer_per_byte_cycles,
    )
    binding = MachineBinding(
        spec=config.spec,
        rng=seed,
        random_placement=config.random_placement,
        pool_buffers=config.pool_buffers,
        buffer_size=config.buffer_size,
    )
    drop_policy = make_drop_policy(config.drop_policy)
    if config.scheduler == "conventional":
        return ConventionalScheduler(
            layers, binding, config.input_limit, drop_policy=drop_policy
        )
    if config.scheduler == "ilp":
        return ILPScheduler(
            layers, binding, config.input_limit, drop_policy=drop_policy
        )
    policy = (
        BatchPolicy(config.batch_limit)
        if config.batch_limit is not None
        else BatchPolicy.from_machine(config.spec)
    )
    if config.scheduler == "grouped":
        return GroupedLDLPScheduler(
            layers, binding, config.input_limit, policy, drop_policy=drop_policy
        )
    return LDLPScheduler(
        layers, binding, config.input_limit, policy, drop_policy=drop_policy
    )


#: Backwards-compatible alias (pre-multicore name).
_build_scheduler = build_scheduler


@dataclass
class DriveStats:
    """Raw outcome of :func:`drive`: latency samples plus work done."""

    latency: LatencyRecorder
    completed: int
    service_cycles: float


def drive(
    scheduler: Scheduler,
    arrivals: list[tuple[float, Message]],
    flush_period_cycles: float | None = None,
    engine: str = "scalar",
) -> DriveStats:
    """Drive any bound scheduler with timestamped messages.

    The scheduler's CPU is the clock: messages whose arrival time (in
    seconds) has passed are admitted before each service step, and each
    completion's latency is measured in CPU cycles.  Works for any
    stack — the synthetic five-layer benchmark, the byte-level TCP
    stack, or the signalling switch — as long as the scheduler carries
    a :class:`~repro.core.binding.MachineBinding`.

    With a :mod:`repro.obs` recorder installed, every scheduler service
    step is a span on the ``scheduler`` track and every admission or
    drop an instant event, all on the CPU-cycle clock; the per-layer
    spans inside a step come from
    :meth:`~repro.core.binding.MachineBinding.charge`.

    ``flush_period_cycles`` injects periodic cold-cache faults: after
    any service step that crosses a period boundary both caches are
    flushed, modelling interrupts or context switches polluting the
    cache mid-run (statistics are preserved, so the extra misses show
    up in the results — that is the point).

    ``engine`` selects the drive loop: ``"scalar"`` is this module's
    reference loop; ``"vec"`` replays service steps through the
    batch/columnar engine (:mod:`repro.sim.vec`), which is bit-identical
    where supported and silently falls back to the scalar loop where
    not (stateful layers, L2 hierarchies, self-conflicting placements,
    span-keeping recorders).
    """
    binding = scheduler.binding
    if binding is None:
        raise ConfigurationError("drive() needs a machine-bound scheduler")
    if flush_period_cycles is not None and flush_period_cycles <= 0:
        raise ConfigurationError("cache-flush period must be positive")
    if engine not in ENGINE_NAMES:
        raise ConfigurationError(
            f"unknown engine {engine!r}; expected one of {ENGINE_NAMES}"
        )
    if engine == "vec":
        from .vec import try_drive_vec

        outcome = try_drive_vec(scheduler, arrivals, flush_period_cycles)
        if outcome is not None:
            return outcome
    recorder = active_recorder()
    cpu = binding.cpu
    clock = cpu.clock
    next_flush = flush_period_cycles
    pending = [
        (clock.seconds_to_cycles(time), message) for time, message in arrivals
    ]
    latency = LatencyRecorder()
    index = 0
    completed = 0
    service_cycles = 0.0
    while index < len(pending) or scheduler.busy:
        if not scheduler.busy:
            if index >= len(pending):
                break
            cpu.advance_to_cycle(pending[index][0])
        while index < len(pending) and pending[index][0] <= cpu.cycles:
            cycle, message = pending[index]
            message.meta["arrival_cycle"] = cycle
            drops_before = scheduler.drops
            scheduler.enqueue_arrival(message)
            if recorder is not None:
                recorder.count("messages.arrivals")
                lost = scheduler.drops - drops_before
                if lost:
                    # Tail drop loses the new message; head drop evicts
                    # older queued ones — either way, count every loss.
                    recorder.count("messages.drops", float(lost))
                    recorder.instant(
                        "scheduler", "drop", cpu.cycles, size=message.size
                    )
            index += 1
        if scheduler.busy:
            before = cpu.cycles
            handle = (
                recorder.begin(
                    "scheduler",
                    "service_step",
                    cpu.cycles,
                    machine_counters(cpu),
                    pending_messages=scheduler.pending(),
                )
                if recorder is not None
                else None
            )
            completions = scheduler.service_step()
            if recorder is not None and handle is not None:
                handle.args["completions"] = len(completions)
                recorder.end(handle, cpu.cycles)
                recorder.count("scheduler.service_steps")
                recorder.count("messages.completions", float(len(completions)))
            for completion in completions:
                arrival_cycle = completion.message.meta.get("arrival_cycle")
                if arrival_cycle is None:
                    continue
                completed += 1
                latency.record(
                    clock.cycles_to_seconds(
                        completion.completion_cycle - arrival_cycle
                    )
                )
            service_cycles += cpu.cycles - before
            if next_flush is not None and cpu.cycles >= next_flush:
                cpu.cold_start()
                if recorder is not None:
                    recorder.count("faults.cache_flushes")
                    recorder.instant("scheduler", "cache_flush", cpu.cycles)
                while next_flush <= cpu.cycles:
                    next_flush += flush_period_cycles
    return DriveStats(
        latency=latency, completed=completed, service_cycles=service_cycles
    )


def run_simulation(
    source: TrafficSource,
    config: SimulationConfig | None = None,
    seed: int | np.random.Generator | None = 0,
    arrivals: list[Arrival] | None = None,
) -> RunResult:
    """Run one configuration against one traffic source.

    ``arrivals`` overrides the source's stream (used to replay the
    identical arrival sequence against several schedulers).
    """
    config = config or SimulationConfig()
    scheduler = build_scheduler(config, seed)
    assert scheduler.binding is not None

    stream = arrivals if arrivals is not None else source.arrival_list(config.duration)
    timestamped = [
        (a.time, Message(size=a.size, arrival_time=a.time)) for a in stream
    ]
    outcome = drive(
        scheduler,
        timestamped,
        flush_period_cycles=config.flush_period_cycles,
        engine=config.engine,
    )
    return assemble_run_result(scheduler, outcome, source, stream, config)


def assemble_run_result(
    scheduler: Scheduler,
    outcome: DriveStats,
    source: TrafficSource,
    stream: list[Arrival],
    config: SimulationConfig,
) -> RunResult:
    """Reduce one driven run to its :class:`RunResult`.

    Shared by :func:`run_simulation` and the flow-lookup runner
    (:mod:`repro.flows.runner`), so both report misses, cycles, and
    batching with exactly the same accounting.
    """
    binding = scheduler.binding
    assert binding is not None
    cpu = binding.cpu
    latency = outcome.latency
    completed = outcome.completed
    service_cycles = outcome.service_cycles

    imisses = cpu.icache_misses
    dmisses = cpu.dcache_misses
    # Explicit length checks: ``batch_sizes`` may be a numpy array from
    # a future scheduler (bare truthiness raises "truth value of an
    # array is ambiguous") and ``stream`` may be any sequence type.
    batch_sizes = getattr(scheduler, "batch_sizes", None)
    mean_batch = (
        float(np.mean(batch_sizes))
        if batch_sizes is not None and len(batch_sizes) > 0
        else 1.0
    )
    rate = getattr(source, "rate", None)
    if rate is None:
        rate = len(stream) / config.duration if len(stream) > 0 else 0.0
    divisor = max(completed, 1)
    return RunResult(
        scheduler=config.scheduler,
        arrival_rate=float(rate),
        offered=scheduler.arrivals,
        completed=completed,
        dropped=scheduler.drops,
        duration=config.duration,
        latency=latency.summary(),
        misses=MissesPerMessage(
            instruction=imisses / divisor, data=dmisses / divisor
        ),
        cycles_per_message=service_cycles / divisor,
        mean_batch_size=mean_batch,
    )


def run_averaged(
    source_factory,
    config: SimulationConfig,
    seeds: list[int],
) -> RunResult:
    """Average one configuration over several placement/traffic seeds.

    ``source_factory(seed)`` must return a fresh traffic source; the
    same seed also drives code placement, so each run is a different
    (placement, arrival-sequence) sample — the paper's methodology of
    "100 runs, each with a different random placement".
    """
    results = [
        run_simulation(source_factory(seed), config, seed=seed) for seed in seeds
    ]
    return merge_results(results)


def poisson_point(
    scheduler: str,
    rate: float,
    seeds: list[int],
    duration: float,
    message_size: int = 552,
    clock_mhz: float | None = None,
    buffer_size: int = 2048,
    engine: str = "vec",
) -> dict:
    """One (scheduler, rate) sweep point of the Section-4 benchmark.

    Module-level and fully determined by its arguments so harness
    workers can execute it in parallel (it pickles by dotted name) and
    the result cache can key it by content hash.  Returns the averaged
    :class:`RunResult` in JSON-serializable form.  ``engine`` selects
    the drive loop (results are engine-invariant; only speed differs).
    """
    spec = MachineSpec() if clock_mhz is None else MachineSpec(clock_hz=clock_mhz * 1e6)
    config = SimulationConfig(
        scheduler=scheduler,
        duration=duration,
        spec=spec,
        buffer_size=buffer_size,
        engine=engine,
    )
    result = run_averaged(
        lambda seed: PoissonSource(rate, size=message_size, rng=seed),
        config,
        list(seeds),
    )
    return result.to_dict()


@dataclass(frozen=True)
class ComparisonResult:
    """Conventional vs LDLP (and optionally ILP) at one operating point."""

    results: dict[str, RunResult]

    def __getitem__(self, name: str) -> RunResult:
        return self.results[name]

    def speedup(self, baseline: str = "conventional", improved: str = "ldlp") -> float:
        """Ratio of per-message service cost, baseline over improved."""
        base = self.results[baseline].cycles_per_message
        new = self.results[improved].cycles_per_message
        if new <= 0:
            return float("nan")
        return base / new

    def summary(self) -> str:
        """Per-scheduler reporting lines plus the LDLP speedup ratio."""
        lines = [result.summary() for result in self.results.values()]
        lines.append(f"LDLP speedup over conventional: {self.speedup():.2f}x")
        return "\n".join(lines)


def compare_schedulers(
    arrival_rate: float = 8000.0,
    message_size: int = 552,
    duration: float = 0.2,
    seed: int = 0,
    schedulers: tuple[str, ...] = ("conventional", "ldlp"),
    config: SimulationConfig | None = None,
) -> ComparisonResult:
    """Run several schedulers against the *same* arrival sequence."""
    base = config or SimulationConfig(duration=duration)
    source = PoissonSource(arrival_rate, size=message_size, rng=seed)
    arrivals = source.arrival_list(base.duration)
    results = {}
    for name in schedulers:
        results[name] = run_simulation(
            source,
            base.with_scheduler(name),
            seed=seed,
            arrivals=arrivals,
        )
    return ComparisonResult(results)
