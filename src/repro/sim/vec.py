"""The vectorized (columnar) drive-loop engine.

:func:`repro.sim.runner.drive` spends essentially all of its time in
the scalar service path: one Python-level call per (layer, message)
invocation, each performing a handful of small numpy cache probes and
float additions.  This module replaces a whole service step with a
constant number of numpy operations, while producing **bit-identical**
results — same latency samples in the same order, same cache statistics,
same obs counters, same drop decisions.

How it works
------------
*Columnar arrivals.*  The timestamped arrival stream becomes one numpy
structured array (:data:`ARRIVAL_DTYPE`); admission scans an index over
it instead of destructuring tuples.

*Static step templates.*  For a given scheduler kind, the sequence of
(layer, message-slot) invocations a service step performs — and hence
the full reference stream it pushes through each cache — is a pure
function of the batch composition (which ring buffer holds which
message size).  The engine compiles that into a
:class:`repro.cache.chunked.SegmentedAccessPlan` per cache plus a
per-invocation cost-addend layout, cached by composition key.  The ring
of 32 buffers and the bounded batch cap keep the key space small, so
steady state replays cached templates.

*Dynamic replay.*  Applying a template is ~15 numpy ops: gather the
live tags for first-touched sets, compare, scatter the final tags,
turn per-segment miss counts into stall addends, and one ``cumsum``
over the flat addend array.  ``cumsum`` accumulates strictly
left-to-right, so seeding slot 0 with the current cycle counter
reproduces the scalar engine's float-addition *order* — which is what
makes the cycle counts (and therefore every latency sample) bit-exact,
not merely close.

Equivalence boundaries
----------------------
The engine silently declines (:func:`try_drive_vec` returns ``None``,
the caller falls back to the scalar loop) whenever exact replay is not
guaranteed: unbound schedulers, bindings carrying a flow-lookup cache
(:mod:`repro.flows` charging is a scalar-path feature), non-passthrough
layers (stateful stacks), an L2 hierarchy, layers whose code working
set conflicts with itself in the instruction cache (the static template
would be unsound — see
:class:`~repro.cache.chunked.UnsupportedPlanError`), or a span-keeping
obs recorder (the vec path does not emit per-layer ``invoke`` spans,
only the drive-level counters and ``service_step`` spans the harness
consumes; full tracing keeps the scalar path).
"""

from __future__ import annotations

import numpy as np

from ..cache.cache import DirectMappedCache
from ..cache.chunked import SegmentedAccessPlan
from ..core.layer import Message, PassthroughLayer
from ..core.scheduler import (
    ConventionalScheduler,
    GroupedLDLPScheduler,
    ILPScheduler,
    LDLPScheduler,
    Scheduler,
    take_batch,
)
from ..errors import ConfigurationError
from ..machine.executor import FootprintExecutor, MessageBuffer
from ..obs.runtime import active_recorder, machine_counters
from .runner import DriveStats
from .stats import LatencyRecorder

#: Columnar arrival stream: one row per message, CPU-cycle timestamp
#: plus message size (the two columns admission and templating need).
ARRIVAL_DTYPE = np.dtype([("cycle", np.float64), ("size", np.int64)])

#: Cost-addend slots per invocation in a step template (istall, layer
#: data stall, message-buffer stall, execute, trailing execute).
_SLOTS = 5


def arrival_table(arrivals: list[tuple[float, "Message"]], hz: float) -> np.ndarray:
    """Build the columnar arrival table from timestamped messages.

    ``cycle`` is ``time * hz`` computed elementwise in float64 —
    bit-identical to the scalar path's per-arrival
    :meth:`repro.units.Clock.seconds_to_cycles`.
    """
    table = np.zeros(len(arrivals), dtype=ARRIVAL_DTYPE)
    if len(arrivals) > 0:
        times = np.asarray([time for time, _ in arrivals], dtype=np.float64)
        table["cycle"] = times * hz
        table["size"] = np.asarray(
            [message.size for _, message in arrivals], dtype=np.int64
        )
    return table


class _StepTemplate:
    """Compiled cache plans + cost layout for one batch composition."""

    __slots__ = (
        "iplan", "dplan", "addends", "ipos", "dpos", "completions"
    )

    def __init__(
        self,
        iplan: SegmentedAccessPlan,
        dplan: SegmentedAccessPlan,
        addends: np.ndarray,
        ipos: np.ndarray,
        dpos: np.ndarray,
        completions: list[tuple[int, int]],
    ) -> None:
        self.iplan = iplan
        self.dplan = dplan
        #: Flat addend array: slot 0 = live cycle counter, then _SLOTS
        #: per invocation; cumsum replays the scalar addition order.
        self.addends = addends
        self.ipos = ipos
        self.dpos = dpos
        #: (message slot, addend index of its completion cycle) pairs
        #: in scalar completion order.
        self.completions = completions


def _distinct_sets(lines: np.ndarray, num_lines: int) -> bool:
    """True when the line array maps to all-distinct cache sets."""
    if lines.size == 0:
        return True
    return int(np.unique(lines % num_lines).size) == int(lines.size)


class _VecEngine:
    """Per-drive-call state of the vectorized service path."""

    def __init__(self, scheduler: Scheduler, kind: str) -> None:
        self.scheduler = scheduler
        self.kind = kind
        binding = scheduler.binding
        assert binding is not None
        self.binding = binding
        self.cpu = binding.cpu
        hierarchy = self.cpu.hierarchy
        self.icache = hierarchy.icache
        self.dcache = hierarchy.dcache
        self.miss_penalty = int(binding.spec.miss_penalty)
        efficiency = float(binding.spec.iprefetch_efficiency)
        self.iprefetch_scale = (1.0 - efficiency) if efficiency else None
        self.placed = [
            binding.placed_layer(layer.name) for layer in scheduler.layers
        ]
        self.extra_per_byte = sum(
            layer.footprint.per_byte_cycles for layer in scheduler.layers[1:]
        )
        self.groups = (
            scheduler.groups if isinstance(scheduler, GroupedLDLPScheduler) else None
        )
        self._templates: dict[tuple[tuple[int, int], ...], _StepTemplate] = {}

    # ------------------------------------------------------------------
    # Template compilation

    def _invocations(self, sizes: list[int]) -> list[tuple[int, int, bool, float]]:
        """The step's (layer, slot, include_data, trailing_execute) list.

        Mirrors each scalar scheduler's invocation order exactly (the
        order determines cache behaviour — it is the paper's whole
        subject): conventional/ILP are message-major, LDLP is
        layer-major over the batch, grouped is group-major with one
        queue hop per group.
        """
        num_layers = len(self.placed)
        queue_cost = float(FootprintExecutor.QUEUE_INSTRUCTIONS)
        if self.kind == "conventional":
            return [(index, 0, True, 0.0) for index in range(num_layers)]
        if self.kind == "ilp":
            program = [(0, 0, True, self.extra_per_byte * sizes[0])]
            program += [(index, 0, False, 0.0) for index in range(1, num_layers)]
            return program
        if self.kind == "ldlp":
            return [
                (layer_index, slot, True, queue_cost)
                for layer_index in range(num_layers)
                for slot in range(len(sizes))
            ]
        assert self.groups is not None
        program = []
        for members in self.groups:
            for slot in range(len(sizes)):
                for position, layer_index in enumerate(members):
                    program.append(
                        (layer_index, slot, True,
                         queue_cost if position == 0 else 0.0)
                    )
        return program

    def _completion_points(
        self, batch: int, invocations: int
    ) -> list[tuple[int, int]]:
        """Per-message completion (slot, addend index) in scalar order."""
        num_layers = len(self.placed)
        if self.kind in ("conventional", "ilp"):
            return [(0, _SLOTS * invocations)]
        if self.kind == "ldlp":
            first_top = (num_layers - 1) * batch
            return [
                (slot, _SLOTS * (first_top + slot) + _SLOTS)
                for slot in range(batch)
            ]
        assert self.groups is not None
        last = len(self.groups[-1])
        offset = batch * sum(len(members) for members in self.groups[:-1])
        return [
            (slot, _SLOTS * (offset + slot * last + last - 1) + _SLOTS)
            for slot in range(batch)
        ]

    def _compile(
        self, sizes: list[int], buffers: list[MessageBuffer]
    ) -> _StepTemplate:
        program = self._invocations(sizes)
        count = len(program)
        code_segments: list[np.ndarray] = []
        data_segments: list[np.ndarray] = []
        addends = np.zeros(1 + _SLOTS * count)
        base = _SLOTS * np.arange(count, dtype=np.int64)
        for position, (layer_index, slot, include_data, trailing) in enumerate(
            program
        ):
            placed = self.placed[layer_index]
            code_segments.append(placed.code_lines)
            data_segments.append(placed.data_lines)
            if include_data:
                buffer = buffers[slot]
                size = min(sizes[slot], buffer.capacity)
                data_segments.append(
                    buffer.lines_for(size) if size > 0 else placed.data_lines[:0]
                )
                addends[_SLOTS * position + 4] = placed.profile.compute_cycles(
                    sizes[slot]
                )
            else:
                data_segments.append(placed.data_lines[:0])
                addends[_SLOTS * position + 4] = placed.profile.base_cycles
            addends[_SLOTS * position + 5] = trailing
        dpos = np.empty(2 * count, dtype=np.int64)
        dpos[0::2] = base + 2
        dpos[1::2] = base + 3
        iplan = SegmentedAccessPlan(
            np.concatenate(code_segments) if code_segments else
            np.empty(0, dtype=np.int64),
            np.cumsum([0] + [seg.size for seg in code_segments]),
            self.icache.num_lines,
        )
        dplan = SegmentedAccessPlan(
            np.concatenate(data_segments) if data_segments else
            np.empty(0, dtype=np.int64),
            np.cumsum([0] + [seg.size for seg in data_segments]),
            self.dcache.num_lines,
        )
        return _StepTemplate(
            iplan,
            dplan,
            addends,
            base + 1,
            dpos,
            self._completion_points(len(sizes), count),
        )

    # ------------------------------------------------------------------
    # Dynamic replay

    def step(self) -> list[tuple[Message, float]]:
        """Run one service step; returns (message, completion cycle)."""
        scheduler = self.scheduler
        if self.kind in ("conventional", "ilp"):
            batch = [scheduler.input_queue.popleft()]
        else:
            batch = take_batch(scheduler)  # type: ignore[arg-type]
            if not batch:
                return []
        buffers = [self.binding.buffer_of(message) for message in batch]
        sizes = [message.size for message in batch]
        key = tuple(
            (buffer.index, size) for buffer, size in zip(buffers, sizes)
        )
        template = self._templates.get(key)
        if template is None:
            template = self._compile(sizes, buffers)
            self._templates[key] = template
        cpu = self.cpu
        imiss = template.iplan.apply(self.icache.tag_array, self.icache.stats)
        dmiss = template.dplan.apply(self.dcache.tag_array, self.dcache.stats)
        istall = imiss * self.miss_penalty
        if self.iprefetch_scale is not None:
            # round() and np.rint both round half to even, so the
            # per-call prefetch discount truncates identically.
            istall = np.rint(istall * self.iprefetch_scale)
        dstall = dmiss * self.miss_penalty
        addends = template.addends
        addends[0] = cpu.cycles
        addends[template.ipos] = istall
        addends[template.dpos] = dstall
        timeline = np.cumsum(addends)
        cpu.cycles = float(timeline[-1])
        cpu.stall_cycles += float(istall.sum() + dstall.sum())
        return [
            (batch[slot], float(timeline[index]))
            for slot, index in template.completions
        ]


def vec_supported(scheduler: Scheduler) -> bool:
    """Whether the vectorized engine can replay this scheduler exactly.

    Checks everything static: scheduler kind, pure passthrough layers,
    a bound flat (no-L2) direct-mapped hierarchy, and self-conflict-free
    code/data/buffer placements (the static-template soundness
    condition).  Dynamic conditions (a span-keeping recorder) are
    checked by :func:`try_drive_vec` per call.
    """
    kind = _scheduler_kind(scheduler)
    if kind is None:
        return False
    binding = scheduler.binding
    if binding is None or not binding.bound:
        return False
    if binding.flow_lookup is not None:
        # Flow-lookup charging (repro.flows) happens inside the scalar
        # service path; the static step templates do not model it, so
        # a lookup-charged run must take the scalar loop.
        return False
    if binding.spec.l2 is not None:
        return False
    hierarchy = binding.cpu.hierarchy
    if type(hierarchy.icache) is not DirectMappedCache:
        return False
    if type(hierarchy.dcache) is not DirectMappedCache:
        return False
    for layer in scheduler.layers:
        if type(layer) is not PassthroughLayer:
            return False
    icache_sets = hierarchy.icache.num_lines
    dcache_sets = hierarchy.dcache.num_lines
    for layer in scheduler.layers:
        placed = binding.placed_layer(layer.name)
        if not _distinct_sets(placed.code_lines, icache_sets):
            return False
        if not _distinct_sets(placed.data_lines, dcache_sets):
            return False
    pool = binding.pool
    if pool is None:
        return False
    for buffer in pool.buffers:
        if not _distinct_sets(buffer.lines_for(buffer.capacity), dcache_sets):
            return False
    return True


def _scheduler_kind(scheduler: Scheduler) -> str | None:
    """The template kind for a scheduler, or None if unsupported.

    Exact-type checks: a subclass may override service semantics, and
    silently vectorizing it would break the scalar≡vec contract.
    """
    for cls, kind in (
        (ConventionalScheduler, "conventional"),
        (ILPScheduler, "ilp"),
        (LDLPScheduler, "ldlp"),
        (GroupedLDLPScheduler, "grouped"),
    ):
        if type(scheduler) is cls:
            return kind
    return None


def try_drive_vec(
    scheduler: Scheduler,
    arrivals: list[tuple[float, Message]],
    flush_period_cycles: float | None = None,
) -> DriveStats | None:
    """Vectorized twin of :func:`repro.sim.runner.drive`.

    Returns ``None`` (caller falls back to the scalar loop) when the
    configuration is outside the engine's exact-replay envelope; see
    the module docstring for the boundaries.  When it does run, the
    returned :class:`~repro.sim.runner.DriveStats`, all cache/CPU
    statistics, and all obs counters are bit-identical to the scalar
    path's.
    """
    recorder = active_recorder()
    if recorder is not None and recorder.keep_spans:
        # Full tracing wants the per-layer invoke spans only the scalar
        # path emits.
        return None
    if not vec_supported(scheduler):
        return None
    engine = _VecEngine(scheduler, _scheduler_kind(scheduler) or "")
    if flush_period_cycles is not None and flush_period_cycles <= 0:
        raise ConfigurationError("cache-flush period must be positive")
    cpu = engine.cpu
    clock = cpu.clock
    next_flush = flush_period_cycles
    table = arrival_table(arrivals, clock.hz)
    cycles_column = table["cycle"]
    messages = [message for _, message in arrivals]
    latency = LatencyRecorder()
    index = 0
    total = len(messages)
    completed = 0
    service_cycles = 0.0
    while index < total or scheduler.busy:
        if not scheduler.busy:
            if index >= total:
                break
            cpu.advance_to_cycle(float(cycles_column[index]))
        while index < total and cycles_column[index] <= cpu.cycles:
            message = messages[index]
            message.meta["arrival_cycle"] = float(cycles_column[index])
            drops_before = scheduler.drops
            scheduler.enqueue_arrival(message)
            if recorder is not None:
                recorder.count("messages.arrivals")
                lost = scheduler.drops - drops_before
                if lost:
                    recorder.count("messages.drops", float(lost))
                    recorder.instant(
                        "scheduler", "drop", cpu.cycles, size=message.size
                    )
            index += 1
        if scheduler.busy:
            before = cpu.cycles
            handle = (
                recorder.begin(
                    "scheduler",
                    "service_step",
                    cpu.cycles,
                    machine_counters(cpu),
                    pending_messages=scheduler.pending(),
                )
                if recorder is not None
                else None
            )
            completions = engine.step()
            if recorder is not None and handle is not None:
                handle.args["completions"] = len(completions)
                recorder.end(handle, cpu.cycles)
                recorder.count("scheduler.service_steps")
                recorder.count("messages.completions", float(len(completions)))
            for message, completion_cycle in completions:
                arrival_cycle = message.meta.get("arrival_cycle")
                if arrival_cycle is None:
                    continue
                completed += 1
                latency.record(
                    clock.cycles_to_seconds(completion_cycle - arrival_cycle)
                )
            service_cycles += cpu.cycles - before
            if next_flush is not None and cpu.cycles >= next_flush:
                cpu.cold_start()
                if recorder is not None:
                    recorder.count("faults.cache_flushes")
                    recorder.instant("scheduler", "cache_flush", cpu.cycles)
                while next_flush <= cpu.cycles:
                    next_flush += flush_period_cycles
    return DriveStats(
        latency=latency, completed=completed, service_cycles=service_cycles
    )
