"""Driving gossip fleets through the modeled stack.

Glue between :mod:`repro.gossip.fleet` and the existing machinery: a
:class:`~repro.gossip.fleet.GossipFleetSource` supplies byte-accurate
datagram arrivals, each data datagram is tagged with its destination
peer (:data:`~repro.core.dispatch.FLOW_KEY`) and message kind
(:data:`~repro.core.dispatch.APP_CLASS_KEY`), a flow-lookup cache is
attached to the binding, and the standard drive loop runs.  Control
datagrams (synchronize / acknowledgment walker traffic) deliberately
carry *no* flow tag — they have no cacheable destination — so every
service batch mixes tagged and untagged messages, exercising the
untagged-walk accounting in
:meth:`repro.flows.lookup.FlowLookup.charge_batch`.

:func:`gossip_point` is the harness sweep point: framing mode ×
collection batch size × scheduler × drop policy, with wire-level
header/byte totals carried alongside the standard run result so the
``gossip`` experiment can pin header-bytes/msg savings from sessions
and lookup-misses/msg under peer skew.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

import numpy as np

from ..core.dispatch import APP_CLASS_KEY, FLOW_KEY
from ..core.layer import Message
from ..flows.lookup import FlowCacheSpec
from ..sim.runner import (
    SimulationConfig,
    assemble_run_result,
    build_scheduler,
    drive,
)
from ..sim.stats import RunResult, merge_results
from .fleet import GossipFleetSource, GossipFleetSpec
from .wire import CONTROL_KINDS


@dataclass(frozen=True)
class GossipRunResult:
    """One gossip run: standard result + lookup + wire accounting.

    ``datagrams`` / ``messages`` / ``header_bytes`` / ``wire_bytes``
    total over the *offered* stream (a pure function of the fleet spec,
    independent of drops), so the header-bytes/msg headline compares
    framing modes on identical traffic.  The lookup counters mirror
    :class:`repro.flows.runner.FlowRunResult`, plus ``untagged`` — the
    control-datagram table walks that have no cacheable destination.
    """

    run: RunResult
    lookups: int
    demand: int
    hits: int
    misses: int
    evictions: int
    untagged: int
    datagrams: int
    messages: int
    header_bytes: int
    wire_bytes: int

    @property
    def header_bytes_per_message(self) -> float:
        """Non-payload wire bytes per logical message offered."""
        return self.header_bytes / max(self.messages, 1)

    @property
    def wire_bytes_per_message(self) -> float:
        """Total wire bytes per logical message offered."""
        return self.wire_bytes / max(self.messages, 1)

    @property
    def lookup_misses_per_message(self) -> float:
        """Cached-lookup table walks per completed datagram."""
        return self.misses / max(self.run.completed, 1)

    @property
    def hit_ratio(self) -> float:
        """Fraction of *tagged* lookups served from the cache."""
        performed = self.lookups - self.untagged
        if performed == 0:
            return float("nan")
        return self.hits / performed

    def to_dict(self) -> dict:
        """JSON-serializable form (harness result cache)."""
        return {
            "run": self.run.to_dict(),
            "lookups": self.lookups,
            "demand": self.demand,
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "untagged": self.untagged,
            "datagrams": self.datagrams,
            "messages": self.messages,
            "header_bytes": self.header_bytes,
            "wire_bytes": self.wire_bytes,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "GossipRunResult":
        """Inverse of :meth:`to_dict`."""
        return cls(
            run=RunResult.from_dict(data["run"]),
            lookups=int(data["lookups"]),
            demand=int(data["demand"]),
            hits=int(data["hits"]),
            misses=int(data["misses"]),
            evictions=int(data["evictions"]),
            untagged=int(data["untagged"]),
            datagrams=int(data["datagrams"]),
            messages=int(data["messages"]),
            header_bytes=int(data["header_bytes"]),
            wire_bytes=int(data["wire_bytes"]),
        )


def merge_gossip_results(results: list[GossipRunResult]) -> GossipRunResult:
    """Merge per-seed runs: averaged run stats, summed counters."""
    return GossipRunResult(
        run=merge_results([result.run for result in results]),
        lookups=sum(result.lookups for result in results),
        demand=sum(result.demand for result in results),
        hits=sum(result.hits for result in results),
        misses=sum(result.misses for result in results),
        evictions=sum(result.evictions for result in results),
        untagged=sum(result.untagged for result in results),
        datagrams=sum(result.datagrams for result in results),
        messages=sum(result.messages for result in results),
        header_bytes=sum(result.header_bytes for result in results),
        wire_bytes=sum(result.wire_bytes for result in results),
    )


def run_gossip_simulation(
    source: GossipFleetSource,
    config: SimulationConfig | None = None,
    cache: FlowCacheSpec | None = None,
    seed: int | np.random.Generator | None = 0,
) -> GossipRunResult:
    """Run one gossip fleet through the flow-charged stack.

    Data datagrams are tagged with their destination peer under
    :data:`~repro.core.dispatch.FLOW_KEY` and their kind under
    :data:`~repro.core.dispatch.APP_CLASS_KEY`; control datagrams get
    the app-class tag only, leaving the flow untagged on purpose —
    walker traffic resolves no destination, so it must pay the full
    table walk and must not alias tagged flow 0.
    """
    config = config or SimulationConfig()
    cache = cache or FlowCacheSpec()
    scheduler = build_scheduler(config, seed)
    binding = scheduler.binding
    assert binding is not None
    binding.flow_lookup = cache.build()

    stream = source.arrival_list(config.duration)
    datagrams = len(stream)
    messages = 0
    header_bytes = 0
    wire_bytes = 0
    timestamped = []
    for a in stream:
        message = Message(size=a.size, arrival_time=a.time)
        message.meta[APP_CLASS_KEY] = a.kind
        if a.kind not in CONTROL_KINDS:
            message.meta[FLOW_KEY] = int(a.flow)
        timestamped.append((a.time, message))
        messages += a.messages
        header_bytes += a.header_bytes
        wire_bytes += a.size
    outcome = drive(
        scheduler,
        timestamped,
        flush_period_cycles=config.flush_period_cycles,
        engine=config.engine,
    )
    run = assemble_run_result(scheduler, outcome, source, stream, config)
    lookup = binding.flow_lookup
    return GossipRunResult(
        run=run,
        lookups=lookup.lookups,
        demand=lookup.demand,
        hits=lookup.stats.hits,
        misses=lookup.stats.misses,
        evictions=lookup.stats.evictions,
        untagged=lookup.untagged,
        datagrams=datagrams,
        messages=messages,
        header_bytes=header_bytes,
        wire_bytes=wire_bytes,
    )


def gossip_point(
    framing: str,
    collection_size: int,
    scheduler: str,
    policy: str,
    rate: float,
    seeds: list[int],
    duration: float,
    num_peers: int = 10_000,
    num_communities: int = 4,
    peer_skew: float = 1.1,
    data_fraction: float = 0.75,
    data_payload_bytes: int = 67,
    entries: int = 16,
    organization: str = "direct",
    hit_cycles: float = 4.0,
    miss_cycles: float = 120.0,
    engine: str = "vec",
) -> dict[str, Any]:
    """One (framing, collection size, scheduler, drop policy) point.

    Module-level and fully determined by its JSON parameters (the
    harness contract).  Per seed, a fresh fleet spec drives one run;
    results merge across seeds.  The conservation audit counts seeds
    where ``offered != completed + dropped`` — the gossip tagging path
    must neither create nor lose datagrams.  ``engine`` is accepted for
    harness engine pinning; flow-charged runs always take the scalar
    loop, so both engines return identical bytes.
    """
    cache = FlowCacheSpec(
        entries=entries,
        organization=organization,
        hit_cycles=hit_cycles,
        miss_cycles=miss_cycles,
    )
    config = SimulationConfig(
        scheduler=scheduler,
        duration=duration,
        drop_policy=policy,
        engine=engine,
    )
    results = []
    violations = 0
    for seed in seeds:
        spec = GossipFleetSpec(
            num_peers=num_peers,
            num_communities=num_communities,
            peer_skew=peer_skew,
            framing=framing,
            collection_size=collection_size,
            data_fraction=data_fraction,
            data_payload_bytes=data_payload_bytes,
            rate=rate,
            seed=seed,
        )
        result = run_gossip_simulation(
            GossipFleetSource(spec), config, cache, seed=seed
        )
        run = result.run
        if run.offered != run.completed + run.dropped:
            violations += 1
        results.append(result)
    merged = merge_gossip_results(results)
    return {
        "result": merged.to_dict(),
        "framing": framing,
        "collection_size": collection_size,
        "header_bytes_per_message": merged.header_bytes_per_message,
        "wire_bytes_per_message": merged.wire_bytes_per_message,
        "lookup_misses_per_message": merged.lookup_misses_per_message,
        "conservation_violations": violations,
    }
