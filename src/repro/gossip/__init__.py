"""Fleet-scale gossip wire-protocol workload.

The "millions of users" scenario generator: byte-accurate Dispersy-style
wire formats (:mod:`repro.gossip.wire` — session vs sessionless framing,
``dispersy-collection`` batching), deterministic Zipf-skewed peer
populations (:mod:`repro.gossip.fleet`), and the flow-charged runner +
harness sweep point (:mod:`repro.gossip.runner`).  See
``EXPERIMENTS.md`` for the golden-pinned ``gossip`` sweep.
"""

from .fleet import GossipArrival, GossipFleetSource, GossipFleetSpec
from .runner import (
    GossipRunResult,
    gossip_point,
    merge_gossip_results,
    run_gossip_simulation,
)
from .wire import (
    CONTROL_KINDS,
    CONTROL_PAYLOAD_BYTES,
    DATAGRAM_OVERHEAD_BYTES,
    FRAMING_MODES,
    MESSAGE_IDS,
    FramingSpec,
    WireIdentity,
    community_identifier,
    datagram_accounting,
    decode_collection,
    decode_message,
    encode_collection,
    encode_message,
    framing,
    message_wire_bytes,
)

__all__ = [
    "CONTROL_KINDS",
    "CONTROL_PAYLOAD_BYTES",
    "DATAGRAM_OVERHEAD_BYTES",
    "FRAMING_MODES",
    "MESSAGE_IDS",
    "FramingSpec",
    "GossipArrival",
    "GossipFleetSource",
    "GossipFleetSpec",
    "GossipRunResult",
    "WireIdentity",
    "community_identifier",
    "datagram_accounting",
    "decode_collection",
    "decode_message",
    "encode_collection",
    "encode_message",
    "framing",
    "gossip_point",
    "merge_gossip_results",
    "message_wire_bytes",
    "run_gossip_simulation",
]
