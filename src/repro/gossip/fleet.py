"""Deterministic fleet-scale gossip peer populations.

The north star asks for "heavy traffic from millions of users"; this
module generates it.  A :class:`GossipFleetSpec` describes a community
of peers — how many, how skewed their popularity, which framing mode
the wire uses, how many small messages pack into each
``dispersy-collection`` — and :class:`GossipFleetSource` turns the spec
into an arrival stream of *datagrams*: each arrival's size is the exact
wire size from :mod:`repro.gossip.wire`, its ``flow`` is the Zipf-drawn
destination peer (feeding the PR-9 flow-lookup cache), and its ``kind``
is the application class (feeding the PR-8 receive-side dispatch).

Determinism is structural, not incidental: every random block — the
Poisson datagram times, the Zipf peer draws, the data/control kind
draws — comes from its **own** crc32-derived generator
(``crc32("gossip:<label>:<seed>")``), freshly constructed inside every
:meth:`~GossipFleetSource.arrivals` call.  There is no stored RNG
state, so re-materializing the stream yields identical arrivals — the
property whose absence in stateful base sources is exactly the
``ZipfFlowSource`` snapshot bug fixed in this PR.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass
from typing import Iterator

import numpy as np

from ..errors import ConfigurationError
from ..traffic.base import TrafficSource
from ..traffic.zipf import FlowArrival, zipf_weights
from .wire import (
    CONTROL_KINDS,
    CONTROL_PAYLOAD_BYTES,
    FRAMING_MODES,
    datagram_accounting,
)


@dataclass(frozen=True, slots=True)
class GossipArrival(FlowArrival):
    """One gossip datagram arrival.

    ``size`` is the full wire size (transport overhead + framing +
    payloads); ``flow`` is the destination peer id; ``kind`` is the
    message kind (the decoded application class); ``messages`` and
    ``header_bytes`` are the datagram's logical-message count and
    non-payload byte count from
    :func:`repro.gossip.wire.datagram_accounting`, which the gossip
    runner aggregates into the header-bytes/msg headline.
    """

    kind: str = "data"
    community: int = 0
    messages: int = 1
    header_bytes: int = 0

    def __post_init__(self) -> None:
        # Explicit base call: slots=True rebinds the class under
        # @dataclass, breaking zero-argument super() (same workaround
        # as FlowArrival itself).
        FlowArrival.__post_init__(self)
        if self.community < 0:
            raise ConfigurationError(
                f"community must be non-negative: {self.community}"
            )
        if self.messages < 1:
            raise ConfigurationError(
                f"a datagram carries at least one message: {self.messages}"
            )
        if not 0 <= self.header_bytes <= self.size:
            raise ConfigurationError(
                f"header bytes {self.header_bytes} outside datagram size "
                f"{self.size}"
            )


@dataclass(frozen=True)
class GossipFleetSpec:
    """One simulated gossip fleet.

    ``num_peers`` destination peers with Zipf(``peer_skew``) popularity
    spread over ``num_communities`` communities; datagrams arrive
    Poisson at ``rate`` per second.  A ``data_fraction`` share of
    datagrams are community data — ``collection_size`` payloads of
    ``data_payload_bytes`` each, packed as a ``dispersy-collection``
    when the size exceeds one — and the rest are walker control
    messages (synchronize / synchronize-ack / acknowledgment), which
    always travel alone and untagged.
    """

    num_peers: int = 10_000
    num_communities: int = 4
    peer_skew: float = 1.1
    framing: str = "session"
    collection_size: int = 8
    data_fraction: float = 0.75
    data_payload_bytes: int = 67
    rate: float = 8000.0
    seed: int = 0

    def __post_init__(self) -> None:
        if self.num_peers < 1:
            raise ConfigurationError(
                f"num_peers must be >= 1, got {self.num_peers}"
            )
        if self.num_communities < 1:
            raise ConfigurationError(
                f"num_communities must be >= 1, got {self.num_communities}"
            )
        if self.framing not in FRAMING_MODES:
            raise ConfigurationError(
                f"unknown framing mode {self.framing!r}; expected one of "
                f"{tuple(sorted(FRAMING_MODES))}"
            )
        if self.collection_size < 1:
            raise ConfigurationError(
                f"collection_size must be >= 1, got {self.collection_size}"
            )
        if not 0.0 <= self.data_fraction <= 1.0:
            raise ConfigurationError(
                f"data_fraction must be in [0, 1], got {self.data_fraction}"
            )
        if self.data_payload_bytes < 1:
            raise ConfigurationError(
                f"data_payload_bytes must be >= 1, got {self.data_payload_bytes}"
            )
        if self.rate <= 0:
            raise ConfigurationError(f"rate must be positive, got {self.rate}")
        # Skew validation (finite, non-negative) without materializing a
        # million-peer weight vector at construction time.
        zipf_weights(1, self.peer_skew)

    def peer_popularity(self) -> np.ndarray:
        """Zipf(``peer_skew``) popularity over the ranked peers."""
        return zipf_weights(self.num_peers, self.peer_skew)

    def community_of(self, peer: int) -> int:
        """The stable community one peer belongs to (crc32-mixed)."""
        return zlib.crc32(f"gossip:peer:{peer}".encode("utf-8")) % self.num_communities

    def describe(self) -> dict:
        """Static description for analysis and reports."""
        return {
            "num_peers": self.num_peers,
            "num_communities": self.num_communities,
            "peer_skew": self.peer_skew,
            "framing": self.framing,
            "collection_size": self.collection_size,
            "data_fraction": self.data_fraction,
            "data_payload_bytes": self.data_payload_bytes,
            "rate": self.rate,
            "seed": self.seed,
        }


class GossipFleetSource(TrafficSource):
    """A gossip fleet as a :class:`~repro.traffic.base.TrafficSource`.

    Emits :class:`GossipArrival` datagrams whose sizes come from the
    byte-accurate wire model, so the cache/footprint simulation sees
    exactly the bytes the protocol would put on the network.  Stateless
    between materializations: every :meth:`arrivals` call derives fresh
    generators from the spec's seed, so the same source object can be
    materialized any number of times (or replayed under several
    schedulers) and always produce the identical stream.
    """

    def __init__(self, spec: GossipFleetSpec) -> None:
        self.spec = spec

    @property
    def rate(self) -> float:
        """Nominal datagram arrival rate (datagrams per second)."""
        return self.spec.rate

    def _rng(self, label: str) -> np.random.Generator:
        """A fresh generator for one draw block (crc32 derivation)."""
        return np.random.default_rng(
            zlib.crc32(f"gossip:{label}:{self.spec.seed}".encode("utf-8"))
        )

    def _times(self, duration: float) -> np.ndarray:
        """Poisson datagram arrival times on ``[0, duration)``."""
        rng = self._rng("times")
        chunk = max(int(self.spec.rate * duration) + 1, 16)
        gaps: list[np.ndarray] = []
        total = 0.0
        while total < duration:
            block = rng.exponential(1.0 / self.spec.rate, size=chunk)
            gaps.append(block)
            total += float(block.sum())
        times = np.cumsum(np.concatenate(gaps))
        return times[times < duration]

    def arrivals(self, duration: float) -> Iterator[GossipArrival]:
        """Yield the fleet's datagram stream for one horizon.

        All draw blocks are taken up front from independent derived
        generators — times, destination peers, and message kinds never
        share RNG state, so changing the data fraction cannot shift
        which peer a datagram targets, and partial consumption of the
        iterator cannot shift later draws.
        """
        spec = self.spec
        times = self._times(duration)
        count = len(times)
        peers = self._rng("peers").choice(
            spec.num_peers, size=count, p=spec.peer_popularity()
        ).astype(np.int64) if count else np.empty(0, dtype=np.int64)
        kind_rng = self._rng("kinds")
        is_data = kind_rng.random(count) < spec.data_fraction
        control_kinds = kind_rng.integers(0, len(CONTROL_KINDS), size=count)

        data_wire, data_header, data_msgs = datagram_accounting(
            spec.framing, "data", [spec.data_payload_bytes] * spec.collection_size
        )
        control_accounting = {
            kind: datagram_accounting(
                spec.framing, kind, [CONTROL_PAYLOAD_BYTES[kind]]
            )
            for kind in CONTROL_KINDS
        }
        communities: dict[int, int] = {}
        for i in range(count):
            peer = int(peers[i])
            community = communities.get(peer)
            if community is None:
                community = spec.community_of(peer)
                communities[peer] = community
            if is_data[i]:
                kind = "data"
                wire, header, msgs = data_wire, data_header, data_msgs
            else:
                kind = CONTROL_KINDS[int(control_kinds[i])]
                wire, header, msgs = control_accounting[kind]
            yield GossipArrival(
                time=float(times[i]),
                size=wire,
                flow=peer,
                kind=kind,
                community=community,
                messages=msgs,
                header_bytes=header,
            )

    def describe(self) -> dict:
        """Static description for analysis and reports."""
        description = {"source": type(self).__name__}
        description.update(self.spec.describe())
        return description
