"""Byte-accurate Dispersy-style gossip wire formats.

The wire-protocol document excerpted in ``SNIPPETS.md`` (the Dispersy
2.0 draft) describes a real small-message system making exactly the
paper's trade: per-message header/state overhead dominates once
payloads are tens of bytes, so the protocol (a) negotiates *sessions*
that replace the dispersy version, community version, and 20-byte
community identifier with a 4-byte session identifier in every
non-syncable message, and (b) packs many small messages into one
``dispersy-collection`` datagram — LDLP batching applied at the wire.

This module implements those formats byte-for-byte (big-endian, as the
document specifies) so the fleet generator's datagram sizes are exact:

* :data:`FRAMING_MODES` — the two framing modes, ``session`` (13-byte
  header: session identifier, message identifier, global time) and
  ``sessionless`` (31-byte header: dispersy version, community version,
  20-byte community identifier, message identifier, global time);
* :func:`encode_message` / :func:`decode_message` — one framed message;
* :func:`encode_collection` / :func:`decode_collection` — the
  repeating ``(2-byte length, message)`` container;
* :func:`datagram_accounting` — the (wire bytes, header bytes, logical
  messages) triple one datagram contributes, used by
  :mod:`repro.gossip.fleet` to feed the footprint/cache model and by
  the ``gossip`` experiment to pin header-bytes/msg savings.

The HARN004 analysis rule pins that every mode registered in
:data:`FRAMING_MODES` is exercised by some ``gossip`` sweep point.
"""

from __future__ import annotations

import hashlib
import struct
from dataclasses import dataclass
from typing import Dict, Sequence

from ..errors import WireError

#: Message-identifier byte per message kind.  ``identity`` is #248 per
#: the wire document; the renamed walker messages and the new
#: collection/acknowledgment messages have no published number in the
#: draft, so they take the adjacent reserved values, and ``data`` is a
#: community-defined payload message (identifiers below #238 are left
#: to communities).
MESSAGE_IDS: Dict[str, int] = {
    "identity": 248,
    "synchronize": 246,
    "synchronize-ack": 245,
    "acknowledgment": 244,
    "collection": 242,
    "data": 16,
}

#: Inverse of :data:`MESSAGE_IDS` (wire id -> kind).
KIND_BY_ID: Dict[int, str] = {wire_id: kind for kind, wire_id in MESSAGE_IDS.items()}

#: Message kinds that are control traffic (the walker and its
#: acknowledgments); everything else is community data.  Control
#: messages carry no destination flow — the gossip runner leaves them
#: untagged, which is what exercises mixed tagged/untagged batches in
#: the flow-lookup accounting.
CONTROL_KINDS = ("synchronize", "synchronize-ack", "acknowledgment")

#: Default payload sizes (bytes) of the control messages: a
#: synchronize carries LAN/WAN addresses plus a bloom filter, its
#: acknowledgment echoes the addresses, and a bare acknowledgment is a
#: couple of global times.
CONTROL_PAYLOAD_BYTES: Dict[str, int] = {
    "synchronize": 137,
    "synchronize-ack": 53,
    "acknowledgment": 21,
}

#: Modeled per-datagram transport overhead: an IPv4 header (20 bytes)
#: plus a UDP header (8 bytes).  Packing messages into one collection
#: datagram amortizes exactly this plus the outer framing header.
DATAGRAM_OVERHEAD_BYTES = 28

#: struct format of the session header: session identifier (4),
#: message identifier (1), global time (8) — all big endian.
_SESSION_HEADER = struct.Struct(">IBQ")

#: struct format of the sessionless header: dispersy version (1),
#: community version (1), community identifier (20), message
#: identifier (1), global time (8).
_SESSIONLESS_HEADER = struct.Struct(">BB20sBQ")

#: struct format of one collection element's length prefix.
_ELEMENT_LENGTH = struct.Struct(">H")


@dataclass(frozen=True)
class WireIdentity:
    """Everything a header needs besides the message kind and time.

    ``session_id`` feeds the session framing; the version pair and the
    20-byte ``community_id`` feed the sessionless framing.  One frozen
    value serves both modes so framing can be swept over the same
    population without re-deriving identities.
    """

    session_id: int = 0
    dispersy_version: int = 2
    community_version: int = 1
    community_id: bytes = b"\x00" * 20

    def __post_init__(self) -> None:
        if not 0 <= self.session_id <= 0xFFFFFFFF:
            raise WireError(f"session id out of range: {self.session_id}")
        if not 0 <= self.dispersy_version <= 0xFF:
            raise WireError(f"dispersy version out of range: {self.dispersy_version}")
        if not 0 <= self.community_version <= 0xFF:
            raise WireError(
                f"community version out of range: {self.community_version}"
            )
        if len(self.community_id) != 20:
            raise WireError(
                f"community id must be 20 bytes, got {len(self.community_id)}"
            )


def community_identifier(community: int) -> bytes:
    """The 20-byte community identifier of one modeled community.

    Real Dispersy uses the SHA-1 digest of the community's master
    public key; the model derives the digest from the community index,
    which has the same length and the same per-community stability.
    """
    return hashlib.sha1(f"gossip:community:{community}".encode("utf-8")).digest()


@dataclass(frozen=True)
class FramingSpec:
    """One framing mode: its name and fixed per-message header size."""

    name: str
    header_bytes: int

    def pack_header(self, kind: str, identity: WireIdentity, global_time: int) -> bytes:
        """Encode one message header under this framing."""
        wire_id = _message_id(kind)
        if not 0 <= global_time <= 0xFFFFFFFFFFFFFFFF:
            raise WireError(f"global time out of range: {global_time}")
        if self.name == "session":
            return _SESSION_HEADER.pack(identity.session_id, wire_id, global_time)
        return _SESSIONLESS_HEADER.pack(
            identity.dispersy_version,
            identity.community_version,
            identity.community_id,
            wire_id,
            global_time,
        )

    def unpack_header(self, data: bytes) -> tuple[str, WireIdentity, int]:
        """Decode ``(kind, identity, global_time)`` from a header."""
        if len(data) < self.header_bytes:
            raise WireError(
                f"datagram too short for {self.name} header: {len(data)} "
                f"< {self.header_bytes} bytes"
            )
        if self.name == "session":
            session_id, wire_id, global_time = _SESSION_HEADER.unpack_from(data)
            identity = WireIdentity(session_id=session_id)
        else:
            (
                dispersy_version,
                community_version,
                community_id,
                wire_id,
                global_time,
            ) = _SESSIONLESS_HEADER.unpack_from(data)
            identity = WireIdentity(
                dispersy_version=dispersy_version,
                community_version=community_version,
                community_id=community_id,
            )
        kind = KIND_BY_ID.get(wire_id)
        if kind is None:
            raise WireError(f"unknown message identifier {wire_id}")
        return kind, identity, global_time


#: Registered framing modes.  ``session`` is the negotiated-session
#: header of the 2.0 draft; ``sessionless`` is the 1.x-style header
#: every message must carry when no session exists.  HARN004 pins that
#: every mode here is exercised by the ``gossip`` experiment sweep.
FRAMING_MODES: Dict[str, FramingSpec] = {
    "session": FramingSpec("session", _SESSION_HEADER.size),
    "sessionless": FramingSpec("sessionless", _SESSIONLESS_HEADER.size),
}


def _message_id(kind: str) -> int:
    """The wire identifier byte for one message kind."""
    try:
        return MESSAGE_IDS[kind]
    except KeyError:
        raise WireError(
            f"unknown message kind {kind!r}; expected one of "
            f"{tuple(sorted(MESSAGE_IDS))}"
        ) from None


def framing(mode: str) -> FramingSpec:
    """Resolve a registered framing mode by name."""
    try:
        return FRAMING_MODES[mode]
    except KeyError:
        raise WireError(
            f"unknown framing mode {mode!r}; expected one of "
            f"{tuple(sorted(FRAMING_MODES))}"
        ) from None


def encode_message(
    mode: str,
    kind: str,
    identity: WireIdentity,
    global_time: int,
    payload: bytes,
) -> bytes:
    """Encode one framed message: header followed by the raw payload."""
    return framing(mode).pack_header(kind, identity, global_time) + payload


def decode_message(
    mode: str, data: bytes
) -> tuple[str, WireIdentity, int, bytes]:
    """Decode ``(kind, identity, global_time, payload)`` from a datagram."""
    spec = framing(mode)
    kind, identity, global_time = spec.unpack_header(data)
    return kind, identity, global_time, data[spec.header_bytes :]


def encode_collection(
    mode: str,
    identity: WireIdentity,
    global_time: int,
    elements: Sequence[bytes],
) -> bytes:
    """Encode a ``dispersy-collection`` datagram.

    The payload is the document's repeating element: one or more
    ``(unsigned short length, message)`` pairs, each ``message`` a
    complete framed message of its own.
    """
    if not elements:
        raise WireError("a collection must contain at least one message")
    parts = [framing(mode).pack_header("collection", identity, global_time)]
    for element in elements:
        if len(element) > 0xFFFF:
            raise WireError(
                f"collection element of {len(element)} bytes exceeds the "
                f"16-bit length field"
            )
        parts.append(_ELEMENT_LENGTH.pack(len(element)))
        parts.append(element)
    return b"".join(parts)


def decode_collection(mode: str, data: bytes) -> list[bytes]:
    """Decode a collection datagram back into its framed elements."""
    spec = framing(mode)
    kind, _, _ = spec.unpack_header(data)
    if kind != "collection":
        raise WireError(f"not a collection datagram: kind {kind!r}")
    elements: list[bytes] = []
    offset = spec.header_bytes
    while offset < len(data):
        if offset + _ELEMENT_LENGTH.size > len(data):
            raise WireError("truncated collection element length")
        (length,) = _ELEMENT_LENGTH.unpack_from(data, offset)
        offset += _ELEMENT_LENGTH.size
        if offset + length > len(data):
            raise WireError(
                f"collection element runs past the datagram end "
                f"({length} bytes declared, {len(data) - offset} left)"
            )
        elements.append(data[offset : offset + length])
        offset += length
    if not elements:
        raise WireError("a collection must contain at least one message")
    return elements


def message_wire_bytes(mode: str, payload_bytes: int) -> int:
    """Wire size of one framed message (header + payload, no transport)."""
    if payload_bytes < 0:
        raise WireError(f"payload size must be non-negative: {payload_bytes}")
    return framing(mode).header_bytes + payload_bytes


def datagram_accounting(
    mode: str, kind: str, payload_sizes: Sequence[int]
) -> tuple[int, int, int]:
    """The ``(wire_bytes, header_bytes, messages)`` of one datagram.

    A single-message datagram (every control kind, and data with one
    payload) is transport overhead + one framed message.  Two or more
    payloads pack into a ``dispersy-collection``: transport overhead +
    the collection's own header + per element a 2-byte length prefix
    and a complete framed inner message.  ``header_bytes`` counts
    everything that is not payload — transport overhead, framing
    headers, and length prefixes — which is the quantity sessions and
    collections exist to shrink per logical message.

    The arithmetic here is pinned byte-for-byte against the real
    encoders in the test suite, so fleet-scale generation never has to
    materialize datagram bytes.
    """
    spec = framing(mode)
    _message_id(kind)
    if not payload_sizes:
        raise WireError("a datagram must carry at least one payload")
    if any(size < 0 for size in payload_sizes):
        raise WireError(f"payload sizes must be non-negative: {list(payload_sizes)}")
    if len(payload_sizes) == 1:
        header = DATAGRAM_OVERHEAD_BYTES + spec.header_bytes
        return header + payload_sizes[0], header, 1
    if kind in CONTROL_KINDS:
        raise WireError(f"control kind {kind!r} cannot be packed in a collection")
    header = (
        DATAGRAM_OVERHEAD_BYTES
        + spec.header_bytes
        + len(payload_sizes) * (_ELEMENT_LENGTH.size + spec.header_bytes)
    )
    return header + sum(payload_sizes), header, len(payload_sizes)
