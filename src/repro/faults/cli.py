"""``ldlp-experiment faults`` — fault-injection campaigns from the shell.

Usage::

    ldlp-experiment faults list                   # injectors + policies
    ldlp-experiment faults degradation --jobs 4   # overload sweep table
    ldlp-experiment faults degradation --scale default --out curves.txt
    ldlp-experiment faults injectors              # survival matrix

``degradation`` runs the :mod:`repro.faults.campaigns` sweep through
the parallel harness (cached, byte-identical at any ``--jobs``) and
prints the degradation-curve table; ``--out`` also writes it to a file
for CI artifacts.  ``injectors`` runs every injector against every
scheduler at overload and fails (exit 1) unless each combination
survives with conservation intact and both checksum routines agreeing
on corrupted frames.
"""

from __future__ import annotations

import argparse
import sys

import numpy as np

from ..core.overload import DROP_POLICIES
from ..errors import ReproError
from ..harness.cache import ResultCache
from ..harness.points import SCALES
from ..harness.runner import run_experiment
from ..protocols.checksum import internet_checksum, internet_checksum_unrolled
from ..sim.runner import SCHEDULER_NAMES, SimulationConfig, run_simulation
from ..traffic.poisson import PoissonSource
from .injectors import STAGE_KINDS, flip_bytes
from .plan import FaultPlan


def build_parser() -> argparse.ArgumentParser:
    """The ``faults`` subcommand parser."""
    parser = argparse.ArgumentParser(
        prog="ldlp-experiment faults",
        description="Fault-injection and overload-robustness campaigns.",
    )
    sub = parser.add_subparsers(dest="campaign", required=True)

    degradation = sub.add_parser(
        "degradation",
        help="overload x policy x scheduler degradation sweep (harness)",
    )
    degradation.add_argument(
        "--jobs", "-j", type=int, default=1,
        help="worker processes for sweep points (default 1)",
    )
    degradation.add_argument(
        "--scale", choices=SCALES, default="ci",
        help="sweep scale: ci (fast), default, paper (default: ci)",
    )
    degradation.add_argument(
        "--cache-dir", default=None,
        help="result cache directory (default .ldlp-cache or $LDLP_CACHE_DIR)",
    )
    degradation.add_argument(
        "--no-cache", action="store_true",
        help="recompute every point; do not read or write the cache",
    )
    degradation.add_argument(
        "--out", default=None,
        help="also write the degradation table to this file (CI artifact)",
    )

    injectors = sub.add_parser(
        "injectors",
        help="per-injector x per-scheduler survival matrix (exit 1 on failure)",
    )
    injectors.add_argument(
        "--seed", type=int, default=0, help="fault/traffic/placement seed"
    )
    injectors.add_argument(
        "--rate", type=float, default=11000.0,
        help="offered arrival rate (default 11000/s: overload)",
    )
    injectors.add_argument(
        "--duration", type=float, default=0.05,
        help="simulated seconds per combination (default 0.05)",
    )

    sub.add_parser("list", help="list available injectors and drop policies")
    return parser


def cmd_list() -> int:
    """``list``: every injector kind and drop policy, one line each."""
    print("injectors:")
    for kind in sorted(STAGE_KINDS):
        stage = STAGE_KINDS[kind]()
        print(f"  {stage.describe()}")
    print("environment faults:")
    print("  cache-flush(period_cycles)  clock-derate(factor)  "
          "mbuf-exhaustion(period, width, start)")
    print("drop policies:")
    for name in sorted(DROP_POLICIES):
        print(f"  {DROP_POLICIES[name]().describe()}")
    return 0


def cmd_degradation(args: argparse.Namespace) -> int:
    """``degradation``: run the faults sweep and print/write the table."""
    from .campaigns import SWEEP, assemble

    cache = ResultCache(root=args.cache_dir, enabled=not args.no_cache)
    run = run_experiment(SWEEP, scale=args.scale, jobs=args.jobs, cache=cache)
    print(run.timing_summary())
    campaign = assemble(run.points, run.results)
    table = campaign.render()
    print()
    print(table)
    violations = campaign.conservation_violations()
    if args.out is not None:
        with open(args.out, "w", encoding="utf-8") as stream:
            stream.write(table + "\n")
        print(f"\nwrote {args.out}")
    if violations:
        print(f"\nFAIL: {violations} conservation violation(s)")
        return 1
    return 0


def _survives(kind: str, scheduler: str, seed: int, rate: float,
              duration: float) -> str | None:
    """Run one injector/scheduler combination; None when it survives.

    Survival means: the run completes without an unexpected exception,
    at least one message completes, and admission accounting conserves
    (``offered == completed + dropped`` once the queue drains).
    """
    plan = FaultPlan(stages=(STAGE_KINDS[kind](),))
    config = SimulationConfig(scheduler=scheduler, duration=duration)
    source = PoissonSource(rate, rng=seed)
    try:
        arrivals = plan.apply(source.arrival_list(duration), seed)
        result = run_simulation(source, config, seed=seed, arrivals=arrivals)
    except ReproError as exc:
        return f"raised {type(exc).__name__}: {exc}"
    if result.completed == 0:
        return "completed no messages"
    if result.offered != result.completed + result.dropped:
        return (
            f"conservation broken: offered={result.offered} != "
            f"completed={result.completed} + dropped={result.dropped}"
        )
    return None


def _checksums_agree(seed: int) -> str | None:
    """Both checksum routines must agree on clean and corrupted frames."""
    rng = np.random.default_rng(seed)
    for trial in range(64):
        length = int(rng.integers(1, 1519))
        frame = rng.integers(0, 256, size=length, dtype=np.uint8).tobytes()
        corrupted = flip_bytes(frame, rng)
        for data in (frame, corrupted):
            simple = internet_checksum(data)
            unrolled = internet_checksum_unrolled(data)
            if simple != unrolled:
                return (
                    f"trial {trial}: internet_checksum={simple:#06x} but "
                    f"unrolled={unrolled:#06x} on {len(data)}-byte frame"
                )
    return None


def cmd_injectors(args: argparse.Namespace) -> int:
    """``injectors``: the survival matrix, non-zero exit on any failure."""
    from ..experiments.report import render_table

    failures = []
    rows = []
    for kind in sorted(STAGE_KINDS):
        row = [kind]
        for scheduler in SCHEDULER_NAMES:
            problem = _survives(
                kind, scheduler, args.seed, args.rate, args.duration
            )
            if problem is None:
                row.append("ok")
            else:
                row.append("FAIL")
                failures.append(f"{kind} x {scheduler}: {problem}")
        rows.append(row)
    print(
        render_table(
            ["injector", *SCHEDULER_NAMES],
            rows,
            title=(
                f"Injector survival matrix (rate={args.rate:.0f}/s, "
                f"duration={args.duration:g}s, seed={args.seed})"
            ),
        )
    )
    checksum_problem = _checksums_agree(args.seed)
    if checksum_problem is not None:
        failures.append(f"checksum disagreement: {checksum_problem}")
    else:
        print("\nchecksum routines agree on clean and corrupted frames")
    if failures:
        print(f"\n{len(failures)} failure(s):")
        for failure in failures:
            print(f"  {failure}")
        return 1
    print("all injectors survived on every scheduler; conservation holds")
    return 0


def main(argv: list[str] | None = None) -> int:
    """CLI entry: dispatch one fault campaign."""
    args = build_parser().parse_args(argv)
    if args.campaign == "list":
        return cmd_list()
    if args.campaign == "degradation":
        return cmd_degradation(args)
    return cmd_injectors(args)


if __name__ == "__main__":
    sys.exit(main())
