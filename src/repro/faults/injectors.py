"""Composable, rng-driven fault injectors.

Every injector is one :class:`FaultStage`: a deterministic transform of
an arrival list (and, where it makes sense, of a raw frame list) driven
by a :class:`numpy.random.Generator` the plan derives from the run seed.
Stages are JSON round-trippable (``to_params`` / ``from_params``) so a
whole fault plan travels through the parallel harness as plain point
parameters and hashes into the result-cache key.

The stages model what real receive paths face:

* :class:`LossFault` — the wire ate the packet;
* :class:`DuplicateFault` — retransmission/switch flooding duplicates;
* :class:`ReorderFault` — multipath or NIC-queue reordering (delivery
  *order* is perturbed; original timestamps are kept, so reordered
  messages show up as latency);
* :class:`DelayFault` — queueing jitter upstream of the host;
* :class:`TruncateFault` — runt frames cut mid-transfer;
* :class:`CorruptFault` — payload byte flips (meaningful for byte-level
  frames, where it exercises checksum/decode reject paths).

Environment injectors perturb the *machine* rather than the traffic:

* :class:`MbufExhaustionWindows` — deterministic count-based windows in
  which the mbuf pool refuses allocation (see
  :meth:`repro.buffers.pool.MbufPool.set_fault_gate`);
* cache flushes and clock derating are plan-level settings
  (:class:`repro.faults.plan.FaultPlan`) because they thread through
  :class:`~repro.sim.runner.SimulationConfig`, not the arrival stream.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Any, Callable

import numpy as np

from ..errors import ConfigurationError
from ..traffic.base import Arrival


def _check_rate(rate: float) -> None:
    if not 0.0 <= rate <= 1.0:
        raise ConfigurationError(f"fault rate must be in [0, 1]: {rate}")


class FaultStage(ABC):
    """One deterministic transform in a fault plan.

    Subclasses set :attr:`kind` (the registry name used for JSON
    round-trips) and implement :meth:`apply`; stages that can also
    mangle raw frame bytes override :meth:`apply_frames`.
    """

    #: Registry name; also the JSON ``kind`` discriminator.
    kind = "abstract"

    @abstractmethod
    def apply(
        self, arrivals: list[Arrival], rng: np.random.Generator
    ) -> list[Arrival]:
        """Transform an arrival list (must not mutate the input)."""

    def apply_frames(
        self, frames: list[bytes], rng: np.random.Generator
    ) -> list[bytes]:
        """Transform raw frames; default: stage does not apply to bytes."""
        return list(frames)

    @abstractmethod
    def to_params(self) -> dict[str, Any]:
        """JSON-serializable form, ``{"kind": ..., **parameters}``."""

    def describe(self) -> str:
        """One human-readable summary line."""
        params = {k: v for k, v in self.to_params().items() if k != "kind"}
        inner = ", ".join(f"{k}={v}" for k, v in sorted(params.items()))
        return f"{self.kind}({inner})"


@dataclass(frozen=True)
class LossFault(FaultStage):
    """Drop each arrival independently with probability ``rate``."""

    rate: float = 0.01

    kind = "loss"

    def __post_init__(self) -> None:
        _check_rate(self.rate)

    def apply(
        self, arrivals: list[Arrival], rng: np.random.Generator
    ) -> list[Arrival]:
        """Keep each arrival with probability ``1 - rate``."""
        keep = rng.random(len(arrivals)) >= self.rate
        return [a for a, k in zip(arrivals, keep) if k]

    def apply_frames(
        self, frames: list[bytes], rng: np.random.Generator
    ) -> list[bytes]:
        """Drop frames with the same Bernoulli rule."""
        keep = rng.random(len(frames)) >= self.rate
        return [f for f, k in zip(frames, keep) if k]

    def to_params(self) -> dict[str, Any]:
        """JSON form."""
        return {"kind": self.kind, "rate": self.rate}


@dataclass(frozen=True)
class DuplicateFault(FaultStage):
    """Duplicate selected arrivals a short, fixed delay later.

    Models link-layer retransmissions and switch flooding: the copy is
    a distinct message carrying its own (slightly later) timestamp.
    """

    rate: float = 0.01
    delay: float = 1e-4

    kind = "duplicate"

    def __post_init__(self) -> None:
        _check_rate(self.rate)
        if self.delay < 0:
            raise ConfigurationError(f"duplicate delay must be >= 0: {self.delay}")

    def apply(
        self, arrivals: list[Arrival], rng: np.random.Generator
    ) -> list[Arrival]:
        """Insert time-shifted copies of the selected arrivals."""
        chosen = rng.random(len(arrivals)) < self.rate
        out = list(arrivals)
        for arrival, dup in zip(arrivals, chosen):
            if dup:
                out.append(Arrival(arrival.time + self.delay, arrival.size))
        out.sort(key=lambda a: a.time)
        return out

    def apply_frames(
        self, frames: list[bytes], rng: np.random.Generator
    ) -> list[bytes]:
        """Repeat selected frames back-to-back."""
        chosen = rng.random(len(frames)) < self.rate
        out: list[bytes] = []
        for frame, dup in zip(frames, chosen):
            out.append(frame)
            if dup:
                out.append(frame)
        return out

    def to_params(self) -> dict[str, Any]:
        """JSON form."""
        return {"kind": self.kind, "rate": self.rate, "delay": self.delay}


@dataclass(frozen=True)
class ReorderFault(FaultStage):
    """Swap selected arrivals forward by up to ``span`` positions.

    Perturbs *delivery order* only: timestamps are untouched, so the
    driver admits the displaced messages late and the disorder shows up
    as added latency — exactly what reordering costs a receiver.
    """

    rate: float = 0.01
    span: int = 3

    kind = "reorder"

    def __post_init__(self) -> None:
        _check_rate(self.rate)
        if self.span <= 0:
            raise ConfigurationError(f"reorder span must be positive: {self.span}")

    def _permute(self, n: int, rng: np.random.Generator) -> list[int]:
        order = list(range(n))
        chosen = rng.random(n) < self.rate
        shifts = rng.integers(1, self.span + 1, size=n)
        for index in range(n):
            if not chosen[index]:
                continue
            target = min(n - 1, index + int(shifts[index]))
            value = order.pop(index)
            order.insert(target, value)
        return order

    def apply(
        self, arrivals: list[Arrival], rng: np.random.Generator
    ) -> list[Arrival]:
        """Reorder delivery positions, keeping each arrival's timestamp."""
        order = self._permute(len(arrivals), rng)
        return [arrivals[i] for i in order]

    def apply_frames(
        self, frames: list[bytes], rng: np.random.Generator
    ) -> list[bytes]:
        """Reorder frame delivery with the same permutation rule."""
        order = self._permute(len(frames), rng)
        return [frames[i] for i in order]

    def to_params(self) -> dict[str, Any]:
        """JSON form."""
        return {"kind": self.kind, "rate": self.rate, "span": self.span}


@dataclass(frozen=True)
class DelayFault(FaultStage):
    """Add exponential jitter to selected arrivals (then re-sort).

    Models upstream queueing delay: the affected packet reaches the
    host late, possibly behind packets sent after it.
    """

    rate: float = 0.02
    mean: float = 2e-4

    kind = "delay"

    def __post_init__(self) -> None:
        _check_rate(self.rate)
        if self.mean <= 0:
            raise ConfigurationError(f"mean delay must be positive: {self.mean}")

    def apply(
        self, arrivals: list[Arrival], rng: np.random.Generator
    ) -> list[Arrival]:
        """Shift selected timestamps by Exp(mean) and restore time order."""
        chosen = rng.random(len(arrivals)) < self.rate
        jitter = rng.exponential(self.mean, size=len(arrivals))
        out = [
            Arrival(a.time + (float(j) if c else 0.0), a.size)
            for a, c, j in zip(arrivals, chosen, jitter)
        ]
        out.sort(key=lambda a: a.time)
        return out

    def to_params(self) -> dict[str, Any]:
        """JSON form."""
        return {"kind": self.kind, "rate": self.rate, "mean": self.mean}


@dataclass(frozen=True)
class TruncateFault(FaultStage):
    """Cut selected packets short (runt frames).

    At the arrival level the size shrinks to a uniform fraction (at
    least ``min_size``); at the frame level the byte string itself is
    sliced, which is what drives header parsers and checksum
    verification into their reject paths.
    """

    rate: float = 0.01
    min_size: int = 1

    kind = "truncate"

    def __post_init__(self) -> None:
        _check_rate(self.rate)
        if self.min_size <= 0:
            raise ConfigurationError(
                f"minimum truncated size must be positive: {self.min_size}"
            )

    def apply(
        self, arrivals: list[Arrival], rng: np.random.Generator
    ) -> list[Arrival]:
        """Shrink selected sizes to a uniform fraction of the original."""
        chosen = rng.random(len(arrivals)) < self.rate
        fractions = rng.uniform(0.05, 0.95, size=len(arrivals))
        out = []
        for arrival, cut, fraction in zip(arrivals, chosen, fractions):
            if cut and arrival.size > self.min_size:
                size = max(self.min_size, int(arrival.size * float(fraction)))
                out.append(Arrival(arrival.time, size))
            else:
                out.append(arrival)
        return out

    def apply_frames(
        self, frames: list[bytes], rng: np.random.Generator
    ) -> list[bytes]:
        """Slice selected frames short (length >= min_size when possible)."""
        chosen = rng.random(len(frames)) < self.rate
        fractions = rng.uniform(0.05, 0.95, size=len(frames))
        out = []
        for frame, cut, fraction in zip(frames, chosen, fractions):
            if cut and len(frame) > self.min_size:
                length = max(self.min_size, int(len(frame) * float(fraction)))
                out.append(frame[:length])
            else:
                out.append(frame)
        return out

    def to_params(self) -> dict[str, Any]:
        """JSON form."""
        return {"kind": self.kind, "rate": self.rate, "min_size": self.min_size}


@dataclass(frozen=True)
class CorruptFault(FaultStage):
    """Flip up to ``max_flips`` payload bytes of selected frames.

    Only meaningful for byte-level traffic: each selected frame gets
    1..``max_flips`` bytes XORed with a random non-zero mask, which is
    precisely the corruption the Internet checksum exists to catch —
    property tests assert both checksum routines reject (or the flips
    provably cancel).  At the arrival level (sizes only, no bytes) this
    stage is an identity transform.
    """

    rate: float = 0.02
    max_flips: int = 4

    kind = "corrupt"

    def __post_init__(self) -> None:
        _check_rate(self.rate)
        if self.max_flips <= 0:
            raise ConfigurationError(
                f"max byte flips must be positive: {self.max_flips}"
            )

    def apply(
        self, arrivals: list[Arrival], rng: np.random.Generator
    ) -> list[Arrival]:
        """Identity — synthetic arrivals carry no bytes to corrupt.

        The rng is still consumed once per arrival so a plan produces
        the same downstream stream whether or not payloads exist.
        """
        rng.random(len(arrivals))
        return list(arrivals)

    def apply_frames(
        self, frames: list[bytes], rng: np.random.Generator
    ) -> list[bytes]:
        """XOR random non-zero masks into selected frames' bytes."""
        chosen = rng.random(len(frames)) < self.rate
        out = []
        for frame, corrupt in zip(frames, chosen):
            if corrupt and frame:
                out.append(flip_bytes(frame, rng, self.max_flips))
            else:
                out.append(frame)
        return out

    def to_params(self) -> dict[str, Any]:
        """JSON form."""
        return {"kind": self.kind, "rate": self.rate, "max_flips": self.max_flips}


def flip_bytes(frame: bytes, rng: np.random.Generator, max_flips: int = 4) -> bytes:
    """Return ``frame`` with 1..``max_flips`` bytes XORed non-trivially.

    Positions are drawn without replacement and every mask is non-zero,
    so the result always differs from the input — handy for property
    tests that must distinguish "corruption detected" from "corruption
    never happened".
    """
    if not frame:
        return frame
    count = int(rng.integers(1, max_flips + 1))
    count = min(count, len(frame))
    positions = rng.choice(len(frame), size=count, replace=False)
    mutated = bytearray(frame)
    for position in positions:
        mask = int(rng.integers(1, 256))
        mutated[int(position)] ^= mask
    return bytes(mutated)


@dataclass(frozen=True)
class MbufExhaustionWindows:
    """Deterministic count-based mbuf-pool exhaustion windows.

    Every ``period`` allocation attempts, the next ``width`` attempts
    fail (starting at attempt ``start``).  Install on a pool with
    :meth:`~repro.buffers.pool.MbufPool.set_fault_gate`; being keyed on
    the attempt *count* rather than wall/sim time makes the windows
    reproducible irrespective of scheduler interleaving.
    """

    period: int = 100
    width: int = 10
    start: int = 50

    def __post_init__(self) -> None:
        if self.period <= 0 or self.width < 0 or self.start < 0:
            raise ConfigurationError(
                f"invalid exhaustion window: period={self.period} "
                f"width={self.width} start={self.start}"
            )
        if self.width >= self.period:
            raise ConfigurationError(
                "exhaustion width must be smaller than the period "
                "(or no allocation ever succeeds)"
            )

    def gate(self) -> Callable[[int], bool]:
        """The ``gate(allocation_index) -> allowed`` callable to install."""

        def allowed(index: int) -> bool:
            if index < self.start:
                return True
            return (index - self.start) % self.period >= self.width

        return allowed

    def to_params(self) -> dict[str, Any]:
        """JSON form."""
        return {
            "kind": "mbuf-exhaustion",
            "period": self.period,
            "width": self.width,
            "start": self.start,
        }


#: Stage registry keyed by the JSON ``kind`` discriminator.
STAGE_KINDS: dict[str, type[FaultStage]] = {
    stage.kind: stage
    for stage in (
        LossFault,
        DuplicateFault,
        ReorderFault,
        DelayFault,
        TruncateFault,
        CorruptFault,
    )
}


def stage_from_params(params: dict[str, Any]) -> FaultStage:
    """Rebuild one stage from its :meth:`FaultStage.to_params` dict."""
    fields = dict(params)
    kind = fields.pop("kind", None)
    try:
        cls = STAGE_KINDS[kind]
    except KeyError:
        raise ConfigurationError(
            f"unknown fault stage kind {kind!r}; expected one of "
            f"{', '.join(sorted(STAGE_KINDS))}"
        ) from None
    return cls(**fields)
