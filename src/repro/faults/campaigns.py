"""Fault campaigns: degradation sweeps through the parallel harness.

The ``faults`` experiment sweeps overload level x drop policy x
scheduler with a fixed wire-fault plan (loss, duplication, reordering,
jitter) plus periodic cache flushes, and reports each combination's
drop rate and tail latency — the degradation curves the robustness
claims pin as goldens.

Every sweep point is the pure module-level :func:`fault_point`, so the
campaign parallelizes over the harness worker pool and caches by
content hash like any other experiment; the whole fault plan rides in
the point parameters as JSON (see
:meth:`repro.faults.plan.FaultPlan.to_params`), making runs
byte-identical at any ``--jobs``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from ..cache.hierarchy import MachineSpec
from ..experiments.report import render_table
from ..harness.points import SweepPoint, SweepSpec, Tolerance
from ..sim.runner import SimulationConfig, run_simulation
from ..sim.stats import RunResult, merge_results
from ..traffic.poisson import PoissonSource
from ..units import format_duration
from .injectors import DelayFault, DuplicateFault, LossFault, ReorderFault
from .plan import FaultPlan

#: Schedulers the degradation campaign compares (the paper's three).
CAMPAIGN_SCHEDULERS = ("conventional", "ilp", "ldlp")


def campaign_plan(loss: float = 0.02) -> FaultPlan:
    """The standard degradation-campaign fault plan.

    A representative dirty network: ``loss`` wire loss, 1% duplication,
    2% reordering over a 4-packet span, 1% exponential jitter — plus a
    cache flush every 2M cycles (a ~50 Hz interrupt at the paper's
    100 MHz clock) to keep the caches honest mid-overload.
    """
    return FaultPlan(
        stages=(
            LossFault(rate=loss),
            DuplicateFault(rate=0.01, delay=1e-4),
            ReorderFault(rate=0.02, span=4),
            DelayFault(rate=0.01, mean=2e-4),
        ),
        flush_period_cycles=2e6,
    )


def fault_point(
    scheduler: str,
    policy: str,
    rate: float,
    seeds: list[int],
    duration: float,
    plan: dict[str, Any],
    engine: str = "vec",
) -> dict[str, Any]:
    """One (scheduler, policy, overload-rate) campaign point.

    Pure function of its JSON parameters (harness contract): per seed,
    draw a Poisson arrival stream, push it through the fault plan, and
    run the synthetic benchmark with the requested drop policy, derated
    clock and flush period.  Returns the seed-merged
    :class:`~repro.sim.stats.RunResult` plus a conservation audit —
    ``offered == completed + dropped`` must hold per seed once the
    queue drains, whatever the faults did.
    """
    fault_plan = FaultPlan.from_params(plan)
    spec = fault_plan.derated_spec(MachineSpec())
    config = SimulationConfig(
        scheduler=scheduler,
        duration=duration,
        spec=spec,
        drop_policy=policy,
        flush_period_cycles=fault_plan.flush_period_cycles,
        engine=engine,
    )
    results = []
    violations = 0
    for seed in seeds:
        source = PoissonSource(rate, rng=seed)
        arrivals = fault_plan.apply(source.arrival_list(duration), seed)
        result = run_simulation(source, config, seed=seed, arrivals=arrivals)
        if result.offered != result.completed + result.dropped:
            violations += 1
        results.append(result)
    merged = merge_results(results)
    return {
        "result": merged.to_dict(),
        "policy": policy,
        "conservation_violations": violations,
    }


@dataclass(frozen=True)
class FaultRow:
    """One rendered campaign combination."""

    scheduler: str
    policy: str
    rate: float
    result: RunResult
    violations: int


@dataclass(frozen=True)
class FaultsResult:
    """The assembled degradation campaign: one row per combination."""

    rows: tuple[FaultRow, ...]

    def top_rate(self) -> float:
        """The highest (most overloaded) swept arrival rate."""
        return max(row.rate for row in self.rows)

    def conservation_violations(self) -> int:
        """Total per-seed conservation failures across every point."""
        return sum(row.violations for row in self.rows)

    def render(self) -> str:
        """The degradation-curve table (drops and tail latency)."""
        table_rows = []
        for row in self.rows:
            result = row.result
            table_rows.append(
                [
                    row.scheduler,
                    row.policy,
                    f"{row.rate:.0f}",
                    result.offered,
                    result.completed,
                    result.dropped,
                    f"{100 * result.drop_fraction:.1f}%",
                    format_duration(result.latency.p99),
                    "ok" if row.violations == 0 else f"{row.violations} BAD",
                ]
            )
        return render_table(
            [
                "scheduler",
                "policy",
                "rate/s",
                "offered",
                "done",
                "drops",
                "drop%",
                "p99",
                "conserved",
            ],
            table_rows,
            title=(
                "Fault campaign: degradation under overload "
                "(lossy/reordering network + periodic cache flushes)"
            ),
        )


# ----------------------------------------------------------------------
# Declarative sweep interface (repro.harness)

#: (rates, policies, seeds, duration) per harness scale.
SWEEP_SCALES: dict[
    str, tuple[tuple[int, ...], tuple[str, ...], tuple[int, ...], float]
] = {
    "ci": ((6000, 9000, 12000), ("tail", "head"), (0, 1), 0.08),
    "default": (
        (6000, 9000, 12000, 15000),
        ("tail", "head", "batch-cap", "adaptive"),
        (0, 1, 2),
        0.1,
    ),
    "paper": (
        (6000, 9000, 12000, 15000),
        ("tail", "head", "batch-cap", "adaptive"),
        tuple(range(10)),
        0.3,
    ),
}


def sweep_points(scale: str) -> list[SweepPoint]:
    """Overload rate x policy x scheduler, under the standard plan."""
    rates, policies, seeds, duration = SWEEP_SCALES[scale]
    plan = campaign_plan().to_params()
    return [
        SweepPoint(
            experiment="faults",
            key=f"{scheduler}/{policy}/rate={rate}",
            func="repro.faults.campaigns:fault_point",
            params={
                "scheduler": scheduler,
                "policy": policy,
                "rate": rate,
                "seeds": list(seeds),
                "duration": duration,
                "plan": plan,
            },
        )
        for scheduler in CAMPAIGN_SCHEDULERS
        for policy in policies
        for rate in rates
    ]


def assemble(points: list[SweepPoint], results: dict[str, Any]) -> FaultsResult:
    """Rebuild the campaign table from point results."""
    rows = []
    for point in points:
        data = results[point.key]
        rows.append(
            FaultRow(
                scheduler=point.params["scheduler"],
                policy=point.params["policy"],
                rate=float(point.params["rate"]),
                result=RunResult.from_dict(data["result"]),
                violations=int(data["conservation_violations"]),
            )
        )
    return FaultsResult(rows=tuple(rows))


def golden_quantities(
    points: list[SweepPoint], results: dict[str, Any]
) -> dict[str, float]:
    """The pinned degradation curves.

    Per (scheduler, policy): drop fraction and p99 latency at the most
    overloaded swept rate — the degradation end-point each combination
    must reproduce — plus the campaign-wide conservation-violation
    count, which must stay exactly zero.
    """
    campaign = assemble(points, results)
    top = campaign.top_rate()
    quantities: dict[str, float] = {}
    for row in campaign.rows:
        if row.rate != top:
            continue
        prefix = f"{row.scheduler}/{row.policy}"
        quantities[f"{prefix}/drop_frac"] = row.result.drop_fraction
        quantities[f"{prefix}/p99_ms"] = 1e3 * row.result.latency.p99
    quantities["conservation_violations"] = float(
        campaign.conservation_violations()
    )
    return quantities


SWEEP = SweepSpec(
    name="faults",
    points=sweep_points,
    quantities=golden_quantities,
    assemble=assemble,
    sources=(
        "repro.faults",
        "repro.sim",
        "repro.core",
        "repro.cache",
        "repro.machine",
        "repro.traffic",
        "repro.buffers",
        "repro.obs.runtime",
        "repro.units",
        "repro.errors",
        "repro.experiments.report",
        "repro.harness.points",
    ),
    default_tolerance=Tolerance(rel=0.4, abs=0.02),
    tolerances={
        "conservation_violations": Tolerance(),
    },
)
