"""Fault plans: seed-deterministic compositions of injectors.

A :class:`FaultPlan` bundles an ordered pipeline of traffic
:class:`~repro.faults.injectors.FaultStage` transforms with the
environment faults that thread through the machine model instead of the
arrival stream: periodic cache flushes, clock-rate derating, and
mbuf-pool exhaustion windows.

Determinism contract: every stage gets its own
:class:`numpy.random.Generator` seeded from
``[FAULT_SEED_TAG, crc32(stage.kind), stage_index, run_seed]``.  The
stream a stage sees therefore depends only on (plan shape, run seed) —
never on how many random draws *other* stages made — so inserting or
removing one stage does not silently reshuffle the faults the rest of
the plan injects.

Plans are JSON round-trippable (:meth:`FaultPlan.to_params` /
:meth:`FaultPlan.from_params`), which is what lets a campaign sweep
point carry its whole fault configuration as plain parameters through
the parallel harness and into the result-cache key.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass
from typing import Any

import numpy as np

from ..cache.hierarchy import MachineSpec
from ..errors import ConfigurationError
from ..traffic.base import Arrival
from .injectors import FaultStage, MbufExhaustionWindows, stage_from_params

#: Root of every fault rng stream; distinct from traffic/placement seeds
#: so the same run seed never correlates faults with arrivals.
FAULT_SEED_TAG = 0xFA17


@dataclass(frozen=True)
class FaultPlan:
    """An ordered fault pipeline plus environment-fault settings.

    Attributes
    ----------
    stages:
        Traffic injectors applied in order; each draws from its own
        deterministic rng (see module docstring).
    flush_period_cycles:
        When set, the simulation flushes both caches every that-many
        CPU cycles (interrupt/context-switch pollution); forwarded to
        :class:`~repro.sim.runner.SimulationConfig`.
    clock_derate:
        Clock-speed multiplier in ``(0, 1]``; ``0.5`` halves the CPU
        clock, modelling thermal throttling or a slower host, which
        turns a survivable offered load into overload.
    mbuf_windows:
        Deterministic mbuf-pool exhaustion windows to install on any
        pool exercised by the run (byte-level stacks).
    """

    stages: tuple[FaultStage, ...] = ()
    flush_period_cycles: float | None = None
    clock_derate: float = 1.0
    mbuf_windows: MbufExhaustionWindows | None = None

    def __post_init__(self) -> None:
        if self.flush_period_cycles is not None and self.flush_period_cycles <= 0:
            raise ConfigurationError("cache-flush period must be positive")
        if not 0.0 < self.clock_derate <= 1.0:
            raise ConfigurationError(
                f"clock derate must be in (0, 1]: {self.clock_derate}"
            )

    def stage_rng(self, index: int, seed: int) -> np.random.Generator:
        """The deterministic generator for stage ``index`` under ``seed``."""
        stage = self.stages[index]
        tag = zlib.crc32(stage.kind.encode("ascii"))
        return np.random.default_rng([FAULT_SEED_TAG, tag, index, seed])

    def apply(self, arrivals: list[Arrival], seed: int) -> list[Arrival]:
        """Run an arrival list through every stage, in order."""
        stream = list(arrivals)
        for index in range(len(self.stages)):
            stream = self.stages[index].apply(stream, self.stage_rng(index, seed))
        return stream

    def apply_frames(self, frames: list[bytes], seed: int) -> list[bytes]:
        """Run raw frames through every stage, in order."""
        stream = list(frames)
        for index in range(len(self.stages)):
            stream = self.stages[index].apply_frames(
                stream, self.stage_rng(index, seed)
            )
        return stream

    def derated_spec(self, spec: MachineSpec) -> MachineSpec:
        """``spec`` with the clock derating applied."""
        if self.clock_derate == 1.0:
            return spec
        return spec.with_clock(spec.clock_hz * self.clock_derate)

    def describe(self) -> str:
        """Human-readable multi-part summary."""
        parts = [stage.describe() for stage in self.stages]
        if self.flush_period_cycles is not None:
            parts.append(f"cache-flush(period={self.flush_period_cycles:g})")
        if self.clock_derate != 1.0:
            parts.append(f"clock-derate({self.clock_derate:g})")
        if self.mbuf_windows is not None:
            win = self.mbuf_windows
            parts.append(
                f"mbuf-exhaustion(period={win.period}, width={win.width})"
            )
        return " | ".join(parts) if parts else "no faults"

    def to_params(self) -> dict[str, Any]:
        """JSON-serializable form, inverse of :meth:`from_params`."""
        params: dict[str, Any] = {
            "stages": [stage.to_params() for stage in self.stages],
            "clock_derate": self.clock_derate,
        }
        if self.flush_period_cycles is not None:
            params["flush_period_cycles"] = self.flush_period_cycles
        if self.mbuf_windows is not None:
            win = self.mbuf_windows
            params["mbuf_windows"] = {
                "period": win.period,
                "width": win.width,
                "start": win.start,
            }
        return params

    @classmethod
    def from_params(cls, params: dict[str, Any]) -> "FaultPlan":
        """Rebuild a plan from its :meth:`to_params` dict."""
        if not isinstance(params, dict):
            raise ConfigurationError(
                f"fault plan parameters must be a dict, got {type(params).__name__}"
            )
        known = {"stages", "clock_derate", "flush_period_cycles", "mbuf_windows"}
        unknown = set(params) - known
        if unknown:
            raise ConfigurationError(
                f"unknown fault plan field(s): {', '.join(sorted(unknown))}"
            )
        stages = tuple(
            stage_from_params(stage) for stage in params.get("stages", ())
        )
        windows = params.get("mbuf_windows")
        return cls(
            stages=stages,
            flush_period_cycles=params.get("flush_period_cycles"),
            clock_derate=params.get("clock_derate", 1.0),
            mbuf_windows=(
                MbufExhaustionWindows(**windows) if windows is not None else None
            ),
        )
