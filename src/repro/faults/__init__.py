"""Seed-deterministic fault injection and overload robustness.

Three layers (see ISSUE/ROADMAP's robustness goal):

* **Injectors** (:mod:`repro.faults.injectors`) — composable rng-driven
  stages that corrupt, truncate, reorder, duplicate and delay traffic,
  plus environment faults (mbuf exhaustion windows, periodic cache
  flushes, clock derating).
* **Plans** (:mod:`repro.faults.plan`) — JSON round-trippable
  compositions of stages with a per-stage deterministic rng derived
  from the run seed.
* **Campaigns** (:mod:`repro.faults.campaigns`) — degradation sweeps
  (overload x drop policy x scheduler) through the parallel harness
  with golden-pinned curves; CLI in :mod:`repro.faults.cli`
  (``ldlp-experiment faults ...``).

Drop policies themselves live in :mod:`repro.core.overload` (the
schedulers depend on them; faults merely sweeps them).
"""

from .injectors import (
    STAGE_KINDS,
    CorruptFault,
    DelayFault,
    DuplicateFault,
    FaultStage,
    LossFault,
    MbufExhaustionWindows,
    ReorderFault,
    TruncateFault,
    flip_bytes,
    stage_from_params,
)
from .plan import FAULT_SEED_TAG, FaultPlan

__all__ = [
    "FAULT_SEED_TAG",
    "STAGE_KINDS",
    "CorruptFault",
    "DelayFault",
    "DuplicateFault",
    "FaultPlan",
    "FaultStage",
    "LossFault",
    "MbufExhaustionWindows",
    "ReorderFault",
    "TruncateFault",
    "flip_bytes",
    "stage_from_params",
]
