"""The flow-lookup cache: route/PCB lookup modeled as a small cache.

Every message entering the stack must have its destination resolved —
a routing-table / protocol-control-block walk in a real stack.  Jain's
DEC-TR-592 measured that destinations are so skewed that a tiny cache
in front of those tables absorbs most lookups; this module models
exactly that cache so the simulation can charge a cheap ``hit_cycles``
for cached destinations and an expensive ``miss_cycles`` full table
walk otherwise.

The cache itself reuses the paper-model cache classes
(:mod:`repro.cache.cache`) with ``line_size=1``: a flow id *is* a line
number, so an ``entries``-slot lookup cache is just an ``entries``-byte
cache of 1-byte lines.  The sweepable organizations live in
:data:`FLOW_CACHE_ORGS` — direct-mapped, N-way LRU, and N-way FIFO —
and the HARN003 analysis rule pins that every registered organization
is exercised by the ``flows`` experiment sweep.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict

from ..cache.cache import Cache, DirectMappedCache, SetAssociativeCache
from ..cache.stats import CacheStats
from ..errors import ConfigurationError

#: Registered lookup-cache organizations: name -> builder taking the
#: entry count.  Direct-mapped, and 2-/4-way set-associative under both
#: replacement policies; ``entries`` must be a power of two >= the
#: organization's associativity (the cache constructors validate).
FLOW_CACHE_ORGS: Dict[str, Callable[[int], Cache]] = {
    "direct": lambda entries: DirectMappedCache(entries, line_size=1),
    "lru2": lambda entries: SetAssociativeCache(
        entries, line_size=1, ways=2, policy="lru"
    ),
    "fifo2": lambda entries: SetAssociativeCache(
        entries, line_size=1, ways=2, policy="fifo"
    ),
    "lru4": lambda entries: SetAssociativeCache(
        entries, line_size=1, ways=4, policy="lru"
    ),
    "fifo4": lambda entries: SetAssociativeCache(
        entries, line_size=1, ways=4, policy="fifo"
    ),
}


def make_flow_cache(organization: str, entries: int) -> Cache:
    """Build one registered lookup-cache organization by name."""
    try:
        builder = FLOW_CACHE_ORGS[organization]
    except KeyError:
        raise ConfigurationError(
            f"unknown flow-cache organization {organization!r}; expected "
            f"one of {tuple(sorted(FLOW_CACHE_ORGS))}"
        ) from None
    return builder(entries)


@dataclass(frozen=True)
class FlowCacheSpec:
    """Geometry and cost model of the flow-lookup cache.

    ``hit_cycles`` is the cached-destination fast path (a compare and a
    pointer chase); ``miss_cycles`` is the full routing/PCB table walk
    Jain's study amortizes away.  The defaults keep a miss roughly the
    cost of a layer's fixed overhead share, which is what makes lookup
    locality visible without dominating the Section-4 cost model.
    """

    entries: int = 16
    organization: str = "direct"
    hit_cycles: float = 4.0
    miss_cycles: float = 120.0

    def __post_init__(self) -> None:
        if self.organization not in FLOW_CACHE_ORGS:
            raise ConfigurationError(
                f"unknown flow-cache organization {self.organization!r}; "
                f"expected one of {tuple(sorted(FLOW_CACHE_ORGS))}"
            )
        if self.hit_cycles < 0:
            raise ConfigurationError(
                f"hit_cycles must be non-negative, got {self.hit_cycles}"
            )
        if self.miss_cycles < self.hit_cycles:
            raise ConfigurationError(
                f"miss_cycles ({self.miss_cycles}) must be at least "
                f"hit_cycles ({self.hit_cycles})"
            )
        # Entry-count validity (power of two, >= ways) is delegated to
        # the cache constructor; build one eagerly so a bad spec fails
        # here rather than deep inside a harness worker.
        make_flow_cache(self.organization, self.entries)

    def build(self) -> "FlowLookup":
        """A fresh :class:`FlowLookup` with cold cache and zero stats."""
        return FlowLookup(self)

    def describe(self) -> dict:
        """Static description for analysis and reports."""
        return {
            "entries": self.entries,
            "organization": self.organization,
            "hit_cycles": self.hit_cycles,
            "miss_cycles": self.miss_cycles,
        }


@dataclass
class FlowLookup:
    """Live lookup-cache state plus cycle-cost accounting for one run.

    Attached to a :class:`~repro.core.binding.MachineBinding` as its
    ``flow_lookup``; the scheduler hooks in :mod:`repro.core.scheduler`
    call :meth:`charge_batch` once per service batch, so batched
    schedulers (LDLP, Grouped) pay one lookup per *distinct* flow per
    batch — the layer holds the resolved route while it sweeps the
    batch — while per-message schedulers pay one lookup per message.
    """

    spec: FlowCacheSpec
    cache: Cache = field(init=False)
    #: Lookups actually performed (after batch dedup).
    lookups: int = field(default=0, init=False)
    #: Lookups messages would have performed without batch dedup.
    demand: int = field(default=0, init=False)
    #: Full table walks by messages carrying *no* flow tag at all.
    untagged: int = field(default=0, init=False)

    def __post_init__(self) -> None:
        self.cache = make_flow_cache(self.spec.organization, self.spec.entries)

    @property
    def stats(self) -> CacheStats:
        """Hit/miss/eviction counters of the underlying cache."""
        return self.cache.stats

    def lookup(self, flow: int) -> float:
        """Resolve one flow; returns the cycle cost of doing so."""
        self.lookups += 1
        if self.cache.access_line(flow):
            return self.spec.miss_cycles
        return self.spec.hit_cycles

    def charge_batch(self, binding, flows: list[int | None]) -> float:
        """Charge one service batch's lookups to the bound CPU.

        Looks up the first occurrence of each distinct flow in the
        batch (order-preserving, so the cache sees flows in arrival
        order), executes the summed cost on ``binding.cpu``, and bumps
        the ``flows.*`` obs counters.  Returns the cycles charged.

        A ``None`` entry is a message with *no* flow tag — there is no
        destination to cache, so it can neither be deduplicated against
        other untagged messages nor share a resolved route with tagged
        flow 0.  Each one pays the full ``miss_cycles`` table walk
        without touching the cache (the mixed control/data batches of
        the gossip workload are the motivating case; collapsing them
        onto flow 0 was the dedup-accounting bug this distinction
        fixes).
        """
        from ..obs.runtime import active_recorder

        self.demand += len(flows)
        seen: set[int] = set()
        cycles = 0.0
        misses_before = self.stats.misses
        hits_before = self.stats.hits
        performed = 0
        walked = 0
        for flow in flows:
            if flow is None:
                walked += 1
                cycles += self.spec.miss_cycles
                continue
            if flow in seen:
                continue
            seen.add(flow)
            cycles += self.lookup(flow)
            performed += 1
        self.lookups += walked
        self.untagged += walked
        if cycles:
            binding.cpu.execute(cycles)
        recorder = active_recorder()
        if recorder is not None and (performed or walked):
            recorder.count("flows.lookups", float(performed + walked))
            recorder.count(
                "flows.hits", float(self.stats.hits - hits_before)
            )
            recorder.count(
                "flows.misses", float(self.stats.misses - misses_before)
            )
            if walked:
                recorder.count("flows.untagged", float(walked))
        return cycles

    def describe(self) -> dict:
        """Spec plus live counters, for reports."""
        description = self.spec.describe()
        description.update(
            lookups=self.lookups,
            demand=self.demand,
            untagged=self.untagged,
            hits=self.stats.hits,
            misses=self.stats.misses,
            evictions=self.stats.evictions,
        )
        return description
