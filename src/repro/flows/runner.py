"""Driving the synthetic benchmark with flow-lookup charging attached.

Composes the pieces the rest of the package already provides: a
:class:`~repro.traffic.zipf.ZipfFlowSource` supplies arrivals tagged
with skewed destination flows, :func:`repro.sim.runner.build_scheduler`
builds the Section-4 stack, a :class:`~repro.flows.lookup.FlowLookup`
is attached to the machine binding, and the standard drive loop runs.
The scheduler hooks (:func:`repro.core.scheduler.charge_flow_lookups`)
then charge one route/PCB lookup per distinct flow per service batch —
so under load, LDLP and Grouped batches amortize lookup misses the same
way they amortize instruction misses, while Conventional and ILP pay
per message.

The vectorized engine's static templates do not model lookup charging;
its ``vec_supported`` envelope declines bindings with a flow lookup
attached, so ``engine="vec"`` configs transparently take the scalar
loop and both engine passes produce byte-identical results.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

import numpy as np

from ..core.dispatch import FLOW_KEY
from ..core.layer import Message
from ..errors import ConfigurationError
from ..sim.runner import (
    SimulationConfig,
    assemble_run_result,
    build_scheduler,
    drive,
)
from ..sim.stats import RunResult, merge_results
from ..traffic.base import Arrival, TrafficSource
from ..traffic.onoff import ParetoOnOffSource
from ..traffic.poisson import PoissonSource
from ..traffic.zipf import ZipfFlowSource
from .lookup import FlowCacheSpec


@dataclass(frozen=True)
class FlowRunResult:
    """One flow-charged run: the standard result plus lookup accounting.

    ``lookups`` counts lookups actually performed (after per-batch
    dedup); ``demand`` counts the lookups messages would have performed
    without batching, so ``lookups / demand`` is the batch-amortization
    factor and ``misses / completed`` is the headline
    lookup-misses-per-message the experiment pins.
    """

    run: RunResult
    lookups: int
    demand: int
    hits: int
    misses: int
    evictions: int
    #: Table walks by untagged messages (no FLOW_KEY meta at all);
    #: always zero here — run_flow_simulation tags every message — but
    #: carried so gossip's mixed control/data runs share this type.
    untagged: int = 0

    @property
    def hit_ratio(self) -> float:
        """Fraction of performed lookups served from the cache."""
        if self.lookups == 0:
            return float("nan")
        return self.hits / self.lookups

    @property
    def lookup_misses_per_message(self) -> float:
        """Full table walks per completed message."""
        return self.misses / max(self.run.completed, 1)

    def to_dict(self) -> dict:
        """JSON-serializable form (harness result cache)."""
        return {
            "run": self.run.to_dict(),
            "lookups": self.lookups,
            "demand": self.demand,
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "untagged": self.untagged,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "FlowRunResult":
        """Inverse of :meth:`to_dict`."""
        return cls(
            run=RunResult.from_dict(data["run"]),
            lookups=int(data["lookups"]),
            demand=int(data["demand"]),
            hits=int(data["hits"]),
            misses=int(data["misses"]),
            evictions=int(data["evictions"]),
            # Absent in pre-gossip cached results; they had no way to
            # produce untagged walks.
            untagged=int(data.get("untagged", 0)),
        )


def merge_flow_results(results: list[FlowRunResult]) -> FlowRunResult:
    """Merge per-seed runs: averaged run stats, summed lookup counters."""
    return FlowRunResult(
        run=merge_results([result.run for result in results]),
        lookups=sum(result.lookups for result in results),
        demand=sum(result.demand for result in results),
        hits=sum(result.hits for result in results),
        misses=sum(result.misses for result in results),
        evictions=sum(result.evictions for result in results),
        untagged=sum(result.untagged for result in results),
    )


def run_flow_simulation(
    source: TrafficSource,
    config: SimulationConfig | None = None,
    cache: FlowCacheSpec | None = None,
    seed: int | np.random.Generator | None = 0,
    arrivals: list[Arrival] | None = None,
) -> FlowRunResult:
    """Run one configuration with flow-lookup charging attached.

    Arrivals carrying a ``flow`` attribute
    (:class:`~repro.traffic.zipf.FlowArrival`) are tagged into the
    message meta under :data:`~repro.core.dispatch.FLOW_KEY`; plain
    arrivals all map to flow 0 — one destination, the degenerate case
    where every lookup after the first hits.  ``arrivals`` overrides
    the source's stream (to replay the identical sequence against
    several schedulers or cache organizations).
    """
    config = config or SimulationConfig()
    cache = cache or FlowCacheSpec()
    scheduler = build_scheduler(config, seed)
    binding = scheduler.binding
    assert binding is not None
    binding.flow_lookup = cache.build()

    stream = arrivals if arrivals is not None else source.arrival_list(config.duration)
    timestamped = []
    for a in stream:
        message = Message(size=a.size, arrival_time=a.time)
        message.meta[FLOW_KEY] = int(getattr(a, "flow", 0))
        timestamped.append((a.time, message))
    outcome = drive(
        scheduler,
        timestamped,
        flush_period_cycles=config.flush_period_cycles,
        engine=config.engine,
    )
    run = assemble_run_result(scheduler, outcome, source, stream, config)
    lookup = binding.flow_lookup
    return FlowRunResult(
        run=run,
        lookups=lookup.lookups,
        demand=lookup.demand,
        hits=lookup.stats.hits,
        misses=lookup.stats.misses,
        evictions=lookup.stats.evictions,
        untagged=lookup.untagged,
    )


def make_flow_base(
    base: str, rate: float, message_size: int, seed: int
) -> TrafficSource:
    """Build the base arrival process for one flow-tagged run.

    ``"poisson"`` is the memoryless classic; ``"bellcore"`` is the
    self-similar Pareto ON/OFF aggregate
    (:class:`~repro.traffic.onoff.ParetoOnOffSource`) configured so its
    long-run mean rate equals ``rate`` — the bursty base whose stateful
    RNG is exactly what the ZipfFlowSource snapshot fix protects.
    """
    if base == "poisson":
        return PoissonSource(rate, size=message_size, rng=seed)
    if base == "bellcore":
        num_sources = 16
        source = ParetoOnOffSource(
            num_sources=num_sources,
            packet_rate_on=rate / (num_sources * 0.2),
            size=message_size,
            rng=seed,
        )
        return source
    raise ConfigurationError(
        f"unknown flow base {base!r}; expected 'poisson' or 'bellcore'"
    )


def flows_point(
    scheduler: str,
    organization: str,
    entries: int,
    skew: float,
    rate: float,
    seeds: list[int],
    duration: float,
    num_flows: int = 64,
    policy: str = "tail",
    message_size: int = 552,
    hit_cycles: float = 4.0,
    miss_cycles: float = 120.0,
    engine: str = "vec",
    base: str = "poisson",
) -> dict[str, Any]:
    """One (scheduler, organization, entries, skew) sweep point.

    Module-level and fully determined by its JSON parameters (the
    harness contract: parallel workers resolve it by dotted name, the
    result cache keys it by content hash).  Per seed, a base stream at
    mean ``rate`` — Poisson by default, the Bellcore-style self-similar
    aggregate with ``base="bellcore"`` — is flow-tagged by a
    Zipf(``skew``) draw over ``num_flows`` destinations and driven
    through the flow-charged stack; results merge across seeds.  The
    conservation audit counts seeds where
    ``offered != completed + dropped`` — lookup charging must neither
    create nor lose messages.  ``engine`` is accepted for harness
    engine pinning; flow-charged runs always fall back to the scalar
    loop, so both engines return identical bytes.
    """
    cache = FlowCacheSpec(
        entries=entries,
        organization=organization,
        hit_cycles=hit_cycles,
        miss_cycles=miss_cycles,
    )
    config = SimulationConfig(
        scheduler=scheduler,
        duration=duration,
        drop_policy=policy,
        engine=engine,
    )
    results = []
    violations = 0
    for seed in seeds:
        source = ZipfFlowSource(
            make_flow_base(base, rate, message_size, seed),
            num_flows=num_flows,
            skew=skew,
            seed=seed,
        )
        result = run_flow_simulation(source, config, cache, seed=seed)
        run = result.run
        if run.offered != run.completed + run.dropped:
            violations += 1
        results.append(result)
    merged = merge_flow_results(results)
    return {
        "result": merged.to_dict(),
        "organization": organization,
        "entries": entries,
        "conservation_violations": violations,
    }
