"""Flow/destination-address lookup caching (after Jain, DEC-TR-592).

The data-side twin of the paper's instruction-locality argument:
destination lookups (routing table, PCB list) exhibit the same heavy
temporal locality as layer code, so a small cache in front of those
tables absorbs most lookups — and LDLP-style batching amortizes the
misses that remain, because a batch of same-flow messages resolves its
destination once.

* :mod:`repro.flows.lookup` — the lookup-cache model: sweepable
  organizations (direct-mapped / N-way LRU / N-way FIFO), the cost
  spec, and per-batch charge accounting;
* :mod:`repro.flows.runner` — the Section-4 benchmark with lookup
  charging attached, and the ``flows_point`` harness sweep point.
"""

from .lookup import FLOW_CACHE_ORGS, FlowCacheSpec, FlowLookup, make_flow_cache
from .runner import (
    FlowRunResult,
    flows_point,
    merge_flow_results,
    run_flow_simulation,
)

__all__ = [
    "FLOW_CACHE_ORGS",
    "FlowCacheSpec",
    "FlowLookup",
    "FlowRunResult",
    "flows_point",
    "make_flow_cache",
    "merge_flow_results",
    "run_flow_simulation",
]
