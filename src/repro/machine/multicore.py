"""The multi-core machine: N modeled CPUs behind one shared L2.

The paper's machine (Section 4) is a single 100 MHz CPU with split 8 KB
primary caches.  This module generalizes it to the topology every
modern small-message server runs: ``num_cores`` copies of that CPU,
each with *private* I/D primaries, optionally backed by one *shared*
unified L2 that all cores probe — "ultimately the execution rate is
bounded by the second level cache bandwidth" holds per package, not per
core.  Each core keeps its own cycle clock and miss statistics, so
per-core miss attribution (``repro.obs``) falls out of the same
counters the single-core model already exposes.

Which core a message lands on is decided *above* this module by a
:class:`repro.core.dispatch.DispatchPolicy`; the machine model only
provides the cores and their shared memory-side state.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Any

from ..cache.cache import DirectMappedCache
from ..cache.hierarchy import CacheGeometry, MachineSpec
from ..errors import ConfigurationError
from .cpu import CPU


@dataclass(frozen=True)
class MultiCoreSpec:
    """Static description of an N-core machine.

    Attributes
    ----------
    num_cores:
        Core count; 1 reproduces the paper's single-CPU model exactly.
    core:
        The per-core machine description (clock, private I/D caches,
        miss penalty) — each core gets an identical private copy.
    shared_l2:
        Geometry of one unified second-level cache shared by every
        core, or ``None`` for the paper's flat model (every primary
        miss costs ``core.miss_penalty``).  When set, a primary miss
        that hits the shared L2 stalls ``core.miss_penalty`` cycles and
        a miss in both levels ``core.memory_penalty`` cycles.
    """

    num_cores: int = 4
    core: MachineSpec = field(default_factory=MachineSpec)
    shared_l2: CacheGeometry | None = None

    def __post_init__(self) -> None:
        if self.num_cores < 1:
            raise ConfigurationError(
                f"core count must be >= 1, got {self.num_cores}"
            )
        if self.core.l2 is not None:
            raise ConfigurationError(
                "per-core L2 and MultiCoreSpec cannot be combined; model "
                "the second level via shared_l2"
            )
        if self.shared_l2 is not None:
            for primary in (self.core.icache, self.core.dcache):
                if self.shared_l2.line_size != primary.line_size:
                    raise ConfigurationError(
                        "shared L2 line size must match the primary caches"
                    )
                if self.shared_l2.size < primary.size:
                    raise ConfigurationError(
                        "shared L2 must be at least as large as each "
                        "primary cache"
                    )

    def core_spec(self) -> MachineSpec:
        """The effective per-core :class:`MachineSpec`.

        With a shared L2 configured, each core's spec carries the L2
        geometry so its hierarchy charges the two-level penalties; the
        actual cache *state* is then replaced by the one shared
        instance (:class:`MultiCoreMachine` does the rewiring).
        """
        if self.shared_l2 is None:
            return self.core
        return replace(self.core, l2=self.shared_l2)

    def describe(self) -> dict[str, Any]:
        """Static description for offline analysis and reports."""
        return {
            "num_cores": self.num_cores,
            "clock_hz": self.core.clock_hz,
            "icache": self.core.icache.describe(),
            "dcache": self.core.dcache.describe(),
            "miss_penalty": self.core.miss_penalty,
            "shared_l2": (
                self.shared_l2.describe() if self.shared_l2 is not None else None
            ),
        }


class MultiCoreMachine:
    """Live state of an N-core machine: per-core CPUs, one shared L2.

    Each :class:`~repro.machine.cpu.CPU` owns private I/D cache state
    and its own cycle clock; when the spec configures a shared L2, all
    per-core hierarchies are rewired to probe the *same*
    :class:`~repro.cache.cache.DirectMappedCache` instance, so one
    core's refills evict another's L2 lines — shared-level contention
    is modeled for free.
    """

    def __init__(self, spec: MultiCoreSpec | None = None) -> None:
        self.spec = spec or MultiCoreSpec()
        core_spec = self.spec.core_spec()
        self.cpus = [CPU(core_spec) for _ in range(self.spec.num_cores)]
        self.shared_l2: DirectMappedCache | None = None
        if self.spec.shared_l2 is not None:
            self.shared_l2 = self.spec.shared_l2.build()
            for cpu in self.cpus:
                cpu.hierarchy.l2 = self.shared_l2

    @property
    def num_cores(self) -> int:
        """Number of modeled cores."""
        return len(self.cpus)

    def core(self, index: int) -> CPU:
        """The CPU of one core, by index."""
        return self.cpus[index]

    def reset(self) -> None:
        """Zero every core's time and statistics; flush all caches."""
        for cpu in self.cpus:
            cpu.reset()
        if self.shared_l2 is not None:
            self.shared_l2.flush()
            self.shared_l2.stats.reset()

    # ------------------------------------------------------------------
    # Aggregate statistics

    @property
    def icache_misses(self) -> int:
        """Instruction-cache misses summed over every core."""
        return sum(cpu.icache_misses for cpu in self.cpus)

    @property
    def dcache_misses(self) -> int:
        """Data-cache misses summed over every core."""
        return sum(cpu.dcache_misses for cpu in self.cpus)

    def per_core_counters(self) -> list[dict[str, float]]:
        """Per-core miss/cycle attribution, one dict per core.

        The names match :func:`repro.obs.runtime.machine_counters`, so
        obs sinks and the multi-core experiment report attribute misses
        to cores with the same vocabulary as single-core spans.
        """
        return [
            {
                "cycles": float(cpu.cycles),
                "stall_cycles": float(cpu.stall_cycles),
                "icache_misses": float(cpu.icache_misses),
                "dcache_misses": float(cpu.dcache_misses),
            }
            for cpu in self.cpus
        ]

    def describe(self) -> dict[str, Any]:
        """Static machine description (delegates to the spec)."""
        return self.spec.describe()
