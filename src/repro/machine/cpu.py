"""The simulated CPU: cycle accounting over a split-cache hierarchy.

The machine model is the paper's (Section 4): every executed instruction
costs one cycle, every primary-cache *read* miss (instruction fetch or
data load) stalls the CPU for a fixed penalty, and writes are absorbed
by a write buffer.  The CPU tracks total cycles so the event simulation
can convert work into simulated time.
"""

from __future__ import annotations

import numpy as np

from ..cache.hierarchy import MachineSpec, SplitCacheHierarchy
from ..units import Clock


class CPU:
    """A cycle-accurate (at the model's granularity) processor.

    Attributes
    ----------
    spec:
        The static machine description.
    hierarchy:
        The live split I/D cache state.
    cycles:
        Total cycles elapsed (execution + stalls).
    stall_cycles:
        Cycles spent stalled on cache misses (subset of ``cycles``).
    """

    def __init__(self, spec: MachineSpec | None = None) -> None:
        self.spec = spec or MachineSpec()
        self.hierarchy = SplitCacheHierarchy(self.spec)
        self.clock = Clock(self.spec.clock_hz)
        self.cycles = 0.0
        self.stall_cycles = 0.0

    # ------------------------------------------------------------------
    # Work charging

    def execute(self, cycles: float) -> None:
        """Charge pure execution cycles (no memory-system interaction)."""
        self.cycles += cycles

    def fetch_code_span(self, addr: int, size: int) -> int:
        """Fetch a contiguous code span; returns misses, charges stalls."""
        missed = self.hierarchy.icache.access_span_report(addr, size)  # type: ignore[attr-defined]
        self._stall_for(missed, instruction=True)
        return int(missed.size)

    def fetch_code_lines(self, lines: np.ndarray) -> int:
        """Fetch code by (distinct) absolute line numbers; vectorized."""
        missed = self.hierarchy.icache.access_line_array_report(lines)  # type: ignore[attr-defined]
        self._stall_for(missed, instruction=True)
        return int(missed.size)

    def read_data_span(self, addr: int, size: int) -> int:
        """Read a byte span; returns missed lines (stalls charged)."""
        missed = self.hierarchy.dcache.access_span_report(addr, size)  # type: ignore[attr-defined]
        self._stall_for(missed)
        return int(missed.size)

    def read_data_lines(self, lines: np.ndarray) -> int:
        """Read whole lines; returns missed lines (stalls charged)."""
        missed = self.hierarchy.dcache.access_line_array_report(lines)  # type: ignore[attr-defined]
        self._stall_for(missed)
        return int(missed.size)

    def write_data_span(self, addr: int, size: int) -> int:
        """Write data: allocates in the caches but never stalls."""
        missed = self.hierarchy.dcache.access_span_report(addr, size)  # type: ignore[attr-defined]
        if self.hierarchy.l2 is not None and missed.size:
            self.hierarchy._probe_l2(missed)
        return int(missed.size)

    def _stall_for(self, missed_lines: np.ndarray, instruction: bool = False) -> None:
        penalty = self.hierarchy.stall_for_missed(missed_lines, instruction)
        self.cycles += penalty
        self.stall_cycles += penalty

    # ------------------------------------------------------------------
    # Time and bookkeeping

    @property
    def time_seconds(self) -> float:
        """Simulated wall-clock time elapsed."""
        return self.clock.cycles_to_seconds(self.cycles)

    def advance_to_cycle(self, cycle: float) -> None:
        """Idle the CPU forward to an absolute cycle count (if ahead)."""
        if cycle > self.cycles:
            self.cycles = cycle

    def cold_start(self) -> None:
        """Flush both caches (statistics preserved)."""
        self.hierarchy.flush()

    def reset(self) -> None:
        """Zero time and statistics and flush caches."""
        self.cycles = 0.0
        self.stall_cycles = 0.0
        self.hierarchy.flush()
        self.hierarchy.reset_stats()

    @property
    def icache_misses(self) -> int:
        """Cumulative instruction-cache misses since the last reset."""
        return self.hierarchy.icache.stats.misses

    @property
    def dcache_misses(self) -> int:
        """Cumulative data-cache misses since the last reset."""
        return self.hierarchy.dcache.stats.misses
