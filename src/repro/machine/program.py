"""Code and data regions — the static shape of a program in memory.

The synthetic benchmark of Section 4 models each protocol layer as a
contiguous code region (6 KB) plus a small data region (256 bytes); the
NetBSD model of Section 2 models every kernel function as a code region
with its published size.  Regions start unplaced; a
:class:`~repro.machine.layout.MemoryLayout` assigns base addresses.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

import numpy as np

from ..errors import LayoutError


class RegionKind(enum.Enum):
    """Whether a region holds code (I-cache) or data (D-cache)."""

    CODE = "code"
    DATA = "data"


@dataclass
class Region:
    """A named contiguous span of memory, placed at most once.

    Attributes
    ----------
    name:
        Human-readable identifier (function or layer name).
    size:
        Extent in bytes; must be positive.
    kind:
        Code or data; determines which cache it occupies.
    base:
        Base byte address once placed, else ``None``.
    """

    name: str
    size: int
    kind: RegionKind = RegionKind.CODE
    base: int | None = field(default=None)

    def __post_init__(self) -> None:
        if self.size <= 0:
            raise LayoutError(f"region {self.name!r} must have positive size")

    @property
    def placed(self) -> bool:
        """True once the layout has assigned a base address."""
        return self.base is not None

    def require_base(self) -> int:
        """Return the base address, raising if the region is unplaced."""
        if self.base is None:
            raise LayoutError(f"region {self.name!r} has not been placed")
        return self.base

    @property
    def end(self) -> int:
        """One past the last byte of the region."""
        return self.require_base() + self.size

    def contains(self, addr: int) -> bool:
        """True when ``addr`` falls inside this placed region."""
        base = self.require_base()
        return base <= addr < base + self.size

    def line_numbers(self, line_size: int) -> np.ndarray:
        """Absolute line numbers covered by the region (int64 array)."""
        base = self.require_base()
        first = base // line_size
        last = (base + self.size - 1) // line_size
        return np.arange(first, last + 1, dtype=np.int64)

    def cache_set_indices(self, line_size: int, num_sets: int) -> np.ndarray:
        """Distinct cache set indices this region's lines map to.

        For a direct-mapped cache of ``num_sets`` lines this is exactly
        the footprint the region competes for; two placed regions alias
        iff their index sets intersect.
        """
        if num_sets <= 0:
            raise LayoutError(f"num_sets must be positive, got {num_sets}")
        return np.unique(self.line_numbers(line_size) % num_sets)


@dataclass
class Program:
    """A collection of regions making up one simulated program."""

    regions: list[Region] = field(default_factory=list)

    def add(self, region: Region) -> Region:
        """Register a region; names must be unique within the program."""
        if any(existing.name == region.name for existing in self.regions):
            raise LayoutError(f"duplicate region name {region.name!r}")
        self.regions.append(region)
        return region

    def add_code(self, name: str, size: int) -> Region:
        """Shorthand: add a code region."""
        return self.add(Region(name, size, RegionKind.CODE))

    def add_data(self, name: str, size: int) -> Region:
        """Shorthand: add a data region."""
        return self.add(Region(name, size, RegionKind.DATA))

    def region(self, name: str) -> Region:
        """Look a region up by name, raising when absent."""
        for region in self.regions:
            if region.name == name:
                return region
        raise LayoutError(f"no region named {name!r}")

    def code_regions(self) -> list[Region]:
        """All code regions, in insertion order."""
        return [region for region in self.regions if region.kind is RegionKind.CODE]

    def data_regions(self) -> list[Region]:
        """All data regions, in insertion order."""
        return [region for region in self.regions if region.kind is RegionKind.DATA]

    def total_size(self, kind: RegionKind | None = None) -> int:
        """Total bytes across regions, optionally of one kind."""
        return sum(
            region.size
            for region in self.regions
            if kind is None or region.kind is kind
        )

    def function_of_addr(self, addr: int) -> str | None:
        """Name of the region containing ``addr`` (placed regions only)."""
        for region in self.regions:
            if region.placed and region.contains(addr):
                return region.name
        return None

    def describe_footprint(self, line_size: int = 32) -> dict[str, int]:
        """Static footprint summary for offline analysis.

        Line counts are per-region sums (region-internal lines never
        collide, but two regions may share a line only if adjacent and
        unaligned — the layout code line-aligns, so sums are exact).
        """

        def lines(regions: list[Region]) -> int:
            return sum(
                -(-region.size // line_size) for region in regions
            )

        return {
            "regions": len(self.regions),
            "code_bytes": self.total_size(RegionKind.CODE),
            "data_bytes": self.total_size(RegionKind.DATA),
            "code_lines": lines(self.code_regions()),
            "data_lines": lines(self.data_regions()),
        }
