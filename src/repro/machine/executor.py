"""Executing annotated layer work against the simulated machine.

The synthetic benchmark of Section 4 does not interpret instructions; it
models each layer invocation as (a) touching every line of the layer's
code working set, (b) touching the layer's private data, (c) a loop over
the message contents, and (d) a fixed amount of instruction execution.
:class:`FootprintExecutor` charges exactly that against a :class:`CPU`.

The numbers in :class:`ExecutionProfile`'s defaults are the paper's:
6 KB of code and 256 bytes of data per layer; 1652 cycles of instruction
processing per layer for a 552-byte message, of which 0.5 cycles/byte is
the data loop (hence 1376 base cycles + 0.5 × 552 = 1652).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import ConfigurationError, LayoutError
from ..obs.runtime import active_recorder, machine_counters
from .cpu import CPU
from .layout import MemoryLayout
from .program import Region, RegionKind


@dataclass(frozen=True)
class ExecutionProfile:
    """Memory/compute footprint of one protocol layer per message.

    Attributes
    ----------
    code_bytes:
        Size of the code working set touched for every message.
    data_bytes:
        Size of the layer's private data working set.
    base_cycles:
        Instruction-execution cycles per message, excluding the data loop.
    per_byte_cycles:
        Data-loop cost per message byte ("a 40-instruction loop over the
        data with a cost of 0.5 cycles/byte").
    """

    code_bytes: int = 6144
    data_bytes: int = 256
    base_cycles: float = 1376.0
    per_byte_cycles: float = 0.5

    def __post_init__(self) -> None:
        if self.code_bytes <= 0:
            raise ConfigurationError("code_bytes must be positive")
        if self.data_bytes < 0:
            raise ConfigurationError("data_bytes must be non-negative")
        if self.base_cycles < 0 or self.per_byte_cycles < 0:
            raise ConfigurationError("cycle costs must be non-negative")

    def compute_cycles(self, message_bytes: int) -> float:
        """Pure execution cycles for one message of the given size."""
        return self.base_cycles + self.per_byte_cycles * message_bytes


class PlacedLayer:
    """An :class:`ExecutionProfile` bound to placed code/data regions.

    Precomputes the absolute line-number arrays so the hot loop is a
    handful of vectorized cache probes.
    """

    def __init__(
        self,
        name: str,
        profile: ExecutionProfile,
        layout: MemoryLayout,
        random_placement: bool = True,
    ) -> None:
        self.name = name
        self.profile = profile
        self.code_region = Region(f"{name}.code", profile.code_bytes, RegionKind.CODE)
        place = layout.place_random if random_placement else layout.place_sequential
        place(self.code_region)
        self.code_lines = self.code_region.line_numbers(layout.line_size)
        if profile.data_bytes > 0:
            self.data_region = Region(
                f"{name}.data", profile.data_bytes, RegionKind.DATA
            )
            place(self.data_region)
            self.data_lines = self.data_region.line_numbers(layout.line_size)
        else:
            self.data_region = None
            self.data_lines = np.empty(0, dtype=np.int64)


class MessageBuffer:
    """A placed message buffer: where one message's bytes live in memory."""

    def __init__(self, region: Region, line_size: int, index: int = 0) -> None:
        self.region = region
        self.line_size = line_size
        #: Stable position of this buffer in its pool's ring (0 for a
        #: free-standing buffer).  The vectorized engine keys its cached
        #: batch templates on ring slots rather than object identity.
        self.index = index
        self._all_lines = region.line_numbers(line_size)

    @property
    def base(self) -> int:
        """Base byte address of the placed buffer."""
        return self.region.require_base()

    @property
    def capacity(self) -> int:
        """Buffer size in bytes (the largest message it can hold)."""
        return self.region.size

    def lines_for(self, size: int) -> np.ndarray:
        """Line numbers covering the first ``size`` bytes of the buffer."""
        if size > self.capacity:
            raise LayoutError(
                f"message of {size} B exceeds buffer capacity {self.capacity} B"
            )
        if size <= 0:
            return self._all_lines[:0]
        count = (self.base + size - 1) // self.line_size - self.base // self.line_size
        return self._all_lines[: count + 1]


class BufferPool:
    """A ring of pre-placed message buffers (the adaptor's receive ring).

    Real drivers recycle a fixed set of receive buffers; reusing a small
    ring concentrates message data in a bounded memory footprint, which
    is what makes batched (LDLP) data accesses cache-friendly.
    """

    def __init__(
        self,
        layout: MemoryLayout,
        count: int,
        buffer_size: int,
        random_placement: bool = True,
    ) -> None:
        if count <= 0:
            raise ConfigurationError("buffer pool needs at least one buffer")
        self.buffers: list[MessageBuffer] = []
        place = layout.place_random if random_placement else layout.place_sequential
        for index in range(count):
            region = Region(f"msgbuf[{index}]", buffer_size, RegionKind.DATA)
            place(region)
            self.buffers.append(MessageBuffer(region, layout.line_size, index))
        self._next = 0

    def __len__(self) -> int:
        return len(self.buffers)

    def acquire(self) -> MessageBuffer:
        """Hand out the next buffer in ring order."""
        buffer = self.buffers[self._next]
        self._next = (self._next + 1) % len(self.buffers)
        return buffer


class FootprintExecutor:
    """Charges layer invocations against a :class:`CPU`.

    One invocation = fetch the layer's full code working set, read its
    private data, read the message contents, and execute the layer's
    instruction cycles.  Returns the cycle cost of the invocation.
    """

    #: Instructions for one enqueue+dequeue pair at a layer boundary
    #: ("on the order of 40 instructions", Section 3.2).
    QUEUE_INSTRUCTIONS = 40

    def __init__(self, cpu: CPU) -> None:
        self.cpu = cpu

    def run_layer(
        self,
        layer: PlacedLayer,
        message: MessageBuffer,
        message_bytes: int,
        queue_overhead: bool = False,
    ) -> float:
        """Process one message at one layer; return cycles consumed.

        Recorded as a span on the layer's track (CPU-cycle clock) when
        a :mod:`repro.obs` recorder is installed.
        """
        recorder = active_recorder()
        handle = (
            recorder.begin(
                layer.name,
                "run_layer",
                self.cpu.cycles,
                machine_counters(self.cpu),
                message_bytes=message_bytes,
            )
            if recorder is not None
            else None
        )
        start = self.cpu.cycles
        self.cpu.fetch_code_lines(layer.code_lines)
        if layer.data_lines.size:
            self.cpu.read_data_lines(layer.data_lines)
        msg_lines = message.lines_for(message_bytes)
        if msg_lines.size:
            self.cpu.read_data_lines(msg_lines)
        self.cpu.execute(layer.profile.compute_cycles(message_bytes))
        if queue_overhead:
            self.cpu.execute(self.QUEUE_INSTRUCTIONS)
        if recorder is not None and handle is not None:
            recorder.end(handle, self.cpu.cycles)
        return self.cpu.cycles - start
