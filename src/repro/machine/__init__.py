"""The simulated machine: regions, layout, CPU cost model, executor,
and the N-core topology (:mod:`repro.machine.multicore`)."""

from .cpu import CPU
from .executor import (
    BufferPool,
    ExecutionProfile,
    FootprintExecutor,
    MessageBuffer,
    PlacedLayer,
)
from .layout import DEFAULT_SPAN, MemoryLayout
from .multicore import MultiCoreMachine, MultiCoreSpec
from .program import Program, Region, RegionKind

__all__ = [
    "BufferPool",
    "CPU",
    "DEFAULT_SPAN",
    "ExecutionProfile",
    "FootprintExecutor",
    "MemoryLayout",
    "MessageBuffer",
    "MultiCoreMachine",
    "MultiCoreSpec",
    "PlacedLayer",
    "Program",
    "Region",
    "RegionKind",
]
