"""The simulated machine: regions, layout, CPU cost model, executor."""

from .cpu import CPU
from .executor import (
    BufferPool,
    ExecutionProfile,
    FootprintExecutor,
    MessageBuffer,
    PlacedLayer,
)
from .layout import DEFAULT_SPAN, MemoryLayout
from .program import Program, Region, RegionKind

__all__ = [
    "BufferPool",
    "CPU",
    "DEFAULT_SPAN",
    "ExecutionProfile",
    "FootprintExecutor",
    "MemoryLayout",
    "MessageBuffer",
    "PlacedLayer",
    "Program",
    "Region",
    "RegionKind",
]
