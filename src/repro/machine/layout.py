"""Memory layout: assigning base addresses to regions.

Because the paper's primary caches are direct-mapped, the number of
conflict misses depends on where the linker happened to place each
function.  Section 4 therefore averages results over "100 runs, each
with a different random placement in memory".  :class:`MemoryLayout`
reproduces both strategies:

* :meth:`place_sequential` — packed placement, as a simple linker would
  produce (no self-conflicts within one region, adjacent regions abut);
* :meth:`place_random` — uniformly random line-aligned placement in a
  large address window, non-overlapping.
"""

from __future__ import annotations

import numpy as np

from ..errors import LayoutError
from .program import Region

#: Default address window: 64 MiB, far larger than any cache so random
#: placements exercise all cache indices uniformly.
DEFAULT_SPAN = 64 * 1024 * 1024

#: Seed used when no ``rng`` is supplied.  A *fixed* seed, never OS
#: entropy: an entropy-seeded fallback silently breaks the harness's
#: byte-identical-at-any---jobs contract the first time a caller forgets
#: to thread a seed through (rule DET001).
DEFAULT_SEED = 0


class MemoryLayout:
    """Allocates non-overlapping, line-aligned base addresses.

    Parameters
    ----------
    line_size:
        Alignment unit; regions always start on a line boundary (real
        linkers align functions at least this much).
    base:
        First address available for placement.
    span:
        Size of the address window used for random placement.
    rng:
        RNG driving random placement: a numpy generator or an integer
        seed (coerced to a seeded generator).  The generator is owned by
        this instance — placement never touches module-level RNG state,
        so harness workers constructing layouts concurrently can never
        share or interleave random streams.  When omitted, the layout
        uses :data:`DEFAULT_SEED` — deterministically, never OS entropy —
        so ``MemoryLayout()`` places identically on every run.
    """

    def __init__(
        self,
        line_size: int = 32,
        base: int = 0,
        span: int = DEFAULT_SPAN,
        rng: np.random.Generator | int | None = None,
    ) -> None:
        if line_size <= 0:
            raise LayoutError(f"line size must be positive, got {line_size}")
        if span <= 0:
            raise LayoutError(f"span must be positive, got {span}")
        self.line_size = line_size
        self.base = base
        self.span = span
        if rng is None:
            rng = DEFAULT_SEED
        if isinstance(rng, (int, np.integer)):
            rng = np.random.default_rng(int(rng))
        self.rng = rng
        self._next_free = base
        self._intervals: list[tuple[int, int]] = []  # sorted (start, end)

    def _round_up(self, addr: int) -> int:
        return -(-addr // self.line_size) * self.line_size

    @property
    def reserved_bytes(self) -> int:
        """Total bytes already reserved by placed regions."""
        return sum(end - start for start, end in self._intervals)

    @property
    def free_bytes(self) -> int:
        """Bytes of the window not yet reserved (ignores fragmentation)."""
        return self.span - self.reserved_bytes

    def placed_intervals(self) -> list[tuple[int, int]]:
        """Sorted (start, end) spans of every placed region (read-only)."""
        return list(self._intervals)

    def _overlaps(self, start: int, end: int) -> bool:
        for existing_start, existing_end in self._intervals:
            if start < existing_end and existing_start < end:
                return True
        return False

    def _reserve(self, start: int, end: int) -> None:
        self._intervals.append((start, end))
        self._intervals.sort()

    def place_sequential(self, region: Region) -> Region:
        """Place ``region`` at the lowest line-aligned free address."""
        if region.placed:
            raise LayoutError(f"region {region.name!r} is already placed")
        start = self._round_up(self._next_free)
        while self._overlaps(start, start + region.size):
            start = self._round_up(start + region.size)
        region.base = start
        self._reserve(start, start + region.size)
        self._next_free = start + region.size
        return region

    def place_random(self, region: Region, max_attempts: int = 1000) -> Region:
        """Place ``region`` at a random line-aligned address in the window."""
        if region.placed:
            raise LayoutError(f"region {region.name!r} is already placed")
        if region.size > self.span:
            raise LayoutError(
                f"region {region.name!r} ({region.size} B) exceeds the "
                f"{self.span} B placement window"
            )
        if region.size > self.free_bytes:
            raise LayoutError(
                f"region {region.name!r} ({region.size} B) cannot fit: only "
                f"{self.free_bytes} B of the {self.span} B window remain free"
            )
        max_line = (self.base + self.span - region.size) // self.line_size
        min_line = -(-self.base // self.line_size)
        for _ in range(max_attempts):
            start = int(self.rng.integers(min_line, max_line + 1)) * self.line_size
            if not self._overlaps(start, start + region.size):
                region.base = start
                self._reserve(start, start + region.size)
                return region
        raise LayoutError(
            f"could not place region {region.name!r} after {max_attempts} attempts; "
            f"the placement window is too full"
        )

    def place_all_sequential(self, regions: list[Region]) -> None:
        """Place every region back to back, in order."""
        for region in regions:
            self.place_sequential(region)

    def place_all_random(self, regions: list[Region]) -> None:
        """Place every region at an independent random base."""
        for region in regions:
            self.place_random(region)
