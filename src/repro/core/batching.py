"""Batch-size policy: how many messages fit in the data cache.

Section 3.2: "For many signalling protocols, just one layer will fit in
the instruction cache, while several messages fit in the data cache.
For this special case, implementation is especially simple.  Messages
are processed in batches consisting of as many available messages as
will fit in the data cache."

The default policy therefore caps batches at
``(data cache size - layer data reserve) / typical message size``; with
the paper's parameters (8 KB cache, 256 B layer data, 552 B messages)
this gives 14 — which is why Figure 5's LDLP curve "flattens out beyond
8500 msgs/sec... because the level of batching becomes limited by the
maximum batch size".
"""

from __future__ import annotations

from dataclasses import dataclass

from ..cache.hierarchy import MachineSpec
from ..errors import ConfigurationError


@dataclass(frozen=True)
class BatchPolicy:
    """An upper bound on LDLP batch size.

    Attributes
    ----------
    max_batch:
        Hard cap on messages per batch; at least 1.
    """

    max_batch: int

    def __post_init__(self) -> None:
        if self.max_batch < 1:
            raise ConfigurationError(
                f"batch limit must be at least 1, got {self.max_batch}"
            )

    @classmethod
    def from_cache(
        cls,
        dcache_bytes: int,
        typical_message_bytes: int = 552,
        layer_data_reserve: int = 256,
    ) -> "BatchPolicy":
        """Derive the cap from data-cache geometry.

        >>> BatchPolicy.from_cache(8192).max_batch
        14
        """
        if typical_message_bytes <= 0:
            raise ConfigurationError("typical message size must be positive")
        if layer_data_reserve < 0:
            raise ConfigurationError("layer data reserve must be non-negative")
        usable = dcache_bytes - layer_data_reserve
        return cls(max_batch=max(1, usable // typical_message_bytes))

    @classmethod
    def from_machine(
        cls,
        spec: MachineSpec,
        typical_message_bytes: int = 552,
        layer_data_reserve: int = 256,
    ) -> "BatchPolicy":
        """Derive the cap from a machine spec's data cache."""
        return cls.from_cache(
            spec.dcache.size, typical_message_bytes, layer_data_reserve
        )

    @classmethod
    def unlimited(cls) -> "BatchPolicy":
        """No practical cap (ablation: what if batching were unbounded?)."""
        return cls(max_batch=1_000_000)
