"""Layer-processing schedulers: Conventional, ILP, and LDLP.

This module is the paper's contribution.  All three schedulers produce
*identical functional results* — the same messages reach the top of the
stack — and differ only in the order they interleave (layer, message)
invocations, which is what determines cache behaviour (Figures 2 and 3):

* :class:`ConventionalScheduler` — one message at a time through every
  layer ("outer loop has poor locality");
* :class:`ILPScheduler` — same order, but the per-layer data loops are
  integrated so message bytes are swept once per message;
* :class:`LDLPScheduler` — locality-driven layer processing: take *all
  currently available* messages (up to the batch cap) and run each layer
  over the whole batch before moving up.  "Under light load, messages
  will usually be processed singly, minimizing delay.  Under heavy load,
  messages will be processed in batches, maximizing throughput."
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from collections import deque
from dataclasses import dataclass
from typing import Any

from ..errors import GroupingError, SchedulerError
from ..obs.runtime import active_recorder
from .batching import BatchPolicy
from .binding import MachineBinding
from .dispatch import FLOW_KEY
from .layer import Layer, Message
from .overload import DropPolicy, TailDrop


def charge_flow_lookups(scheduler: "Scheduler", batch: list[Message]) -> None:
    """Charge destination (route/PCB) lookups for one service batch.

    No-op unless the scheduler's binding carries a
    :class:`repro.flows.FlowLookup`.  The batch granularity is the
    amortization model: per-message schedulers call this with
    single-message batches and pay one lookup each, while batched
    schedulers (LDLP, Grouped) call it once per
    :func:`take_batch` and pay one lookup per *distinct* flow — the
    layer holds the resolved destination state while sweeping the
    batch, exactly as it holds layer code resident.

    Messages with no :data:`~repro.core.dispatch.FLOW_KEY` tag are
    passed through as ``None`` rather than coerced to flow 0: an
    untagged message (gossip control traffic) has no cacheable
    destination, so it must not deduplicate against other untagged
    messages or against a genuinely tagged flow 0.
    :meth:`~repro.flows.lookup.FlowLookup.charge_batch` charges each
    one a full table walk.
    """
    binding = scheduler.binding
    if binding is None or not batch:
        return
    lookup = binding.flow_lookup
    if lookup is None:
        return
    lookup.charge_batch(
        binding, [message.meta.get(FLOW_KEY) for message in batch]
    )


@dataclass(frozen=True)
class GroupPartitionDiagnosis:
    """Why a grouping is (or is not) an ordered partition of the stack.

    Produced by :func:`diagnose_groups`; consumed both by
    :class:`GroupedLDLPScheduler` (to raise a precise
    :class:`~repro.errors.GroupingError`) and by the static analyzer
    (:mod:`repro.analysis.schedcheck`), so the runtime check and the
    lint agree by construction.
    """

    num_layers: int
    #: Layer indices claimed by more than one group position.
    overlapping: tuple[int, ...] = ()
    #: Layer indices in ``0..num_layers-1`` no group covers.
    missing: tuple[int, ...] = ()
    #: Indices outside ``0..num_layers-1``.
    out_of_range: tuple[int, ...] = ()
    #: Indices that break ascending order in the flattened grouping
    #: (a completion-ordering hazard: messages would finish out of
    #: arrival order or be routed backwards through the stack).
    misordered: tuple[int, ...] = ()
    #: Positions of empty groups (a queue no message could ever leave).
    empty_groups: tuple[int, ...] = ()

    @property
    def ok(self) -> bool:
        """True when the grouping passed every structural check."""
        return not (
            self.overlapping
            or self.missing
            or self.out_of_range
            or self.misordered
            or self.empty_groups
        )

    def describe(self) -> str:
        """Human-readable summary of every violation."""
        problems: list[str] = []
        if self.out_of_range:
            problems.append(f"indices {list(self.out_of_range)} are out of range")
        if self.overlapping:
            problems.append(
                f"layer indices {list(self.overlapping)} appear in more than "
                f"one group"
            )
        if self.missing:
            problems.append(
                f"layer indices {list(self.missing)} are not covered by any "
                f"group (unreachable layers)"
            )
        if self.misordered:
            problems.append(
                f"layer indices {list(self.misordered)} are out of ascending "
                f"order (completion-ordering hazard)"
            )
        if self.empty_groups:
            problems.append(f"groups at positions {list(self.empty_groups)} are empty")
        return "; ".join(problems) if problems else "groups form an ordered partition"


def diagnose_groups(
    num_layers: int, groups: list[list[int]]
) -> GroupPartitionDiagnosis:
    """Check that ``groups`` partitions ``0..num_layers-1`` in order."""
    flattened = [index for group in groups for index in group]
    seen: set[int] = set()
    overlapping: list[int] = []
    out_of_range: list[int] = []
    for index in flattened:
        if not 0 <= index < num_layers:
            if index not in out_of_range:
                out_of_range.append(index)
        elif index in seen and index not in overlapping:
            overlapping.append(index)
        seen.add(index)
    missing = [index for index in range(num_layers) if index not in seen]
    in_range = [index for index in flattened if 0 <= index < num_layers]
    misordered = [
        current
        for previous, current in zip(in_range, in_range[1:])
        if current <= previous and current not in overlapping
    ]
    empty_groups = [pos for pos, group in enumerate(groups) if not group]
    return GroupPartitionDiagnosis(
        num_layers=num_layers,
        overlapping=tuple(overlapping),
        missing=tuple(missing),
        out_of_range=tuple(out_of_range),
        misordered=tuple(dict.fromkeys(misordered)),
        empty_groups=tuple(empty_groups),
    )


@dataclass(frozen=True)
class Completion:
    """A message that finished processing.

    ``delivered`` is True when the message was consumed by the top
    layer, False when an intermediate layer consumed (dropped) it.
    """

    message: Message
    completion_cycle: float
    delivered: bool


class Scheduler(ABC):
    """Common machinery: the input queue, drop accounting, charging.

    Parameters
    ----------
    layers:
        The stack, bottom first.  Messages enter at ``layers[0]``.
    binding:
        Optional machine binding; when absent the scheduler runs purely
        functionally and completions carry cycle 0.
    input_limit:
        Input buffer capacity in messages; arrivals beyond it are
        dropped (the paper's simulations buffer 500 packets).
    drop_policy:
        Overload behaviour at the input buffer (see
        :mod:`repro.core.overload`); ``None`` means classic tail drop,
        the paper's behaviour.
    """

    #: Whether layer boundaries go through queues (charged 40 instrs).
    uses_queues = False

    def __init__(
        self,
        layers: list[Layer],
        binding: MachineBinding | None = None,
        input_limit: int = 500,
        *,
        drop_policy: DropPolicy | None = None,
    ) -> None:
        if not layers:
            raise SchedulerError("a scheduler needs at least one layer")
        names = [layer.name for layer in layers]
        if len(set(names)) != len(names):
            raise SchedulerError(f"duplicate layer names in stack: {names}")
        self.layers = layers
        self.binding = binding
        if binding is not None and not binding.bound:
            binding.bind(layers)
        self.input_limit = input_limit
        self.drop_policy = drop_policy if drop_policy is not None else TailDrop()
        self.input_queue: deque[Message] = deque()
        self.drops = 0
        self.arrivals = 0

    # ------------------------------------------------------------------
    # Input side

    def enqueue_arrival(self, message: Message) -> bool:
        """Offer an arriving message; returns False if *it* was dropped.

        The drop policy decides who loses under contention: tail drop
        rejects ``message`` itself, head drop evicts older queued
        messages instead.  Either way every lost message counts once in
        :attr:`drops`, so ``arrivals == completions + drops + queued``
        holds at all times (the conservation invariant the fault
        campaigns pin).
        """
        self.arrivals += 1
        accepted, evicted = self.drop_policy.admit(
            self.input_queue, self.input_limit
        )
        self.drops += len(evicted)
        if not accepted:
            self.drops += 1
            return False
        self.input_queue.append(message)
        return True

    def pending(self) -> int:
        """Messages waiting to start processing."""
        return len(self.input_queue)

    @property
    def busy(self) -> bool:
        """True when a service step would do work."""
        return self.pending() > 0

    def describe_config(self) -> dict[str, Any]:
        """Static description of this scheduler for offline analysis.

        Everything :mod:`repro.analysis` needs to validate a
        configuration without running it: the layer order, per-layer
        footprints, and queueing discipline.  Subclasses extend the
        dict with their batching/grouping parameters.
        """
        return {
            "scheduler": type(self).__name__,
            "uses_queues": self.uses_queues,
            "input_limit": self.input_limit,
            "drop_policy": self.drop_policy.describe(),
            "layers": [layer.describe_footprint() for layer in self.layers],
        }

    # ------------------------------------------------------------------
    # Service side

    @abstractmethod
    def service_step(self) -> list[Completion]:
        """Run one scheduling quantum.

        Conventional/ILP: one message through the whole stack.
        LDLP: one batch (all available messages up to the cap) through
        the whole stack, layer by layer.
        """

    def run_to_completion(self, messages: list[Message] | None = None) -> list[Completion]:
        """Offline convenience: enqueue ``messages`` and drain everything."""
        for message in messages or []:
            self.enqueue_arrival(message)
        completions: list[Completion] = []
        while self.busy:
            completions.extend(self.service_step())
        return completions

    # ------------------------------------------------------------------
    # Shared helpers

    def _now(self) -> float:
        return self.binding.cpu.cycles if self.binding else 0.0

    def _charge(
        self,
        layer: Layer,
        message: Message,
        include_message_data: bool = True,
        queue_overhead: bool = False,
    ) -> None:
        if self.binding is not None:
            self.binding.charge(
                layer,
                message,
                include_message_data=include_message_data,
                queue_overhead=queue_overhead,
            )

    def _cascade(
        self,
        message: Message,
        start_index: int,
        completions: list[Completion],
        message_data_swept: bool = False,
    ) -> None:
        """Depth-first: push one message up from ``start_index`` to the top.

        ``message_data_swept`` models ILP: after the first layer has
        swept the message bytes, higher layers are charged without the
        per-byte loop or message-line reads.
        """
        work: list[tuple[int, Message, bool]] = [
            (start_index, message, message_data_swept)
        ]
        while work:
            index, current, swept = work.pop()
            if index >= len(self.layers):
                completions.append(Completion(current, self._now(), delivered=True))
                continue
            layer = self.layers[index]
            self._charge(layer, current, include_message_data=not swept)
            outputs = layer.deliver(current)
            if not outputs:
                delivered = index == len(self.layers) - 1
                completions.append(Completion(current, self._now(), delivered))
                continue
            for out in reversed(outputs):
                work.append((index + 1, out, swept))


class ConventionalScheduler(Scheduler):
    """Process one message at a time through every layer (Figure 2 left)."""

    def service_step(self) -> list[Completion]:
        """Take one message and cascade it through every layer."""
        if not self.input_queue:
            return []
        message = self.input_queue.popleft()
        charge_flow_lookups(self, [message])
        completions: list[Completion] = []
        self._cascade(message, 0, completions)
        return completions


class ILPScheduler(Scheduler):
    """Integrated layer processing (Clark & Tennenhouse).

    Identical invocation *order* to the conventional scheduler — "outer
    loop has poor locality" — but the data loops of all layers are fused,
    so message bytes are loaded once per message rather than per layer.
    """

    def service_step(self) -> list[Completion]:
        """One message through all layers with the data loops fused."""
        if not self.input_queue:
            return []
        message = self.input_queue.popleft()
        charge_flow_lookups(self, [message])
        completions: list[Completion] = []
        if not self.layers:
            return completions
        # First layer sweeps the data for everyone (the integrated loop
        # pays all layers' per-byte cycles at once).
        first = self.layers[0]
        if self.binding is not None:
            extra_per_byte = sum(
                layer.footprint.per_byte_cycles for layer in self.layers[1:]
            )
            self.binding.charge(first, message, include_message_data=True)
            self.binding.cpu.execute(extra_per_byte * message.size)
        outputs = first.deliver(message)
        if not outputs:
            delivered = len(self.layers) == 1
            completions.append(Completion(message, self._now(), delivered))
            return completions
        for out in outputs:
            self._cascade(out, 1, completions, message_data_swept=True)
        return completions


def take_batch(scheduler: "LDLPScheduler | GroupedLDLPScheduler") -> list[Message]:
    """Pop one service-step batch off a batched scheduler's input queue.

    Applies the drop policy's dynamic batch cap, appends to
    ``batch_sizes``, and bumps the ``ldlp.batches`` /
    ``ldlp.batched_messages`` counters — the single place batch
    assembly happens, shared by the scalar ``service_step`` paths and
    the vectorized engine (:mod:`repro.sim.vec`) so both observe
    byte-identical batching behavior.
    """
    limit = scheduler.drop_policy.batch_limit(
        scheduler.batch_limit, len(scheduler.input_queue), scheduler.input_limit
    )
    batch: list[Message] = []
    while scheduler.input_queue and len(batch) < limit:
        batch.append(scheduler.input_queue.popleft())
    scheduler.batch_sizes.append(len(batch))
    charge_flow_lookups(scheduler, batch)
    recorder = active_recorder()
    if recorder is not None:
        recorder.count("ldlp.batches")
        recorder.count("ldlp.batched_messages", float(len(batch)))
    return batch


class LDLPScheduler(Scheduler):
    """Locality-driven layer processing (the paper's Section 3).

    Layer boundaries are queues.  A service step drains the input queue
    into a batch of at most :attr:`batch_limit` messages ("as many
    available messages as will fit in the data cache"), then runs each
    layer to completion over its queue before invoking the next layer
    up.  Each queue hop is charged the ~40-instruction enqueue/dequeue
    overhead the paper measured.
    """

    uses_queues = True

    def __init__(
        self,
        layers: list[Layer],
        binding: MachineBinding | None = None,
        input_limit: int = 500,
        batch_policy: BatchPolicy | None = None,
        *,
        drop_policy: DropPolicy | None = None,
    ) -> None:
        super().__init__(layers, binding, input_limit, drop_policy=drop_policy)
        if batch_policy is None:
            if binding is not None:
                batch_policy = BatchPolicy.from_machine(binding.spec)
            else:
                batch_policy = BatchPolicy(max_batch=14)
        self.batch_policy = batch_policy
        self._queues: list[deque[Message]] = [deque() for _ in layers]
        self.batch_sizes: list[int] = []

    @property
    def batch_limit(self) -> int:
        """Largest batch one service step may assemble (the D-cache cap)."""
        return self.batch_policy.max_batch

    def describe_config(self) -> dict[str, Any]:
        """Scheduler config plus the batch cap, for analysis/reporting."""
        config = super().describe_config()
        config["batch_limit"] = self.batch_limit
        return config

    def service_step(self) -> list[Completion]:
        """Drain up to one batch through the stack layer by layer."""
        if not self.input_queue:
            return []
        self._queues[0].extend(take_batch(self))
        completions: list[Completion] = []
        # Run layers bottom-up; repeat while flush() backwash leaves
        # work in any queue (e.g. a held-back coalesced message).
        while any(self._queues):
            for index, layer in enumerate(self.layers):
                queue = self._queues[index]
                while queue:
                    message = queue.popleft()
                    self._charge(layer, message, queue_overhead=True)
                    self._emit(index, layer.deliver(message), message, completions)
                for flushed in layer.flush():
                    self._emit(index, [flushed], flushed, completions)
        return completions

    def _emit(
        self,
        index: int,
        outputs: list[Message],
        source: Message,
        completions: list[Completion],
    ) -> None:
        top = index == len(self.layers) - 1
        if not outputs:
            completions.append(Completion(source, self._now(), delivered=top))
            return
        for out in outputs:
            if top:
                completions.append(Completion(out, self._now(), delivered=True))
            else:
                self._queues[index + 1].append(out)


class GroupedLDLPScheduler(Scheduler):
    """LDLP over *groups* of layers (the paper's closing advice).

    "A reasonable procedure when implementing protocol stacks from
    scratch is to write layers as independent units, measure their
    working sets, and then decide how to group them to maximize
    locality."  Adjacent layers whose combined code fits the
    instruction cache share one queue: within a group a message runs
    through all member layers by plain procedure calls (one queue hop
    per *group*, not per layer), and the batch moves group by group.

    With every layer in its own group this is exactly
    :class:`LDLPScheduler`; with one group it degenerates to a batched
    conventional schedule.
    """

    uses_queues = True

    def __init__(
        self,
        layers: list[Layer],
        binding: MachineBinding | None = None,
        input_limit: int = 500,
        batch_policy: BatchPolicy | None = None,
        groups: list[list[int]] | None = None,
        *,
        drop_policy: DropPolicy | None = None,
    ) -> None:
        super().__init__(layers, binding, input_limit, drop_policy=drop_policy)
        if batch_policy is None:
            if binding is not None:
                batch_policy = BatchPolicy.from_machine(binding.spec)
            else:
                batch_policy = BatchPolicy(max_batch=14)
        self.batch_policy = batch_policy
        if groups is None:
            from .blocking import group_layers_for_cache

            icache = (
                binding.spec.icache.size if binding is not None else 8192
            )
            groups = group_layers_for_cache(
                [layer.footprint.code_bytes for layer in layers], icache
            )
        self._validate_groups(groups)
        self.groups = groups
        self._group_queues: list[deque[Message]] = [deque() for _ in groups]
        self.batch_sizes: list[int] = []

    def _validate_groups(self, groups: list[list[int]]) -> None:
        diagnosis = diagnose_groups(len(self.layers), groups)
        if not diagnosis.ok:
            raise GroupingError(
                f"groups {groups} must partition layers "
                f"0..{len(self.layers) - 1} in order: {diagnosis.describe()}",
                overlapping=diagnosis.overlapping,
                missing=diagnosis.missing,
                out_of_range=diagnosis.out_of_range,
                misordered=diagnosis.misordered,
                empty_groups=diagnosis.empty_groups,
            )

    @property
    def batch_limit(self) -> int:
        """Largest batch one service step may assemble (the D-cache cap)."""
        return self.batch_policy.max_batch

    def describe_config(self) -> dict[str, Any]:
        """Scheduler config plus the batch cap and layer grouping."""
        config = super().describe_config()
        config["batch_limit"] = self.batch_limit
        config["groups"] = [list(group) for group in self.groups]
        return config

    def service_step(self) -> list[Completion]:
        """Drain up to one batch through the stack group by group."""
        if not self.input_queue:
            return []
        self._group_queues[0].extend(take_batch(self))
        completions: list[Completion] = []
        while any(self._group_queues):
            for group_index, member_layers in enumerate(self.groups):
                queue = self._group_queues[group_index]
                while queue:
                    message = queue.popleft()
                    self._run_group(
                        group_index, member_layers, message, completions,
                        charge_queue_hop=True,
                    )
                for layer_index in member_layers:
                    for flushed in self.layers[layer_index].flush():
                        self._route(group_index, layer_index, [flushed],
                                    flushed, completions)
        return completions

    def _run_group(
        self,
        group_index: int,
        member_layers: list[int],
        message: Message,
        completions: list[Completion],
        charge_queue_hop: bool,
    ) -> None:
        """Depth-first through the group's layers for one message."""
        work: list[tuple[int, Message]] = [(0, message)]
        while work:
            position, current = work.pop()
            if position >= len(member_layers):
                self._route(
                    group_index, member_layers[-1], [current], current,
                    completions, already_processed=True,
                )
                continue
            layer_index = member_layers[position]
            layer = self.layers[layer_index]
            self._charge(
                layer,
                current,
                queue_overhead=charge_queue_hop and position == 0,
            )
            outputs = layer.deliver(current)
            if not outputs:
                delivered = layer_index == len(self.layers) - 1
                completions.append(Completion(current, self._now(), delivered))
                continue
            for out in reversed(outputs):
                work.append((position + 1, out))

    def _route(
        self,
        group_index: int,
        layer_index: int,
        outputs: list[Message],
        source: Message,
        completions: list[Completion],
        already_processed: bool = False,
    ) -> None:
        """Send messages leaving ``layer_index`` to the next hop."""
        top = layer_index == len(self.layers) - 1
        if not outputs:
            completions.append(Completion(source, self._now(), delivered=top))
            return
        for out in outputs:
            if top:
                completions.append(Completion(out, self._now(), delivered=True))
            elif already_processed or layer_index == self.groups[group_index][-1]:
                self._group_queues[group_index + 1].append(out)
            else:
                # flush() output from a mid-group layer: re-enter the
                # group at the next member via its queue-free path.
                remaining = self.groups[group_index][
                    self.groups[group_index].index(layer_index) + 1 :
                ]
                self._run_group(
                    group_index, remaining, out, completions,
                    charge_queue_hop=False,
                )
