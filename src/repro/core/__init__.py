"""LDLP — locality-driven layer processing (the paper's contribution).

* :class:`Layer`, :class:`Message`, :class:`LayerFootprint` — the layer
  vocabulary;
* :class:`ConventionalScheduler`, :class:`ILPScheduler`,
  :class:`LDLPScheduler` — the three scheduling disciplines compared in
  the paper;
* :class:`BatchPolicy` — "as many messages as fit in the data cache";
* :class:`DropPolicy` — pluggable input-buffer overload behaviour
  (tail/head/early drop, adaptive batch backoff);
* :class:`DispatchPolicy` — pluggable receive-side dispatch steering
  arrivals onto cores (flow-hash RSS, application-defined, LDLP-aware);
* :mod:`repro.core.blocking` — off-line blocked processing and
  blocking-factor estimation;
* :class:`MachineBinding` — attaches a stack to the simulated machine.
"""

from .batching import BatchPolicy
from .binding import BUFFER_KEY, MachineBinding
from .dispatch import (
    APP_CLASS_KEY,
    DISPATCH_POLICIES,
    FLOW_KEY,
    AppDefinedDispatch,
    DispatchPolicy,
    FlowHashRSS,
    LDLPAwareDispatch,
    make_dispatch_policy,
)
from .overload import (
    DROP_POLICIES,
    AdaptiveBatchBackoff,
    DropPolicy,
    HeadDrop,
    QueueCap,
    TailDrop,
    make_drop_policy,
)
from .blocking import (
    BlockingEstimate,
    blocked_schedule,
    conventional_schedule,
    estimate_block_cost,
    estimate_blocking_factor,
    group_layers_for_cache,
    process_blocked,
)
from .layer import (
    CountingLayer,
    Layer,
    LayerFootprint,
    Message,
    PassthroughLayer,
    SinkLayer,
)
from .scheduler import (
    Completion,
    ConventionalScheduler,
    GroupedLDLPScheduler,
    ILPScheduler,
    LDLPScheduler,
    Scheduler,
)

__all__ = [
    "APP_CLASS_KEY",
    "BUFFER_KEY",
    "AdaptiveBatchBackoff",
    "AppDefinedDispatch",
    "BatchPolicy",
    "BlockingEstimate",
    "Completion",
    "ConventionalScheduler",
    "DISPATCH_POLICIES",
    "DROP_POLICIES",
    "DispatchPolicy",
    "DropPolicy",
    "FLOW_KEY",
    "FlowHashRSS",
    "GroupedLDLPScheduler",
    "CountingLayer",
    "HeadDrop",
    "ILPScheduler",
    "LDLPAwareDispatch",
    "LDLPScheduler",
    "Layer",
    "LayerFootprint",
    "MachineBinding",
    "Message",
    "PassthroughLayer",
    "QueueCap",
    "Scheduler",
    "SinkLayer",
    "TailDrop",
    "make_dispatch_policy",
    "make_drop_policy",
    "blocked_schedule",
    "conventional_schedule",
    "estimate_block_cost",
    "estimate_blocking_factor",
    "group_layers_for_cache",
    "process_blocked",
]
