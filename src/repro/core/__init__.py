"""LDLP — locality-driven layer processing (the paper's contribution).

* :class:`Layer`, :class:`Message`, :class:`LayerFootprint` — the layer
  vocabulary;
* :class:`ConventionalScheduler`, :class:`ILPScheduler`,
  :class:`LDLPScheduler` — the three scheduling disciplines compared in
  the paper;
* :class:`BatchPolicy` — "as many messages as fit in the data cache";
* :class:`DropPolicy` — pluggable input-buffer overload behaviour
  (tail/head/early drop, adaptive batch backoff);
* :mod:`repro.core.blocking` — off-line blocked processing and
  blocking-factor estimation;
* :class:`MachineBinding` — attaches a stack to the simulated machine.
"""

from .batching import BatchPolicy
from .binding import BUFFER_KEY, MachineBinding
from .overload import (
    DROP_POLICIES,
    AdaptiveBatchBackoff,
    DropPolicy,
    HeadDrop,
    QueueCap,
    TailDrop,
    make_drop_policy,
)
from .blocking import (
    BlockingEstimate,
    blocked_schedule,
    conventional_schedule,
    estimate_block_cost,
    estimate_blocking_factor,
    group_layers_for_cache,
    process_blocked,
)
from .layer import (
    CountingLayer,
    Layer,
    LayerFootprint,
    Message,
    PassthroughLayer,
    SinkLayer,
)
from .scheduler import (
    Completion,
    ConventionalScheduler,
    GroupedLDLPScheduler,
    ILPScheduler,
    LDLPScheduler,
    Scheduler,
)

__all__ = [
    "BUFFER_KEY",
    "AdaptiveBatchBackoff",
    "BatchPolicy",
    "BlockingEstimate",
    "Completion",
    "ConventionalScheduler",
    "DROP_POLICIES",
    "DropPolicy",
    "GroupedLDLPScheduler",
    "CountingLayer",
    "HeadDrop",
    "ILPScheduler",
    "LDLPScheduler",
    "Layer",
    "LayerFootprint",
    "MachineBinding",
    "Message",
    "PassthroughLayer",
    "QueueCap",
    "Scheduler",
    "SinkLayer",
    "TailDrop",
    "make_drop_policy",
    "blocked_schedule",
    "conventional_schedule",
    "estimate_block_cost",
    "estimate_blocking_factor",
    "group_layers_for_cache",
    "process_blocked",
]
