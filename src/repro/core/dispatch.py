"""Receive-side dispatch: steering arrivals onto cores at admission.

The paper models one 100 MHz CPU; modern small-message servers put many
cores behind a NIC dispatcher, and *where* a message is steered at
admission decides whether layer code stays cache-resident on the core
that runs it — receive-side dispatch is the multi-core generalization
of LDLP's instruction-locality argument.  A :class:`DispatchPolicy`
makes that axis pluggable, mirroring :class:`repro.core.overload.DropPolicy`
for the drop axis: dispatch picks the core, then the chosen core's drop
policy decides admission, so admission-time dispatch composes with
admission-time drops.

The registry in :data:`DISPATCH_POLICIES` names the three shipped
policies (see ``docs/dispatch.md`` for the full guide):

``rss``
    Flow-hash receive-side scaling: hash the message's flow identifier
    and take it modulo the core count.  Every message of one flow lands
    on one core (no reordering within a flow) and flows spread evenly,
    but consecutive arrivals of *different* flows spray across cores,
    so per-core batches stay small and every core keeps re-loading
    every layer's code.
``app``
    Application-defined dispatch (after "Application-Defined Receive
    Side Dispatching on the NIC"): match on a *decoded header field* —
    an application class, not the transport 5-tuple — through an
    explicit match table, falling back to a hash of the field value.
    Coarser than RSS (many flows share a class), so same-class work
    clusters on one core.
``ldlp``
    LDLP-aware dispatch: steer *chunks* of consecutive arrivals to the
    same core (chunk size = the cache-fit batch cap) before rotating to
    the next, so each core receives whole batches and its schedulers
    run each layer once per chunk instead of once per message — the
    dispatch-stage twin of the paper's batching rule.

All policies are deterministic — no RNG, no wall clock — so multi-core
runs stay byte-identical per seed at any worker count.
"""

from __future__ import annotations

import zlib
from abc import ABC, abstractmethod
from typing import Any, Callable

from ..errors import ConfigurationError
from .layer import Message

#: meta key carrying a message's flow identifier (the modeled 5-tuple).
FLOW_KEY = "dispatch.flow"

#: meta key carrying a message's decoded application class.
APP_CLASS_KEY = "dispatch.app_class"


def stable_hash(value: Any) -> int:
    """A process-stable 32-bit hash of a flow/field value.

    CRC-32 of the value's string form: unlike builtin ``hash()`` it is
    not salted per interpreter (DET002), so dispatch decisions reproduce
    across runs, workers, and ``PYTHONHASHSEED`` settings.
    """
    return zlib.crc32(str(value).encode("utf-8"))


def flow_of(message: Message) -> int:
    """The flow identifier a dispatcher hashes for one message.

    Reads :data:`FLOW_KEY` from the message meta (set by the traffic
    tagger, :func:`repro.sim.multicore.tag_flows`); untagged messages
    all map to flow 0, i.e. one flow.
    """
    return int(message.meta.get(FLOW_KEY, 0))


class DispatchPolicy(ABC):
    """Where an arriving message is steered before admission.

    One hook: :meth:`select` is called once per arrival, *before* the
    chosen core's :class:`~repro.core.overload.DropPolicy` decides
    admission.  Policies must be deterministic functions of the message
    and their construction parameters; they may keep counters or sticky
    state (the LDLP-aware policy does) but must not draw randomness.
    """

    #: Registry name; subclasses override.
    name = "abstract"

    @abstractmethod
    def select(self, message: Message, num_cores: int) -> int:
        """Pick the core (``0..num_cores-1``) to receive this message."""

    def describe(self) -> dict[str, Any]:
        """Static description for ``describe_config`` / analysis."""
        return {"dispatch": self.name}


class FlowHashRSS(DispatchPolicy):
    """Classic receive-side scaling: hash the flow id over the cores.

    The NIC default everywhere: per-flow ordering is preserved and flows
    balance (see the RSS-balance property test), but instruction
    locality is accidental — consecutive messages of different flows
    land on different cores, so no core accumulates a batch.
    """

    name = "rss"

    def select(self, message: Message, num_cores: int) -> int:
        """Hash the message's flow id modulo the core count."""
        return stable_hash(flow_of(message)) % num_cores


class AppDefinedDispatch(DispatchPolicy):
    """Application-defined dispatch on a decoded header field.

    Parameters
    ----------
    field:
        The message meta key to match on (default the decoded
        application class, :data:`APP_CLASS_KEY`; absent values fall
        back to the flow id).
    rules:
        Explicit ``field value -> core`` match table (the
        application-installed NIC rules).  Values without a rule fall
        back to a stable hash of the field value, so the policy
        degrades to per-class RSS rather than dropping on the floor.
    """

    name = "app"

    def __init__(
        self, field: str = APP_CLASS_KEY, rules: dict[Any, int] | None = None
    ) -> None:
        self.field = field
        self.rules = dict(rules or {})

    def select(self, message: Message, num_cores: int) -> int:
        """Match the decoded field against the rules, else hash it."""
        value = message.meta.get(self.field, flow_of(message))
        core = self.rules.get(value)
        if core is None:
            core = stable_hash(value)
        return int(core) % num_cores

    def describe(self) -> dict[str, Any]:
        """Policy name plus the matched field and rule count."""
        return {"dispatch": self.name, "field": self.field,
                "rules": len(self.rules)}


class LDLPAwareDispatch(DispatchPolicy):
    """Sticky chunk dispatch: whole batches to one core, then rotate.

    Consecutive arrivals stick to the current core until ``chunk``
    messages have been steered there, then the dispatcher rotates to
    the next core round-robin.  Each core therefore receives arrivals
    in batch-sized bursts: its (batching) scheduler drains them as one
    LDLP batch, loading each layer's code once per chunk instead of
    once per message — which is exactly why this policy's I-cache miss
    rate beats RSS once per-core load is light (>= 4 cores in the BENCH
    record).  ``chunk`` defaults to the paper's 14-message cache-fit
    batch cap (:class:`repro.core.batching.BatchPolicy`).
    """

    name = "ldlp"

    def __init__(self, chunk: int = 14) -> None:
        if chunk <= 0:
            raise ConfigurationError(f"dispatch chunk must be positive: {chunk}")
        self.chunk = chunk
        self._core = 0
        self._steered = 0

    def select(self, message: Message, num_cores: int) -> int:
        """Stick to the current core for ``chunk`` arrivals, then rotate."""
        if self._core >= num_cores:
            # Core count shrank between calls (fresh runs build fresh
            # policies; this guards direct reuse).
            self._core = 0
            self._steered = 0
        if self._steered >= self.chunk:
            self._core = (self._core + 1) % num_cores
            self._steered = 0
        self._steered += 1
        return self._core

    def describe(self) -> dict[str, Any]:
        """Policy name plus the sticky chunk size."""
        return {"dispatch": self.name, "chunk": self.chunk}


#: Name -> zero/default-argument factory for every shipped policy.
DISPATCH_POLICIES: dict[str, Callable[[], DispatchPolicy]] = {
    "rss": FlowHashRSS,
    "app": AppDefinedDispatch,
    "ldlp": LDLPAwareDispatch,
}


def make_dispatch_policy(name: str, **params: Any) -> DispatchPolicy:
    """Build a registered policy by name (``params`` forwarded verbatim)."""
    try:
        factory = DISPATCH_POLICIES[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown dispatch policy {name!r}; expected one of "
            f"{', '.join(sorted(DISPATCH_POLICIES))}"
        ) from None
    return factory(**params)
