"""Binding a stack of layers to the simulated machine.

A :class:`MachineBinding` owns the CPU, cache state, memory layout, and
message-buffer ring for one simulation run, and charges the cost of each
(layer, message) invocation.  Schedulers stay machine-agnostic: they
call :meth:`MachineBinding.charge` if a binding is present and otherwise
run purely functionally (fast unit tests, correctness checks).
"""

from __future__ import annotations

import numpy as np

from ..cache.hierarchy import MachineSpec
from ..errors import ConfigurationError
from ..machine.cpu import CPU
from ..machine.executor import (
    BufferPool,
    FootprintExecutor,
    MessageBuffer,
    PlacedLayer,
)
from ..machine.layout import DEFAULT_SEED, MemoryLayout
from ..obs.runtime import active_recorder, machine_counters
from .layer import Layer, Message

#: meta key under which a message's placed buffer is stored.
BUFFER_KEY = "machine.buffer"


class MachineBinding:
    """Machine state + cost charging for one run of a protocol stack.

    Parameters
    ----------
    spec:
        The machine description (clock, caches, miss penalty).
    rng:
        Drives random placement (an int seed or a numpy generator).
        When omitted, a fixed default seed is used — never OS entropy —
        so an unseeded binding still reproduces byte-identically.
    random_placement:
        Paper methodology: random code placement (averaged over seeds).
        Sequential placement gives the conflict-free best case.
    pool_buffers / buffer_size:
        Geometry of the receive-buffer ring messages are placed in.
    """

    def __init__(
        self,
        spec: MachineSpec | None = None,
        rng: np.random.Generator | int | None = None,
        random_placement: bool = True,
        pool_buffers: int = 32,
        buffer_size: int = 2048,
    ) -> None:
        self.spec = spec or MachineSpec()
        if rng is None:
            # Fixed-seed fallback, never OS entropy (DET001): forgetting
            # to pass a seed must not silently break reproducibility.
            rng = DEFAULT_SEED
        if isinstance(rng, (int, np.integer)):
            rng = np.random.default_rng(int(rng))
        self.rng = rng
        self.random_placement = random_placement
        self.pool_buffers = pool_buffers
        self.buffer_size = buffer_size
        self.cpu = CPU(self.spec)
        self.executor = FootprintExecutor(self.cpu)
        #: Optional flow-lookup cache (:class:`repro.flows.FlowLookup`).
        #: When set, the scheduler hooks charge a route/PCB lookup per
        #: service batch (see repro.core.scheduler.charge_flow_lookups);
        #: when None — the default — lookups cost nothing, preserving
        #: the original Section-4 cost model bit-for-bit.
        self.flow_lookup = None
        self._layout = MemoryLayout(
            line_size=self.spec.icache.line_size, rng=self.rng
        )
        self._placed: dict[str, PlacedLayer] = {}
        self._pool: BufferPool | None = None

    def bind(self, layers: list[Layer]) -> None:
        """Place every layer's code/data and build the buffer ring."""
        if self._placed:
            raise ConfigurationError("binding is already bound to a stack")
        if not layers:
            raise ConfigurationError("cannot bind an empty stack")
        for layer in layers:
            if layer.name in self._placed:
                raise ConfigurationError(f"duplicate layer name {layer.name!r}")
            self._placed[layer.name] = PlacedLayer(
                layer.name,
                layer.footprint.to_profile(),
                self._layout,
                random_placement=self.random_placement,
            )
        self._pool = BufferPool(
            self._layout,
            self.pool_buffers,
            self.buffer_size,
            random_placement=self.random_placement,
        )

    @property
    def bound(self) -> bool:
        """True once :meth:`bind` has placed the layers in memory."""
        return bool(self._placed)

    @property
    def pool(self) -> BufferPool | None:
        """The placed message-buffer ring (None before :meth:`bind`)."""
        return self._pool

    def placed_layer(self, name: str) -> PlacedLayer:
        """The placed code/data regions of one bound layer, by name."""
        try:
            return self._placed[name]
        except KeyError:
            raise ConfigurationError(f"layer {name!r} is not bound") from None

    def buffer_of(self, message: Message) -> MessageBuffer:
        """The placed buffer holding a message's bytes (assigned lazily)."""
        buffer = message.meta.get(BUFFER_KEY)
        if buffer is None:
            if self._pool is None:
                raise ConfigurationError("binding not bound; call bind() first")
            buffer = self._pool.acquire()
            message.meta[BUFFER_KEY] = buffer
        return buffer

    def charge(
        self,
        layer: Layer,
        message: Message,
        include_message_data: bool = True,
        queue_overhead: bool = False,
    ) -> float:
        """Charge one (layer, message) invocation; return its cycle cost.

        ``include_message_data=False`` models integrated layer
        processing: the message bytes were already swept by an earlier
        layer's integrated loop, so this invocation touches only code
        and layer data and skips the per-byte data-loop cycles.

        When a :mod:`repro.obs` recorder is installed, each invocation
        is recorded as a span on the layer's track (CPU-cycle clock,
        cache hit/miss deltas as span counters); with no recorder the
        only overhead is one global read.
        """
        recorder = active_recorder()
        if recorder is None:
            return self._charge_cost(
                layer, message, include_message_data, queue_overhead
            )
        handle = recorder.begin(
            layer.name,
            "invoke",
            self.cpu.cycles,
            machine_counters(self.cpu),
            message_bytes=message.size,
            queued=queue_overhead,
        )
        try:
            return self._charge_cost(
                layer, message, include_message_data, queue_overhead
            )
        finally:
            recorder.end(handle, self.cpu.cycles)

    def _charge_cost(
        self,
        layer: Layer,
        message: Message,
        include_message_data: bool,
        queue_overhead: bool,
    ) -> float:
        """The uninstrumented charging path (see :meth:`charge`)."""
        placed = self.placed_layer(layer.name)
        buffer = self.buffer_of(message)
        start = self.cpu.cycles
        self.cpu.fetch_code_lines(placed.code_lines)
        if placed.data_lines.size:
            self.cpu.read_data_lines(placed.data_lines)
        if include_message_data:
            size = min(message.size, buffer.capacity)
            lines = buffer.lines_for(size)
            if lines.size:
                self.cpu.read_data_lines(lines)
            self.cpu.execute(placed.profile.compute_cycles(message.size))
        else:
            self.cpu.execute(placed.profile.base_cycles)
        if queue_overhead:
            self.cpu.execute(FootprintExecutor.QUEUE_INSTRUCTIONS)
        return self.cpu.cycles - start
