"""Layers, messages, and footprints — the vocabulary of LDLP.

A protocol stack is a chain of :class:`Layer` objects.  Each layer does
two independent things:

* *functional* work: :meth:`Layer.deliver` transforms a message (parse a
  header, verify a checksum, append to a socket buffer) and returns the
  messages to hand to the next layer up (zero, one, or several — e.g. a
  reassembled datagram or an ACK to emit);
* *memory-system* work: the layer's :class:`LayerFootprint` describes
  the code and data it touches, which the machine model charges against
  the simulated caches.

Keeping these separate is exactly what makes LDLP applicable "to
existing protocol implementations by changing only the interface to the
layers" (Section 5): schedulers reorder *invocations* without knowing
anything about layer internals.
"""

from __future__ import annotations

import itertools
from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Any

from ..errors import SchedulerError
from ..machine.executor import ExecutionProfile

_message_ids = itertools.count()


@dataclass
class Message:
    """One message moving through a stack.

    Attributes
    ----------
    payload:
        The message contents.  For the byte-level stack this is an
        :class:`~repro.buffers.MbufChain`; for purely synthetic
        workloads it may be ``None`` with only ``size`` meaningful.
    size:
        Length in bytes (kept explicit so synthetic messages need no
        actual bytes).
    arrival_time:
        Simulated arrival time in seconds (set by the traffic source).
    meta:
        Layer-to-layer annotations (e.g. parsed headers), replacing the
        fields a kernel would stash in the mbuf packet header.
    """

    payload: Any = None
    size: int = 0
    arrival_time: float = 0.0
    meta: dict[str, Any] = field(default_factory=dict)
    msg_id: int = field(default_factory=lambda: next(_message_ids))

    def __post_init__(self) -> None:
        if self.size < 0:
            raise SchedulerError(f"message size must be non-negative, got {self.size}")
        if self.payload is not None and self.size == 0:
            try:
                self.size = len(self.payload)
            except TypeError:
                pass


@dataclass(frozen=True)
class LayerFootprint:
    """Memory/compute footprint of one layer (see Section 4's benchmark).

    This is a thin, named wrapper over the machine model's
    :class:`~repro.machine.executor.ExecutionProfile` defaults so stack
    definitions read in the paper's terms.
    """

    code_bytes: int = 6144
    data_bytes: int = 256
    base_cycles: float = 1376.0
    per_byte_cycles: float = 0.5

    def to_profile(self) -> ExecutionProfile:
        """The machine-level execution profile with the same numbers."""
        return ExecutionProfile(
            code_bytes=self.code_bytes,
            data_bytes=self.data_bytes,
            base_cycles=self.base_cycles,
            per_byte_cycles=self.per_byte_cycles,
        )

    def describe(self) -> dict[str, float]:
        """Plain-dict form for offline analysis and JSON reports."""
        return {
            "code_bytes": self.code_bytes,
            "data_bytes": self.data_bytes,
            "base_cycles": self.base_cycles,
            "per_byte_cycles": self.per_byte_cycles,
        }


class Layer(ABC):
    """One protocol layer.

    Subclasses implement :meth:`deliver`; the scheduler machinery never
    calls it directly but always through a
    :class:`~repro.core.scheduler.Scheduler`, which decides *when* each
    (layer, message) pair runs.
    """

    def __init__(self, name: str, footprint: LayerFootprint | None = None) -> None:
        self.name = name
        self.footprint = footprint or LayerFootprint()

    @abstractmethod
    def deliver(self, message: Message) -> list[Message]:
        """Process one message; return messages for the next layer up.

        Returning ``[]`` consumes the message (e.g. the top layer
        delivering to an application, or a dropped packet).
        """

    def flush(self) -> list[Message]:
        """Emit any messages the layer held back (batch-end hook).

        Layers that coalesce work across a batch (e.g. a TCP layer
        holding a delayed ACK) override this; the schedulers call it
        when a batch at this layer completes.
        """
        return []

    @property
    def holds_messages(self) -> bool:
        """True when the layer overrides :meth:`flush` (it may coalesce).

        Schedulers that never call flush (the non-queue disciplines)
        would strand such a layer's held messages; the static analyzer
        flags that combination.
        """
        return type(self).flush is not Layer.flush

    def describe_footprint(self) -> dict[str, object]:
        """Static description of this layer for offline analysis."""
        return {
            "name": self.name,
            "holds_messages": self.holds_messages,
            **self.footprint.describe(),
        }

    def __repr__(self) -> str:
        return f"<{type(self).__name__} {self.name!r}>"


class PassthroughLayer(Layer):
    """A layer that forwards every message unchanged.

    The synthetic benchmark of Section 4 uses five of these: all cost,
    no transformation.
    """

    def deliver(self, message: Message) -> list[Message]:
        """Forward the message unchanged."""
        return [message]


class CountingLayer(PassthroughLayer):
    """Passthrough layer that counts deliveries (test/diagnostic aid)."""

    def __init__(self, name: str, footprint: LayerFootprint | None = None) -> None:
        super().__init__(name, footprint)
        self.delivered: list[int] = []

    def deliver(self, message: Message) -> list[Message]:
        """Record the message id, then forward unchanged."""
        self.delivered.append(message.msg_id)
        return [message]


class SinkLayer(Layer):
    """Top-of-stack layer that consumes messages and records them."""

    def __init__(self, name: str = "application") -> None:
        super().__init__(name, LayerFootprint(code_bytes=512, data_bytes=64,
                                              base_cycles=50.0, per_byte_cycles=0.0))
        self.received: list[Message] = []

    def deliver(self, message: Message) -> list[Message]:
        """Consume the message (nothing propagates past the sink)."""
        self.received.append(message)
        return []
