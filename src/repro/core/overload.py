"""Pluggable scheduler overload behaviour: drop policies.

The paper buffers 500 packets and tail-drops beyond that — one point in
a whole design space of overload behaviours.  A :class:`DropPolicy`
makes that axis pluggable: it decides *which* message loses when the
input buffer is contended (admission) and *how large* an LDLP batch may
grow given the current buffer occupancy (batch modulation).  All
policies are deterministic — no RNG — so simulation results stay
byte-identical for a fixed arrival sequence.

The registry in :data:`DROP_POLICIES` names the four shipped policies:

``tail``
    Classic tail drop (the paper's behaviour, and the default): reject
    the newest arrival when the buffer is full.
``head``
    Drop-from-front: evict the *oldest* queued message to admit the new
    one.  Under sustained overload the queue holds the freshest work,
    which bounds the staleness (and hence latency) of what completes.
``batch-cap``
    Early drop at a queue-depth cap below the physical buffer: bounds
    worst-case queueing delay to roughly ``cap / batch`` service steps,
    trading extra drops for a tighter latency tail.
``adaptive``
    LDLP batch-size backoff: admission is tail-drop, but the batch cap
    scales with buffer occupancy — a lightly loaded queue is served in
    small batches (low per-message latency), a deep queue gets the full
    cache-fit batch (maximum drain rate).  This is the "as many
    available messages as will fit in the data cache" rule made
    pressure-sensitive.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from collections import deque
from typing import Any, Callable

from ..errors import ConfigurationError


class DropPolicy(ABC):
    """How a scheduler behaves when its input buffer is contended.

    Two independent hooks:

    * :meth:`admit` — called once per arrival with the live input queue;
      decides whether the new message enters and which queued messages
      (if any) are evicted to make room;
    * :meth:`batch_limit` — called by the batching schedulers (LDLP and
      grouped LDLP) at the start of each service step; may shrink the
      cache-derived batch cap based on buffer occupancy.

    Policies must be deterministic functions of their arguments and
    construction parameters; they may keep counters but must not draw
    randomness, or runs stop being reproducible per seed.
    """

    #: Registry name; subclasses override.
    name = "abstract"

    @abstractmethod
    def admit(
        self, queue: deque, capacity: int
    ) -> tuple[bool, list]:
        """Decide one admission.

        Parameters
        ----------
        queue:
            The live input queue (the policy may evict from it).
        capacity:
            The configured buffer limit in messages.

        Returns
        -------
        (accepted, evicted):
            ``accepted`` — whether the *new* message may be appended;
            ``evicted`` — queued messages the policy removed to make
            room (each counts as a drop).
        """

    def batch_limit(self, base: int, queue_len: int, capacity: int) -> int:
        """The effective batch cap for one service step.

        ``base`` is the cache-fit cap from
        :class:`~repro.core.batching.BatchPolicy`; the default keeps it.
        """
        return base

    def describe(self) -> dict[str, Any]:
        """Static description for ``describe_config`` / analysis."""
        return {"policy": self.name}


class TailDrop(DropPolicy):
    """Reject the newest arrival when the buffer is full (the default)."""

    name = "tail"

    def admit(self, queue: deque, capacity: int) -> tuple[bool, list]:
        """Accept while there is room; never evict."""
        if len(queue) >= capacity:
            return False, []
        return True, []


class HeadDrop(DropPolicy):
    """Evict the oldest queued message to admit the newest.

    Keeps the buffer full of *fresh* work under overload: what completes
    was queued recently, so completion latency stays bounded while the
    drop rate absorbs the excess — the latency/loss trade taken by
    drop-from-front AQM variants.
    """

    name = "head"

    def admit(self, queue: deque, capacity: int) -> tuple[bool, list]:
        """Always accept; evict from the front when full."""
        evicted = []
        while len(queue) >= capacity:
            evicted.append(queue.popleft())
        return True, evicted


class QueueCap(DropPolicy):
    """Early tail drop at a fixed depth below the physical buffer.

    Parameters
    ----------
    cap:
        Maximum queue depth admitted, in messages.  With the paper's
        14-message LDLP batch, ``cap=56`` bounds queueing delay to
        about four full batches regardless of the 500-packet buffer.
    """

    name = "batch-cap"

    def __init__(self, cap: int = 56) -> None:
        if cap <= 0:
            raise ConfigurationError(f"queue cap must be positive: {cap}")
        self.cap = cap

    def admit(self, queue: deque, capacity: int) -> tuple[bool, list]:
        """Accept while below ``min(cap, capacity)``; never evict."""
        if len(queue) >= min(self.cap, capacity):
            return False, []
        return True, []

    def describe(self) -> dict[str, Any]:
        """Policy name plus the configured cap."""
        return {"policy": self.name, "cap": self.cap}


class AdaptiveBatchBackoff(DropPolicy):
    """Tail-drop admission with occupancy-scaled LDLP batches.

    The effective batch cap is ``base * queue_len / capacity`` (at least
    ``min_batch``, at most ``base``): near-empty buffers are served a
    message or two at a time — minimum latency, exactly the paper's
    light-load behaviour — and the cap backs off toward the full
    cache-fit batch only as the buffer fills and throughput starts to
    matter more than per-message delay.
    """

    name = "adaptive"

    def __init__(self, min_batch: int = 1) -> None:
        if min_batch <= 0:
            raise ConfigurationError(
                f"minimum batch must be positive: {min_batch}"
            )
        self.min_batch = min_batch

    def admit(self, queue: deque, capacity: int) -> tuple[bool, list]:
        """Tail-drop admission (reject the newest when full)."""
        if len(queue) >= capacity:
            return False, []
        return True, []

    def batch_limit(self, base: int, queue_len: int, capacity: int) -> int:
        """Scale the cap with occupancy: empty → ``min_batch``, full → ``base``."""
        if capacity <= 0:
            return base
        scaled = -(-base * queue_len // capacity)  # ceil division
        return max(self.min_batch, min(base, scaled))

    def describe(self) -> dict[str, Any]:
        """Policy name plus the floor batch size."""
        return {"policy": self.name, "min_batch": self.min_batch}


#: Name → zero/default-argument factory for every shipped policy.
DROP_POLICIES: dict[str, Callable[[], DropPolicy]] = {
    "tail": TailDrop,
    "head": HeadDrop,
    "batch-cap": QueueCap,
    "adaptive": AdaptiveBatchBackoff,
}


def make_drop_policy(name: str, **params: Any) -> DropPolicy:
    """Build a registered policy by name (``params`` forwarded verbatim)."""
    try:
        factory = DROP_POLICIES[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown drop policy {name!r}; expected one of "
            f"{', '.join(sorted(DROP_POLICIES))}"
        ) from None
    return factory(**params)
