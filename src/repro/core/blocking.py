"""Offline blocked layer processing and blocking-factor estimation.

Section 3 distinguishes *blocked layer processing* — an off-line
algorithm over a preexisting packet sequence — from its on-line
realization, LDLP.  This module implements the off-line form plus an
analytic miss model in the spirit of Lam/Rothberg/Wolf (the paper's
reference [22] for estimating blocking factors).

The miss model, per message, for B-message blocks on a machine with a
fixed line size and miss penalty:

* instruction misses ≈ (total code lines) / B — each layer's code is
  fetched once per block and reused across the block;
* data misses ≈ message lines × (1 if the block fits in the data cache
  else number of layers) + layer data lines / B.

Minimizing total stall over B subject to the block fitting in the data
cache reproduces the paper's "as many messages as fit" rule.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from ..cache.line import line_count
from ..errors import ConfigurationError
from .layer import Layer, Message


def blocked_schedule(
    num_layers: int, num_messages: int, block: int
) -> list[tuple[int, int]]:
    """The (layer, message) visit order of blocked processing.

    Returns the full sequence of invocations: messages are grouped in
    blocks of ``block``; within a block, each layer is applied to every
    message before the next layer runs (Figure 3, right column).

    >>> blocked_schedule(2, 3, 2)[:4]
    [(0, 0), (0, 1), (1, 0), (1, 1)]
    """
    if block < 1:
        raise ConfigurationError(f"block size must be at least 1, got {block}")
    order: list[tuple[int, int]] = []
    for start in range(0, num_messages, block):
        members = range(start, min(start + block, num_messages))
        for layer in range(num_layers):
            for message in members:
                order.append((layer, message))
    return order


def conventional_schedule(num_layers: int, num_messages: int) -> list[tuple[int, int]]:
    """The (layer, message) visit order of conventional processing.

    Equivalent to ``blocked_schedule(..., block=1)``.
    """
    return blocked_schedule(num_layers, num_messages, 1)


def process_blocked(
    layers: Sequence[Layer], messages: Sequence[Message], block: int
) -> list[Message]:
    """Run an off-line blocked pass over ``messages``; return top outputs.

    Functionally equivalent to running any scheduler; used to verify
    that blocking is purely an ordering transformation.
    """
    current: list[list[Message]] = [[m] for m in messages]
    for start in range(0, len(messages), block):
        members = range(start, min(start + block, len(messages)))
        for layer in layers:
            for index in members:
                next_batch: list[Message] = []
                for message in current[index]:
                    next_batch.extend(layer.deliver(message))
                current[index] = next_batch
    return [message for batch in current for message in batch]


@dataclass(frozen=True)
class BlockingEstimate:
    """Analytic cost of one block size."""

    block: int
    instruction_misses_per_message: float
    data_misses_per_message: float
    fits_data_cache: bool

    @property
    def misses_per_message(self) -> float:
        """Combined I+D cache misses per message at this blocking factor."""
        return self.instruction_misses_per_message + self.data_misses_per_message


def estimate_block_cost(
    block: int,
    layer_code_bytes: Sequence[int],
    message_bytes: int,
    dcache_bytes: int,
    line_size: int = 32,
    layer_data_bytes: int = 256,
) -> BlockingEstimate:
    """Analytic per-message miss count for a given block size."""
    if block < 1:
        raise ConfigurationError(f"block must be at least 1, got {block}")
    if message_bytes < 0:
        raise ConfigurationError("message size must be non-negative")
    code_lines = sum(line_count(size, line_size) for size in layer_code_bytes)
    data_lines_per_layer = line_count(layer_data_bytes, line_size)
    message_lines = line_count(message_bytes, line_size)
    num_layers = len(layer_code_bytes)
    footprint = block * message_bytes + layer_data_bytes
    fits = footprint <= dcache_bytes
    instruction = code_lines / block
    if fits:
        data = message_lines + data_lines_per_layer * num_layers / block
    else:
        # Messages evict each other between layers: reloaded per layer.
        data = message_lines * num_layers + data_lines_per_layer * num_layers / block
    return BlockingEstimate(
        block=block,
        instruction_misses_per_message=instruction,
        data_misses_per_message=data,
        fits_data_cache=fits,
    )


def estimate_blocking_factor(
    layer_code_bytes: Sequence[int],
    message_bytes: int,
    dcache_bytes: int,
    line_size: int = 32,
    layer_data_bytes: int = 256,
    max_block: int = 64,
) -> BlockingEstimate:
    """Pick the block size minimizing estimated misses per message.

    With the paper's parameters this lands on the largest block that
    still fits the data cache, matching the Section 3.2 rule.
    """
    if not layer_code_bytes:
        raise ConfigurationError("need at least one layer")
    best: BlockingEstimate | None = None
    for block in range(1, max_block + 1):
        estimate = estimate_block_cost(
            block,
            layer_code_bytes,
            message_bytes,
            dcache_bytes,
            line_size,
            layer_data_bytes,
        )
        if best is None or estimate.misses_per_message < best.misses_per_message:
            best = estimate
    assert best is not None
    return best


def group_layers_for_cache(
    layer_code_bytes: Sequence[int], icache_bytes: int
) -> list[list[int]]:
    """Greedy grouping of adjacent layers whose code shares the I-cache.

    The paper's closing advice: "write layers as independent units,
    measure their working sets, and then decide how to group them to
    maximize locality."  Groups are maximal runs of adjacent layers
    whose combined code fits the instruction cache; a single oversized
    layer forms its own group.
    """
    if icache_bytes <= 0:
        raise ConfigurationError("instruction cache size must be positive")
    groups: list[list[int]] = []
    current: list[int] = []
    current_bytes = 0
    for index, size in enumerate(layer_code_bytes):
        if current and current_bytes + size > icache_bytes:
            groups.append(current)
            current = []
            current_bytes = 0
        current.append(index)
        current_bytes += size
    if current:
        groups.append(current)
    return groups
