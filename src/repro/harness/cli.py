"""``ldlp-experiment run`` / ``regress`` — the parallel harness CLI.

Usage::

    ldlp-experiment run --jobs 4                 # every experiment
    ldlp-experiment run figure5 figure6 --jobs 4 --scale default
    ldlp-experiment regress --jobs 2             # golden gate, cached
    ldlp-experiment regress figure8 --bless      # re-bless after a change

``run`` executes each experiment's declared sweep points over a worker
pool, reusing the content-hashed cache, prints the reproduced tables,
and writes ``BENCH_experiments.json``.  ``regress`` additionally
extracts each experiment's golden quantities and fails (exit 1) when
any drifts outside its checked-in tolerance.
"""

from __future__ import annotations

import argparse
import sys

from ..errors import ConfigurationError
from .bench import DEFAULT_BENCH_PATH, write_bench
from .cache import ResultCache
from ..sim.runner import ENGINE_NAMES
from .golden import DEFAULT_GOLDENS_DIR, bless, check_quantities, load_golden
from .points import SCALES, with_engine
from .registry import EXPERIMENT_MODULES, get_spec
from .runner import ExperimentRun, run_experiment


def build_parser() -> argparse.ArgumentParser:
    """The ``run``/``regress`` argument parser."""
    parser = argparse.ArgumentParser(
        prog="ldlp-experiment",
        description="Parallel experiment harness with result cache and goldens.",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    for command, help_text in (
        ("run", "run experiment sweeps in parallel, write BENCH timings"),
        ("regress", "run (cached) and gate against checked-in goldens"),
    ):
        cmd = sub.add_parser(command, help=help_text)
        cmd.add_argument(
            "experiments",
            nargs="*",
            metavar="experiment",
            help=(
                "experiments to run (default: all): "
                + ", ".join(EXPERIMENT_MODULES)
            ),
        )
        cmd.add_argument(
            "--jobs", "-j", type=int, default=1,
            help="worker processes for sweep points (default 1)",
        )
        cmd.add_argument(
            "--scale", choices=SCALES, default="ci",
            help="sweep scale: ci (fast), default, paper (default: ci)",
        )
        cmd.add_argument(
            "--cache-dir", default=None,
            help="result cache directory (default .ldlp-cache or $LDLP_CACHE_DIR)",
        )
        cmd.add_argument(
            "--no-cache", action="store_true",
            help="recompute every point; do not read or write the cache",
        )
        cmd.add_argument(
            "--bench-out", default=DEFAULT_BENCH_PATH,
            help=f"BENCH output path (default {DEFAULT_BENCH_PATH})",
        )
        cmd.add_argument(
            "--no-bench", action="store_true", help="skip writing the BENCH file"
        )
        cmd.add_argument(
            "--engine", choices=ENGINE_NAMES, default=None,
            help=(
                "pin simulation-backed points to one drive-loop engine "
                "(default: each point's own default, currently vec); "
                "engine-pinned params get their own cache namespace"
            ),
        )
    run_cmd, regress_cmd = sub.choices["run"], sub.choices["regress"]
    run_cmd.add_argument(
        "--quantities", action="store_true",
        help="print the golden quantities of each experiment",
    )
    run_cmd.add_argument(
        "--no-render", action="store_true",
        help="suppress the reproduced tables, print timings only",
    )
    regress_cmd.add_argument(
        "--goldens-dir", default=DEFAULT_GOLDENS_DIR,
        help=f"goldens directory (default {DEFAULT_GOLDENS_DIR}/)",
    )
    regress_cmd.add_argument(
        "--bless", action="store_true",
        help="rewrite the goldens from this run instead of checking",
    )
    regress_cmd.add_argument(
        "--expect-cached", action="store_true",
        help="fail if any point had to be recomputed (cache-hash instability)",
    )
    return parser


def _run_all(args: argparse.Namespace) -> list[ExperimentRun]:
    names = list(args.experiments) or list(EXPERIMENT_MODULES)
    cache = ResultCache(root=args.cache_dir, enabled=not args.no_cache)
    runs = []
    for name in names:
        spec = get_spec(name)
        if args.engine is not None:
            spec = with_engine(spec, args.engine)
        run = run_experiment(spec, scale=args.scale, jobs=args.jobs, cache=cache)
        print(run.timing_summary())
        runs.append(run)
    return runs


def _finish(args: argparse.Namespace, runs: list[ExperimentRun]) -> None:
    if not args.no_bench:
        path = write_bench(runs, args.bench_out)
        print(f"\nwrote {path}")


def cmd_run(args: argparse.Namespace) -> int:
    """``run``: execute sweeps, render tables, write BENCH."""
    runs = _run_all(args)
    for run in runs:
        spec = get_spec(run.name)
        if not args.no_render and spec.assemble is not None:
            print()
            print(spec.assemble(run.points, run.results).render())
        if args.quantities:
            print(f"\n{run.name} quantities:")
            for key, value in sorted(run.quantities(spec).items()):
                print(f"  {key} = {value:g}")
    _finish(args, runs)
    return 0


def cmd_regress(args: argparse.Namespace) -> int:
    """``regress``: execute sweeps and gate quantities against goldens."""
    runs = _run_all(args)
    print()
    failures = 0
    for run in runs:
        spec = get_spec(run.name)
        quantities = run.quantities(spec)
        if args.bless:
            path = bless(spec, args.scale, quantities, root=args.goldens_dir)
            print(f"BLESSED {run.name}: {len(quantities)} quantities -> {path}")
            continue
        try:
            golden = load_golden(run.name, args.scale, root=args.goldens_dir)
        except ConfigurationError as exc:
            print(f"FAIL    {run.name}: {exc}")
            failures += 1
            continue
        breaches = check_quantities(run.name, golden, quantities)
        if args.expect_cached and run.computed:
            print(
                f"FAIL    {run.name}: {run.computed} points were recomputed "
                f"(expected a fully cached run; cache keys are unstable or "
                f"the cache was not warmed)"
            )
            failures += 1
        elif breaches:
            print(f"FAIL    {run.name}: {len(breaches)} quantity breach(es)")
            for breach in breaches:
                print(f"        {breach.describe()}")
            failures += 1
        else:
            print(f"PASS    {run.name}: {len(golden)} quantities within tolerance")
    _finish(args, runs)
    if failures:
        print(f"\nregression gate FAILED for {failures} experiment(s)")
        return 1
    if not args.bless:
        print("\nregression gate passed")
    return 0


def main(argv: list[str] | None = None) -> int:
    """CLI entry: dispatch to :func:`cmd_run` or :func:`cmd_regress`."""
    args = build_parser().parse_args(argv)
    if args.command == "run":
        return cmd_run(args)
    return cmd_regress(args)


if __name__ == "__main__":
    sys.exit(main())
