"""Parallel experiment harness: sweep points, result cache, goldens.

Every figure/table module in :mod:`repro.experiments` declares a
:class:`~repro.harness.points.SweepSpec` named ``SWEEP``: the list of
pure, picklable sweep points that make up the experiment, how to
extract its paper-expected scalar quantities, and which source modules
its results depend on.  On top of that declaration this package
provides:

* :mod:`repro.harness.runner` — fan the points out over a
  ``multiprocessing`` worker pool (``--jobs N``), with per-point
  wall-clock timing;
* :mod:`repro.harness.cache` — an on-disk result cache keyed by a
  content hash of (point function, parameters, repro version, relevant
  source files) so unchanged points are never recomputed;
* :mod:`repro.harness.golden` — a golden-figure regression gate:
  checked-in expected quantities with tolerances under ``goldens/``,
  compared by ``ldlp-experiment regress``;
* :mod:`repro.harness.bench` — the ``BENCH_experiments.json`` writer
  recording per-experiment timings, speedups, and cache hit rates.
"""

from .bench import write_bench
from .cache import ResultCache, content_key, source_digest
from .golden import GoldenBreach, bless, check_quantities, load_golden
from .points import SweepPoint, SweepSpec, Tolerance
from .registry import all_specs, get_spec
from .runner import ExperimentRun, run_experiment

__all__ = [
    "ExperimentRun",
    "write_bench",
    "GoldenBreach",
    "ResultCache",
    "SweepPoint",
    "SweepSpec",
    "Tolerance",
    "all_specs",
    "bless",
    "check_quantities",
    "content_key",
    "get_spec",
    "load_golden",
    "run_experiment",
    "source_digest",
]
