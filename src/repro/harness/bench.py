"""``BENCH_experiments.json`` — the repo's experiment-perf trajectory.

One file records, for every experiment the harness ran: how many sweep
points it has, how many came from the cache, wall-clock and estimated
serial time, the parallel/cache speedup, and the slowest point.  CI
uploads it as an artifact on every run, so the timing trajectory of the
reproduction is tracked alongside its correctness.
"""

from __future__ import annotations

import json
import platform
import time
from pathlib import Path
from typing import Callable

from ..version import __version__
from .runner import ExperimentRun

#: Default output path (relative to the working directory).
DEFAULT_BENCH_PATH = "BENCH_experiments.json"


def bench_record(run: ExperimentRun) -> dict:
    """The BENCH entry for one experiment run.

    ``counters`` carries the aggregated :mod:`repro.obs` totals for the
    experiment's sweep (cache misses, mbuf traffic, batching), rounded
    so the file diffs cleanly between blessings.
    """
    slowest_key = max(run.point_elapsed, key=run.point_elapsed.__getitem__)
    return {
        "counters": {
            name: round(value, 4) for name, value in sorted(run.counters.items())
        },
        "scale": run.scale,
        "jobs": run.jobs,
        "points": len(run.points),
        "cache_hits": run.cache_hits,
        "computed": run.computed,
        "hit_rate": round(run.hit_rate, 4),
        "wall_s": round(run.wall_s, 4),
        "serial_estimate_s": round(run.serial_s, 4),
        "speedup": round(run.speedup, 2),
        "mean_point_s": round(run.serial_s / len(run.points), 4),
        "slowest_point": {
            "key": slowest_key,
            "elapsed_s": round(run.point_elapsed[slowest_key], 4),
        },
    }


def write_bench(
    runs: list[ExperimentRun],
    path: str | Path = DEFAULT_BENCH_PATH,
    # The one legitimate wall-clock read in the harness: the BENCH
    # file's generation timestamp is measurement *metadata*, never a
    # reproduced quantity.  Injectable so tests can pin it.
    clock: Callable[[], float] = time.time,  # det: allow[DET003] BENCH metadata timestamp, injectable for tests
) -> Path:
    """Write the BENCH file for a set of experiment runs.

    ``clock`` supplies the ``generated_unix`` stamp (defaults to
    :func:`time.time`); inject a fixed clock for byte-stable output.
    """
    experiments = {run.name: bench_record(run) for run in runs}
    payload = {
        "bench": "experiments",
        "version": __version__,
        "generated_unix": int(clock()),
        "python": platform.python_version(),
        "machine": platform.machine(),
        "totals": {
            "experiments": len(runs),
            "points": sum(len(run.points) for run in runs),
            "cache_hits": sum(run.cache_hits for run in runs),
            "computed": sum(run.computed for run in runs),
            "wall_s": round(sum(run.wall_s for run in runs), 4),
            "serial_estimate_s": round(sum(run.serial_s for run in runs), 4),
        },
        "experiments": experiments,
    }
    out = Path(path)
    out.write_text(json.dumps(payload, indent=1, sort_keys=True) + "\n")
    return out
