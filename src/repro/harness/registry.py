"""Registry of the experiments' ``SWEEP`` declarations.

Specs are resolved lazily (imported at call time) so that importing
:mod:`repro.harness` never drags in — or circularly re-enters — the
experiment modules themselves.
"""

from __future__ import annotations

from importlib import import_module

from ..errors import ConfigurationError
from .points import SweepSpec

#: Every experiment module that declares a ``SWEEP`` spec, in the
#: canonical order used by ``ldlp-experiment run`` with no arguments.
EXPERIMENT_MODULES: dict[str, str] = {
    "table1": "repro.experiments.table1",
    "table2": "repro.experiments.table2",
    "table3": "repro.experiments.table3",
    "figure1": "repro.experiments.figure1",
    "figure5": "repro.experiments.figure5",
    "figure6": "repro.experiments.figure6",
    "figure7": "repro.experiments.figure7",
    "figure8": "repro.experiments.figure8",
    "motivation": "repro.experiments.motivation",
    "ablations": "repro.experiments.ablations",
    "schedules": "repro.experiments.schedules",
    "faults": "repro.faults.campaigns",
    "multicore": "repro.experiments.multicore",
    "flows": "repro.experiments.flows",
    "gossip": "repro.experiments.gossip",
}


def get_spec(name: str) -> SweepSpec:
    """Resolve one experiment's sweep spec by CLI name."""
    try:
        module_name = EXPERIMENT_MODULES[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown experiment {name!r}; expected one of "
            f"{', '.join(EXPERIMENT_MODULES)}"
        ) from None
    module = import_module(module_name)
    spec = getattr(module, "SWEEP", None)
    if not isinstance(spec, SweepSpec):
        raise ConfigurationError(
            f"experiment module {module_name} declares no SWEEP spec"
        )
    return spec


def all_specs() -> list[SweepSpec]:
    """Every registered spec, in canonical order."""
    return [get_spec(name) for name in EXPERIMENT_MODULES]
