"""The declarative sweep-point interface experiments implement.

A sweep point is one unit of parallel work: a pure function of its
parameters, addressed by dotted name so worker processes can import and
execute it, with JSON-serializable parameters and result so the on-disk
cache can store it.  A :class:`SweepSpec` bundles an experiment's
points with its golden quantities and cache dependencies.
"""

from __future__ import annotations

import inspect
from dataclasses import dataclass, field, replace
from importlib import import_module
from typing import Any, Callable

from ..errors import ConfigurationError

#: Experiment scales, smallest first.  ``ci`` is sized for the CI golden
#: gate, ``default`` for minutes-scale local reproduction, ``paper`` for
#: the full published methodology where an experiment defines one.
SCALES = ("ci", "default", "paper")


@dataclass(frozen=True)
class SweepPoint:
    """One parallelizable unit of an experiment sweep.

    Attributes
    ----------
    experiment:
        Name of the owning experiment (``figure5``, ``table1``, ...).
    key:
        Unique label within the experiment (``ldlp/rate=9000``); result
        dictionaries are keyed by it, in declared point order, so runs
        at any worker count serialize identically.
    func:
        Dotted path ``package.module:function`` of a module-level pure
        function.  Workers resolve it by import, so it must not close
        over any state.
    params:
        JSON-serializable keyword arguments; together with ``func``
        they fully determine the result.
    """

    experiment: str
    key: str
    func: str
    params: dict[str, Any]

    def resolve(self) -> Callable[..., Any]:
        """Import and return the point function."""
        module_name, _, attr = self.func.partition(":")
        if not attr:
            raise ConfigurationError(
                f"sweep point function {self.func!r} must be 'module:function'"
            )
        return getattr(import_module(module_name), attr)

    def execute(self) -> Any:
        """Run the point in this process and return its raw result."""
        return self.resolve()(**self.params)


@dataclass(frozen=True)
class Tolerance:
    """How far a reproduced quantity may drift from its golden value.

    A measurement passes when ``|got - want| <= max(abs, rel * |want|)``.
    The default (both zero) demands exact reproduction — right for
    deterministic analyses like Table 1.
    """

    rel: float = 0.0
    abs: float = 0.0

    def allows(self, want: float, got: float) -> bool:
        """True when ``got`` is within this tolerance of ``want``."""
        return abs(got - want) <= max(self.abs, self.rel * abs(want))


@dataclass(frozen=True)
class SweepSpec:
    """Everything the harness needs to know about one experiment.

    Attributes
    ----------
    name:
        CLI name of the experiment.
    points:
        ``points(scale) -> list[SweepPoint]`` — the declarative sweep.
    quantities:
        ``quantities(points, results) -> dict[str, float]`` — the
        scalar paper-expected quantities extracted from a completed
        run's results (keyed by point key), used by the golden gate.
    tolerances:
        Per-quantity drift tolerances; quantities not listed here use
        ``default_tolerance``.
    sources:
        Module or package names (``repro.sim``, ``repro.cache``) whose
        file contents are hashed into every cache key, so editing any
        model the experiment depends on invalidates its cached points.
    assemble:
        Optional ``assemble(points, results) -> object`` rebuilding the
        experiment's rich result (with ``render()``) from point results.
    """

    name: str
    points: Callable[[str], list[SweepPoint]]
    quantities: Callable[[list[SweepPoint], dict[str, Any]], dict[str, float]]
    sources: tuple[str, ...]
    tolerances: dict[str, Tolerance] = field(default_factory=dict)
    default_tolerance: Tolerance = field(default_factory=Tolerance)
    assemble: Callable[[list[SweepPoint], dict[str, Any]], Any] | None = None

    def points_for(self, scale: str) -> list[SweepPoint]:
        """Build the sweep points for one scale, checking key uniqueness."""
        if scale not in SCALES:
            raise ConfigurationError(
                f"unknown scale {scale!r}; expected one of {SCALES}"
            )
        built = self.points(scale)
        if not built:
            raise ConfigurationError(f"experiment {self.name!r} declared no points")
        seen: set[str] = set()
        for point in built:
            if point.key in seen:
                raise ConfigurationError(
                    f"experiment {self.name!r} declares duplicate point "
                    f"key {point.key!r}"
                )
            seen.add(point.key)
        return built

    def tolerance_for(self, quantity: str) -> Tolerance:
        """The per-quantity tolerance, falling back to the default."""
        return self.tolerances.get(quantity, self.default_tolerance)


def point_accepts_engine(point: SweepPoint) -> bool:
    """Whether a point's function takes the ``engine`` keyword.

    Simulation-backed points (``poisson_point``, ``fault_point``, …)
    declare it; analytic points (tables, figure 1) do not and must be
    left untouched by :func:`with_engine`.
    """
    return "engine" in inspect.signature(point.resolve()).parameters


def with_engine(spec: SweepSpec, engine: str) -> SweepSpec:
    """A copy of ``spec`` with every sim point pinned to one engine.

    Points whose functions accept an ``engine`` keyword get it injected
    into their params — which also namespaces their result-cache keys
    per engine (params are part of the content hash), so the per-engine
    CI regress gates never share cache entries.  Points without the
    keyword pass through unchanged.
    """
    def pinned_points(scale: str) -> list[SweepPoint]:
        return [
            replace(point, params={**point.params, "engine": engine})
            if point_accepts_engine(point)
            else point
            for point in spec.points(scale)
        ]

    return replace(spec, points=pinned_points)
