"""The golden-figure regression gate.

Each experiment's paper-expected quantities (Figure 5's miss-count
levels, Table 1's working-set totals, Figure 8's ~900-byte checksum
crossover, ...) are pinned with tolerances in checked-in JSON files
under ``goldens/``; ``ldlp-experiment regress`` recomputes them (via
the cache, so unchanged code costs nothing) and fails when any quantity
drifts out of tolerance.  ``--bless`` rewrites the goldens from the
current run after an intentional model change.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path

from ..errors import ConfigurationError
from ..version import __version__
from .points import SweepSpec, Tolerance

#: Default goldens directory (relative to the working directory).
DEFAULT_GOLDENS_DIR = "goldens"


def golden_path(root: str | Path, name: str, scale: str) -> Path:
    """Location of one experiment's golden file at one scale."""
    return Path(root) / f"{name}.{scale}.json"


@dataclass(frozen=True)
class GoldenBreach:
    """One quantity outside its golden tolerance."""

    experiment: str
    quantity: str
    want: float
    got: float
    tolerance: Tolerance

    def describe(self) -> str:
        """One gate-failure line naming the quantity and its drift."""
        return (
            f"{self.experiment}.{self.quantity}: got {self.got:g}, "
            f"golden {self.want:g} "
            f"(tol rel={self.tolerance.rel:g} abs={self.tolerance.abs:g})"
        )


def bless(
    spec: SweepSpec,
    scale: str,
    quantities: dict[str, float],
    root: str | Path = DEFAULT_GOLDENS_DIR,
) -> Path:
    """Write (or rewrite) an experiment's golden file from a run."""
    path = golden_path(root, spec.name, scale)
    path.parent.mkdir(parents=True, exist_ok=True)
    payload = {
        "experiment": spec.name,
        "scale": scale,
        "blessed_version": __version__,
        "quantities": {
            name: {
                "value": value,
                "rel": spec.tolerance_for(name).rel,
                "abs": spec.tolerance_for(name).abs,
            }
            for name, value in sorted(quantities.items())
        },
    }
    path.write_text(json.dumps(payload, indent=1, sort_keys=True) + "\n")
    return path


def load_golden(
    name: str, scale: str, root: str | Path = DEFAULT_GOLDENS_DIR
) -> dict[str, tuple[float, Tolerance]]:
    """Load one golden file as {quantity: (value, tolerance)}."""
    path = golden_path(root, name, scale)
    if not path.exists():
        raise ConfigurationError(
            f"no golden for {name!r} at scale {scale!r} ({path}); "
            f"run 'ldlp-experiment regress {name} --scale {scale} --bless'"
        )
    data = json.loads(path.read_text())
    return {
        quantity: (
            float(entry["value"]),
            Tolerance(rel=float(entry["rel"]), abs=float(entry["abs"])),
        )
        for quantity, entry in data["quantities"].items()
    }


def check_quantities(
    experiment: str,
    golden: dict[str, tuple[float, Tolerance]],
    got: dict[str, float],
) -> list[GoldenBreach]:
    """Compare reproduced quantities against a golden; return breaches.

    A quantity present in the golden but missing from the run (or vice
    versa) is itself a breach: renames must be blessed deliberately.
    """
    breaches: list[GoldenBreach] = []
    for quantity, (want, tolerance) in golden.items():
        if quantity not in got:
            breaches.append(
                GoldenBreach(experiment, quantity, want, float("nan"), tolerance)
            )
            continue
        value = got[quantity]
        if not tolerance.allows(want, value):
            breaches.append(
                GoldenBreach(experiment, quantity, want, value, tolerance)
            )
    for quantity in sorted(set(got) - set(golden)):
        breaches.append(
            GoldenBreach(experiment, quantity, float("nan"), got[quantity], Tolerance())
        )
    return breaches
