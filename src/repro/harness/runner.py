"""Fan an experiment's sweep points out over a worker pool.

Sweep points are pure functions of their parameters, so they
parallelize trivially: uncached points are mapped over a
``multiprocessing`` pool (``jobs > 1``) or executed inline
(``jobs == 1``), and results are keyed by point key *in declared
order*, so the serialized results of a run are byte-identical at any
worker count.  Every point is timed; the per-experiment timing summary
(wall clock, estimated serial time, speedup, cache hit rate) feeds
``BENCH_experiments.json``.

Every point additionally executes under a metrics-only
:class:`repro.obs.runtime.Recorder` (``keep_spans=False``), so the
instrumented hot paths contribute counter totals — cache misses, mbuf
traffic, scheduler batching — without retaining per-span memory.  The
counters are plain ``dict[str, float]`` so they pickle through the
worker pool, are cached alongside each point result, and aggregate
into :attr:`ExperimentRun.counters` for ``BENCH_experiments.json``.
"""

from __future__ import annotations

import multiprocessing
import time
from dataclasses import dataclass, field
from typing import Any

from ..errors import ConfigurationError
from ..obs.runtime import Recorder, recording
from .cache import ResultCache, canonical_json, content_key
from .points import SweepPoint, SweepSpec


def _execute_point(point: SweepPoint) -> tuple[str, Any, float, dict[str, float]]:
    """Worker entry: run one point → (key, result, seconds, counters).

    Runs the point under a metrics-only recorder; the obs layer never
    perturbs model state, so results are identical with or without it.
    """
    start = time.perf_counter()  # det: allow[DET003] times the point for BENCH; never part of the result
    recorder = Recorder(keep_spans=False)
    with recording(recorder):
        result = point.execute()
    counters = recorder.counters.as_dict()
    return point.key, result, time.perf_counter() - start, counters  # det: allow[DET003] elapsed feeds BENCH timing only


def merge_counters(totals: dict[str, float], extra: dict[str, float]) -> None:
    """Accumulate one point's counter dict into a running total."""
    for name, value in extra.items():
        totals[name] = totals.get(name, 0.0) + value


@dataclass
class ExperimentRun:
    """Outcome of one harness run of one experiment."""

    name: str
    scale: str
    jobs: int
    points: list[SweepPoint]
    results: dict[str, Any]  # point key -> result, in declared order
    cache_hits: int
    computed: int
    wall_s: float
    point_elapsed: dict[str, float] = field(default_factory=dict)
    #: Aggregated obs counter totals over every point (cached points
    #: contribute the counters recorded when first computed).
    counters: dict[str, float] = field(default_factory=dict)

    @property
    def hit_rate(self) -> float:
        """Fraction of points served from the result cache."""
        total = len(self.points)
        return self.cache_hits / total if total else 0.0

    @property
    def serial_s(self) -> float:
        """Estimated serial cost: the sum of every point's own runtime
        (cached points contribute the runtime recorded when they were
        first computed)."""
        return sum(self.point_elapsed.values())

    @property
    def speedup(self) -> float:
        """Serial-estimate over wall-clock; > 1 means the pool or the
        cache saved time."""
        if self.wall_s <= 0:
            return float("nan")
        return self.serial_s / self.wall_s

    def results_json(self) -> str:
        """Canonical serialization used for determinism diffing."""
        return canonical_json(self.results)

    def quantities(self, spec: SweepSpec) -> dict[str, float]:
        """The experiment's named golden quantities from this run."""
        return spec.quantities(self.points, self.results)

    def timing_summary(self) -> str:
        """One line of run timings (points, cache hits, wall, speedup)."""
        return (
            f"{self.name}: {len(self.points)} points, "
            f"{self.cache_hits} cached ({100 * self.hit_rate:.0f}%), "
            f"{self.computed} computed in {self.wall_s:.2f}s wall "
            f"(serial estimate {self.serial_s:.2f}s, {self.speedup:.1f}x)"
        )


def run_experiment(
    spec: SweepSpec,
    scale: str = "ci",
    jobs: int = 1,
    cache: ResultCache | None = None,
) -> ExperimentRun:
    """Run one experiment's sweep, using the cache and a worker pool.

    Results are returned keyed by point key in the order the spec
    declared the points, independent of the completion order in the
    pool — a run at ``jobs=4`` serializes identically to ``jobs=1``.
    """
    if jobs < 1:
        raise ConfigurationError(f"jobs must be >= 1, got {jobs}")
    cache = cache if cache is not None else ResultCache()
    points = spec.points_for(scale)
    start = time.perf_counter()  # det: allow[DET003] wall_s is BENCH timing metadata, not a result

    keys = {point.key: content_key(point, spec.sources) for point in points}
    results: dict[str, Any] = {}
    elapsed: dict[str, float] = {}
    counters: dict[str, float] = {}
    pending: list[SweepPoint] = []
    for point in points:
        entry = cache.lookup(spec.name, keys[point.key])
        if entry is None:
            pending.append(point)
        else:
            results[point.key] = entry.result
            elapsed[point.key] = entry.elapsed_s
            merge_counters(counters, entry.counters)
    cache_hits = len(points) - len(pending)

    if pending:
        if jobs == 1 or len(pending) == 1:
            computed = [_execute_point(point) for point in pending]
        else:
            with multiprocessing.Pool(processes=min(jobs, len(pending))) as pool:
                computed = pool.map(_execute_point, pending)
        for point, (key, result, seconds, point_counters) in zip(pending, computed):
            results[point.key] = result
            elapsed[point.key] = seconds
            merge_counters(counters, point_counters)
            cache.store(
                spec.name, keys[point.key], point, result, seconds, point_counters
            )

    # Re-key in declared order so serialization ignores completion order.
    ordered = {point.key: results[point.key] for point in points}
    return ExperimentRun(
        name=spec.name,
        scale=scale,
        jobs=jobs,
        points=points,
        results=ordered,
        cache_hits=cache_hits,
        computed=len(pending),
        wall_s=time.perf_counter() - start,  # det: allow[DET003] BENCH timing metadata
        point_elapsed={point.key: elapsed[point.key] for point in points},
        counters={name: counters[name] for name in sorted(counters)},
    )
