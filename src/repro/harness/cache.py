"""On-disk result cache keyed by content hashes.

A cached sweep point is addressed by the SHA-256 of its function path,
its parameters, the package version, and a digest of the source files
the experiment declares it depends on.  Any edit to a relevant model
file therefore invalidates exactly the experiments that use it, while
unrelated experiments keep their cached points.

Layout on disk (default ``.ldlp-cache/``, override with ``--cache-dir``
or ``LDLP_CACHE_DIR``)::

    .ldlp-cache/
      figure5/
        <16-hex-digit key prefix>.json   # {"key", "point_key", "func",
                                         #  "params", "result", "elapsed_s"}
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import dataclass, field
from importlib import import_module
from pathlib import Path
from typing import Any

from ..errors import ConfigurationError
from ..version import __version__
from .points import SweepPoint

#: Environment variable overriding the default cache directory.
CACHE_DIR_ENV = "LDLP_CACHE_DIR"

#: Default cache directory (relative to the working directory).
DEFAULT_CACHE_DIR = ".ldlp-cache"

_digest_memo: dict[tuple[str, ...], str] = {}


def canonical_json(value: Any) -> str:
    """Deterministic JSON used for hashing and byte-identical diffing."""
    return json.dumps(value, sort_keys=True, separators=(",", ":"))


def source_digest(modules: tuple[str, ...]) -> str:
    """Hash the source files of the given modules/packages.

    Package names cover every ``.py`` file under the package directory;
    module names cover the single file.  The digest changes whenever any
    covered file's bytes change, so cached results can never survive an
    edit to the models that produced them.
    """
    if modules in _digest_memo:
        return _digest_memo[modules]
    outer = hashlib.sha256()
    for name in sorted(modules):
        module = import_module(name)
        module_file = getattr(module, "__file__", None)
        if module_file is None:
            raise ConfigurationError(f"module {name!r} has no source file to hash")
        path = Path(module_file)
        files = (
            sorted(path.parent.rglob("*.py"))
            if path.name == "__init__.py"
            else [path]
        )
        for file in files:
            outer.update(str(file.name).encode())
            outer.update(hashlib.sha256(file.read_bytes()).digest())
    digest = outer.hexdigest()
    _digest_memo[modules] = digest
    return digest


def content_key(point: SweepPoint, sources: tuple[str, ...]) -> str:
    """The cache key of one sweep point."""
    payload = canonical_json(
        {
            "func": point.func,
            "params": point.params,
            "version": __version__,
            "sources": source_digest(sources),
        }
    )
    return hashlib.sha256(payload.encode()).hexdigest()


@dataclass(frozen=True)
class CacheEntry:
    """One stored point result plus the time it originally took.

    ``counters`` holds the obs counter totals recorded when the point
    was first computed; entries written before the obs layer existed
    deserialize with an empty dict.
    """

    result: Any
    elapsed_s: float
    counters: dict[str, float] = field(default_factory=dict)


class ResultCache:
    """Content-addressed store of sweep-point results.

    ``enabled=False`` turns every lookup into a miss and every store
    into a no-op (``--no-cache``).
    """

    def __init__(self, root: str | Path | None = None, enabled: bool = True) -> None:
        if root is None:
            root = os.environ.get(CACHE_DIR_ENV, DEFAULT_CACHE_DIR)
        self.root = Path(root)
        self.enabled = enabled

    def _path(self, experiment: str, key: str) -> Path:
        return self.root / experiment / f"{key[:16]}.json"

    def lookup(self, experiment: str, key: str) -> CacheEntry | None:
        """Return the stored entry for ``key``, or None on a miss."""
        if not self.enabled:
            return None
        path = self._path(experiment, key)
        if not path.exists():
            return None
        try:
            data = json.loads(path.read_text())
        except (OSError, json.JSONDecodeError):
            return None
        if data.get("key") != key:  # prefix collision or stale file
            return None
        return CacheEntry(
            result=data["result"],
            elapsed_s=float(data["elapsed_s"]),
            counters=dict(data.get("counters", {})),
        )

    def store(
        self,
        experiment: str,
        key: str,
        point: SweepPoint,
        result: Any,
        elapsed_s: float,
        counters: dict[str, float] | None = None,
    ) -> None:
        """Persist one computed point result atomically."""
        if not self.enabled:
            return
        path = self._path(experiment, key)
        path.parent.mkdir(parents=True, exist_ok=True)
        payload = {
            "key": key,
            "point_key": point.key,
            "func": point.func,
            "params": point.params,
            "result": result,
            "elapsed_s": elapsed_s,
            "counters": counters or {},
        }
        tmp = path.with_suffix(f".tmp.{os.getpid()}")
        tmp.write_text(json.dumps(payload, sort_keys=True, indent=1))
        tmp.replace(path)

    def clear(self, experiment: str | None = None) -> int:
        """Delete cached entries; returns the number of files removed."""
        roots = [self.root / experiment] if experiment else [self.root]
        removed = 0
        for root in roots:
            if not root.is_dir():
                continue
            for file in root.rglob("*.json"):
                file.unlink()
                removed += 1
        return removed
