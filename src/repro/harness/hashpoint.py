"""``python -m repro.harness.hashpoint`` — hash one sweep point's result.

The PYTHONHASHSEED smoke gate: CI executes the same sweep point twice
under different ``PYTHONHASHSEED`` values and diffs the printed hashes.
Any dependence of a point result on the interpreter's per-process hash
salt (``hash()`` of strings, set iteration order...) shows up as a
digest mismatch, independently of the static DET rules::

    a=$(PYTHONHASHSEED=0     python -m repro.harness.hashpoint table1)
    b=$(PYTHONHASHSEED=12345 python -m repro.harness.hashpoint table1)
    test "$a" = "$b"

The digest is the SHA-256 of the point result's canonical JSON (sorted
keys, fixed separators) — the same serialization the result cache and
the byte-identical ``--jobs`` contract are built on.
"""

from __future__ import annotations

import argparse
import hashlib
import sys
from dataclasses import replace

from ..errors import ReproError
from .cache import canonical_json
from .points import SCALES, point_accepts_engine
from .registry import EXPERIMENT_MODULES, get_spec


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.harness.hashpoint",
        description=(
            "Execute one sweep point in-process and print the SHA-256 of "
            "its canonical-JSON result (the PYTHONHASHSEED smoke gate)."
        ),
    )
    parser.add_argument(
        "experiment",
        choices=sorted(EXPERIMENT_MODULES),
        help="experiment whose sweep to draw the point from",
    )
    parser.add_argument(
        "--scale", choices=SCALES, default="ci", help="sweep scale"
    )
    parser.add_argument(
        "--index", type=int, default=0,
        help="which declared point to execute (default: the first)",
    )
    parser.add_argument(
        "--engine", choices=("scalar", "vec"), default=None,
        help=(
            "pin a simulation-backed point to one drive-loop engine; "
            "the cross-engine CI gate diffs scalar vs vec digests"
        ),
    )
    return parser


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        spec = get_spec(args.experiment)
        points = spec.points_for(args.scale)
        if not 0 <= args.index < len(points):
            parser.error(
                f"--index {args.index} out of range; {spec.name!r} declares "
                f"{len(points)} point(s) at scale {args.scale!r}"
            )
        point = points[args.index]
        if args.engine is not None and point_accepts_engine(point):
            point = replace(
                point, params={**point.params, "engine": args.engine}
            )
        digest = hashlib.sha256(
            canonical_json(point.execute()).encode("utf-8")
        ).hexdigest()
    except ReproError as exc:
        print(f"hashpoint failed: {exc}", file=sys.stderr)
        return 2
    print(f"{spec.name}/{point.key} {digest}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
