"""Published targets from the paper's Section 2 (Tables 1-3, Figure 1).

These constants are the numbers we reproduce *against*; the model in
:mod:`repro.netbsd.receive_path` is calibrated to land on them, and
EXPERIMENTS.md records measured-vs-paper for each.
"""

from __future__ import annotations

from dataclasses import dataclass

from .functions import (
    ALL_LAYERS,
    LAYER_BUFFER,
    LAYER_COMMON,
    LAYER_COPY,
    LAYER_ETHERNET,
    LAYER_IP,
    LAYER_KERNEL,
    LAYER_PROCESS,
    LAYER_SOCKET_HIGH,
    LAYER_SOCKET_LOW,
    LAYER_TCP,
)


@dataclass(frozen=True)
class LayerWorkingSet:
    """One Table-1 row: bytes of code / read-only data / mutable data."""

    code: int
    readonly: int
    mutable: int

    @property
    def total(self) -> int:
        return self.code + self.readonly + self.mutable


#: Table 1 — "Breakdown of Working Set Sizes in NetBSD TCP Receive &
#: Acknowledge Path", 32-byte cache lines.
PAPER_TABLE1: dict[str, LayerWorkingSet] = {
    LAYER_ETHERNET: LayerWorkingSet(4480, 864, 672),
    LAYER_IP: LayerWorkingSet(2784, 480, 128),
    LAYER_TCP: LayerWorkingSet(3168, 448, 160),
    LAYER_SOCKET_LOW: LayerWorkingSet(5536, 544, 448),
    LAYER_SOCKET_HIGH: LayerWorkingSet(608, 32, 160),
    LAYER_KERNEL: LayerWorkingSet(1184, 256, 64),
    LAYER_PROCESS: LayerWorkingSet(2208, 1280, 640),
    LAYER_BUFFER: LayerWorkingSet(5472, 544, 736),
    LAYER_COMMON: LayerWorkingSet(1632, 192, 512),
    LAYER_COPY: LayerWorkingSet(3232, 448, 128),
}

#: Table 1's printed totals.  Note: the read-only (5088) and mutable
#: (3648) columns equal the sum of the rows above exactly; the printed
#: code total (30592) exceeds the row sum (30304) by 288 bytes — a
#: discrepancy present in the source text itself.  We reproduce the
#: rows; see EXPERIMENTS.md.
PAPER_TABLE1_TOTAL = LayerWorkingSet(30592, 5088, 3648)


def table1_row_sum() -> LayerWorkingSet:
    """Sum of the published per-layer rows."""
    return LayerWorkingSet(
        code=sum(ws.code for ws in PAPER_TABLE1.values()),
        readonly=sum(ws.readonly for ws in PAPER_TABLE1.values()),
        mutable=sum(ws.mutable for ws in PAPER_TABLE1.values()),
    )


@dataclass(frozen=True)
class Table3Row:
    """One Table 3 row: % change in bytes and lines vs 32-byte lines."""

    line_size: int
    code_bytes_pct: float
    code_lines_pct: float
    ro_bytes_pct: float | None
    ro_lines_pct: float | None
    mut_bytes_pct: float | None
    mut_lines_pct: float | None


#: Table 3 — "Effect of Cache Line Size on Working Set for TCP/IP
#: traces".  None marks the paper's N/A entries (data lines below the
#: Alpha's 8-byte word are infeasible).
PAPER_TABLE3: tuple[Table3Row, ...] = (
    Table3Row(64, +17.0, -41.0, +44.0, -28.0, +55.0, -22.0),
    Table3Row(32, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0),
    Table3Row(16, -13.0, +73.0, -31.0, +38.0, -38.0, +23.0),
    Table3Row(8, -20.0, +216.0, -55.0, +81.0, -56.0, +75.0),
    Table3Row(4, -25.0, +500.0, None, None, None, None),
)


@dataclass(frozen=True)
class PhaseTotals:
    """Figure 1's per-phase totals: (bytes, refs) for write/read/code."""

    label: str
    write_bytes: int
    write_refs: int
    read_bytes: int
    read_refs: int
    code_bytes: int
    code_refs: int


#: Figure 1 per-column totals.  Column-to-phase assignment follows the
#: narrative (see DESIGN.md "Interpretation notes"): the small column is
#: the entry phase, the ref-heavy column the device interrupt, the
#: byte-heavy column the exit phase.
PAPER_PHASES: tuple[PhaseTotals, ...] = (
    PhaseTotals("entry", 1056, 89, 1856, 121, 3008, 564),
    PhaseTotals("pkt intr", 6848, 1585, 18496, 6251, 13664, 43138),
    PhaseTotals("exit", 7328, 1089, 10752, 2103, 18240, 10518),
)

#: Clark et al.'s comparison point quoted in Section 2.4.
CLARK_INSTRUCTIONS = 639
CLARK_BYTES_ON_ALPHA = 2556

#: Message size carried through the traced path (Section 2.4: "between
#: 512 and 584 bytes depending on the layer").
TRACE_MESSAGE_BYTES = 552

__all__ = [
    "ALL_LAYERS",
    "CLARK_BYTES_ON_ALPHA",
    "CLARK_INSTRUCTIONS",
    "LayerWorkingSet",
    "PAPER_PHASES",
    "PAPER_TABLE1",
    "PAPER_TABLE1_TOTAL",
    "PAPER_TABLE3",
    "PhaseTotals",
    "TRACE_MESSAGE_BYTES",
    "Table3Row",
    "table1_row_sum",
]
