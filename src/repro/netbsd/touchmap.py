"""Synthesizing sub-line touch maps for the receive-path model.

The paper publishes *line-aggregated* working sets (Table 1, 32-byte
lines) and how they change with line size (Table 3).  To reproduce
Table 3 the model needs word-granularity touch patterns with the right
sub-line density; this module synthesizes them:

* **Code**: runs of consecutively executed instructions separated by
  gaps (untaken branches, error paths) — geometric run/gap lengths with
  an occasional long gap, calibrated so ~75 % of the words in a touched
  32-byte line are executed (Table 3's 4-byte row: -25 % bytes).
* **Data**: small scattered items (a pointer here, a counter there) —
  8-to-16-byte items placed randomly, calibrated to Table 3's read-only
  and mutable rows.

All generation is deterministic given the RNG, and each function's
touch map hits an exact 32-byte-line budget so Table 1 reproduces
exactly.
"""

from __future__ import annotations

import numpy as np

from ..errors import ConfigurationError

WORD = 4  # Alpha instruction size
WORDS_PER_LINE = 8  # 32-byte lines


def _geometric(rng: np.random.Generator, mean: float) -> int:
    """A geometric sample with the given mean, at least 1."""
    p = 1.0 / max(mean, 1.0)
    return int(rng.geometric(p))


def synthesize_code_touch_words(
    size_bytes: int,
    target_lines: int,
    rng: np.random.Generator,
    run_mean: float = 9.0,
    gap_mean: float = 3.5,
    long_gap_prob: float = 0.2,
    long_gap_mean: float = 20.0,
) -> np.ndarray:
    """Word offsets (units of 4 bytes) executed within one function.

    The result covers exactly ``target_lines`` distinct 32-byte lines.
    Raises when the budget exceeds the function's capacity.
    """
    capacity_lines = -(-size_bytes // (WORDS_PER_LINE * WORD))
    if target_lines > capacity_lines:
        raise ConfigurationError(
            f"budget of {target_lines} lines exceeds function capacity "
            f"{capacity_lines} lines ({size_bytes} bytes)"
        )
    if target_lines <= 0:
        return np.empty(0, dtype=np.int64)
    total_words = size_bytes // WORD
    touched: list[int] = []
    word = 0
    while word < total_words:
        run = _geometric(rng, run_mean)
        for offset in range(run):
            if word + offset >= total_words:
                break
            touched.append(word + offset)
        word += run
        if rng.random() < long_gap_prob:
            word += _geometric(rng, long_gap_mean)
        else:
            word += _geometric(rng, gap_mean)
    return _fit_to_line_budget(np.asarray(touched, dtype=np.int64),
                               target_lines, capacity_lines, rng)


def synthesize_data_touch_words(
    size_bytes: int,
    target_lines: int,
    rng: np.random.Generator,
    item_words_choices: tuple[int, ...] = (1, 2, 2, 4),
    pair_prob: float = 0.35,
) -> np.ndarray:
    """Word offsets of data items touched within one data region.

    Items are scattered; ``pair_prob`` controls how often a second item
    lands in an already-touched line (raising sub-line density).
    Covers exactly ``target_lines`` distinct 32-byte lines.
    """
    capacity_lines = -(-size_bytes // (WORDS_PER_LINE * WORD))
    if target_lines > capacity_lines:
        raise ConfigurationError(
            f"budget of {target_lines} lines exceeds region capacity "
            f"{capacity_lines} lines ({size_bytes} bytes)"
        )
    if target_lines <= 0:
        return np.empty(0, dtype=np.int64)
    total_words = size_bytes // WORD
    touched: set[int] = set()
    lines: set[int] = set()
    # Place one item in each of target_lines distinct lines, then with
    # probability pair_prob drop an extra item into a touched line.
    candidate_lines = rng.permutation(capacity_lines)[:target_lines]
    for line in candidate_lines:
        base = int(line) * WORDS_PER_LINE
        item = int(rng.choice(item_words_choices))
        start = base + int(rng.integers(0, max(1, WORDS_PER_LINE - item + 1)))
        for word in range(start, min(start + item, total_words)):
            touched.add(word)
        lines.add(int(line))
        if rng.random() < pair_prob:
            item = int(rng.choice(item_words_choices))
            start = base + int(rng.integers(0, max(1, WORDS_PER_LINE - item + 1)))
            for word in range(start, min(start + item, total_words)):
                touched.add(word)
    result = np.asarray(sorted(touched), dtype=np.int64)
    # The per-line placement guarantees exactly target_lines lines.
    assert len({int(w) // WORDS_PER_LINE for w in result}) == target_lines
    return result


def _fit_to_line_budget(
    words: np.ndarray,
    target_lines: int,
    capacity_lines: int,
    rng: np.random.Generator,
) -> np.ndarray:
    """Trim or pad a word set to cover exactly ``target_lines`` lines."""
    lines_in_order: list[int] = []
    seen: set[int] = set()
    for word in words:
        line = int(word) // WORDS_PER_LINE
        if line not in seen:
            seen.add(line)
            lines_in_order.append(line)
    if len(lines_in_order) >= target_lines:
        keep = set(lines_in_order[:target_lines])
        return words[np.isin(words // WORDS_PER_LINE, list(keep))]
    # Pad: touch a short run in untouched lines until the budget is met.
    untouched = [line for line in range(capacity_lines) if line not in seen]
    rng.shuffle(untouched)
    extra: list[int] = []
    for line in untouched[: target_lines - len(lines_in_order)]:
        start = line * WORDS_PER_LINE + int(rng.integers(0, WORDS_PER_LINE - 2))
        extra.extend(range(start, start + 3))
    return np.asarray(sorted(set(words.tolist()) | set(extra)), dtype=np.int64)


def coverage_stats(words: np.ndarray) -> dict[int, int]:
    """Distinct chunks covered at 4/8/16/32/64-byte granularity.

    Keys are chunk sizes in bytes; values are distinct chunk counts.
    Used by the calibration tests to check Table-3-style ratios.
    """
    stats: dict[int, int] = {}
    if words.size == 0:
        return {size: 0 for size in (4, 8, 16, 32, 64)}
    byte_addrs = words * WORD
    for size in (4, 8, 16, 32, 64):
        stats[size] = int(np.unique(byte_addrs // size).size)
    return stats
